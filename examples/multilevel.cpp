// Multi-level hierarchy demo: HierMinimax generalized to a four-layer
// network (cloud -> region -> edge -> client), i.e. a depth-3 tree. Shows
// that the paper's client-edge-cloud instance (DESIGN.md) is one point of
// a family, and that deeper hierarchies push even more synchronization
// off the expensive top link.
//
// Usage: ./multilevel [--rounds 150]
#include <iomanip>
#include <iostream>

#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "metrics/evaluation.hpp"
#include "core/flags.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/multi_topology.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 150);

  // 4 regions x 2 edges x 2 clients = 16 clients; one region-level area
  // per weight coordinate. Data: 8-class task, heterogeneous by class
  // difficulty and imbalance.
  data::GaussianSpec spec;
  spec.dim = 24;
  spec.num_classes = 4;
  spec.num_samples = 6000;
  spec.separation = 2.8;
  spec.difficulty_spread = 0.5;
  spec.imbalance = 2.0;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(51);
  const auto tt = data::split_train_test(all, 0.2, gen);
  const auto fed = data::partition_one_class_per_edge(tt, /*num_edges=*/4,
                                                      /*clients_per_edge=*/4,
                                                      gen);

  const sim::MultiTopology topo({4, 2, 2});  // depth-3 tree

  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  algo::MultiTrainOptions opts;
  opts.rounds = rounds;
  opts.taus = {2, 2, 2};  // blocks per level: region, edge, local steps
  opts.batch_size = 4;
  opts.eta_w = 0.05;
  opts.eta_p = 0.005;
  opts.sampled_areas = 3;
  opts.eval_every = std::max<index_t>(1, rounds / 10);
  opts.seed = 7;

  const auto result = algo::train_hierminimax_multi(model, fed, topo, opts);
  const auto favg = algo::train_hierfavg_multi(model, fed, topo, opts);

  std::cout << "four-layer HierMinimax (cloud-region-edge-client), "
            << rounds << " rounds, taus = {2, 2, 2}\n\n"
            << "round\tavg_acc\tworst_acc\n";
  for (const auto& r : result.history.records()) {
    std::cout << r.round << '\t' << std::fixed << std::setprecision(4)
              << r.summary.average << '\t' << r.summary.worst << '\n';
  }
  std::cout << "\nper-level communication rounds (level 0 = cloud link):\n";
  for (std::size_t l = 0; l < result.comm.levels.size(); ++l) {
    std::cout << "  level " << l << ": "
              << result.comm.levels[l].rounds << " rounds, "
              << result.comm.levels[l].models_up << " models up\n";
  }
  std::cout << "\narea weights p: ";
  for (const scalar_t p : result.p) std::cout << p << ' ';
  std::cout << "\nDeeper levels absorb most synchronization; the cloud "
               "link sees only "
            << result.comm.levels[0].rounds << " of "
            << result.comm.total_rounds() << " total rounds.\n";

  // Fairness vs the L-level minimization baseline (multi-level local
  // SGD): same tree, same taus, no weight adaptation.
  const auto s_mm = result.history.tail_summary(5);
  const auto s_fa = favg.history.tail_summary(5);
  const auto gini_mm =
      metrics::gini_coefficient(result.history.back().edge_acc);
  const auto gini_fa =
      metrics::gini_coefficient(favg.history.back().edge_acc);
  std::cout << "\n                 avg     worst   var(pct^2)  gini\n"
            << std::fixed << std::setprecision(4)
            << "  minimax      " << s_mm.average << "  " << s_mm.worst
            << "  " << std::setw(8) << std::setprecision(2)
            << s_mm.variance_pct2 << "   " << std::setprecision(3)
            << gini_mm << '\n'
            << std::setprecision(4)
            << "  minimization " << s_fa.average << "  " << s_fa.worst
            << "  " << std::setw(8) << std::setprecision(2)
            << s_fa.variance_pct2 << "   " << std::setprecision(3)
            << gini_fa << '\n';
  return 0;
}
