// Fairness study: run all five methods of the paper on the same
// heterogeneous task and compare average accuracy, worst-edge accuracy,
// and accuracy variance — a miniature of Figs. 3/4 + Table 2.
//
// Usage: ./fairness_study [--rounds 300] [--dim 48] [--similarity 0.3]
#include <iomanip>
#include <iostream>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/qffl.hpp"
#include "core/flags.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 300);
  const index_t dim = flags.get_int("dim", 48);
  const scalar_t similarity = flags.get_double("similarity", 0.3);

  auto spec = data::emnist_digits_like_spec(/*num_samples=*/8000);
  spec.dim = dim;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(11);
  const auto tt = data::split_train_test(all, 0.2, gen);
  const auto fed = data::partition_similarity(tt, 10, 3, similarity, gen);
  const sim::HierTopology topo(10, 3);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  algo::TrainOptions opts;
  opts.rounds = rounds;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 4;
  opts.eta_w = 0.05;
  opts.eta_p = 0.002;
  opts.sampled_edges = 5;
  opts.eval_every = 0;
  opts.seed = 3;
  algo::TrainOptions flat = opts;
  flat.sampled_clients = opts.sampled_edges * topo.clients_per_edge();

  struct Entry {
    std::string name;
    algo::TrainResult result;
  };
  std::vector<Entry> entries;
  entries.push_back({"FedAvg", algo::train_fedavg(model, fed, flat)});
  entries.push_back(
      {"Stochastic-AFL", algo::train_stochastic_afl(model, fed, flat)});
  entries.push_back({"DRFA", algo::train_drfa(model, fed, flat)});
  entries.push_back({"q-FFL(q=2)", algo::train_qffl(model, fed, flat, 2.0)});
  entries.push_back(
      {"HierFAVG", algo::train_hierfavg(model, fed, topo, opts)});
  entries.push_back(
      {"HierMinimax", algo::train_hierminimax(model, fed, topo, opts)});

  std::cout << "similarity s=" << similarity * 100 << "%, rounds=" << rounds
            << ", 10 edges x 3 clients\n\n"
            << std::left << std::setw(16) << "method" << std::right
            << std::setw(10) << "avg" << std::setw(10) << "worst"
            << std::setw(12) << "var(pct^2)" << std::setw(14)
            << "comm_rounds" << '\n';
  for (const auto& e : entries) {
    const auto& s = e.result.history.back().summary;
    std::cout << std::left << std::setw(16) << e.name << std::right
              << std::fixed << std::setprecision(4) << std::setw(10)
              << s.average << std::setw(10) << s.worst << std::setw(12)
              << std::setprecision(2) << s.variance_pct2 << std::setw(14)
              << e.result.comm.total_rounds() << std::defaultfloat
              << std::setprecision(6) << '\n';
  }
  std::cout << "\nExpected shape (paper Figs. 3-4): the three minimax\n"
               "methods hold much higher worst accuracy and lower variance\n"
               "than FedAvg/HierFAVG at a small average-accuracy cost.\n";
  return 0;
}
