// Quickstart: train a fair global model over a client-edge-cloud
// hierarchy with HierMinimax in ~40 lines of user code.
//
// The walkthrough:
//   1. build a heterogeneous federated dataset (one class per edge area),
//   2. describe the hierarchy (N_E edge areas x N_0 clients),
//   3. pick a model (convex logistic regression here),
//   4. configure HierMinimax (tau1/tau2, learning rates, participation),
//   5. train and inspect per-edge fairness metrics and the learned
//      adversarial edge weights p.
//
// Build & run:  ./quickstart [--rounds 200]
//
// Fault injection (see src/algo/fault_config.hpp for the full set):
//   ./quickstart --dropout 0.2 --on-fault stale
// trains the same seeded run under 20% per-round client dropout, reusing
// decayed stale updates for the casualties, and reports delivery stats.
//
// Byzantine attacks & robust aggregation (DESIGN.md §13):
//   ./quickstart --attack sign-flip --attack-frac 0.2 --aggregate trimmed
// makes ~20% of clients per round upload sign-flipped models while the
// servers defend with the trimmed mean; the attacked run replays
// bit-identically under the same --fault-seed.
//
// Interrupt & resume (see src/algo/snapshot_config.hpp):
//   ./quickstart --snapshot-every 10         # durable snapshot every 10 rounds
//   ^C mid-run, then
//   ./quickstart --snapshot-every 10 --resume
// finishes the run from the newest valid snapshot with a bit-identical
// trajectory (same final model, weights, history, and comm counters).
//
// Multi-process transport (see src/algo/transport_config.hpp):
//   ./quickstart --transport socket --workers 4
// forks 4 edge-worker processes that talk to the coordinator over
// Unix-domain sockets; the run is bit-identical to the in-process one,
// and a SIGKILLed worker degrades like a crashed edge (--on-fault).
//
// Observability (see src/algo/obs_config.hpp and DESIGN.md §15):
//   ./quickstart --obs --trace-out trace.json --metrics-out metrics.json
// records round/phase/RPC spans and exports them as a Chrome trace
// (chrome://tracing or https://ui.perfetto.dev) plus a metrics snapshot;
// neither changes the trajectory — the run stays bit-identical.
// --log-level debug (or HM_LOG_LEVEL=debug) raises diagnostic verbosity.
#include <iostream>

#include "algo/fault_config.hpp"
#include "algo/hierminimax.hpp"
#include "algo/obs_config.hpp"
#include "algo/snapshot_config.hpp"
#include "algo/transport_config.hpp"
#include "io/checkpoint.hpp"
#include "core/flags.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const Flags flags = Flags::parse(argc, argv);

  // 1. Data: a 10-class Gaussian classification task, split so each of 5
  //    edge areas only holds two classes' worth of data -> heterogeneous.
  data::GaussianSpec spec;
  spec.dim = 32;
  spec.num_classes = 10;
  spec.num_samples = 6000;
  spec.separation = 2.8;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(7);
  const auto tt = data::split_train_test(all, 0.2, gen);
  const auto fed = data::partition_similarity(tt, /*num_edges=*/5,
                                              /*clients_per_edge=*/3,
                                              /*similarity=*/0.2, gen);

  // 2. Topology: 5 edge servers, 3 clients each, one cloud.
  const sim::HierTopology topo(5, 3);

  // 3. Model: multinomial logistic regression over flat parameters.
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  // 4. Algorithm configuration (Algorithm 1 of the paper).
  algo::TrainOptions opts;
  opts.rounds = flags.get_int("rounds", 200);  // K
  opts.tau1 = 2;             // local SGD steps per client-edge aggregation
  opts.tau2 = 2;             // client-edge aggregations per round
  opts.batch_size = 4;
  opts.eta_w = 0.05;         // model learning rate
  opts.eta_p = 0.02;         // edge-weight learning rate
  opts.sampled_edges = 3;    // m_E: partial edge participation
  opts.eval_every = opts.rounds / 10;
  opts.seed = 1;

  // Optional fault injection: --dropout/--straggler/--edge-loss/... turn
  // on a deterministic FaultPlan; --on-fault picks the degradation policy.
  algo::apply_fault_flags(flags, opts);

  // Optional crash-safe snapshots: --snapshot-every/--snapshot-dir write
  // durable snapshots; --resume restarts bit-exactly from the newest one.
  algo::apply_snapshot_flags(flags, opts);

  // Optional multi-process backend: --transport socket --workers N runs
  // the edge phases in forked worker processes, bit-identical to inproc.
  algo::apply_transport_flags(flags, opts);

  // Optional observability: --obs/--trace-out/--metrics-out record spans
  // and metrics without perturbing the trajectory; --log-level (or
  // HM_LOG_LEVEL) tunes diagnostic verbosity.
  const algo::ObsOptions obs_opts = algo::apply_obs_flags(flags);
  if (opts.transport.kind != net::TransportKind::kInproc) {
    std::cout << "transport: " << net::to_string(opts.transport.kind)
              << " (workers=" << opts.transport.workers << ")\n";
  }
  if (opts.snapshot.enabled()) {
    std::cout << "snapshots: every " << opts.snapshot.every_k_rounds
              << " rounds -> " << opts.snapshot.dir << "/ (keep "
              << opts.snapshot.keep << ")\n";
  }

  // 5. Train and report.
  const auto result = algo::train_hierminimax(model, fed, topo, opts);
  algo::finish_obs_run(obs_opts, algo::build_run_manifest(flags, opts));

  std::cout << "round\tcomm_rounds\tavg_acc\tworst_acc\n";
  for (const auto& r : result.history.records()) {
    std::cout << r.round << '\t' << r.comm.total_rounds() << '\t'
              << r.summary.average << '\t' << r.summary.worst << '\n';
  }
  std::cout << "\nlearned edge weights p (higher = harder edge):\n";
  for (std::size_t e = 0; e < result.p.size(); ++e) {
    std::cout << "  edge " << e << ": " << result.p[e] << '\n';
  }
  // Persist the trained model and the training curve.
  io::save_vector("quickstart_model.bin", result.w);
  io::save_history_csv("quickstart_history.csv", result.history);
  std::cout << "\nwrote quickstart_model.bin and quickstart_history.csv\n";

  const auto& final_summary = result.history.back().summary;
  std::cout << "\nfinal: avg=" << final_summary.average
            << " worst=" << final_summary.worst
            << " variance=" << final_summary.variance_pct2 << " pct^2\n";
  if (opts.fault.enabled) {
    std::cout << "faults (" << algo::to_string(opts.on_fault)
              << " policy): delivered=" << result.comm.msgs_delivered()
              << " dropped=" << result.comm.msgs_dropped()
              << " straggled=" << result.comm.msgs_straggled() << '\n';
  }
  return 0;
}
