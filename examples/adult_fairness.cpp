// Group-fairness scenario on the Adult-like salary-prediction task
// (paper §6.3): two edge areas hold the Doctorate and non-Doctorate
// populations. Plain hierarchical averaging is dominated by the large
// majority group; HierMinimax reweights toward the minority group and
// lifts its (worst) accuracy.
//
// Usage: ./adult_fairness [--rounds 300]
#include <iomanip>
#include <iostream>

#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "core/flags.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 300);

  data::AdultLikeSpec spec;  // 8000 non-Doctorate vs 500 Doctorate samples
  const auto groups = data::make_adult_like(spec);
  rng::Xoshiro256 gen(31);
  const auto fed = data::partition_by_group(groups, /*clients_per_edge=*/3,
                                            /*test_fraction=*/0.25, gen);
  const sim::HierTopology topo(2, 3);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  algo::TrainOptions opts;
  opts.rounds = rounds;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 4;
  opts.eta_w = 0.05;
  opts.eta_p = 0.005;
  opts.sampled_edges = 0;  // both groups participate each round
  opts.eval_every = 0;
  opts.seed = 17;

  const auto favg = algo::train_hierfavg(model, fed, topo, opts);
  const auto mm = algo::train_hierminimax(model, fed, topo, opts);

  auto report = [](const std::string& name, const algo::TrainResult& r) {
    const auto& rec = r.history.back();
    std::cout << std::left << std::setw(14) << name << std::right
              << std::fixed << std::setprecision(4) << std::setw(16)
              << rec.edge_acc[0] << std::setw(14) << rec.edge_acc[1]
              << std::setw(10) << rec.summary.worst << std::defaultfloat
              << std::setprecision(6) << '\n';
  };
  std::cout << "Adult-like salary prediction, 2 edge areas (groups)\n\n"
            << std::left << std::setw(14) << "method" << std::right
            << std::setw(16) << "non-Doctorate" << std::setw(14)
            << "Doctorate" << std::setw(10) << "worst" << '\n';
  report("HierFAVG", favg);
  report("HierMinimax", mm);
  const auto& acc = mm.history.back().edge_acc;
  const std::size_t harder = acc[0] <= acc[1] ? 0 : 1;
  std::cout << "\nHierMinimax edge weights p = [" << mm.p[0] << ", "
            << mm.p[1] << "] (uniform start was [0.5, 0.5]);\n"
            << "the weight shifted toward the harder group ("
            << (harder == 0 ? "non-Doctorate" : "Doctorate") << ": p = "
            << mm.p[harder] << ").\n";
  return 0;
}
