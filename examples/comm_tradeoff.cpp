// Communication-convergence tradeoff demo (§5 of the paper): run
// HierMinimax at a fixed local-iteration budget T with different
// (tau1, tau2) settings and watch edge-cloud communication fall as
// tau1*tau2 grows, while convergence (worst accuracy at budget) degrades
// gracefully.
//
// Usage: ./comm_tradeoff [--iterations 1600] [--dim 32]
#include <iomanip>
#include <iostream>

#include "algo/hierminimax.hpp"
#include "core/flags.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const Flags flags = Flags::parse(argc, argv);
  const index_t budget = flags.get_int("iterations", 1600);
  const index_t dim = flags.get_int("dim", 32);

  data::GaussianSpec spec;
  spec.dim = dim;
  spec.num_classes = 10;
  spec.num_samples = 6000;
  spec.separation = 3.0;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(21);
  const auto tt = data::split_train_test(all, 0.2, gen);
  const auto fed = data::partition_one_class_per_edge(tt, 10, 3, gen);
  const sim::HierTopology topo(10, 3);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  std::cout << "fixed budget T = " << budget
            << " local iterations per client\n\n"
            << std::left << std::setw(10) << "tau1xtau2" << std::right
            << std::setw(8) << "rounds" << std::setw(14) << "edge_cloud"
            << std::setw(14) << "client_edge" << std::setw(10) << "avg"
            << std::setw(10) << "worst" << '\n';
  for (const auto& [tau1, tau2] : std::vector<std::pair<index_t, index_t>>{
           {1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4}}) {
    algo::TrainOptions opts;
    opts.tau1 = tau1;
    opts.tau2 = tau2;
    opts.rounds = std::max<index_t>(1, budget / (tau1 * tau2));
    opts.batch_size = 4;
    opts.eta_w = 0.05;
    opts.eta_p = 0.02;
    opts.sampled_edges = 5;
    opts.eval_every = 0;
    opts.seed = 9;
    const auto result = algo::train_hierminimax(model, fed, topo, opts);
    const auto& s = result.history.back().summary;
    std::cout << std::left << std::setw(10)
              << (std::to_string(tau1) + "x" + std::to_string(tau2))
              << std::right << std::setw(8) << opts.rounds << std::setw(14)
              << result.comm.edge_cloud_rounds << std::setw(14)
              << result.comm.client_edge_rounds << std::fixed
              << std::setprecision(4) << std::setw(10) << s.average
              << std::setw(10) << s.worst << std::defaultfloat
              << std::setprecision(6) << '\n';
  }
  std::cout << "\nLarger tau1*tau2 => fewer edge-cloud rounds for the same\n"
               "T (communication complexity O(T^{1-alpha})), at some cost\n"
               "in accuracy at the fixed budget (rate O(T^{-(1-alpha)/2})).\n";
  return 0;
}
