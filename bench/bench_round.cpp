// End-to-end round-time benchmarks (google-benchmark): the Fig. 3 and
// Fig. 4 training configurations, measured as whole train_hierminimax
// calls so the number includes sampling, local SGD, aggregation, the
// ascent step, and evaluation — everything a production round pays.
//
// Shapes follow bench_fig3_convex / bench_fig4_nonconvex: the `quick`
// rows are those benches' default surrogate dims, the `paper` rows the
// paper's §6 dims (784-dim inputs, 300/100 MLP) with a reduced sample
// count so dataset generation stays out of the measured region.
// The `trace` arg measures the observability overhead ladder (DESIGN.md
// §15): trace=0 is the compiled-in-idle arm (hooks present, tracer
// disarmed — the ≤1% budget row), trace=1 runs with the span tracer
// armed. The compiled-out arm is the same bench from a -DHM_OBS=OFF
// build tree.
#include <benchmark/benchmark.h>

#include "algo/hierminimax.hpp"
#include "bench_common.hpp"
#include "nn/mlp.hpp"
#include "nn/softmax_regression.hpp"
#include "obs/obs.hpp"
#include "sim/topology.hpp"

namespace {

using namespace hm;

constexpr index_t kRoundsPerIter = 4;

/// Arms the tracer for one benchmark run when `traced`; always disarms
/// on scope exit so arms never leak between registrations.
struct TraceArm {
  explicit TraceArm(bool traced) {
    if (!traced) return;
    obs::set_trace_capacity(1 << 16);
    obs::set_trace_enabled(true);
  }
  ~TraceArm() { obs::set_trace_enabled(false); }
};

algo::TrainOptions fig3_opts(seed_t seed) {
  algo::TrainOptions opts;
  opts.rounds = kRoundsPerIter;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 4;
  opts.eta_w = 0.05;
  opts.eta_p = 0.002;
  opts.sampled_edges = 5;
  opts.eval_every = 0;  // final-round evaluation only
  opts.seed = seed;
  return opts;
}

algo::TrainOptions fig4_opts(seed_t seed) {
  algo::TrainOptions opts;
  opts.rounds = kRoundsPerIter;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 8;
  opts.eta_w = 0.03;
  opts.eta_p = 0.001;
  opts.sampled_edges = 2;
  opts.eval_every = 0;
  opts.seed = seed;
  return opts;
}

void BM_Fig3Round(benchmark::State& state) {
  const index_t dim = state.range(0);
  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_one_class_fed(bench::ImageFamily::kEmnistDigits,
                                             dim, num_edges, clients_per_edge,
                                             /*num_samples=*/4000, /*seed=*/1);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  algo::TrainOptions opts = fig3_opts(1);
  opts.batched = state.range(1) != 0;
  const TraceArm arm(state.range(2) != 0);
  for (auto _ : state) {
    auto result = algo::train_hierminimax(model, fed, topo, opts);
    benchmark::DoNotOptimize(result.w.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kRoundsPerIter);
}
BENCHMARK(BM_Fig3Round)
    ->Args({64, 0, 0})->Args({64, 1, 0})->Args({784, 0, 0})
    ->Args({784, 1, 0})->Args({64, 1, 1})->Args({784, 1, 1})
    ->ArgNames({"dim", "batched", "trace"})
    ->Unit(benchmark::kMillisecond);

void BM_Fig4Round(benchmark::State& state) {
  const index_t dim = state.range(0);
  const bool paper_arch = dim >= 784;
  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_similarity_fed(bench::ImageFamily::kFashion,
                                              dim, num_edges, clients_per_edge,
                                              /*similarity=*/0.5,
                                              /*num_samples=*/3000, /*seed=*/2);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::Mlp model = paper_arch
                            ? nn::make_paper_mlp(dim, fed.num_classes())
                            : nn::Mlp({dim, 48, 24, fed.num_classes()});
  algo::TrainOptions opts = fig4_opts(2);
  opts.batched = state.range(1) != 0;
  const TraceArm arm(state.range(2) != 0);
  for (auto _ : state) {
    auto result = algo::train_hierminimax(model, fed, topo, opts);
    benchmark::DoNotOptimize(result.w.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kRoundsPerIter);
}
BENCHMARK(BM_Fig4Round)
    ->Args({32, 0, 0})->Args({32, 1, 0})->Args({784, 0, 0})
    ->Args({784, 1, 0})->Args({32, 1, 1})->Args({784, 1, 1})
    ->ArgNames({"dim", "batched", "trace"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
