// Figure 3 reproduction: average and worst test accuracies vs
// communication rounds with convex loss (multinomial logistic regression,
// EMNIST-Digits-like task, one class per edge area).
//
// Paper protocol (§6.1): N_E = 10, N_0 = 3, m_E = 5, tau1 = tau2 = 2,
// eta_w = eta_p = 0.001, batch size 1. Defaults here use a 64-dim
// surrogate task and larger learning rates so the crossover structure
// appears in seconds; pass --paper-scale for the full setting.
//
// Usage: bench_fig3_convex [--rounds K] [--dim D] [--target 0.70]
//                          [--num-seeds N] [--paper-scale] [--seed S]
//                          [--batched]
//
// --batched runs the fused multi-client engine (bit-identical to the
// per-client path, typically >=2x faster per round; see DESIGN.md §11).
#include <iostream>

#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace {

using namespace hm;

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bool paper_scale = flags.get_bool("paper-scale", false);
  const index_t dim = flags.get_int("dim", paper_scale ? 784 : 64);
  const index_t rounds = flags.get_int("rounds", paper_scale ? 4000 : 800);
  const index_t samples = flags.get_int("samples", paper_scale ? 60000 : 8000);
  const scalar_t target = flags.get_double("target", 0.70);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 1));

  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_one_class_fed(
      bench::ImageFamily::kEmnistDigits, dim, num_edges, clients_per_edge,
      samples, seed);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  algo::TrainOptions opts;
  opts.rounds = rounds;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = paper_scale ? 1 : 4;
  opts.eta_w = flags.get_double("eta-w", paper_scale ? 0.001 : 0.05);
  opts.eta_p = flags.get_double("eta-p", paper_scale ? 0.001 : 0.002);
  opts.sampled_edges = flags.get_int("m-e", 5);
  opts.eval_every = std::max<index_t>(1, rounds / 100);
  opts.seed = seed;
  opts.batched = flags.get_bool("batched", false);

  std::cout << "# Figure 3: convex loss (logistic regression), "
            << bench::family_name(bench::ImageFamily::kEmnistDigits)
            << ", one class per edge\n"
            << "# N_E=10 N_0=3 m_E=5 tau1=tau2=2 dim=" << dim
            << " rounds=" << rounds << "\n";

  Stopwatch sw;
  const index_t num_seeds = flags.get_int("num-seeds", 3);
  std::vector<std::vector<bench::MethodRun>> per_seed;
  for (index_t s = 0; s < num_seeds; ++s) {
    auto seed_opts = opts;
    seed_opts.seed = seed + static_cast<seed_t>(s);
    per_seed.push_back(bench::run_five_methods(model, fed, topo, seed_opts));
    log::info() << "[seed " << seed_opts.seed << "] done at "
                << sw.seconds() << " s";
  }
  const auto& runs = per_seed.front();
  bench::print_curves(std::cout, runs);
  bench::print_threshold_summary(std::cout, runs, target);
  bench::print_seed_averaged(
      std::cout, bench::average_over_seeds(per_seed, target), target);
  std::cout << "\n# final summary (dataset\tmethod\tavg\tworst\tvariance)\n";
  bench::print_final_summary(std::cout, "EMNIST-Digits-like", runs);
  log::info() << "[bench_fig3_convex] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
