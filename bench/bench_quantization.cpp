// Quantization ablation (Hier-Local-QSGD-style, after [22]): sweep the
// per-coordinate bit width of uplink model payloads and report final
// accuracy vs wide-area bytes for HierMinimax and HierFAVG. The expected
// shape: bytes fall ~linearly in bits while accuracy is flat down to
// ~6-8 bits and collapses below ~2-3 bits.
//
// Usage: bench_quantization [--rounds K] [--dim D] [--seed S]
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace {

using namespace hm;

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 250);
  const index_t dim = flags.get_int("dim", 48);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 6));

  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_one_class_fed(
      bench::ImageFamily::kEmnistDigits, dim, num_edges, clients_per_edge,
      /*num_samples=*/8000, seed);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  algo::TrainOptions base;
  base.rounds = rounds;
  base.tau1 = 2;
  base.tau2 = 2;
  base.batch_size = 4;
  base.eta_w = 0.05;
  base.eta_p = 0.002;
  base.sampled_edges = 5;
  base.eval_every = std::max<index_t>(1, rounds / 20);
  base.seed = seed;

  Stopwatch sw;
  std::cout << "# Quantized uplinks: accuracy vs wide-area bytes\n"
            << "method\tbits\tavg\tworst\twan_mbytes\tclient_edge_mbytes\n"
            << std::fixed;
  for (const int bits : {0, 16, 8, 6, 4, 2, 1}) {
    auto opts = base;
    opts.quantize_bits = bits;
    const auto favg = algo::train_hierfavg(model, fed, topo, opts);
    const auto mm = algo::train_hierminimax(model, fed, topo, opts);
    for (const auto& [name, r] :
         {std::pair<const char*, const algo::TrainResult*>{"HierFAVG", &favg},
          {"HierMinimax", &mm}}) {
      const auto s = r->history.tail_summary(5);
      std::cout << name << '\t' << bits << '\t' << std::setprecision(4)
                << s.average << '\t' << s.worst << '\t'
                << std::setprecision(2)
                << static_cast<double>(r->comm.edge_cloud_bytes) / 1e6
                << '\t'
                << static_cast<double>(r->comm.client_edge_bytes) / 1e6
                << '\n';
    }
  }
  log::info() << "[bench_quantization] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
