// Multi-level generalization bench: the same 40-client population
// organized as a 3-layer (cloud-edge-client) vs a 4-layer
// (cloud-region-edge-client) hierarchy, with per-round local work held
// fixed (prod(taus) = 8 leaf iterations per round). Deeper trees push
// synchronization further down: the top (WAN) link sees the same 2
// rounds per training round, but each deeper level absorbs the multi-step
// aggregation that a flat system would surface.
//
// Usage: bench_multilevel [--rounds K] [--dim D] [--seed S]
#include <iomanip>
#include <iostream>

#include "algo/hierminimax_multi.hpp"
#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace {

using namespace hm;

struct Config {
  std::string name;
  std::vector<index_t> branching;
  std::vector<index_t> taus;
};

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 300);
  const index_t dim = flags.get_int("dim", 48);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 8));

  // 10 areas x 4 leaves each = 40 clients in every configuration.
  const auto fed = bench::make_one_class_fed(
      bench::ImageFamily::kEmnistDigits, dim, /*num_edges=*/10,
      /*clients_per_edge=*/4, /*num_samples=*/8000, seed);

  const std::vector<Config> configs = {
      {"3-layer (10x4), taus {4,2}", {10, 4}, {4, 2}},
      {"4-layer (10x2x2), taus {2,2,2}", {10, 2, 2}, {2, 2, 2}},
      {"4-layer (10x2x2), taus {4,1,2}", {10, 2, 2}, {4, 1, 2}},
  };

  std::cout << "# Multi-level HierMinimax at fixed per-round local work "
               "(8 leaf iterations)\n"
            << "config\tavg\tworst\tvar_pct2\ttop_link_rounds\t"
               "deeper_rounds\n";
  Stopwatch sw;
  for (const auto& config : configs) {
    const sim::MultiTopology topo(config.branching);
    HM_CHECK(topo.num_leaves() == fed.num_clients());
    const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
    algo::MultiTrainOptions opts;
    opts.rounds = rounds;
    opts.taus = config.taus;
    opts.batch_size = 4;
    opts.eta_w = 0.05;
    opts.eta_p = 0.002;
    opts.sampled_areas = 5;
    opts.eval_every = std::max<index_t>(1, rounds / 15);
    opts.seed = seed;
    const auto result =
        algo::train_hierminimax_multi(model, fed, topo, opts);
    const auto s = result.history.tail_summary(5);
    std::uint64_t deeper = 0;
    for (std::size_t l = 1; l < result.comm.levels.size(); ++l) {
      deeper += result.comm.levels[l].rounds;
    }
    std::cout << config.name << '\t' << std::fixed << std::setprecision(4)
              << s.average << '\t' << s.worst << '\t'
              << std::setprecision(2) << s.variance_pct2 << '\t'
              << std::defaultfloat << result.comm.levels[0].rounds << '\t'
              << deeper << '\n';
  }
  log::info() << "[bench_multilevel] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
