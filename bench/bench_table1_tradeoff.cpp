// Table 1 / §5 reproduction: the communication-convergence tradeoff.
//
// For each alpha in {0, 1/4, 1/2, 3/4} we (a) print the theoretical
// scaling exponents of Table 1, (b) evaluate the Theorem 1 bound under
// the §5.1 learning-rate schedule at growing T to show its decay rate,
// and (c) run HierMinimax with tau1*tau2 ~ T^alpha on a convex task at
// fixed total iteration budget T, reporting measured edge-cloud
// communication and the measured duality gap — the empirical side of the
// tradeoff: larger alpha => fewer edge-cloud rounds, slower convergence.
//
// Usage: bench_table1_tradeoff [--iterations T] [--dim D] [--seed S]
#include <cmath>
#include <iomanip>
#include <iostream>

#include "algo/duality_gap.hpp"
#include "algo/theory.hpp"
#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace {

using namespace hm;

/// Factor tau_product into tau1 x tau2 as squarely as possible.
std::pair<index_t, index_t> factor_tau(index_t tau_product) {
  index_t tau1 = static_cast<index_t>(
      std::llround(std::sqrt(static_cast<double>(tau_product))));
  tau1 = std::max<index_t>(1, tau1);
  while (tau_product % tau1 != 0) --tau1;
  return {tau1, tau_product / tau1};
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const index_t t_budget = flags.get_int("iterations", 4096);
  const index_t dim = flags.get_int("dim", 32);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 4));
  const std::vector<scalar_t> alphas = {0.0, 0.25, 0.5, 0.75};

  std::cout << "# Table 1: communication complexity vs convergence rate\n"
            << "# part (a): theoretical exponents (ours row, any alpha)\n"
            << "alpha\tcomm_complexity\tconvex_rate\tnonconvex_rate\n";
  for (const scalar_t alpha : alphas) {
    const auto p = algo::theory::tradeoff(alpha);
    std::cout << std::fixed << std::setprecision(2) << alpha << "\tO(T^"
              << p.comm_exponent << ")\tO(T^-" << p.rate_exponent_convex
              << ")\tO(T^-" << p.rate_exponent_nonconvex << ")\n";
  }
  std::cout << "# reference rows: [25] Stochastic-AFL = alpha 0 (convex "
               "only); [10] DRFA = alpha 1/4\n";

  std::cout << "\n# part (b): Theorem 1 bound under the Section 5.1 "
               "schedule (decay with T)\n"
            << "alpha\tT\ttheorem1_bound\n";
  for (const scalar_t alpha : alphas) {
    for (const index_t t : {1 << 10, 1 << 14, 1 << 18}) {
      const auto s = algo::theory::convex_schedule(t, alpha);
      algo::theory::AlgoConfig cfg;
      const auto [tau1, tau2] = factor_tau(s.tau_product);
      cfg.tau1 = tau1;
      cfg.tau2 = tau2;
      cfg.rounds = std::max<index_t>(1, t / s.tau_product);
      cfg.eta_w = s.eta_w;
      cfg.eta_p = s.eta_p;
      const auto bound =
          algo::theory::theorem1_bound(algo::theory::ProblemConstants{}, cfg);
      std::cout << std::fixed << std::setprecision(2) << alpha << '\t' << t
                << '\t' << std::scientific << std::setprecision(3)
                << bound.total << std::defaultfloat << '\n';
    }
  }

  // part (c): empirical runs at fixed iteration budget.
  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_one_class_fed(
      bench::ImageFamily::kEmnistDigits, dim, num_edges, clients_per_edge,
      /*num_samples=*/6000, seed);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  parallel::ThreadPool pool;

  std::cout << "\n# part (c): empirical tradeoff at T = " << t_budget
            << " local iterations\n"
            << "alpha\ttau1\ttau2\trounds\tedge_cloud_rounds\t"
               "worst_acc\tavg_acc\tduality_gap\n";
  Stopwatch sw;
  for (const scalar_t alpha : alphas) {
    const index_t tau_product = std::max<index_t>(
        1, static_cast<index_t>(std::llround(
               std::pow(static_cast<double>(t_budget), alpha))));
    const auto [tau1, tau2] = factor_tau(tau_product);
    algo::TrainOptions opts;
    opts.tau1 = tau1;
    opts.tau2 = tau2;
    opts.rounds = std::max<index_t>(1, t_budget / tau_product);
    opts.batch_size = 4;
    // Scale the model step down with the local-update burst length, as
    // the Section 5.1 schedule prescribes (larger tau1*tau2 needs smaller
    // eta_w to control client drift between aggregations).
    opts.eta_w = 0.08 / std::sqrt(static_cast<scalar_t>(tau_product));
    opts.eta_p = 0.002;
    opts.sampled_edges = 5;
    opts.eval_every = 0;
    opts.seed = seed;
    const auto result =
        algo::train_hierminimax(model, fed, topo, opts, pool);
    algo::DualityGapOptions gap_opts;
    gap_opts.minimize_iters = 60;
    gap_opts.eta = 0.2;
    const auto gap = algo::estimate_duality_gap(
        model, fed, result.w_avg, result.p_avg, gap_opts, pool);
    const auto& s = result.history.back().summary;
    std::cout << std::fixed << std::setprecision(2) << alpha << '\t' << tau1
              << '\t' << tau2 << '\t' << opts.rounds << '\t'
              << result.comm.edge_cloud_rounds << '\t'
              << std::setprecision(4) << s.worst << '\t' << s.average
              << '\t' << gap.gap << std::defaultfloat << '\n';
  }
  log::info() << "[bench_table1_tradeoff] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
