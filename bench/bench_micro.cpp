// Substrate micro-benchmarks (google-benchmark): the kernels on the
// simulator's critical path — BLAS-1 aggregation, GEMM, simplex
// projection, a full local-SGD step, and thread-pool dispatch overhead.
#include <benchmark/benchmark.h>

#include "algo/local_sgd.hpp"
#include "algo/projection.hpp"
#include "data/generators.hpp"
#include "nn/mlp.hpp"
#include "nn/softmax_regression.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/vecops.hpp"

namespace {

using namespace hm;

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<scalar_t> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    tensor::axpy(0.9, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Axpy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<scalar_t> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::dot(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(1 << 10)->Arg(1 << 16);

void BM_GemmNt(benchmark::State& state) {
  const index_t n = state.range(0);
  rng::Xoshiro256 gen(1);
  tensor::Matrix a(n, n), b(n, n), c(n, n);
  for (auto& v : a.flat()) v = gen.normal();
  for (auto& v : b.flat()) v = gen.normal();
  for (auto _ : state) {
    tensor::gemm_nt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n *
                          n * n);
}
BENCHMARK(BM_GemmNt)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Gemv(benchmark::State& state) {
  const index_t n = state.range(0);
  rng::Xoshiro256 gen(7);
  tensor::Matrix a(n, n);
  for (auto& v : a.flat()) v = gen.normal();
  std::vector<scalar_t> x(static_cast<std::size_t>(n), 1.0);
  std::vector<scalar_t> y(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    tensor::gemv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n * n);
}
BENCHMARK(BM_Gemv)->Arg(128)->Arg(512);

void BM_FusedUpdate(benchmark::State& state) {
  // The decayed SGD update w = -eta*g + decay*w: one fused axpby pass
  // versus the scale+axpy pair it replaced.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<scalar_t> g(n, 0.25), w(n, 1.0);
  const bool fused = state.range(1) != 0;
  for (auto _ : state) {
    if (fused) {
      tensor::axpby(-0.01, g, 0.999, w);
    } else {
      tensor::scale(0.999, w);
      tensor::axpy(-0.01, g, w);
    }
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FusedUpdate)
    ->ArgsProduct({{1 << 14, 1 << 18}, {0, 1}})
    ->ArgNames({"n", "fused"});

void BM_SimplexProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 gen(2);
  std::vector<scalar_t> base(n);
  for (auto& v : base) v = gen.normal();
  for (auto _ : state) {
    auto v = base;
    algo::project_simplex(v);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(10)->Arg(100)->Arg(1000);

void BM_CappedSimplexProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 gen(3);
  std::vector<scalar_t> base(n);
  for (auto& v : base) v = gen.normal();
  const algo::SimplexSet set{0.001, 0.5};
  for (auto _ : state) {
    auto v = base;
    algo::project_capped_simplex(v, set);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_CappedSimplexProjection)->Arg(10)->Arg(100)->Arg(1000);

void BM_LocalSgdStepSoftmax(benchmark::State& state) {
  const index_t dim = state.range(0);
  data::GaussianSpec spec;
  spec.dim = dim;
  spec.num_samples = 512;
  const auto d = data::make_gaussian_classes(spec);
  const nn::SoftmaxRegression model(dim, 10);
  std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
  algo::ClientScratch scratch;
  rng::Xoshiro256 gen(4);
  algo::LocalSgdConfig cfg;
  cfg.steps = 1;
  cfg.batch_size = 8;
  cfg.eta = 0.01;
  for (auto _ : state) {
    algo::run_local_sgd(model, d, cfg, w, {}, gen, scratch);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_LocalSgdStepSoftmax)->Arg(64)->Arg(256)->Arg(784);

void BM_LocalSgdStepMlp(benchmark::State& state) {
  const index_t dim = state.range(0);
  data::GaussianSpec spec;
  spec.dim = dim;
  spec.num_samples = 512;
  const auto d = data::make_gaussian_classes(spec);
  const nn::Mlp model({dim, 300, 100, 10});
  std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()));
  rng::Xoshiro256 init(5);
  model.init_params(w, init);
  algo::ClientScratch scratch;
  rng::Xoshiro256 gen(6);
  algo::LocalSgdConfig cfg;
  cfg.steps = 1;
  cfg.batch_size = 8;
  cfg.eta = 0.01;
  for (auto _ : state) {
    algo::run_local_sgd(model, d, cfg, w, {}, gen, scratch);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_LocalSgdStepMlp)->Arg(64)->Arg(784);

void BM_ParallelForDispatch(benchmark::State& state) {
  // force_region_dispatch: measure real concurrent dispatch even on a
  // single-CPU host (where production pools would inline the chunks).
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)),
                            /*force_region_dispatch=*/true);
  std::vector<scalar_t> out(1024, 0);
  for (auto _ : state) {
    parallel::parallel_for(
        pool, 0, 1024,
        [&](index_t i) { out[static_cast<std::size_t>(i)] += 1; },
        /*grain=*/1);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
