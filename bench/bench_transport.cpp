// Transport micro-benchmarks (google-benchmark): frame codec cost and
// per-exchange round-trip time of the loopback and socket backends —
// the socket-vs-inproc overhead a --transport=socket run pays per round
// (recorded in BENCH_micro.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"

namespace {

using namespace hm;

net::Frame payload_frame(std::size_t bytes) {
  net::Frame f;
  f.type = net::FrameType::kRequest;
  f.seq = 1;
  f.tag = 2;
  f.payload.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    f.payload[i] = static_cast<std::uint8_t>(i * 131);
  }
  return f;
}

void BM_FrameEncode(benchmark::State& state) {
  const net::Frame f = payload_frame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto bytes = net::encode_frame(f);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameEncode)->Arg(1 << 10)->Arg(1 << 16);

void BM_FrameDecode(benchmark::State& state) {
  const auto bytes =
      net::encode_frame(payload_frame(static_cast<std::size_t>(state.range(0))));
  net::Frame out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::decode_frame(bytes.data(), bytes.size(), out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameDecode)->Arg(1 << 10)->Arg(1 << 16);

net::HandlerFactory echo_factory() {
  return [](index_t) {
    return [](std::uint64_t, const net::Bytes& req) { return req; };
  };
}

/// One scatter-gather exchange (request + reply through the full codec)
/// per iteration; the payload models a round's model vector.
void rpc_round_trip(benchmark::State& state, net::Transport& t) {
  std::vector<std::optional<net::RpcRequest>> reqs(1);
  reqs[0] = net::RpcRequest{
      7, net::Bytes(static_cast<std::size_t>(state.range(0)), 0x5a)};
  for (auto _ : state) {
    const auto replies = t.exchange(reqs);
    benchmark::DoNotOptimize(replies.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          state.range(0));
}

void BM_LoopbackRpc(benchmark::State& state) {
  auto t = net::make_loopback_transport(1, echo_factory());
  rpc_round_trip(state, *t);
}
BENCHMARK(BM_LoopbackRpc)->Arg(1 << 10)->Arg(1 << 16);

void BM_SocketRpc(benchmark::State& state) {
  net::TransportSpec spec;
  spec.kind = net::TransportKind::kSocket;
  auto t = net::make_socket_transport(spec, 1, echo_factory());
  rpc_round_trip(state, *t);
  t->shutdown();
}
BENCHMARK(BM_SocketRpc)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace
