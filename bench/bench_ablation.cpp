// Ablation benchmarks for HierMinimax's design choices (DESIGN.md §3):
//   (a) checkpoint mechanism vs last-iterate loss estimation,
//   (b) tau1 x tau2 grid at a fixed local-update budget,
//   (c) participation sweep over m_E.
//
// Usage: bench_ablation [--rounds K] [--dim D] [--seed S]
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace {

using namespace hm;

void print_result_line(const std::string& label,
                       const algo::TrainResult& result) {
  const auto& s = result.history.back().summary;
  std::cout << label << '\t' << std::fixed << std::setprecision(4)
            << s.average << '\t' << s.worst << '\t' << s.variance_pct2
            << '\t' << std::defaultfloat << result.comm.total_rounds()
            << '\t' << result.comm.edge_cloud_rounds << '\n';
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 250);
  const index_t dim = flags.get_int("dim", 48);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 5));

  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_one_class_fed(
      bench::ImageFamily::kEmnistDigits, dim, num_edges, clients_per_edge,
      /*num_samples=*/8000, seed);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  algo::TrainOptions base;
  base.rounds = rounds;
  base.tau1 = 2;
  base.tau2 = 2;
  base.batch_size = 4;
  base.eta_w = 0.05;
  base.eta_p = 0.02;
  base.sampled_edges = 5;
  base.eval_every = 0;
  base.seed = seed;

  Stopwatch sw;
  std::cout << "# Ablation (a): checkpoint mechanism\n"
            << "variant\tavg\tworst\tvariance\ttotal_rounds\tedge_cloud\n";
  {
    auto on = base;
    on.use_checkpoint = true;
    print_result_line("checkpoint(Eq.6)",
                      algo::train_hierminimax(model, fed, topo, on));
    auto off = base;
    off.use_checkpoint = false;
    print_result_line("last-iterate",
                      algo::train_hierminimax(model, fed, topo, off));
  }

  std::cout << "\n# Ablation (b): tau1 x tau2 at fixed tau1*tau2*K budget\n"
            << "tau1xtau2\tavg\tworst\tvariance\ttotal_rounds\tedge_cloud\n";
  const index_t budget = rounds * base.tau1 * base.tau2;
  for (const auto& [t1, t2] : std::vector<std::pair<index_t, index_t>>{
           {1, 1}, {2, 1}, {1, 2}, {2, 2}, {4, 2}, {2, 4}, {4, 4}}) {
    auto opts = base;
    opts.tau1 = t1;
    opts.tau2 = t2;
    opts.rounds = std::max<index_t>(1, budget / (t1 * t2));
    print_result_line(std::to_string(t1) + "x" + std::to_string(t2),
                      algo::train_hierminimax(model, fed, topo, opts));
  }

  std::cout << "\n# Ablation (c): participation m_E\n"
            << "m_E\tavg\tworst\tvariance\ttotal_rounds\tedge_cloud\n";
  for (const index_t m_e : {1, 2, 5, 10}) {
    auto opts = base;
    opts.sampled_edges = m_e;
    print_result_line(std::to_string(m_e),
                      algo::train_hierminimax(model, fed, topo, opts));
  }
  log::info() << "[bench_ablation] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
