// Shared harness pieces for the table/figure benchmarks: dataset
// builders matching the paper's experimental protocols, the five-method
// runner, and TSV/threshold reporting.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "core/flags.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/mlp.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"

namespace hm::bench {

/// Image-like dataset family selector (EMNIST-Digits / MNIST / Fashion
/// surrogates — see DESIGN.md §1).
enum class ImageFamily { kEmnistDigits, kMnist, kFashion };

ImageFamily family_from_string(const std::string& name);
std::string family_name(ImageFamily family);

/// Build a federated dataset with the paper's §6.1 protocol:
/// one-class-per-edge partition of an image-like task.
data::FederatedDataset make_one_class_fed(ImageFamily family, index_t dim,
                                          index_t num_edges,
                                          index_t clients_per_edge,
                                          index_t num_samples, seed_t seed);

/// Paper's §6.2 protocol: s%-similarity partition.
data::FederatedDataset make_similarity_fed(ImageFamily family, index_t dim,
                                           index_t num_edges,
                                           index_t clients_per_edge,
                                           scalar_t similarity,
                                           index_t num_samples, seed_t seed);

/// One labelled training run.
struct MethodRun {
  std::string name;
  algo::TrainResult result;
};

/// Run the paper's five methods (FedAvg, Stochastic-AFL, DRFA, HierFAVG,
/// HierMinimax) with the §6 conventions: tau1 from `opts` for all
/// multi-step methods, tau2 from `opts` for the hierarchical ones, AFL
/// single-step; two-layer methods sample opts.sampled_edges *
/// clients_per_edge clients so every method trains the same device count
/// per round.
std::vector<MethodRun> run_five_methods(const nn::Model& model,
                                        const data::FederatedDataset& fed,
                                        const sim::HierTopology& topo,
                                        const algo::TrainOptions& opts);

/// TSV training-curve dump (one block per method) with a header line.
void print_curves(std::ostream& os, const std::vector<MethodRun>& runs);

/// The paper's headline metric: communication rounds to reach a target
/// worst-edge accuracy, plus % overhead reduction of HierMinimax vs each
/// baseline.
void print_threshold_summary(std::ostream& os,
                             const std::vector<MethodRun>& runs,
                             scalar_t target_worst);

/// Final-round Table-2-style rows: method, average, worst, variance.
void print_final_summary(std::ostream& os, const std::string& dataset,
                         const std::vector<MethodRun>& runs);

/// Seed-averaged statistics for one method.
struct SeedAveraged {
  std::string name;
  metrics::AccuracySummary tail;    // tail summaries averaged over seeds
  double mean_payloads = 0;         // mean WAN payloads to target, over the
                                    // seeds that reached it
  index_t reached = 0;              // how many seeds reached the target
  index_t seeds = 0;
  double mean_seconds = 0;          // estimated wall-clock of the full run
                                    // under the default sim::NetworkProfile
};

/// Average tail summaries and threshold payloads over repeated runs
/// (per_seed[s] is the five-method result for seed s).
std::vector<SeedAveraged> average_over_seeds(
    const std::vector<std::vector<MethodRun>>& per_seed,
    scalar_t target_worst);

/// Print the seed-averaged threshold + final tables.
void print_seed_averaged(std::ostream& os,
                         const std::vector<SeedAveraged>& rows,
                         scalar_t target_worst);

}  // namespace hm::bench
