// Table 2 reproduction: HierFAVG vs HierMinimax on five datasets —
// average accuracy, worst(-10%) accuracy, and across-edge accuracy
// variance. Logistic regression everywhere, as in the paper's Table 2.
//
// Datasets (surrogates per DESIGN.md §1):
//   EMNIST-Digits-like, Fashion-MNIST-like, MNIST-like: 10 edges x 3
//     clients, one class per edge.
//   Adult-like: 2 edges (Doctorate / non-Doctorate groups) x 3 clients.
//   Li-Synthetic(1,1): 100 edge areas (one device each), worst 10%
//     metric as in [19].
//
// Usage: bench_table2_fairness [--rounds K] [--dim D] [--seed S]
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"
#include "metrics/evaluation.hpp"

namespace {

using namespace hm;

struct Row {
  std::string dataset;
  std::string method;
  scalar_t average;
  scalar_t worst;
  scalar_t variance;
};

void append_rows(std::vector<Row>& rows, const std::string& dataset,
                 const algo::TrainResult& favg,
                 const algo::TrainResult& minimax, scalar_t worst_fraction) {
  // Tail-average the last evaluations to suppress snapshot noise.
  constexpr index_t kTailWindow = 10;
  auto make_row = [&](const std::string& method,
                      const algo::TrainResult& r) {
    const auto& records = r.history.records();
    const auto n = static_cast<index_t>(records.size());
    const index_t window = std::min(kTailWindow, n);
    Row row;
    row.dataset = dataset;
    row.method = method;
    row.average = 0;
    row.worst = 0;
    row.variance = 0;
    for (index_t i = n - window; i < n; ++i) {
      const auto& rec = records[static_cast<std::size_t>(i)];
      row.average += rec.summary.average;
      row.worst += worst_fraction >= 1.0
                       ? rec.summary.worst
                       : metrics::worst_fraction_accuracy(rec.edge_acc,
                                                          worst_fraction);
      row.variance += rec.summary.variance_pct2;
    }
    row.average /= static_cast<scalar_t>(window);
    row.worst /= static_cast<scalar_t>(window);
    row.variance /= static_cast<scalar_t>(window);
    return row;
  };
  rows.push_back(make_row("HierFAVG", favg));
  rows.push_back(make_row("HierMinimax", minimax));
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const index_t rounds = flags.get_int("rounds", 300);
  const index_t dim = flags.get_int("dim", 64);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 3));

  algo::TrainOptions opts;
  opts.rounds = rounds;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 4;
  opts.eta_w = flags.get_double("eta-w", 0.05);
  opts.eta_p = flags.get_double("eta-p", 0.002);
  opts.sampled_edges = 5;
  opts.eval_every = std::max<index_t>(1, rounds / 20);
  opts.seed = seed;

  std::vector<Row> rows;
  Stopwatch sw;

  // --- Three image-like datasets, one class per edge.
  for (const auto family :
       {bench::ImageFamily::kEmnistDigits, bench::ImageFamily::kFashion,
        bench::ImageFamily::kMnist}) {
    const auto fed = bench::make_one_class_fed(family, dim, 10, 3,
                                               /*num_samples=*/8000, seed);
    const sim::HierTopology topo(10, 3);
    const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
    const auto favg = algo::train_hierfavg(model, fed, topo, opts);
    const auto mm = algo::train_hierminimax(model, fed, topo, opts);
    append_rows(rows, bench::family_name(family), favg, mm, 1.0);
    log::info() << "[table2] " << bench::family_name(family) << " done at "
                << sw.seconds() << " s";
  }

  // --- Adult-like: 2 edges (groups), eta_p reduced as in the paper.
  {
    data::AdultLikeSpec spec;
    spec.seed = seed + 10;
    const auto groups = data::make_adult_like(spec);
    rng::Xoshiro256 gen(seed + 11);
    const auto fed = data::partition_by_group(groups, 3, 0.25, gen);
    const sim::HierTopology topo(2, 3);
    const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
    algo::TrainOptions adult_opts = opts;
    adult_opts.sampled_edges = 0;  // both groups participate
    adult_opts.eta_p = opts.eta_p;
    const auto favg = algo::train_hierfavg(model, fed, topo, adult_opts);
    const auto mm = algo::train_hierminimax(model, fed, topo, adult_opts);
    append_rows(rows, "Adult-like", favg, mm, 1.0);
    log::info() << "[table2] Adult-like done at " << sw.seconds() << " s";
  }

  // --- Li-Synthetic(1,1): 100 edge areas, worst-10% metric.
  {
    data::LiSyntheticSpec spec;
    spec.num_devices = flags.get_int("synthetic-devices", 100);
    spec.seed = seed + 20;
    const auto devices = data::make_li_synthetic(spec);
    rng::Xoshiro256 gen(seed + 21);
    const auto fed = data::partition_by_group(devices, 1, 0.25, gen);
    const sim::HierTopology topo(static_cast<index_t>(devices.size()), 1);
    const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
    algo::TrainOptions li_opts = opts;
    li_opts.sampled_edges = 10;
    li_opts.eta_w = flags.get_double("synthetic-eta-w", 0.02);
    li_opts.eta_p = flags.get_double("synthetic-eta-p", 0.002);
    const auto favg = algo::train_hierfavg(model, fed, topo, li_opts);
    const auto mm = algo::train_hierminimax(model, fed, topo, li_opts);
    append_rows(rows, "Synthetic(1,1)", favg, mm, 0.10);
    log::info() << "[table2] Synthetic done at " << sw.seconds() << " s";
  }

  std::cout << "# Table 2: comparison of HierFAVG and HierMinimax\n"
            << "# (worst = worst edge accuracy; worst-10% for Synthetic)\n"
            << "dataset\tmethod\taverage\tworst\tvariance_pct2\n"
            << std::fixed << std::setprecision(4);
  for (const auto& row : rows) {
    std::cout << row.dataset << '\t' << row.method << '\t' << row.average
              << '\t' << row.worst << '\t' << row.variance << '\n';
  }
  log::info() << "[bench_table2_fairness] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
