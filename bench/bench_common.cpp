#include "bench_common.hpp"

#include <iomanip>

#include "core/check.hpp"
#include "sim/latency.hpp"

namespace hm::bench {

ImageFamily family_from_string(const std::string& name) {
  if (name == "emnist") return ImageFamily::kEmnistDigits;
  if (name == "mnist") return ImageFamily::kMnist;
  if (name == "fashion") return ImageFamily::kFashion;
  HM_CHECK_MSG(false, "unknown dataset family '" << name << "'");
  return ImageFamily::kEmnistDigits;
}

std::string family_name(ImageFamily family) {
  switch (family) {
    case ImageFamily::kEmnistDigits: return "EMNIST-Digits-like";
    case ImageFamily::kMnist: return "MNIST-like";
    case ImageFamily::kFashion: return "Fashion-MNIST-like";
  }
  return "?";
}

namespace {

data::GaussianSpec family_spec(ImageFamily family, index_t dim,
                               index_t num_samples, seed_t seed) {
  data::GaussianSpec spec;
  switch (family) {
    case ImageFamily::kEmnistDigits:
      spec = data::emnist_digits_like_spec(num_samples, seed);
      break;
    case ImageFamily::kMnist:
      spec = data::mnist_like_spec(num_samples, seed);
      break;
    case ImageFamily::kFashion:
      spec = data::fashion_like_spec(num_samples, seed);
      break;
  }
  spec.dim = dim;
  return spec;
}

}  // namespace

data::FederatedDataset make_one_class_fed(ImageFamily family, index_t dim,
                                          index_t num_edges,
                                          index_t clients_per_edge,
                                          index_t num_samples, seed_t seed) {
  const auto all = data::make_gaussian_classes(
      family_spec(family, dim, num_samples, seed));
  rng::Xoshiro256 gen(seed + 1000);
  const auto tt = data::split_train_test(all, 0.2, gen);
  return data::partition_one_class_per_edge(tt, num_edges, clients_per_edge,
                                            gen);
}

data::FederatedDataset make_similarity_fed(ImageFamily family, index_t dim,
                                           index_t num_edges,
                                           index_t clients_per_edge,
                                           scalar_t similarity,
                                           index_t num_samples, seed_t seed) {
  const auto all = data::make_gaussian_classes(
      family_spec(family, dim, num_samples, seed));
  rng::Xoshiro256 gen(seed + 2000);
  const auto tt = data::split_train_test(all, 0.2, gen);
  return data::partition_similarity(tt, num_edges, clients_per_edge,
                                    similarity, gen);
}

std::vector<MethodRun> run_five_methods(const nn::Model& model,
                                        const data::FederatedDataset& fed,
                                        const sim::HierTopology& topo,
                                        const algo::TrainOptions& opts) {
  // Two-layer methods sample the same number of devices per round as the
  // hierarchical ones (m = m_E * N_0).
  algo::TrainOptions flat = opts;
  flat.tau2 = 1;
  const index_t m_e =
      opts.sampled_edges > 0 ? opts.sampled_edges : topo.num_edges();
  flat.sampled_clients = m_e * topo.clients_per_edge();

  std::vector<MethodRun> runs;
  runs.push_back({"FedAvg", algo::train_fedavg(model, fed, flat)});
  runs.push_back(
      {"Stochastic-AFL", algo::train_stochastic_afl(model, fed, flat)});
  runs.push_back({"DRFA", algo::train_drfa(model, fed, flat)});
  runs.push_back({"HierFAVG", algo::train_hierfavg(model, fed, topo, opts)});
  runs.push_back(
      {"HierMinimax", algo::train_hierminimax(model, fed, topo, opts)});
  return runs;
}

void print_curves(std::ostream& os, const std::vector<MethodRun>& runs) {
  os << "method\tround\tcomm_rounds\tclient_edge_rounds\tedge_cloud_rounds"
        "\tedge_cloud_models\tavg_acc\tworst_acc\tvariance_pct2\tloss\n";
  for (const auto& run : runs) {
    run.result.history.write_tsv(os, run.name);
  }
}

void print_threshold_summary(std::ostream& os,
                             const std::vector<MethodRun>& runs,
                             scalar_t target_worst) {
  os << "\n# wide-area communication overhead (edge-cloud model payloads)"
        " to reach sustained worst accuracy >= "
     << target_worst << "  (trailing mean of 3 evaluations)\n";
  std::optional<std::uint64_t> ours;
  for (const auto& run : runs) {
    if (run.name == "HierMinimax") {
      ours = run.result.history.wan_payloads_to_sustained_worst(
          target_worst);
    }
  }
  os << "method\twan_payloads_to_target\treduction_by_hierminimax\n";
  for (const auto& run : runs) {
    const auto rounds =
        run.result.history.wan_payloads_to_sustained_worst(target_worst);
    os << run.name << '\t';
    if (rounds) {
      os << *rounds;
    } else {
      os << "not_reached";
    }
    os << '\t';
    if (run.name == "HierMinimax") {
      os << "-";
    } else if (ours && rounds && *rounds > 0) {
      const double reduction =
          100.0 * (1.0 - static_cast<double>(*ours) /
                             static_cast<double>(*rounds));
      os << std::fixed << std::setprecision(1) << reduction << "%"
         << std::defaultfloat << std::setprecision(6);
    } else {
      os << "n/a";
    }
    os << '\n';
  }
}

void print_final_summary(std::ostream& os, const std::string& dataset,
                         const std::vector<MethodRun>& runs) {
  // Tail-average the last evaluations: single-snapshot summaries are
  // dominated by SGD noise on these small simulated tasks.
  for (const auto& run : runs) {
    const auto s = run.result.history.tail_summary(/*window=*/10);
    os << dataset << '\t' << run.name << '\t' << std::fixed
       << std::setprecision(4) << s.average << '\t' << s.worst << '\t'
       << std::setprecision(4) << s.variance_pct2 << std::defaultfloat
       << std::setprecision(6) << '\n';
  }
}

std::vector<SeedAveraged> average_over_seeds(
    const std::vector<std::vector<MethodRun>>& per_seed,
    scalar_t target_worst) {
  HM_CHECK(!per_seed.empty());
  const std::size_t num_methods = per_seed.front().size();
  std::vector<SeedAveraged> rows(num_methods);
  for (std::size_t m = 0; m < num_methods; ++m) {
    auto& row = rows[m];
    row.name = per_seed.front()[m].name;
    row.seeds = static_cast<index_t>(per_seed.size());
    for (const auto& runs : per_seed) {
      HM_CHECK(runs[m].name == row.name);
      const auto tail = runs[m].result.history.tail_summary(10);
      row.tail.average += tail.average;
      row.tail.worst += tail.worst;
      row.tail.best += tail.best;
      row.tail.variance_pct2 += tail.variance_pct2;
      const auto payloads =
          runs[m].result.history.wan_payloads_to_sustained_worst(
              target_worst);
      if (payloads) {
        row.mean_payloads += static_cast<double>(*payloads);
        ++row.reached;
      }
      row.mean_seconds += sim::NetworkProfile{}.seconds(
          runs[m].result.comm, /*concurrency=*/8);
    }
    const auto inv = scalar_t{1} / static_cast<scalar_t>(row.seeds);
    row.tail.average *= inv;
    row.tail.worst *= inv;
    row.tail.best *= inv;
    row.tail.variance_pct2 *= inv;
    if (row.reached > 0) {
      row.mean_payloads /= static_cast<double>(row.reached);
    }
    row.mean_seconds /= static_cast<double>(row.seeds);
  }
  return rows;
}

void print_seed_averaged(std::ostream& os,
                         const std::vector<SeedAveraged>& rows,
                         scalar_t target_worst) {
  const SeedAveraged* ours = nullptr;
  for (const auto& row : rows) {
    if (row.name == "HierMinimax") ours = &row;
  }
  os << "\n# seed-averaged results (" << rows.front().seeds << " seeds); "
     << "payloads = mean WAN payloads to sustained worst accuracy >= "
     << target_worst << "\n"
     << "method\tavg\tworst\tvariance_pct2\tpayloads_to_target\treached\t"
        "reduction_by_hierminimax\test_wallclock_s\n";
  for (const auto& row : rows) {
    os << row.name << '\t' << std::fixed << std::setprecision(4)
       << row.tail.average << '\t' << row.tail.worst << '\t'
       << std::setprecision(2) << row.tail.variance_pct2 << '\t';
    if (row.reached > 0) {
      os << std::setprecision(0) << row.mean_payloads;
    } else {
      os << "not_reached";
    }
    os << '\t' << row.reached << '/' << row.seeds << '\t';
    if (row.name == "HierMinimax") {
      os << "-";
    } else if (ours != nullptr && ours->reached > 0 && row.reached > 0 &&
               row.mean_payloads > 0) {
      os << std::setprecision(1)
         << 100.0 * (1.0 - ours->mean_payloads / row.mean_payloads) << "%";
    } else {
      os << "n/a";
    }
    os << '\t' << std::setprecision(1) << row.mean_seconds;
    os << std::defaultfloat << std::setprecision(6) << '\n';
  }
}

}  // namespace hm::bench
