// Figure 4 reproduction: average and worst test accuracies vs
// communication rounds with non-convex loss (two-hidden-layer ReLU MLP,
// Fashion-MNIST-like task, 50% similarity partition).
//
// Paper protocol (§6.2): N_E = 10, N_0 = 3, m_E = 2, tau1 = tau2 = 2,
// s = 50%, batch size 8, eta_w = 0.001, eta_p = 0.0001, hidden layers
// 300/100. Defaults shrink the input dimension and hidden widths so the
// run finishes in around a minute; --paper-scale restores the paper's
// architecture.
//
// Usage: bench_fig4_nonconvex [--rounds K] [--dim D] [--similarity 0.5]
//                             [--target 0.55] [--num-seeds N] [--paper-scale]
//                             [--batched]
//
// --batched runs the fused multi-client engine (bit-identical to the
// per-client path, typically >=2x faster per round; see DESIGN.md §11).
#include <iostream>

#include "bench_common.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace {

using namespace hm;

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bool paper_scale = flags.get_bool("paper-scale", false);
  const index_t dim = flags.get_int("dim", paper_scale ? 784 : 32);
  const index_t rounds = flags.get_int("rounds", paper_scale ? 6000 : 1200);
  const index_t samples = flags.get_int("samples", paper_scale ? 60000 : 6000);
  const scalar_t similarity = flags.get_double("similarity", 0.5);
  const scalar_t target = flags.get_double("target", 0.55);
  const seed_t seed = static_cast<seed_t>(flags.get_int("seed", 2));

  const index_t num_edges = 10, clients_per_edge = 3;
  const auto fed = bench::make_similarity_fed(bench::ImageFamily::kFashion,
                                              dim, num_edges,
                                              clients_per_edge, similarity,
                                              samples, seed);
  const sim::HierTopology topo(num_edges, clients_per_edge);
  const nn::Mlp model = paper_scale
                            ? nn::make_paper_mlp(dim, fed.num_classes())
                            : nn::Mlp({dim, 48, 24, fed.num_classes()});

  algo::TrainOptions opts;
  opts.rounds = rounds;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 8;
  opts.eta_w = flags.get_double("eta-w", paper_scale ? 0.001 : 0.03);
  opts.eta_p = flags.get_double("eta-p", paper_scale ? 0.0001 : 0.001);
  opts.sampled_edges = flags.get_int("m-e", 2);
  opts.eval_every = std::max<index_t>(1, rounds / 60);
  opts.seed = seed;
  opts.batched = flags.get_bool("batched", false);

  std::cout << "# Figure 4: non-convex loss (ReLU MLP), "
            << bench::family_name(bench::ImageFamily::kFashion) << ", s="
            << similarity * 100 << "% similarity\n"
            << "# N_E=10 N_0=3 m_E=2 tau1=tau2=2 dim=" << dim
            << " params=" << model.num_params() << " rounds=" << rounds
            << "\n";

  Stopwatch sw;
  const index_t num_seeds = flags.get_int("num-seeds", 3);
  std::vector<std::vector<bench::MethodRun>> per_seed;
  for (index_t s = 0; s < num_seeds; ++s) {
    auto seed_opts = opts;
    seed_opts.seed = seed + static_cast<seed_t>(s);
    per_seed.push_back(bench::run_five_methods(model, fed, topo, seed_opts));
    log::info() << "[seed " << seed_opts.seed << "] done at "
                << sw.seconds() << " s";
  }
  const auto& runs = per_seed.front();
  bench::print_curves(std::cout, runs);
  bench::print_threshold_summary(std::cout, runs, target);
  bench::print_seed_averaged(
      std::cout, bench::average_over_seeds(per_seed, target), target);
  std::cout << "\n# final summary (dataset\tmethod\tavg\tworst\tvariance)\n";
  bench::print_final_summary(std::cout, "Fashion-MNIST-like", runs);
  log::info() << "[bench_fig4_nonconvex] done in " << sw.seconds() << " s";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    hm::log::error() << "error: " << e.what();
    return 1;
  }
}
