// Crash-safe snapshot/resume suite:
//   (a) container round-trip and an adversarial decode table (empty file,
//       wrong magic, unsupported version, truncation, flipped bits, CRC
//       damage, trailing garbage, hostile section headers),
//   (b) the durable store: rotation/pruning, torn-write injection at
//       arbitrary byte offsets in both crash modes (temp left behind,
//       torn file renamed into place) — the directory must never become
//       unloadable and always falls back to the previous last-good file,
//   (c) the kill-and-resume matrix: every trainer x several crash points
//       x {fault-free, active FaultPlan}, asserting the resumed run's
//       final model, weights, comm counters, and history TSV are
//       byte-identical to the uninterrupted run,
//   (d) the CI smoke target (SnapshotCrashReplay): HierMinimax killed
//       mid-snapshot-write, resumed past the torn file, bit-compared.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "algo/qffl.hpp"
#include "core/check.hpp"
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/multi_topology.hpp"
#include "sim/topology.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

namespace fs = std::filesystem;

// Fingerprinting, trajectory comparison, and fixtures live in
// test_util.hpp, shared with the fault and adversarial-scenario matrices.
using testing_util::bits;
using testing_util::expect_same_output;
using testing_util::heterogeneous_task;
using testing_util::output_of;
using testing_util::RunOutput;

// ---------------------------------------------------------------------
// Filesystem scaffolding. Each test gets its own directory under /tmp.

std::string fresh_dir(const std::string& name) {
  const std::string dir = "/tmp/hm_snapshot_test/" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  const auto n = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(n);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(n));
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// RAII hook installation so a failing assertion cannot leak an armed
/// hook into later tests.
class ScopedWriteFault {
 public:
  explicit ScopedWriteFault(io::WriteFaultHook hook) : hook_(hook) {
    io::set_write_fault_hook(&hook_);
  }
  ~ScopedWriteFault() { io::set_write_fault_hook(nullptr); }

 private:
  io::WriteFaultHook hook_;
};

io::Snapshot sample_snapshot() {
  io::Snapshot s;
  s.put_u64(0x31474154, 42);  // "TAG1"
  s.put_f64_vec(0x32474154, {1.5, -0.0, 2e-308, 3.14159});
  s.put_f64_vec_list(0x33474154, {{1.0, 2.0}, {}, {7.0}});
  s.put_i64_vec(0x34474154, {-3, 0, 1ll << 40});
  s.put_bytes(0x35474154, {0xde, 0xad, 0xbe, 0xef});
  return s;
}

// ---------------------------------------------------------------------
// (a) Container round-trip and typed-getter contracts.

TEST(SnapshotContainer, RoundTripsEverySectionKind) {
  const io::Snapshot s = sample_snapshot();
  const std::vector<std::uint8_t> bytes = s.serialize();
  const io::Snapshot r = io::Snapshot::parse(bytes.data(), bytes.size());

  EXPECT_EQ(r.section_count(), 5u);
  EXPECT_EQ(r.get_u64(0x31474154), 42u);
  const auto v = r.get_f64_vec(0x32474154);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(bits(v[1]), bits(-0.0));  // bit pattern, not value, survives
  EXPECT_EQ(bits(v[2]), bits(2e-308));
  EXPECT_EQ(r.get_f64_vec_list(0x33474154),
            (std::vector<std::vector<scalar_t>>{{1.0, 2.0}, {}, {7.0}}));
  EXPECT_EQ(r.get_i64_vec(0x34474154),
            (std::vector<std::int64_t>{-3, 0, 1ll << 40}));
  EXPECT_EQ(r.get_bytes(0x35474154),
            (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(SnapshotContainer, GetterContractViolationsThrow) {
  const io::Snapshot s = sample_snapshot();
  EXPECT_FALSE(s.has(0x99999999));
  EXPECT_THROW(s.get_u64(0x99999999), CheckError);         // missing tag
  EXPECT_THROW(s.get_u64(0x32474154), CheckError);         // kind mismatch
  EXPECT_THROW(s.get_f64_vec(0x31474154), CheckError);     // kind mismatch
  io::Snapshot dup;
  dup.put_u64(7, 1);
  EXPECT_THROW(dup.put_u64(7, 2), CheckError);             // duplicate tag
}

// ---------------------------------------------------------------------
// Adversarial decode table: every corruption is rejected with CheckError,
// never a crash or a silently-wrong snapshot. The ASan+UBSan CI legs run
// this same binary, so an out-of-bounds read in the parser fails loudly.

TEST(SnapshotDecode, AdversarialCorruptionTable) {
  const std::vector<std::uint8_t> good = sample_snapshot().serialize();

  struct Case {
    std::string name;
    std::function<std::vector<std::uint8_t>()> make;
  };
  const std::vector<Case> cases = {
      {"empty file", [&] { return std::vector<std::uint8_t>{}; }},
      {"short header",
       [&] {
         return std::vector<std::uint8_t>(good.begin(), good.begin() + 10);
       }},
      {"wrong magic",
       [&] {
         auto b = good;
         b[0] ^= 0xff;
         return b;
       }},
      {"unsupported version",
       [&] {
         auto b = good;
         b[4] = 2;  // version field; CRC check is downstream of version
         return b;
       }},
      {"nonzero reserved",
       [&] {
         auto b = good;
         b[12] = 1;
         return b;
       }},
      {"truncated payload",
       [&] {
         return std::vector<std::uint8_t>(good.begin(), good.end() - 9);
       }},
      {"truncated to header only",
       [&] {
         return std::vector<std::uint8_t>(good.begin(), good.begin() + 28);
       }},
      {"trailing garbage",
       [&] {
         auto b = good;
         b.insert(b.end(), {1, 2, 3});
         return b;
       }},
      {"flipped payload bit",
       [&] {
         auto b = good;
         b[b.size() / 2] ^= 0x01;
         return b;
       }},
      {"flipped checksum byte",
       [&] {
         auto b = good;
         b.back() ^= 0xff;
         return b;
       }},
  };
  for (const auto& c : cases) {
    const auto bytes = c.make();
    EXPECT_THROW(io::Snapshot::parse(bytes.data(), bytes.size()), CheckError)
        << c.name;
  }
}

/// Hostile section headers need a hand-rolled file (serialize() cannot
/// produce them): unknown kinds, overrunning lengths, duplicate tags, and
/// a vector section whose declared element count contradicts its size.
TEST(SnapshotDecode, HostileSectionHeadersAreRejected) {
  const auto craft = [](std::uint32_t kind, std::uint64_t declared_len,
                        const std::vector<std::uint8_t>& payload,
                        int copies) {
    io::ByteWriter body;
    for (int i = 0; i < copies; ++i) {
      body.put_u32(0x31474154);
      body.put_u32(kind);
      body.put_u64(declared_len);
      body.put_bytes(payload.data(), payload.size());
    }
    io::ByteWriter out;
    const char magic[4] = {'H', 'M', 'S', 'N'};
    out.put_bytes(magic, 4);
    out.put_u32(1);  // version
    out.put_u32(static_cast<std::uint32_t>(copies));
    out.put_u32(0);  // reserved
    out.put_u64(body.bytes().size());
    out.put_bytes(body.bytes().data(), body.bytes().size());
    const std::uint32_t crc =
        io::crc32(out.bytes().data(), out.bytes().size());
    out.put_u32(crc);
    return out.take();
  };

  {  // unknown kind 99 (CRC valid, structure hostile)
    const auto b = craft(99, 8, std::vector<std::uint8_t>(8, 0), 1);
    EXPECT_THROW(io::Snapshot::parse(b.data(), b.size()), CheckError);
  }
  {  // section declares more bytes than the payload holds
    const auto b = craft(io::Snapshot::kKindBytes, 1u << 20,
                         std::vector<std::uint8_t>(8, 0), 1);
    EXPECT_THROW(io::Snapshot::parse(b.data(), b.size()), CheckError);
  }
  {  // duplicate tags
    const auto b =
        craft(io::Snapshot::kKindBytes, 8, std::vector<std::uint8_t>(8, 0), 2);
    EXPECT_THROW(io::Snapshot::parse(b.data(), b.size()), CheckError);
  }
  {  // f64 vector claiming 2^56 elements in an 8-byte section: the parse
     // succeeds (bytes are opaque) but the typed getter must refuse to
     // allocate.
    io::ByteWriter lie;
    lie.put_u64(1ull << 56);
    const auto b = craft(io::Snapshot::kKindF64Vec, 8, lie.bytes(), 1);
    const io::Snapshot s = io::Snapshot::parse(b.data(), b.size());
    EXPECT_THROW(s.get_f64_vec(0x31474154), CheckError);
  }
}

/// Checkpoint twin of the huge-length case: a corrupted HMCK length field
/// must be rejected against the real file size before any allocation.
TEST(SnapshotDecode, CheckpointHugeLengthFieldIsRejectedBeforeAllocating) {
  const std::string path = "/tmp/hm_snapshot_test_huge_len.bin";
  io::save_vector(path, {1.0, 2.0, 3.0});
  auto bytes = read_file(path);
  // Length lives at offset 8 (after 4B magic + 4B version), host-endian
  // u64 as written by save_vector.
  const std::uint64_t huge = 1ull << 60;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  write_file(path, bytes);
  EXPECT_THROW(io::load_vector(path), CheckError);
}

// ---------------------------------------------------------------------
// (b) The durable store: naming, rotation, fallback, torn writes.

TEST(SnapshotStore, SaveLoadRoundTripAndRotation) {
  const std::string dir = fresh_dir("rotation");
  EXPECT_FALSE(io::load_latest_snapshot(dir).has_value());  // missing dir

  io::save_snapshot(dir, /*keep=*/2, /*round=*/2, sample_snapshot());
  io::save_snapshot(dir, 2, 4, sample_snapshot());
  io::save_snapshot(dir, 2, 6, sample_snapshot());

  // Pruned to the 2 newest.
  EXPECT_FALSE(fs::exists(dir + "/snapshot.00000002"));
  EXPECT_TRUE(fs::exists(dir + "/snapshot.00000004"));
  EXPECT_TRUE(fs::exists(dir + "/snapshot.00000006"));

  const auto loaded = io::load_latest_snapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->round, 6);
  EXPECT_EQ(loaded->path, dir + "/snapshot.00000006");
  EXPECT_TRUE(loaded->rejected.empty());
  EXPECT_EQ(loaded->snapshot.get_u64(0x31474154), 42u);
}

TEST(SnapshotStore, ForeignFilesAreIgnored) {
  const std::string dir = fresh_dir("foreign");
  fs::create_directories(dir);
  write_file(dir + "/notes.txt", {'h', 'i'});
  write_file(dir + "/snapshot.abc", {'x'});       // non-numeric round
  write_file(dir + "/snapshot.00000009.tmp", {'x'});  // orphaned temp
  EXPECT_FALSE(io::load_latest_snapshot(dir).has_value());

  io::save_snapshot(dir, 2, 3, sample_snapshot());
  const auto loaded = io::load_latest_snapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->round, 3);
  // The successful save swept the orphaned temp file.
  EXPECT_FALSE(fs::exists(dir + "/snapshot.00000009.tmp"));
}

/// A corrupt newest file must not mask the older good one.
TEST(SnapshotStore, CorruptNewestFallsBackToLastGood) {
  const std::string dir = fresh_dir("fallback");
  io::save_snapshot(dir, 2, 2, sample_snapshot());
  io::save_snapshot(dir, 2, 4, sample_snapshot());
  auto bytes = read_file(dir + "/snapshot.00000004");
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(dir + "/snapshot.00000004", bytes);

  const auto loaded = io::load_latest_snapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->round, 2);
  ASSERT_EQ(loaded->rejected.size(), 1u);
  EXPECT_NE(loaded->rejected[0].find("snapshot.00000004"), std::string::npos);
}

/// The nullopt miss report must separate "nothing written yet" (a benign
/// fresh start) from "candidates exist, all corrupt or torn" (a damaged
/// store). Both wordings are pinned: resume diagnostics quote them.
TEST(SnapshotStore, MissReportSeparatesFreshStartFromDamagedStore) {
  const std::string dir = fresh_dir("miss_report");
  const std::string fresh_msg =
      "no snapshot data yet under '" + dir + "' (fresh start)";

  // Missing directory: benign.
  io::LoadMiss miss;
  EXPECT_FALSE(io::load_latest_snapshot(dir, &miss).has_value());
  EXPECT_FALSE(miss.hard);
  EXPECT_EQ(miss.candidates, 0);
  EXPECT_EQ(miss.message, fresh_msg);

  // Existing but empty directory: still benign.
  fs::create_directories(dir);
  miss = {};
  EXPECT_FALSE(io::load_latest_snapshot(dir, &miss).has_value());
  EXPECT_FALSE(miss.hard);
  EXPECT_EQ(miss.message, fresh_msg);

  // Every candidate corrupt: hard miss, with the candidate count.
  io::save_snapshot(dir, /*keep=*/2, /*round=*/1, sample_snapshot());
  io::save_snapshot(dir, 2, 2, sample_snapshot());
  for (const char* name : {"/snapshot.00000001", "/snapshot.00000002"}) {
    auto bytes = read_file(dir + name);
    bytes[bytes.size() / 2] ^= 0x10;
    write_file(dir + name, bytes);
  }
  miss = {};
  EXPECT_FALSE(io::load_latest_snapshot(dir, &miss).has_value());
  EXPECT_TRUE(miss.hard);
  EXPECT_EQ(miss.candidates, 2);
  EXPECT_EQ(miss.message, "2 snapshot candidate(s) under '" + dir +
                              "', none valid (corrupt or torn)");
}

/// Kill the writer at every interesting byte offset, in both crash
/// modes. Invariant: the directory is never left unloadable — the
/// previous snapshot always survives and loads.
TEST(SnapshotStore, TornWriteAtAnyOffsetNeverLosesTheLastGood) {
  const io::Snapshot snap = sample_snapshot();
  const std::size_t total = snap.serialize().size();
  const std::vector<std::uint64_t> offsets = {
      0, 1, 3, 4, 15, 16, 23, 24, total / 2, total - 5, total - 1};

  for (const bool rename_anyway : {false, true}) {
    const std::string dir =
        fresh_dir(rename_anyway ? "torn_renamed" : "torn_tmp");
    io::save_snapshot(dir, /*keep=*/4, /*round=*/1, snap);

    for (const std::uint64_t off : offsets) {
      ASSERT_LT(off, total);
      {
        ScopedWriteFault fault({off, rename_anyway});
        EXPECT_THROW(io::save_snapshot(dir, 4, 2, snap),
                     io::SimulatedCrash)
            << "offset " << off;
      }
      const auto loaded = io::load_latest_snapshot(dir);
      ASSERT_TRUE(loaded.has_value())
          << "offset " << off << " rename=" << rename_anyway;
      EXPECT_EQ(loaded->round, 1) << "offset " << off;
      if (rename_anyway) {
        // The torn file made it into place; the loader must have seen,
        // rejected, and reported it.
        EXPECT_FALSE(loaded->rejected.empty()) << "offset " << off;
        std::error_code ec;
        fs::remove(dir + "/snapshot.00000002", ec);
      }
    }
    // With the hook gone the same write succeeds and becomes newest.
    io::save_snapshot(dir, 4, 2, snap);
    const auto loaded = io::load_latest_snapshot(dir);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->round, 2);
    EXPECT_TRUE(loaded->rejected.empty());
  }
}

// ---------------------------------------------------------------------
// (c) Kill-and-resume matrix. Every trainer is run straight (no
// snapshots), then killed after each crash point and resumed; the
// resumed output must be byte-identical — with and without an active
// FaultPlan (kReuseStale exercises the StaleStore sections).

constexpr index_t kEveryK = 2;

TrainOptions snap_opts(bool faulty) {
  TrainOptions o;
  o.rounds = 6;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  o.sampled_edges = 3;
  o.sampled_clients = 5;
  if (faulty) {
    o.fault.enabled = true;
    o.fault.client_dropout_prob = 0.25;
    o.fault.straggler_prob = 0.3;
    o.fault.edge_loss_prob = 0.2;
    o.on_fault = OnFault::kReuseStale;
  }
  return o;
}

MultiTrainOptions multi_snap_opts(bool faulty) {
  MultiTrainOptions o;
  o.rounds = 5;
  o.taus = {2, 2};
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  o.sampled_areas = 3;
  if (faulty) {
    o.fault.enabled = true;
    o.fault.client_dropout_prob = 0.25;
    o.fault.straggler_prob = 0.3;
    o.fault.edge_loss_prob = 0.2;
    o.on_fault = OnFault::kReuseStale;
  }
  return o;
}

/// One row of the matrix: run under (snapshot policy, resume dir, fault
/// arm) and reduce the result. `rounds` drives the crash-point set.
struct Trainer {
  std::string name;
  index_t rounds;
  std::function<RunOutput(const io::SnapshotPolicy&, const std::string&,
                          bool)>
      run;
};

const data::FederatedDataset& shared_task() {
  static const data::FederatedDataset fed = heterogeneous_task(4, 2);
  return fed;
}

template <typename Opts>
Opts with_snapshots(Opts o, const io::SnapshotPolicy& policy,
                    const std::string& resume) {
  o.snapshot = policy;
  o.resume_from = resume;
  return o;
}

std::vector<Trainer> trainers() {
  std::vector<Trainer> out;
  out.push_back(
      {"fedavg", 6,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_fedavg(
             model, fed, with_snapshots(snap_opts(faulty), sp, rf)));
       }});
  out.push_back(
      {"hierfavg", 6,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_hierfavg(
             model, fed, topo, with_snapshots(snap_opts(faulty), sp, rf)));
       }});
  out.push_back(
      {"drfa", 6,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_drfa(
             model, fed, with_snapshots(snap_opts(faulty), sp, rf)));
       }});
  out.push_back(
      {"stochastic_afl", 6,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_stochastic_afl(
             model, fed, with_snapshots(snap_opts(faulty), sp, rf)));
       }});
  out.push_back(
      {"qffl", 6,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         // q-FFL takes no FaultPlan; the faulty arm just checks resume
         // stays bit-exact with the extra (ignored) spec set.
         return output_of(train_qffl(
             model, fed, with_snapshots(snap_opts(faulty), sp, rf),
             /*q=*/2.0));
       }});
  out.push_back(
      {"hierminimax", 6,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_hierminimax(
             model, fed, topo, with_snapshots(snap_opts(faulty), sp, rf)));
       }});
  out.push_back(
      {"hierminimax_multi", 5,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const sim::MultiTopology topo(
             {fed.num_edges(), fed.clients_per_edge});
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_hierminimax_multi(
             model, fed, topo,
             with_snapshots(multi_snap_opts(faulty), sp, rf)));
       }});
  out.push_back(
      {"hierfavg_multi", 5,
       [](const io::SnapshotPolicy& sp, const std::string& rf, bool faulty) {
         const auto& fed = shared_task();
         const sim::MultiTopology topo(
             {fed.num_edges(), fed.clients_per_edge});
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return output_of(train_hierfavg_multi(
             model, fed, topo,
             with_snapshots(multi_snap_opts(faulty), sp, rf)));
       }});
  return out;
}

TEST(SnapshotResume, KillAndResumeMatrixIsBitIdentical) {
  for (const auto& t : trainers()) {
    for (const bool faulty : {false, true}) {
      const RunOutput straight = t.run({}, "", faulty);
      // Crash points: before any snapshot exists (fresh-start resume),
      // right at the first snapshot, one past it, and near the end.
      const std::vector<index_t> crash_points = {0, kEveryK - 1, kEveryK,
                                                 t.rounds - 2};
      for (const index_t crash : crash_points) {
        const std::string label = t.name + (faulty ? "+fault" : "") +
                                  " crash_after=" + std::to_string(crash);
        const std::string dir =
            fresh_dir(t.name + (faulty ? "_fault_" : "_clean_") +
                      std::to_string(crash));
        io::SnapshotPolicy policy;
        policy.every_k_rounds = kEveryK;
        policy.dir = dir;
        policy.crash_after_round = crash;
        EXPECT_THROW(t.run(policy, "", faulty), io::SimulatedCrash) << label;

        policy.crash_after_round = -1;
        const RunOutput resumed = t.run(policy, dir, faulty);
        expect_same_output(straight, resumed, label);
      }
    }
  }
}

/// Resuming against a damaged store (candidates exist, none valid) must
/// fail loudly with the pinned diagnostic, not silently retrain from
/// round 0 — that would discard the progress the caller asked to resume.
TEST(SnapshotResume, DamagedStoreFailsLoudlyOnResume) {
  const std::string dir = fresh_dir("damaged_resume");
  io::save_snapshot(dir, /*keep=*/2, /*round=*/1, sample_snapshot());
  auto bytes = read_file(dir + "/snapshot.00000001");
  bytes[bytes.size() / 2] ^= 0x20;
  write_file(dir + "/snapshot.00000001", bytes);

  const auto& fed = shared_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  try {
    train_fedavg(model, fed,
                 with_snapshots(snap_opts(false), io::SnapshotPolicy{}, dir));
    FAIL() << "resume against a corrupt-only store should throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("none valid (corrupt or torn)"),
              std::string::npos)
        << e.what();
  }
}

/// Writing snapshots must not perturb the trajectory, and resuming from
/// a *completed* run's directory re-runs nothing new but still produces
/// the identical final state from the last snapshot.
TEST(SnapshotResume, SnapshottingDoesNotPerturbTheRun) {
  const auto all = trainers();
  const auto it = std::find_if(all.begin(), all.end(), [](const Trainer& t) {
    return t.name == "hierminimax";
  });
  ASSERT_NE(it, all.end());
  const Trainer& t = *it;
  const RunOutput straight = t.run({}, "", /*faulty=*/false);
  const std::string dir = fresh_dir("no_perturb");
  io::SnapshotPolicy policy;
  policy.every_k_rounds = kEveryK;
  policy.dir = dir;
  const RunOutput with_snaps = t.run(policy, "", false);
  expect_same_output(straight, with_snaps, "snapshots enabled");
  // The final snapshot equals the final round, so a resume runs zero
  // additional rounds and must reproduce the same output again.
  const RunOutput resumed = t.run(policy, dir, false);
  expect_same_output(straight, resumed, "resume from completed run");
}

TEST(SnapshotResume, WrongAlgorithmOrSeedIsRejected) {
  const auto& fed = shared_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const std::string dir = fresh_dir("mismatch");
  io::SnapshotPolicy policy;
  policy.every_k_rounds = kEveryK;
  policy.dir = dir;
  train_fedavg(model, fed, with_snapshots(snap_opts(false), policy, ""));

  // Same directory, different trainer: the algo id embedded in the
  // snapshot must fail the resume loudly.
  EXPECT_THROW(
      train_drfa(model, fed, with_snapshots(snap_opts(false), policy, dir)),
      CheckError);

  // Same trainer, different seed: resume would not be bit-exact.
  auto reseeded = with_snapshots(snap_opts(false), policy, dir);
  reseeded.seed = 6;
  EXPECT_THROW(train_fedavg(model, fed, reseeded), CheckError);
}

// ---------------------------------------------------------------------
// (d) CI smoke (SnapshotCrashReplay.*): the end-to-end story under
// ASan+UBSan — a good snapshot, a kill *mid-snapshot-write* leaving a
// torn file in place, a resume that rejects the torn file, degrades to
// the last-good snapshot, and finishes bit-identically.

TEST(SnapshotCrashReplay, HierMinimaxKilledMidWriteResumesBitIdentically) {
  const auto& fed = shared_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  const RunOutput straight =
      output_of(train_hierminimax(model, fed, topo, snap_opts(false)));

  const std::string dir = fresh_dir("smoke");
  io::SnapshotPolicy policy;
  policy.every_k_rounds = kEveryK;
  policy.dir = dir;

  // Life 1: dies right after snapshot.2 lands.
  {
    auto opts = with_snapshots(snap_opts(false), policy, "");
    opts.snapshot.crash_after_round = kEveryK - 1;
    EXPECT_THROW(train_hierminimax(model, fed, topo, opts),
                 io::SimulatedCrash);
    EXPECT_TRUE(fs::exists(dir + "/snapshot.00000002"));
  }
  // Life 2: resumes from round 2, then the *write* of snapshot.4 is
  // killed mid-stream and the torn file is renamed into place — the
  // worst case, where the newest file on disk is garbage.
  {
    ScopedWriteFault fault({/*fail_after_bytes=*/37, /*rename_anyway=*/true});
    EXPECT_THROW(train_hierminimax(
                     model, fed, topo,
                     with_snapshots(snap_opts(false), policy, dir)),
                 io::SimulatedCrash);
    EXPECT_TRUE(fs::exists(dir + "/snapshot.00000004"));  // torn
  }
  // Life 3: the resume must reject the torn snapshot.4, fall back to
  // snapshot.2, and still finish byte-identical to the straight run.
  const RunOutput resumed = output_of(train_hierminimax(
      model, fed, topo, with_snapshots(snap_opts(false), policy, dir)));
  expect_same_output(straight, resumed, "killed mid-write");
}

}  // namespace
}  // namespace hm::algo
