// Tests for the centralized minimax solvers (GDA / EG / OGDA): the
// classical bilinear separation (GDA orbits, EG/OGDA converge), strongly
// convex-concave convergence, projections, and solving the pooled
// federated objective max over the simplex.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/centralized.hpp"
#include "algo/projection.hpp"
#include "metrics/evaluation.hpp"
#include "nn/softmax_regression.hpp"
#include "tensor/vecops.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

/// Bilinear game f(x, y) = x * y: saddle at the origin. grad_x = y,
/// grad_y = x.
SaddleOracle bilinear_oracle() {
  return [](ConstVecView x, ConstVecView y, VecView gx, VecView gy) {
    gx[0] = y[0];
    gy[0] = x[0];
  };
}

scalar_t norm2(const std::vector<scalar_t>& v) {
  return tensor::nrm2(v);
}

TEST(Centralized, GdaOrbitsOnBilinearGame) {
  // The canonical failure: simultaneous GDA spirals *outward* on x*y.
  SaddleOptions opts;
  opts.iterations = 500;
  opts.eta_x = opts.eta_y = 0.1;
  opts.average_iterates = false;
  const auto result =
      solve_gda(bilinear_oracle(), {1.0}, {1.0}, opts);
  const scalar_t radius =
      std::sqrt(result.x[0] * result.x[0] + result.y[0] * result.y[0]);
  EXPECT_GT(radius, std::sqrt(2.0));  // moved away from the start radius
}

TEST(Centralized, GdaAveragedIteratesConvergeOnBilinear) {
  // Ergodic averaging rescues GDA on bilinear games.
  SaddleOptions opts;
  opts.iterations = 20000;
  opts.eta_x = opts.eta_y = 0.01;
  const auto result = solve_gda(bilinear_oracle(), {1.0}, {1.0}, opts);
  EXPECT_LT(std::abs(result.x_avg[0]), 0.05);
  EXPECT_LT(std::abs(result.y_avg[0]), 0.05);
}

TEST(Centralized, ExtragradientConvergesOnBilinearGame) {
  SaddleOptions opts;
  opts.iterations = 2000;
  opts.eta_x = opts.eta_y = 0.1;
  opts.average_iterates = false;
  const auto result =
      solve_extragradient(bilinear_oracle(), {1.0}, {1.0}, opts);
  EXPECT_LT(norm2(result.x), 1e-3);
  EXPECT_LT(norm2(result.y), 1e-3);
}

TEST(Centralized, OgdaConvergesOnBilinearGame) {
  SaddleOptions opts;
  opts.iterations = 4000;
  opts.eta_x = opts.eta_y = 0.05;
  opts.average_iterates = false;
  const auto result = solve_ogda(bilinear_oracle(), {1.0}, {1.0}, opts);
  EXPECT_LT(norm2(result.x), 1e-2);
  EXPECT_LT(norm2(result.y), 1e-2);
}

/// Strongly convex-concave: f = 0.5||x - a||^2 - 0.5||y - b||^2 + x.y;
/// the saddle solves x + y = a ... unique stationary point.
SaddleOracle quadratic_oracle(scalar_t a, scalar_t b) {
  return [a, b](ConstVecView x, ConstVecView y, VecView gx, VecView gy) {
    gx[0] = (x[0] - a) + y[0];
    gy[0] = -(y[0] - b) + x[0];
  };
}

TEST(Centralized, AllThreeAgreeOnStronglyConvexConcave) {
  // Saddle point: grad_x = 0, grad_y = 0 =>
  //   x - a + y = 0;  -(y - b) + x = 0  => x = (a-b)/2, y = (a+b)/2.
  const scalar_t a = 3.0, b = 1.0;
  const scalar_t x_star = (a - b) / 2, y_star = (a + b) / 2;
  SaddleOptions opts;
  opts.iterations = 5000;
  opts.eta_x = opts.eta_y = 0.05;
  opts.average_iterates = false;
  for (const auto solver : {&solve_gda, &solve_extragradient, &solve_ogda}) {
    const auto result = (*solver)(quadratic_oracle(a, b), {0.0}, {0.0}, opts);
    EXPECT_NEAR(result.x[0], x_star, 1e-3);
    EXPECT_NEAR(result.y[0], y_star, 1e-3);
  }
}

TEST(Centralized, ProjectionKeepsIteratesFeasible) {
  SaddleOptions opts;
  opts.iterations = 200;
  opts.eta_x = opts.eta_y = 0.5;
  opts.average_iterates = false;
  opts.project_x = [](VecView v) { tensor::project_l2_ball(v, 0.3); };
  opts.project_y = [](VecView v) { project_simplex(v); };
  const auto result = solve_extragradient(
      [](ConstVecView, ConstVecView, VecView gx, VecView gy) {
        gx[0] = -1.0;  // push x outward
        gy[0] = 1.0;   // push y mass to coordinate 0
        gy[1] = -1.0;
      },
      {0.0}, {0.5, 0.5}, opts);
  EXPECT_LE(std::abs(result.x[0]), 0.3 + 1e-9);
  EXPECT_NEAR(result.y[0] + result.y[1], 1.0, 1e-9);
  EXPECT_GE(result.y[0], -1e-12);
}

TEST(Centralized, InvalidOptionsThrow) {
  SaddleOptions opts;
  opts.iterations = 0;
  EXPECT_THROW(solve_gda(bilinear_oracle(), {1.0}, {1.0}, opts), CheckError);
  opts.iterations = 10;
  opts.eta_x = 0;
  EXPECT_THROW(solve_ogda(bilinear_oracle(), {1.0}, {1.0}, opts), CheckError);
}

TEST(Centralized, SolvesPooledFederatedMinimax) {
  // Centralized GDA on the exact federated objective F(w, p): the
  // "all-data-on-one-machine" upper bound. The averaged iterates must
  // reach a low duality gap on a small convex task.
  const auto fed = testing_util::heterogeneous_task(4, 2, 909, 1600, 3.0);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  parallel::ThreadPool pool(4);
  auto ws = model.make_workspace();
  std::vector<scalar_t> grad_buf(
      static_cast<std::size_t>(model.num_params()));

  SaddleOracle oracle = [&](ConstVecView w, ConstVecView p, VecView gw,
                            VecView gp) {
    // grad_w = sum_e p_e grad f_e(w); grad_p = per-edge losses.
    tensor::set_zero(gw);
    for (index_t e = 0; e < fed.num_edges(); ++e) {
      scalar_t edge_loss_total = 0;
      index_t samples = 0;
      for (index_t i = 0; i < fed.clients_per_edge; ++i) {
        const auto& shard = fed.shard(e, i);
        const auto batch = nn::all_indices(shard.size());
        edge_loss_total +=
            model.loss_and_grad(w, shard, batch, grad_buf, *ws) *
            static_cast<scalar_t>(shard.size());
        tensor::axpy(p[static_cast<std::size_t>(e)] *
                         static_cast<scalar_t>(shard.size()),
                     grad_buf, gw);
        samples += shard.size();
      }
      gp[static_cast<std::size_t>(e)] =
          edge_loss_total / static_cast<scalar_t>(samples);
    }
  };
  // Note: the oracle above weights by sample counts within an edge; for
  // equal shard sizes this is proportional to the exact gradient, which
  // is all GDA needs (absorbed into eta).

  SaddleOptions opts;
  opts.iterations = 150;
  opts.eta_x = 0.002;  // absorbs the unnormalized gradient scale
  opts.eta_y = 0.02;
  opts.project_y = [](VecView v) { project_simplex(v); };
  std::vector<scalar_t> w0(static_cast<std::size_t>(model.num_params()), 0);
  std::vector<scalar_t> p0(4, 0.25);
  const auto result = solve_gda(oracle, std::move(w0), std::move(p0), opts);

  const auto losses = metrics::per_edge_loss(model, result.x_avg, fed, pool);
  const scalar_t worst_loss = tensor::max(tensor::ConstVecView(losses));
  EXPECT_LT(worst_loss, std::log(4.0));  // beats the uniform predictor
  scalar_t total_p = 0;
  for (const scalar_t p : result.y) total_p += p;
  EXPECT_NEAR(total_p, 1.0, 1e-9);
}

}  // namespace
}  // namespace hm::algo
