// Unit + property tests for hm::tensor: BLAS-1 kernels, matrix views,
// GEMM variants vs a naive reference, activations.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "rng/rng.hpp"
#include "tensor/activations.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vecops.hpp"

namespace hm::tensor {
namespace {

Matrix random_matrix(index_t rows, index_t cols, rng::Xoshiro256& gen) {
  Matrix m(rows, cols);
  for (auto& v : m.flat()) v = gen.normal();
  return m;
}

TEST(VecOps, Axpy) {
  std::vector<scalar_t> x = {1, 2, 3};
  std::vector<scalar_t> y = {10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[1], 24);
  EXPECT_DOUBLE_EQ(y[2], 36);
}

TEST(VecOps, AxpySizeMismatchThrows) {
  std::vector<scalar_t> x = {1, 2};
  std::vector<scalar_t> y = {1, 2, 3};
  EXPECT_THROW(axpy(1.0, x, y), CheckError);
}

TEST(VecOps, DotAndNorm) {
  std::vector<scalar_t> x = {3, 4};
  EXPECT_DOUBLE_EQ(dot(x, x), 25);
  EXPECT_DOUBLE_EQ(nrm2(x), 5);
}

TEST(VecOps, Dist2) {
  std::vector<scalar_t> x = {1, 1};
  std::vector<scalar_t> y = {4, 5};
  EXPECT_DOUBLE_EQ(dist2(x, y), 5);
}

TEST(VecOps, ScaleCopyZeroSumMaxArgmax) {
  std::vector<scalar_t> x = {1, -2, 5, 3};
  scale(2.0, x);
  EXPECT_DOUBLE_EQ(x[2], 10);
  EXPECT_DOUBLE_EQ(sum(x), 14);
  EXPECT_DOUBLE_EQ(max(x), 10);
  EXPECT_EQ(argmax(x), 2);
  std::vector<scalar_t> y(4);
  copy(x, y);
  EXPECT_EQ(x, y);
  set_zero(y);
  EXPECT_DOUBLE_EQ(sum(y), 0);
}

TEST(VecOps, ProjectL2BallShrinksOnlyOutside) {
  std::vector<scalar_t> inside = {0.3, 0.4};
  project_l2_ball(inside, 1.0);
  EXPECT_DOUBLE_EQ(inside[0], 0.3);  // untouched, norm 0.5 < 1

  std::vector<scalar_t> outside = {3, 4};
  project_l2_ball(outside, 1.0);
  EXPECT_NEAR(nrm2(outside), 1.0, 1e-12);
  EXPECT_NEAR(outside[0] / outside[1], 0.75, 1e-12);  // direction kept
}

TEST(VecOps, ProjectL2BallZeroRadiusIsIdentity) {
  std::vector<scalar_t> x = {100, 200};
  project_l2_ball(x, 0);  // radius <= 0 means unconstrained
  EXPECT_DOUBLE_EQ(x[0], 100);
}

TEST(MatrixViews, RowAccessAndFlat) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 7;
  ConstMatView view = m;
  EXPECT_EQ(view.rows(), 2);
  EXPECT_EQ(view.cols(), 3);
  EXPECT_DOUBLE_EQ(view(1, 2), 7);
  EXPECT_DOUBLE_EQ(view.row(0)[0], 1);
  EXPECT_EQ(view.flat().size(), 6u);
}

TEST(MatrixViews, FlatVectorAsMatrix) {
  std::vector<scalar_t> buf = {1, 2, 3, 4, 5, 6};
  MatView view(VecView(buf), 2, 3);
  EXPECT_DOUBLE_EQ(view(0, 2), 3);
  view(1, 0) = 40;
  EXPECT_DOUBLE_EQ(buf[3], 40);
}

TEST(MatrixViews, TooSmallBufferThrows) {
  std::vector<scalar_t> buf(5);
  EXPECT_THROW(MatView(VecView(buf), 2, 3), CheckError);
}

// Naive reference implementations for GEMM property checks.
Matrix ref_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t l = 0; l < a.cols(); ++l) c(i, j) += a(i, l) * b(l, j);
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  return t;
}

struct GemmShape {
  index_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTest, MatchesReference) {
  const auto [m, k, n] = GetParam();
  rng::Xoshiro256 gen(100 + m + 10 * k + 100 * n);
  const Matrix a = random_matrix(m, k, gen);
  const Matrix b = random_matrix(k, n, gen);
  const Matrix expected = ref_gemm(a, b);
  Matrix c(m, n);
  gemm(a, b, c);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-9) << i << "," << j;
}

TEST_P(GemmTest, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  rng::Xoshiro256 gen(200 + m + 10 * k + 100 * n);
  const Matrix a = random_matrix(m, k, gen);
  const Matrix bt = random_matrix(n, k, gen);  // B^T stored
  const Matrix expected = ref_gemm(a, transpose(bt));
  Matrix c(m, n);
  gemm_nt(a, bt, c);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-9);
}

TEST_P(GemmTest, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  rng::Xoshiro256 gen(300 + m + 10 * k + 100 * n);
  const Matrix at = random_matrix(m, k, gen);  // A stored; we want A^T B
  const Matrix b = random_matrix(m, n, gen);
  const Matrix expected = ref_gemm(transpose(at), b);
  Matrix c(k, n);
  gemm_tn(at, b, c);
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{2, 3, 4},
                      GemmShape{8, 5, 8}, GemmShape{17, 9, 3},
                      GemmShape{64, 64, 64}, GemmShape{100, 33, 57}));

TEST(Gemm, BetaAccumulates) {
  rng::Xoshiro256 gen(42);
  const Matrix a = random_matrix(3, 4, gen);
  const Matrix b = random_matrix(4, 5, gen);
  Matrix c(3, 5, /*fill=*/1.0);
  const Matrix ab = ref_gemm(a, b);
  gemm(a, b, c, /*beta=*/2.0);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(c(i, j), 2.0 + ab(i, j), 1e-9);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(gemm(a, b, c), CheckError);
  Matrix b2(3, 5), c2(3, 5);
  EXPECT_THROW(gemm(a, b2, c2), CheckError);  // wrong output rows
}

TEST(Gemm, ParallelPathMatchesReference) {
  // Large enough to cross the kParallelFlops threshold.
  rng::Xoshiro256 gen(77);
  const Matrix a = random_matrix(96, 80, gen);
  const Matrix b = random_matrix(80, 96, gen);
  const Matrix expected = ref_gemm(a, b);
  Matrix c(96, 96);
  gemm(a, b, c);
  scalar_t max_err = 0;
  for (index_t i = 0; i < 96; ++i)
    for (index_t j = 0; j < 96; ++j)
      max_err = std::max(max_err, std::abs(c(i, j) - expected(i, j)));
  EXPECT_LT(max_err, 1e-9);
}

TEST(Gemv, MatchesReference) {
  rng::Xoshiro256 gen(55);
  const Matrix a = random_matrix(6, 4, gen);
  std::vector<scalar_t> x = {1, -1, 2, 0.5};
  std::vector<scalar_t> y(6, 3.0);
  gemv(a, x, y, /*beta=*/1.0);
  for (index_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], 3.0 + dot(a.row(i), x), 1e-12);
  }
}

// ---------------------------------------------------------------------
// Kernel-equivalence suite: the vecops/gemm headers promise specific
// rounding sequences (8-lane reductions with a fixed pairwise combine,
// elementwise fusions identical to their unfused chains, GEMM accumping
// each element in naive k-order). These tests pin that contract with
// exact (0 ULP) comparisons against plain scalar references — EXPECT_EQ
// on doubles, no tolerance.

/// Reference for the 8-lane reduction order documented in vecops.hpp:
/// lane j folds indices ≡ j (mod kLanes) in increasing order, lanes
/// combine as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
scalar_t ref_lane_reduce(std::size_t n,
                         const std::function<scalar_t(std::size_t)>& term) {
  scalar_t lane[kLanes] = {};
  for (std::size_t i = 0; i < n; ++i) lane[i % kLanes] += term(i);
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

std::vector<scalar_t> random_vec(std::size_t n, rng::Xoshiro256& gen) {
  std::vector<scalar_t> v(n);
  for (auto& x : v) x = gen.normal();
  return v;
}

/// Sizes straddling the unrolled-body/tail boundaries of the kernels.
const std::size_t kEquivalenceSizes[] = {0,  1,  2,  3,  7,   8,   9,  15,
                                         16, 17, 31, 63, 64,  65,  100,
                                         255, 256, 1000, 4099};

TEST(KernelEquivalence, DotMatchesLaneOrderExactly) {
  rng::Xoshiro256 gen(900);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x = random_vec(n, gen);
    const auto y = random_vec(n, gen);
    const scalar_t expected =
        ref_lane_reduce(n, [&](std::size_t i) { return x[i] * y[i]; });
    EXPECT_EQ(dot(x, y), expected) << "n=" << n;
  }
}

TEST(KernelEquivalence, SumMatchesLaneOrderExactly) {
  rng::Xoshiro256 gen(901);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x = random_vec(n, gen);
    const scalar_t expected =
        ref_lane_reduce(n, [&](std::size_t i) { return x[i]; });
    EXPECT_EQ(sum(x), expected) << "n=" << n;
  }
}

TEST(KernelEquivalence, Dist2AndNrm2MatchLaneOrderExactly) {
  rng::Xoshiro256 gen(902);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x = random_vec(n, gen);
    const auto y = random_vec(n, gen);
    const scalar_t d2 = ref_lane_reduce(n, [&](std::size_t i) {
      const scalar_t d = x[i] - y[i];
      return d * d;
    });
    EXPECT_EQ(dist2(x, y), std::sqrt(d2)) << "n=" << n;
    const scalar_t s2 =
        ref_lane_reduce(n, [&](std::size_t i) { return x[i] * x[i]; });
    EXPECT_EQ(nrm2(x), std::sqrt(s2)) << "n=" << n;
  }
}

TEST(KernelEquivalence, Dot2MatchesTwoDotsExactly) {
  rng::Xoshiro256 gen(903);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x = random_vec(n, gen);
    const auto y0 = random_vec(n, gen);
    const auto y1 = random_vec(n, gen);
    scalar_t r0 = -1, r1 = -1;
    dot2(x, y0, y1, r0, r1);
    EXPECT_EQ(r0, dot(x, y0)) << "n=" << n;
    EXPECT_EQ(r1, dot(x, y1)) << "n=" << n;
  }
}

TEST(KernelEquivalence, AxpyMatchesScalarLoopExactly) {
  rng::Xoshiro256 gen(904);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x = random_vec(n, gen);
    auto y = random_vec(n, gen);
    auto expected = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] += 0.37 * x[i];
    axpy(0.37, x, y);
    EXPECT_EQ(y, expected) << "n=" << n;
  }
}

TEST(KernelEquivalence, AxpbyMatchesScaleThenAxpyExactly) {
  rng::Xoshiro256 gen(905);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x = random_vec(n, gen);
    auto fused = random_vec(n, gen);
    auto chained = fused;
    scale(0.93, chained);
    axpy(-0.01, x, chained);
    axpby(-0.01, x, 0.93, fused);
    EXPECT_EQ(fused, chained) << "n=" << n;
  }
}

TEST(KernelEquivalence, AxpbyBetaZeroOverwritesNaN) {
  // beta == 0 must not evaluate 0 * y: NaN-poisoned destinations are
  // overwritten cleanly (the scratch-reuse paths rely on this).
  const std::vector<scalar_t> x = {1, 2, 3};
  std::vector<scalar_t> y(3, std::numeric_limits<scalar_t>::quiet_NaN());
  axpby(2.0, x, 0.0, y);
  EXPECT_EQ(y, (std::vector<scalar_t>{2, 4, 6}));
}

TEST(KernelEquivalence, Axpy2MatchesTwoAxpysExactly) {
  rng::Xoshiro256 gen(906);
  for (const std::size_t n : kEquivalenceSizes) {
    const auto x0 = random_vec(n, gen);
    const auto x1 = random_vec(n, gen);
    auto fused = random_vec(n, gen);
    auto chained = fused;
    axpy(0.25, x0, chained);
    axpy(-1.5, x1, chained);
    axpy2(0.25, x0, -1.5, x1, fused);
    EXPECT_EQ(fused, chained) << "n=" << n;
  }
}

/// GEMM reference with the documented rounding sequence: each element is
/// the k-sequential product sum; beta != 0 scales C first (beta != 1)
/// and adds the whole accumulated sum in one rounding.
Matrix ref_gemm_exact(const Matrix& a, const Matrix& b, const Matrix* prior,
                      scalar_t beta) {
  Matrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      scalar_t acc = 0;
      for (index_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      if (beta == 0) {
        c(i, j) = acc;
      } else {
        const scalar_t base =
            beta == 1 ? (*prior)(i, j) : beta * (*prior)(i, j);
        c(i, j) = base + acc;
      }
    }
  }
  return c;
}

struct GemmExactShape {
  index_t m, k, n;
};

class GemmExactTest : public ::testing::TestWithParam<GemmExactShape> {};

TEST_P(GemmExactTest, AllVariantsBitIdenticalToNaiveOrder) {
  const auto [m, k, n] = GetParam();
  rng::Xoshiro256 gen(910 + m + 10 * k + 100 * n);
  const Matrix a = random_matrix(m, k, gen);
  const Matrix b = random_matrix(k, n, gen);
  const Matrix bt = transpose(b);
  const Matrix at = transpose(a);
  auto expect_bits_equal = [&](const Matrix& c, const Matrix& expected,
                               const char* what, scalar_t beta) {
    for (index_t i = 0; i < c.rows(); ++i)
      for (index_t j = 0; j < c.cols(); ++j)
        EXPECT_EQ(c(i, j), expected(i, j))
            << what << " beta=" << beta << " at " << i << "," << j;
  };
  for (const scalar_t beta : {0.0, 1.0, 0.5}) {
    const Matrix prior = random_matrix(m, n, gen);
    const Matrix expected = ref_gemm_exact(a, b, &prior, beta);
    Matrix c = prior;
    gemm(a, b, c, beta);
    expect_bits_equal(c, expected, "gemm", beta);
    c = prior;
    gemm_nt(a, bt, c, beta);
    expect_bits_equal(c, expected, "gemm_nt", beta);
    c = prior;
    gemm_tn(at, b, c, beta);
    expect_bits_equal(c, expected, "gemm_tn", beta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmExactTest,
    ::testing::Values(
        GemmExactShape{1, 1, 1},      // degenerate
        GemmExactShape{8, 40, 64},    // gemm_nt swap path (m small, n >> m)
        GemmExactShape{3, 17, 50},    // swap path, m below one strip
        GemmExactShape{13, 9, 7},     // row and column tails everywhere
        GemmExactShape{16, 8, 6},     // exact tile multiples
        GemmExactShape{65, 33, 19},   // multiple kMR blocks + tails
        GemmExactShape{130, 50, 70})  // parallel row-band path
);

TEST(KernelEquivalence, GemvBitIdenticalToLaneDotsPerRow) {
  rng::Xoshiro256 gen(920);
  for (const index_t m : {1, 2, 5, 8, 31, 130}) {
    const Matrix a = random_matrix(m, 67, gen);
    const auto x = random_vec(67, gen);
    for (const scalar_t beta : {0.0, 1.0, 0.5}) {
      const auto prior = random_vec(static_cast<std::size_t>(m), gen);
      auto y = prior;
      gemv(a, x, y, beta);
      for (index_t i = 0; i < m; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const scalar_t r = ref_lane_reduce(
            67, [&](std::size_t l) { return a(i, static_cast<index_t>(l)) * x[l]; });
        const scalar_t expected = beta == 0 ? r : beta * prior[ui] + r;
        EXPECT_EQ(y[ui], expected) << "m=" << m << " beta=" << beta;
      }
    }
  }
}

TEST(Activations, ReluClampsNegatives) {
  std::vector<scalar_t> x = {-1, 0, 2, -0.5};
  relu(x);
  EXPECT_EQ(x, (std::vector<scalar_t>{0, 0, 2, 0}));
}

TEST(Activations, ReluBackwardMasks) {
  const std::vector<scalar_t> act = {0, 1, 0, 3};  // post-ReLU values
  std::vector<scalar_t> grad = {5, 5, 5, 5};
  relu_backward(act, grad);
  EXPECT_EQ(grad, (std::vector<scalar_t>{0, 5, 0, 5}));
}

TEST(Activations, SoftmaxRowsSumToOne) {
  Matrix logits(2, 3);
  logits(0, 0) = 1;
  logits(0, 1) = 2;
  logits(0, 2) = 3;
  logits(1, 0) = 1000;  // stability check: huge values must not overflow
  logits(1, 1) = 1000;
  logits(1, 2) = 999;
  softmax_rows(logits);
  for (index_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(sum(logits.row(r)), 1.0, 1e-12);
    for (index_t c = 0; c < 3; ++c) EXPECT_GT(logits(r, c), 0.0);
  }
  EXPECT_GT(logits(0, 2), logits(0, 0));
}

TEST(Activations, LogSumExpStableAndCorrect) {
  const std::vector<scalar_t> x = {1.0, 2.0, 3.0};
  const scalar_t expected =
      std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(log_sum_exp(x), expected, 1e-12);
  const std::vector<scalar_t> huge = {1000.0, 1000.0};
  EXPECT_NEAR(log_sum_exp(huge), 1000.0 + std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace hm::tensor
