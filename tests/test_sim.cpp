// Unit tests for hm::sim: topology index mapping, communication meter
// arithmetic, cluster job execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "rng/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/quantize.hpp"
#include "sim/comm.hpp"
#include "sim/topology.hpp"

namespace hm::sim {
namespace {

TEST(Topology, Cardinalities) {
  const HierTopology topo(10, 3);
  EXPECT_EQ(topo.num_edges(), 10);
  EXPECT_EQ(topo.clients_per_edge(), 3);
  EXPECT_EQ(topo.num_clients(), 30);
}

TEST(Topology, ClientIdRoundTrips) {
  const HierTopology topo(4, 5);
  for (index_t e = 0; e < 4; ++e) {
    for (index_t i = 0; i < 5; ++i) {
      const index_t id = topo.client_id(e, i);
      EXPECT_EQ(topo.edge_of_client(id), e);
    }
  }
}

TEST(Topology, ClientIdsAreDenseAndUnique) {
  const HierTopology topo(3, 4);
  std::vector<bool> seen(12, false);
  for (index_t e = 0; e < 3; ++e) {
    for (index_t i = 0; i < 4; ++i) {
      const index_t id = topo.client_id(e, i);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, 12);
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = true;
    }
  }
}

TEST(Topology, ClientsOfEdge) {
  const HierTopology topo(2, 3);
  EXPECT_EQ(topo.clients_of_edge(1), (std::vector<index_t>{3, 4, 5}));
}

TEST(Topology, InvalidArgumentsThrow) {
  EXPECT_THROW(HierTopology(0, 3), CheckError);
  EXPECT_THROW(HierTopology(3, 0), CheckError);
  const HierTopology topo(2, 2);
  EXPECT_THROW(topo.client_id(2, 0), CheckError);
  EXPECT_THROW(topo.client_id(0, 2), CheckError);
  EXPECT_THROW(topo.edge_of_client(4), CheckError);
}

TEST(CommStats, TotalsAndAccumulation) {
  CommStats a;
  a.client_edge_rounds = 2;
  a.edge_cloud_rounds = 1;
  a.client_edge_models_up = 10;
  a.client_edge_models_down = 12;
  a.edge_cloud_models_up = 4;
  a.edge_cloud_models_down = 5;
  EXPECT_EQ(a.total_rounds(), 3u);
  EXPECT_EQ(a.edge_cloud_models(), 9u);
  EXPECT_EQ(a.total_models(), 31u);

  CommStats b = a;
  b += a;
  EXPECT_EQ(b.total_rounds(), 6u);
  EXPECT_EQ(b.edge_cloud_models(), 18u);
}

TEST(CommStats, DefaultIsZero) {
  const CommStats s;
  EXPECT_EQ(s.total_rounds(), 0u);
  EXPECT_EQ(s.total_models(), 0u);
}

TEST(ClusterSim, RunsEveryDeviceOnce) {
  parallel::ThreadPool pool(4);
  const ClusterSim cluster(pool);
  std::vector<std::atomic<int>> hits(37);
  cluster.run_devices(37, [&](index_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ClusterSim, PropagatesJobFailure) {
  parallel::ThreadPool pool(2);
  const ClusterSim cluster(pool);
  EXPECT_THROW(cluster.run_devices(10,
                                   [](index_t i) {
                                     if (i == 7) throw std::runtime_error("x");
                                   }),
               std::runtime_error);
}

TEST(Latency, LatencyAndBandwidthTerms) {
  CommStats comm;
  comm.client_edge_rounds = 10;
  comm.edge_cloud_rounds = 4;
  comm.client_edge_bytes = 1'000'000;   // 8 Mbit
  comm.edge_cloud_bytes = 500'000;      // 4 Mbit
  NetworkProfile net;
  net.client_edge = {0.001, 1e9};   // 1 ms, 1 Gbps
  net.edge_cloud = {0.1, 1e6};      // 100 ms, 1 Mbps
  const auto t = time_breakdown(comm, net);
  EXPECT_NEAR(t.client_edge_s, 10 * 0.001 + 8e6 / 1e9, 1e-9);
  EXPECT_NEAR(t.edge_cloud_s, 4 * 0.1 + 4e6 / 1e6, 1e-9);
  EXPECT_NEAR(net.seconds(comm), t.total(), 1e-12);
}

TEST(Latency, ConcurrencyDividesTransferTimeOnly) {
  CommStats comm;
  comm.edge_cloud_rounds = 2;
  comm.edge_cloud_bytes = 1'000'000;
  NetworkProfile net;
  net.edge_cloud = {1.0, 8e6};  // 1 s latency, 8 Mbps -> 1 s transfer
  EXPECT_NEAR(net.seconds(comm, 1), 2.0 + 1.0, 1e-9);
  EXPECT_NEAR(net.seconds(comm, 4), 2.0 + 0.25, 1e-9);
  // Nonpositive concurrency falls back to serial.
  EXPECT_NEAR(net.seconds(comm, 0), 3.0, 1e-9);
}

TEST(Latency, HierarchicalTrafficFavoredByWanProfile) {
  // Same total models: 100 WAN payloads vs 100 LAN + 10 WAN. With a slow
  // WAN the hierarchical pattern must be faster.
  const std::uint64_t payload = 100'000;
  CommStats flat;
  flat.edge_cloud_rounds = 10;
  flat.edge_cloud_bytes = 100 * payload;
  CommStats hier;
  hier.client_edge_rounds = 10;
  hier.client_edge_bytes = 100 * payload;
  hier.edge_cloud_rounds = 10;
  hier.edge_cloud_bytes = 10 * payload;
  const NetworkProfile net;  // defaults: fast LAN, slow WAN
  EXPECT_LT(net.seconds(hier), net.seconds(flat));
}

TEST(Quantize, PayloadBytes) {
  EXPECT_EQ(payload_bytes(100, 0), 800u);       // raw float64
  EXPECT_EQ(payload_bytes(100, 8), 108u);       // 100 bytes + scale
  EXPECT_EQ(payload_bytes(100, 4), 58u);        // 50 bytes + scale
  EXPECT_EQ(payload_bytes(3, 1), 9u);           // 1 byte packed + scale
  EXPECT_EQ(payload_bytes(0, 8), 8u);           // just the scale
}

TEST(Quantize, ValuesLandOnGrid) {
  rng::Xoshiro256 gen(1);
  std::vector<scalar_t> v = {0.31, -0.77, 0.02, 1.0};
  quantize_payload(v, 4, gen);
  // Grid: 15 levels spanning [-1, 1] -> step 2/15.
  const scalar_t step = 2.0 / 15.0;
  for (const scalar_t x : v) {
    const scalar_t t = (x + 1.0) / step;
    EXPECT_NEAR(t, std::round(t), 1e-9);
    EXPECT_LE(std::abs(x), 1.0 + 1e-12);
  }
}

TEST(Quantize, UnbiasedInExpectation) {
  // Stochastic rounding: the mean of many quantizations approaches the
  // original value.
  rng::Xoshiro256 gen(2);
  const std::vector<scalar_t> original = {0.3, -0.62, 0.111, 0.9};
  std::vector<scalar_t> acc(original.size(), 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto v = original;
    quantize_payload(v, 3, gen);
    for (std::size_t i = 0; i < v.size(); ++i) acc[i] += v[i];
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(acc[i] / trials, original[i], 0.01) << i;
  }
}

TEST(Quantize, ErrorBoundedByStep) {
  rng::Xoshiro256 gen(3);
  std::vector<scalar_t> v(256);
  for (auto& x : v) x = gen.normal();
  scalar_t scale = 0;
  for (const scalar_t x : v) scale = std::max(scale, std::abs(x));
  const auto original = v;
  quantize_payload(v, 6, gen);
  const scalar_t step = 2 * scale / ((1 << 6) - 1);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(v[i] - original[i]), step + 1e-12);
  }
}

TEST(Quantize, HighBitsNearlyLossless) {
  rng::Xoshiro256 gen(4);
  std::vector<scalar_t> v(64);
  for (auto& x : v) x = gen.normal();
  const auto original = v;
  quantize_payload(v, 16, gen);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-3);
  }
}

TEST(Quantize, ZeroVectorUnchangedAndBadBitsThrow) {
  rng::Xoshiro256 gen(5);
  std::vector<scalar_t> zeros(8, 0.0);
  quantize_payload(zeros, 2, gen);
  for (const scalar_t x : zeros) EXPECT_DOUBLE_EQ(x, 0.0);
  std::vector<scalar_t> v = {1.0};
  EXPECT_THROW(quantize_payload(v, 0, gen), CheckError);
  EXPECT_THROW(quantize_payload(v, 17, gen), CheckError);
}

// ---------------------------------------------------------------------
// Fault-plan properties. These drive the FaultPlan/LinkFaultStats pair
// the way the trainers do and check the invariants the paper-level
// accounting relies on.

// Conservation: every report either delivers, drops, or burns retries —
// under ANY plan, attempted == delivered + dropped + in_retry, and the
// legacy messages() rollup equals sends plus lost reports.

TEST(Fault, DeliveryConservationUnderArbitraryPlan) {
  FaultSpec spec;
  spec.enabled = true;
  spec.client_dropout_prob = 0.3;
  spec.straggler_prob = 0.4;
  spec.straggler_mult_mean = 5.0;
  spec.edge_loss_prob = 0.45;
  spec.max_retries = 3;
  spec.client_crash_round = {-1, 4, -1, 2};
  const FaultPlan plan(spec);

  LinkFaultStats link;
  const index_t rounds = 40;
  const index_t clients = 12;
  std::uint64_t offered = 0;
  std::uint64_t lost_reports = 0;
  std::uint64_t sends = 0;
  for (index_t k = 0; k < rounds; ++k) {
    for (index_t c = 0; c < clients; ++c) {
      if (plan.client_crashed(k, c)) continue;  // silent: nothing metered
      ++offered;
      if (plan.client_dropped(k, c)) {
        link.note_lost_report();
        ++lost_reports;
        continue;
      }
      if (plan.deliver(k, fault_msg(kMsgModelUp, c), link)) {
        link.note_straggle(plan.straggler_mult(k, c));
      }
      ++sends;
    }
  }
  EXPECT_EQ(link.attempted, link.delivered + link.dropped + link.in_retry);
  EXPECT_EQ(link.messages(), sends + lost_reports);
  EXPECT_EQ(link.messages(), offered);
  // The plan above is lossy enough that every state is populated.
  EXPECT_GT(link.delivered, 0u);
  EXPECT_GT(link.dropped, 0u);
  EXPECT_GT(link.in_retry, 0u);
  EXPECT_GT(link.straggled, 0u);
}

// Retry accounting never double-charges latency: with losses but no
// stragglers, extra_rtts is exactly the retry count, and time_breakdown
// charges it once at the link's round-trip latency.

TEST(Fault, RetryLatencyChargedExactlyOnce) {
  FaultSpec spec;
  spec.enabled = true;
  spec.edge_loss_prob = 0.5;
  spec.max_retries = 4;
  const FaultPlan plan(spec);

  CommStats comm;
  for (index_t k = 0; k < 50; ++k) {
    for (index_t e = 0; e < 8; ++e) {
      plan.deliver(k, fault_msg(kMsgModelUp, e), comm.edge_cloud_fault);
    }
  }
  const auto& link = comm.edge_cloud_fault;
  EXPECT_GT(link.in_retry, 0u);
  EXPECT_DOUBLE_EQ(link.extra_rtts, static_cast<double>(link.in_retry));

  const NetworkProfile net;
  CommStats clean = comm;
  clean.edge_cloud_fault = LinkFaultStats{};
  clean.client_edge_fault = LinkFaultStats{};
  const double with_faults = time_breakdown(comm, net).edge_cloud_s;
  const double without = time_breakdown(clean, net).edge_cloud_s;
  EXPECT_NEAR(with_faults - without, link.extra_rtts * net.edge_cloud.latency_s,
              1e-9);
  // The LAN segment is untouched by WAN retries.
  EXPECT_DOUBLE_EQ(time_breakdown(comm, net).client_edge_s,
                   time_breakdown(clean, net).client_edge_s);
}

// Straggler waits land in extra_rtts as (mult - 1) and nowhere else.

TEST(Fault, StragglerWaitChargedAsExtraRoundTrips) {
  LinkFaultStats link;
  link.note_delivered();
  link.note_straggle(3.5);  // one report, 2.5 extra round-trips
  link.note_delivered();
  link.note_straggle(1.0);  // on time: no straggle recorded
  EXPECT_EQ(link.straggled, 1u);
  EXPECT_EQ(link.delivered, 2u);
  EXPECT_DOUBLE_EQ(link.extra_rtts, 2.5);
}

// The fault queries are pure functions of (seed, round, entity): asking
// in any order, any number of times, gives the same answer.

TEST(Fault, QueriesAreOrderIndependent) {
  FaultSpec spec;
  spec.enabled = true;
  spec.client_dropout_prob = 0.5;
  spec.straggler_prob = 0.5;
  const FaultPlan plan(spec);
  std::vector<int> forward;
  std::vector<int> reverse;
  std::vector<double> mult_fwd;
  for (index_t k = 0; k < 10; ++k) {
    for (index_t c = 0; c < 10; ++c) {
      forward.push_back(plan.client_dropped(k, c) ? 1 : 0);
      mult_fwd.push_back(plan.straggler_mult(k, c));
    }
  }
  for (index_t k = 9; k >= 0; --k) {
    for (index_t c = 9; c >= 0; --c) {
      reverse.push_back(plan.client_dropped(k, c) ? 1 : 0);
    }
  }
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i], reverse[forward.size() - 1 - i]);
  }
  // Repeat queries are stable too (no hidden state advanced).
  std::size_t i = 0;
  for (index_t k = 0; k < 10; ++k) {
    for (index_t c = 0; c < 10; ++c, ++i) {
      EXPECT_EQ(plan.client_dropped(k, c) ? 1 : 0, forward[i]);
      EXPECT_DOUBLE_EQ(plan.straggler_mult(k, c), mult_fwd[i]);
    }
  }
}

// ClusterSim's fault-aware dispatch skips exactly the crashed devices.

TEST(ClusterSim, FaultAwareDispatchSkipsCrashedDevices) {
  FaultSpec spec;
  spec.enabled = true;
  spec.client_crash_round = {-1, 0, 2};  // device 1 dead from round 0,
                                         // device 2 dead from round 2
  const FaultPlan plan(spec);
  const ClusterSim cluster;
  std::atomic<int> mask{0};
  cluster.run_devices(3, plan, /*round=*/1,
                      [&](index_t i) { mask |= 1 << i; });
  EXPECT_EQ(mask.load(), 0b101);  // device 1 skipped, 0 and 2 ran
  mask = 0;
  cluster.run_devices(3, plan, /*round=*/2,
                      [&](index_t i) { mask |= 1 << i; });
  EXPECT_EQ(mask.load(), 0b001);  // only device 0 left
}

}  // namespace
}  // namespace hm::sim
