// Unit + property tests for hm::rng: determinism, stream splitting,
// distribution sanity, and sampling primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/check.hpp"
#include "rng/rng.hpp"
#include "rng/sampling.hpp"

namespace hm::rng {
namespace {

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, SplitIsIndependentOfParentAdvancement) {
  Xoshiro256 parent(99);
  Xoshiro256 child1 = parent.split(7);
  // Splitting must not consume parent state.
  Xoshiro256 parent2(99);
  Xoshiro256 child2 = parent2.split(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Xoshiro, SplitTagsProduceDistinctStreams) {
  Xoshiro256 parent(99);
  Xoshiro256 a = parent.split(1);
  Xoshiro256 b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, SplitDiffersFromParent) {
  Xoshiro256 parent(42);
  Xoshiro256 child = parent.split(0);
  Xoshiro256 parent_copy(42);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 gen(5);
  double total = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = gen.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 20000, 0.5, 0.02);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 gen(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = gen.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 gen(7);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = gen.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro, NormalMeanStd) {
  Xoshiro256 gen(8);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = gen.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Xoshiro, UniformIndexBoundsAndCoverage) {
  Xoshiro256 gen(9);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = gen.uniform_index(10);
    ASSERT_LT(v, 10u);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (const int h : hits) EXPECT_NEAR(h, 1000, 150);
}

TEST(Xoshiro, UniformIndexOneIsAlwaysZero) {
  Xoshiro256 gen(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.uniform_index(1), 0u);
}

TEST(Xoshiro, UniformIndexZeroThrows) {
  Xoshiro256 gen(10);
  EXPECT_THROW(gen.uniform_index(0), CheckError);
}

TEST(Sampling, WithoutReplacementDistinctAndInRange) {
  Xoshiro256 gen(11);
  const auto picks = sample_without_replacement(100, 30, gen);
  EXPECT_EQ(picks.size(), 30u);
  std::set<index_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const index_t p : picks) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 100);
  }
}

TEST(Sampling, WithoutReplacementFullSetIsPermutation) {
  Xoshiro256 gen(12);
  auto picks = sample_without_replacement(20, 20, gen);
  std::sort(picks.begin(), picks.end());
  for (index_t i = 0; i < 20; ++i) EXPECT_EQ(picks[static_cast<std::size_t>(i)], i);
}

TEST(Sampling, WithoutReplacementInvalidKThrows) {
  Xoshiro256 gen(13);
  EXPECT_THROW(sample_without_replacement(5, 6, gen), CheckError);
  EXPECT_THROW(sample_without_replacement(5, -1, gen), CheckError);
}

TEST(Sampling, WeightedMatchesWeights) {
  Xoshiro256 gen(14);
  const std::vector<scalar_t> w = {0.1, 0.0, 0.6, 0.3};
  std::vector<int> hits(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hits[static_cast<std::size_t>(sample_weighted(w, gen))];
  EXPECT_EQ(hits[1], 0);  // zero weight never drawn
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.6, 0.015);
  EXPECT_NEAR(hits[3] / static_cast<double>(n), 0.3, 0.015);
}

TEST(Sampling, WeightedRejectsBadWeights) {
  Xoshiro256 gen(15);
  EXPECT_THROW(sample_weighted({0.0, 0.0}, gen), CheckError);
  EXPECT_THROW(sample_weighted({1.0, -0.5}, gen), CheckError);
  EXPECT_THROW(sample_weighted({}, gen), CheckError);
}

TEST(Sampling, WithReplacementMatchesWeights) {
  Xoshiro256 gen(16);
  const std::vector<scalar_t> w = {2.0, 1.0, 1.0};  // unnormalized
  const auto draws = sample_weighted_with_replacement(w, 40000, gen);
  std::vector<int> hits(3, 0);
  for (const index_t d : draws) ++hits[static_cast<std::size_t>(d)];
  EXPECT_NEAR(hits[0] / 40000.0, 0.5, 0.015);
  EXPECT_NEAR(hits[1] / 40000.0, 0.25, 0.015);
  EXPECT_NEAR(hits[2] / 40000.0, 0.25, 0.015);
}

TEST(Sampling, AliasTableMatchesWeights) {
  Xoshiro256 gen(17);
  const AliasTable table({1.0, 3.0, 6.0});
  EXPECT_EQ(table.size(), 3);
  std::vector<int> hits(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++hits[static_cast<std::size_t>(table.sample(gen))];
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Sampling, AliasTableSingleElement) {
  Xoshiro256 gen(18);
  const AliasTable table({5.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.sample(gen), 0);
}

TEST(Sampling, ShuffleIsPermutation) {
  Xoshiro256 gen(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled, gen);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Xoshiro, ChiSquareUniformityOfUniformIndex) {
  // 16-bin chi-square on uniform_index(16): statistic ~ chi2(15);
  // threshold 37.7 is the 0.1% tail — a deterministic test that only
  // fails for a genuinely broken generator.
  Xoshiro256 gen(77);
  constexpr int kBins = 16;
  constexpr int kDraws = 64000;
  std::vector<int> hist(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++hist[static_cast<std::size_t>(gen.uniform_index(kBins))];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0;
  for (const int h : hist) {
    const double d = h - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(Xoshiro, SplitChildrenAreMutuallyUncorrelated) {
  // Correlation between sibling streams should be ~ N(0, 1/sqrt(n)).
  Xoshiro256 parent(123);
  auto a = parent.split(1);
  auto b = parent.split(2);
  const int n = 20000;
  double sum_ab = 0, sum_a = 0, sum_b = 0, sum_a2 = 0, sum_b2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform() - 0.5;
    const double y = b.uniform() - 0.5;
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
    sum_a2 += x * x;
    sum_b2 += y * y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  const double corr = cov / std::sqrt((sum_a2 / n) * (sum_b2 / n));
  EXPECT_LT(std::abs(corr), 0.03);
}

class SplitHierarchyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitHierarchyTest, NestedSplitsReproducible) {
  // The exact stream-split pattern used by the trainers: streams keyed by
  // (round, client) names must be reproducible and order-independent.
  const auto [round, client] = GetParam();
  Xoshiro256 root1(1234);
  Xoshiro256 root2(1234);
  auto s1 = root1.split(static_cast<std::uint64_t>(round))
                .split(static_cast<std::uint64_t>(client));
  // Derive sibling streams first in the second run — must not matter.
  (void)root2.split(static_cast<std::uint64_t>(round + 1));
  auto s2 = root2.split(static_cast<std::uint64_t>(round))
                .split(static_cast<std::uint64_t>(client));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s1(), s2());
}

INSTANTIATE_TEST_SUITE_P(Streams, SplitHierarchyTest,
                         ::testing::Combine(::testing::Values(0, 1, 17),
                                            ::testing::Values(0, 2, 29)));

}  // namespace
}  // namespace hm::rng
