// Bit-exactness suite for the batched multi-client engine. Two layers of
// oracle comparison, both at 0 ULP:
//
//  1. Model layer: loss_and_grad_batch against per-client loss_and_grad
//     for every model with a fused override (softmax regression, linear
//     regression, MLP) plus the base-class fallback, over ragged batch
//     sizes including 1-sample tails.
//  2. Trainer layer: every trainer run twice at a fixed seed — batched
//     engine vs the per-client oracle — comparing weights, duals,
//     running averages, comm counters (via the history TSV) bitwise.
//     Quantization and fault injection ride along because both consume
//     RNG state *after* local SGD, so they only match if the batched
//     engine leaves every per-client stream in the oracle's post-run
//     state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "algo/qffl.hpp"
#include "nn/linear_regression.hpp"
#include "nn/mlp.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::heterogeneous_task;
using testing_util::iid_task;

std::uint64_t bits(scalar_t x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void expect_bitwise(const std::vector<scalar_t>& oracle,
                    const std::vector<scalar_t>& batched,
                    const std::string& label) {
  ASSERT_EQ(oracle.size(), batched.size()) << label;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(bits(oracle[i]), bits(batched[i]))
        << label << "[" << i << "]: " << oracle[i] << " vs " << batched[i];
  }
}

// ------------------------------------------------------------- model layer

/// Runs `model.loss_and_grad_batch` over every client of `fed` with
/// ragged per-client batches (sizes cycle through 1, 3, 8, full shard)
/// and per-client parameter vectors, then checks losses and gradients
/// bitwise against sequential loss_and_grad calls.
void check_model_batch_oracle(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const std::string& label) {
  const auto d = static_cast<std::size_t>(model.num_params());
  const auto num_clients = static_cast<std::size_t>(fed.num_clients());

  // Distinct parameters per client so a cross-client mixup cannot cancel.
  std::vector<std::vector<scalar_t>> w(num_clients,
                                       std::vector<scalar_t>(d));
  for (std::size_t n = 0; n < num_clients; ++n) {
    rng::Xoshiro256 gen(1000 + n);
    model.init_params(w[n], gen);
  }

  // Ragged batches, including the 1-sample tail shape.
  std::vector<std::vector<index_t>> batches(num_clients);
  rng::Xoshiro256 pick(42);
  for (std::size_t n = 0; n < num_clients; ++n) {
    const auto& shard = fed.client_train[n];
    const index_t sizes[] = {1, 3, 8, shard.size()};
    const index_t m = sizes[n % 4];
    for (index_t i = 0; i < m; ++i) {
      batches[n].push_back(static_cast<index_t>(
          pick.uniform_index(static_cast<std::uint64_t>(shard.size()))));
    }
  }

  // Oracle: one client at a time.
  std::vector<std::vector<scalar_t>> grad_oracle(
      num_clients, std::vector<scalar_t>(d, 0));
  std::vector<scalar_t> loss_oracle(num_clients, 0);
  auto ws = model.make_workspace();
  for (std::size_t n = 0; n < num_clients; ++n) {
    loss_oracle[n] =
        model.loss_and_grad(w[n], fed.client_train[n], batches[n],
                            nn::VecView(grad_oracle[n]), *ws);
  }

  // Batched: one fused call.
  std::vector<std::vector<scalar_t>> grad_batch(
      num_clients, std::vector<scalar_t>(d, 0));
  std::vector<scalar_t> loss_batch(num_clients, 0);
  std::vector<nn::BatchClientRef> refs;
  refs.reserve(num_clients);
  for (std::size_t n = 0; n < num_clients; ++n) {
    refs.push_back({nn::ConstVecView(w[n]), &fed.client_train[n],
                    batches[n], nn::VecView(grad_batch[n])});
  }
  auto bws = model.make_batch_workspace();
  model.loss_and_grad_batch(refs, loss_batch, *bws);

  expect_bitwise(loss_oracle, loss_batch, label + " loss");
  for (std::size_t n = 0; n < num_clients; ++n) {
    expect_bitwise(grad_oracle[n], grad_batch[n],
                   label + " grad client " + std::to_string(n));
  }

  // Empty loss span is allowed: gradients must still be bit-identical.
  for (auto& g : grad_batch) std::fill(g.begin(), g.end(), scalar_t{0});
  model.loss_and_grad_batch(refs, {}, *bws);
  for (std::size_t n = 0; n < num_clients; ++n) {
    expect_bitwise(grad_oracle[n], grad_batch[n],
                   label + " grad (no losses) client " + std::to_string(n));
  }
}

TEST(BatchedModel, SoftmaxRegressionMatchesOracle) {
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  check_model_batch_oracle(model, fed, "softmax");
}

TEST(BatchedModel, LinearRegressionMatchesOracle) {
  const auto fed = heterogeneous_task();
  const nn::LinearRegression model(fed.dim(), fed.num_classes());
  check_model_batch_oracle(model, fed, "linreg");
}

TEST(BatchedModel, MlpMatchesOracle) {
  const auto fed = heterogeneous_task();
  const nn::Mlp model({fed.dim(), 16, 8, fed.num_classes()});
  check_model_batch_oracle(model, fed, "mlp");
}

TEST(BatchedModel, MlpSingleClientAndSingleSample) {
  // Degenerate shapes: one client, one sample — exercises the smallest
  // stacked panel the batched GEMM ever sees.
  const auto fed = iid_task();
  const nn::Mlp model({fed.dim(), 8, fed.num_classes()});
  const auto d = static_cast<std::size_t>(model.num_params());
  std::vector<scalar_t> w(d);
  rng::Xoshiro256 gen(7);
  model.init_params(w, gen);
  const std::vector<index_t> batch = {3};
  std::vector<scalar_t> g_oracle(d, 0), g_batch(d, 0);
  auto ws = model.make_workspace();
  const scalar_t l_oracle = model.loss_and_grad(
      w, fed.client_train[0], batch, nn::VecView(g_oracle), *ws);
  std::vector<nn::BatchClientRef> refs = {
      {nn::ConstVecView(w), &fed.client_train[0], batch,
       nn::VecView(g_batch)}};
  std::vector<scalar_t> l_batch(1, 0);
  auto bws = model.make_batch_workspace();
  model.loss_and_grad_batch(refs, l_batch, *bws);
  EXPECT_EQ(bits(l_oracle), bits(l_batch[0]));
  expect_bitwise(g_oracle, g_batch, "mlp 1x1");
}

// ----------------------------------------------------------- trainer layer

/// Reduces a trainer result to exact-comparable form: every scalar the
/// run produced, plus the full history TSV (which folds in comm
/// counters and evaluation records).
struct Reduced {
  std::vector<scalar_t> w, p, w_avg, p_avg;
  std::string tsv;
};

Reduced reduce(const TrainResult& r) {
  Reduced out{r.w, r.p, r.w_avg, r.p_avg, {}};
  std::ostringstream os;
  r.history.write_tsv(os, "run");
  out.tsv = os.str();
  return out;
}

Reduced reduce(const MultiTrainResult& r) {
  Reduced out{r.w, r.p, {}, {}, {}};
  std::ostringstream os;
  r.history.write_tsv(os, "run");
  out.tsv = os.str();
  return out;
}

void expect_same_run(const Reduced& oracle, const Reduced& batched,
                     const std::string& label) {
  expect_bitwise(oracle.w, batched.w, label + " w");
  expect_bitwise(oracle.p, batched.p, label + " p");
  expect_bitwise(oracle.w_avg, batched.w_avg, label + " w_avg");
  expect_bitwise(oracle.p_avg, batched.p_avg, label + " p_avg");
  EXPECT_EQ(oracle.tsv, batched.tsv) << label << " history";
}

TrainOptions engine_opts(index_t rounds = 6) {
  TrainOptions o;
  o.rounds = rounds;
  o.tau1 = 3;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  return o;
}

template <typename Run>
void check_trainer(Run&& run, TrainOptions opts, const std::string& label) {
  opts.batched = false;
  const Reduced oracle = reduce(run(opts));
  opts.batched = true;
  const Reduced batched = reduce(run(opts));
  expect_same_run(oracle, batched, label);
}

TEST(BatchedTrainers, FedAvgSoftmax) {
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts();
  opts.sampled_clients = 5;  // odd partial participation
  check_trainer([&](const TrainOptions& o) { return train_fedavg(model, fed, o); },
                opts, "fedavg");
}

TEST(BatchedTrainers, FedAvgMlp) {
  const auto fed = heterogeneous_task();
  const nn::Mlp model({fed.dim(), 16, fed.num_classes()});
  check_trainer([&](const TrainOptions& o) { return train_fedavg(model, fed, o); },
                engine_opts(4), "fedavg-mlp");
}

TEST(BatchedTrainers, FedAvgWithProxAndDecay) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts(4);
  opts.prox_mu = 0.5;
  opts.weight_decay = 0.01;
  check_trainer([&](const TrainOptions& o) { return train_fedavg(model, fed, o); },
                opts, "fedavg-prox");
}

TEST(BatchedTrainers, FedAvgWithQuantization) {
  // Quantization draws from gen.split(kTagQuant) *after* local SGD, so
  // this only matches if the batched engine advances each client stream
  // exactly as the oracle does.
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts(4);
  opts.quantize_bits = 8;
  check_trainer([&](const TrainOptions& o) { return train_fedavg(model, fed, o); },
                opts, "fedavg-quant");
}

TEST(BatchedTrainers, Qffl) {
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  check_trainer(
      [&](const TrainOptions& o) { return train_qffl(model, fed, o, 1.0); },
      engine_opts(), "qffl");
}

TEST(BatchedTrainers, Drfa) {
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts();
  opts.sampled_clients = 5;
  check_trainer([&](const TrainOptions& o) { return train_drfa(model, fed, o); },
                opts, "drfa");
}

TEST(BatchedTrainers, HierFavg) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts();
  opts.sampled_edges = 3;
  check_trainer(
      [&](const TrainOptions& o) { return train_hierfavg(model, fed, topo, o); },
      opts, "hierfavg");
}

TEST(BatchedTrainers, HierFavgWithFaults) {
  // Crashed clients are excluded from the job list before any compute;
  // the surviving jobs' RNG streams and results must be untouched.
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts();
  opts.fault.enabled = true;
  opts.fault.edge_crash_round = {-1, 2};
  opts.fault.client_crash_round = {-1, -1, 3};
  opts.fault.client_dropout_prob = 0.15;
  check_trainer(
      [&](const TrainOptions& o) { return train_hierfavg(model, fed, topo, o); },
      opts, "hierfavg-fault");
}

TEST(BatchedTrainers, HierMinimax) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = engine_opts();
  opts.quantize_bits = 6;  // checkpoint + w share one qgen sequence
  check_trainer(
      [&](const TrainOptions& o) {
        return train_hierminimax(model, fed, topo, o);
      },
      opts, "hierminimax");
}

MultiTrainOptions multi_engine_opts(std::vector<index_t> taus,
                                    index_t rounds = 4) {
  MultiTrainOptions o;
  o.rounds = rounds;
  o.taus = std::move(taus);
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.01;
  o.eval_every = 2;
  o.seed = 5;
  return o;
}

TEST(BatchedTrainers, HierMinimaxMultiDepthTwo) {
  const auto fed = heterogeneous_task();
  const sim::MultiTopology topo({fed.num_edges(), fed.clients_per_edge});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = multi_engine_opts({2, 3});
  opts.batched = false;
  const Reduced oracle =
      reduce(train_hierminimax_multi(model, fed, topo, opts));
  opts.batched = true;
  const Reduced batched =
      reduce(train_hierminimax_multi(model, fed, topo, opts));
  expect_same_run(oracle, batched, "multi-d2");
}

TEST(BatchedTrainers, HierMinimaxMultiDepthThreeMlp) {
  const auto fed = heterogeneous_task(4, 4);  // 16 leaves -> {4, 2, 2} tree
  const sim::MultiTopology topo({4, 2, 2});
  const nn::Mlp model({fed.dim(), 12, fed.num_classes()});
  auto opts = multi_engine_opts({2, 2, 2}, 3);
  opts.batched = false;
  const Reduced oracle =
      reduce(train_hierminimax_multi(model, fed, topo, opts));
  opts.batched = true;
  const Reduced batched =
      reduce(train_hierminimax_multi(model, fed, topo, opts));
  expect_same_run(oracle, batched, "multi-d3-mlp");
}

TEST(BatchedTrainers, HierFavgMulti) {
  const auto fed = heterogeneous_task();
  const sim::MultiTopology topo({fed.num_edges(), fed.clients_per_edge});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = multi_engine_opts({2, 2});
  opts.batched = false;
  const Reduced oracle = reduce(train_hierfavg_multi(model, fed, topo, opts));
  opts.batched = true;
  const Reduced batched = reduce(train_hierfavg_multi(model, fed, topo, opts));
  expect_same_run(oracle, batched, "hierfavg-multi");
}

}  // namespace
}  // namespace hm::algo
