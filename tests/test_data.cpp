// Unit + property tests for hm::data: dataset manipulation, synthetic
// generators, and federated partitioning protocols.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <cmath>
#include <numeric>
#include <set>

#include "data/dataset.hpp"
#include "data/federated.hpp"
#include "data/csv.hpp"
#include "data/generators.hpp"
#include "tensor/vecops.hpp"

namespace hm::data {
namespace {

Dataset tiny_dataset() {
  Dataset d;
  d.num_classes = 3;
  d.x.resize(6, 2);
  for (index_t i = 0; i < 6; ++i) {
    d.x(i, 0) = static_cast<scalar_t>(i);
    d.x(i, 1) = static_cast<scalar_t>(-i);
  }
  d.y = {0, 1, 2, 0, 1, 2};
  return d;
}

TEST(Dataset, SubsetPreservesOrderAndAllowsRepeats) {
  const Dataset d = tiny_dataset();
  const Dataset s = d.subset({4, 0, 4});
  ASSERT_EQ(s.size(), 3);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 4);
  EXPECT_DOUBLE_EQ(s.x(1, 0), 0);
  EXPECT_DOUBLE_EQ(s.x(2, 0), 4);
  EXPECT_EQ(s.y, (std::vector<index_t>{1, 0, 1}));
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const Dataset d = tiny_dataset();
  EXPECT_THROW(d.subset({6}), CheckError);
  EXPECT_THROW(d.subset({-1}), CheckError);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a = tiny_dataset();
  const Dataset b = tiny_dataset();
  a.append(b);
  EXPECT_EQ(a.size(), 12);
  EXPECT_DOUBLE_EQ(a.x(7, 0), 1);
  EXPECT_EQ(a.y[9], 0);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  Dataset d = tiny_dataset();
  d.y[0] = 5;
  EXPECT_THROW(d.validate(), CheckError);
}

TEST(Dataset, SplitTrainTestPartitions) {
  const Dataset d = make_gaussian_classes({});
  rng::Xoshiro256 gen(1);
  const TrainTest tt = split_train_test(d, 0.25, gen);
  EXPECT_EQ(tt.train.size() + tt.test.size(), d.size());
  EXPECT_NEAR(static_cast<double>(tt.test.size()) / d.size(), 0.25, 0.03);
}

TEST(Dataset, HistogramAndClassIndices) {
  const Dataset d = tiny_dataset();
  const auto hist = label_histogram(d);
  EXPECT_EQ(hist, (std::vector<index_t>{2, 2, 2}));
  EXPECT_EQ(indices_of_class(d, 1), (std::vector<index_t>{1, 4}));
}

TEST(Gaussian, ShapesAndLabelRange) {
  GaussianSpec spec;
  spec.num_samples = 500;
  spec.dim = 16;
  spec.num_classes = 4;
  const Dataset d = make_gaussian_classes(spec);
  EXPECT_EQ(d.size(), 500);
  EXPECT_EQ(d.dim(), 16);
  d.validate();
  // All classes present.
  const auto hist = label_histogram(d);
  for (const index_t h : hist) EXPECT_GT(h, 50);
}

TEST(Gaussian, DeterministicInSeed) {
  GaussianSpec spec;
  spec.num_samples = 50;
  const Dataset a = make_gaussian_classes(spec);
  const Dataset b = make_gaussian_classes(spec);
  EXPECT_EQ(a.y, b.y);
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x(i, 0), b.x(i, 0));
  }
  spec.seed += 1;
  const Dataset c = make_gaussian_classes(spec);
  EXPECT_NE(a.y, c.y);
}

TEST(Gaussian, SeparationControlsOverlap) {
  // Nearest-class-mean classification should get easier with separation.
  auto error_rate = [](scalar_t separation) {
    GaussianSpec spec;
    spec.num_samples = 2000;
    spec.separation = separation;
    spec.seed = 3;
    const Dataset d = make_gaussian_classes(spec);
    // Recompute class means from the data, then 1-NN to means.
    tensor::Matrix means(d.num_classes, d.dim());
    std::vector<index_t> counts(static_cast<std::size_t>(d.num_classes), 0);
    for (index_t i = 0; i < d.size(); ++i) {
      tensor::axpy(1.0, d.x.row(i),
                   means.row(d.y[static_cast<std::size_t>(i)]));
      ++counts[static_cast<std::size_t>(d.y[static_cast<std::size_t>(i)])];
    }
    for (index_t c = 0; c < d.num_classes; ++c) {
      tensor::scale(1.0 / static_cast<scalar_t>(
                               counts[static_cast<std::size_t>(c)]),
                    means.row(c));
    }
    index_t wrong = 0;
    for (index_t i = 0; i < d.size(); ++i) {
      scalar_t best = 1e30;
      index_t best_c = -1;
      for (index_t c = 0; c < d.num_classes; ++c) {
        const scalar_t dist = tensor::dist2(d.x.row(i), means.row(c));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      if (best_c != d.y[static_cast<std::size_t>(i)]) ++wrong;
    }
    return static_cast<double>(wrong) / static_cast<double>(d.size());
  };
  EXPECT_LT(error_rate(4.0), error_rate(1.5));
}

TEST(Gaussian, PresetDifficultyOrdering) {
  // Fashion-like must be harder (smaller separation, more noise).
  EXPECT_LT(fashion_like_spec().separation, mnist_like_spec().separation);
  EXPECT_GT(fashion_like_spec().label_noise, mnist_like_spec().label_noise);
}

TEST(LiSynthetic, DevicesHaveValidDataAndVaryingSizes) {
  LiSyntheticSpec spec;
  spec.num_devices = 20;
  const auto devices = make_li_synthetic(spec);
  ASSERT_EQ(devices.size(), 20u);
  std::set<index_t> sizes;
  for (const auto& d : devices) {
    d.validate();
    EXPECT_EQ(d.dim(), spec.dim);
    EXPECT_GE(d.size(), spec.min_samples);
    sizes.insert(d.size());
  }
  EXPECT_GT(sizes.size(), 5u);  // lognormal sizes should differ
}

TEST(LiSynthetic, BetaIncreasesFeatureHeterogeneity) {
  // beta controls the spread of per-device feature centers
  // (v_k[j] ~ N(B_k, 1) with B_k ~ N(0, beta)): larger beta must increase
  // the across-device variance of the mean feature value. (Note: alpha's
  // common mean-shift u_k cancels in the label argmax, so label
  // distributions are NOT a valid heterogeneity probe — see generator
  // docs.)
  auto center_spread = [](scalar_t beta) {
    LiSyntheticSpec spec;
    spec.alpha = 1.0;
    spec.beta = beta;
    spec.num_devices = 30;
    spec.seed = 5;
    const auto devices = make_li_synthetic(spec);
    std::vector<double> device_means;
    for (const auto& d : devices) {
      double mean = 0;
      for (const scalar_t v : d.x.flat()) mean += v;
      device_means.push_back(mean / static_cast<double>(d.x.size()));
    }
    double avg = 0;
    for (const double m : device_means) avg += m;
    avg /= static_cast<double>(device_means.size());
    double var = 0;
    for (const double m : device_means) var += (m - avg) * (m - avg);
    return var / static_cast<double>(device_means.size());
  };
  EXPECT_GT(center_spread(4.0), 2.0 * center_spread(0.0));
}

TEST(AdultLike, TwoGroupsWithImbalanceAndBothLabels) {
  AdultLikeSpec spec;
  const auto groups = make_adult_like(spec);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), spec.num_samples_group0);
  EXPECT_EQ(groups[1].size(), spec.num_samples_group1);
  for (const auto& g : groups) {
    g.validate();
    const auto hist = label_histogram(g);
    EXPECT_GT(hist[0], 0);
    EXPECT_GT(hist[1], 0);
  }
  // The two groups' label distributions must genuinely differ (they have
  // shifted coefficients and intercepts).
  const auto h0 = label_histogram(groups[0]);
  const auto h1 = label_histogram(groups[1]);
  const double rate0 = static_cast<double>(h0[1]) / groups[0].size();
  const double rate1 = static_cast<double>(h1[1]) / groups[1].size();
  EXPECT_GT(std::abs(rate1 - rate0), 0.03);
}

TEST(Partition, OneClassPerEdgeIsPure) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(2);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  const auto fed = partition_one_class_per_edge(tt, 10, 3, gen);
  EXPECT_EQ(fed.num_edges(), 10);
  EXPECT_EQ(fed.num_clients(), 30);
  for (index_t e = 0; e < 10; ++e) {
    for (index_t i = 0; i < 3; ++i) {
      for (const index_t y : fed.shard(e, i).y) EXPECT_EQ(y, e % 10);
    }
    for (const index_t y : fed.edge_test[static_cast<std::size_t>(e)].y) {
      EXPECT_EQ(y, e % 10);
    }
  }
}

TEST(Partition, OneClassPerEdgeBalancedAcrossClients) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(3);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  const auto fed = partition_one_class_per_edge(tt, 5, 4, gen);
  for (index_t e = 0; e < 5; ++e) {
    const index_t first = fed.shard(e, 0).size();
    for (index_t i = 1; i < 4; ++i) {
      EXPECT_NEAR(fed.shard(e, i).size(), first, 1);
    }
  }
}

TEST(Partition, SimilarityZeroIsFullySorted) {
  // s=0: each edge's train data comes from contiguous label-sorted
  // shards, so each edge sees very few distinct labels.
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(4);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  const auto fed = partition_similarity(tt, 10, 3, 0.0, gen);
  for (index_t e = 0; e < 10; ++e) {
    std::set<index_t> labels;
    for (index_t i = 0; i < 3; ++i) {
      for (const index_t y : fed.shard(e, i).y) labels.insert(y);
    }
    EXPECT_LE(labels.size(), 3u);  // at most a couple of boundary labels
  }
}

TEST(Partition, SimilarityOneIsRoughlyUniform) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(5);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  const auto fed = partition_similarity(tt, 10, 3, 1.0, gen);
  for (index_t e = 0; e < 10; ++e) {
    std::set<index_t> labels;
    for (index_t i = 0; i < 3; ++i) {
      for (const index_t y : fed.shard(e, i).y) labels.insert(y);
    }
    EXPECT_EQ(labels.size(), 10u);  // all classes present
  }
}

TEST(Partition, SimilarityTrainSamplesArePartitioned) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(6);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  const auto fed = partition_similarity(tt, 10, 3, 0.5, gen);
  index_t total = 0;
  for (const auto& shard : fed.client_train) total += shard.size();
  EXPECT_EQ(total, tt.train.size());
}

TEST(Partition, SimilarityTestSetMatchesTrainDistribution) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(7);
  const TrainTest tt = split_train_test(all, 0.3, gen);
  const auto fed = partition_similarity(tt, 5, 2, 0.5, gen);
  for (index_t e = 0; e < 5; ++e) {
    // Edge train histogram (over all clients of the edge).
    std::vector<scalar_t> train_frac(10, 0);
    index_t n_train = 0;
    for (index_t i = 0; i < 2; ++i) {
      for (const index_t y : fed.shard(e, i).y) {
        train_frac[static_cast<std::size_t>(y)] += 1;
        ++n_train;
      }
    }
    const auto& test = fed.edge_test[static_cast<std::size_t>(e)];
    std::vector<scalar_t> test_frac(10, 0);
    for (const index_t y : test.y) test_frac[static_cast<std::size_t>(y)] += 1;
    for (index_t c = 0; c < 10; ++c) {
      const double tr = train_frac[static_cast<std::size_t>(c)] / n_train;
      const double te =
          test_frac[static_cast<std::size_t>(c)] / test.size();
      EXPECT_NEAR(te, tr, 0.08) << "edge " << e << " class " << c;
    }
  }
}

TEST(Partition, IidMatchesSimilarityOne) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen_a(8), gen_b(8);
  const TrainTest tt = split_train_test(all, 0.2, gen_a);
  rng::Xoshiro256 gen_c(9), gen_d(9);
  const auto fed_iid = partition_iid(tt, 4, 2, gen_c);
  const auto fed_sim = partition_similarity(tt, 4, 2, 1.0, gen_d);
  EXPECT_EQ(fed_iid.shard(0, 0).y, fed_sim.shard(0, 0).y);
}

TEST(Partition, ByGroupOneEdgePerGroup) {
  const auto groups = make_adult_like({});
  rng::Xoshiro256 gen(10);
  const auto fed = partition_by_group(groups, 3, 0.25, gen);
  EXPECT_EQ(fed.num_edges(), 2);
  EXPECT_EQ(fed.num_clients(), 6);
  fed.validate();
  // Per-edge totals should be ~75% of the group sizes.
  index_t e0 = 0;
  for (index_t i = 0; i < 3; ++i) e0 += fed.shard(0, i).size();
  EXPECT_NEAR(static_cast<double>(e0), 0.75 * groups[0].size(),
              0.05 * groups[0].size());
}

TEST(Partition, ValidationCatchesShapeMismatch) {
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(11);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  auto fed = partition_iid(tt, 2, 2, gen);
  fed.clients_per_edge = 3;  // corrupt
  EXPECT_THROW(fed.validate(), CheckError);
}

TEST(Csv, RoundTripPreservesData) {
  const Dataset original = make_gaussian_classes(
      GaussianSpec{.dim = 5, .num_classes = 3, .num_samples = 40});
  const std::string path = "/tmp/hm_test_data.csv";
  save_csv(path, original);
  const Dataset loaded = load_csv(path, original.num_classes);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  EXPECT_EQ(loaded.y, original.y);
  for (index_t i = 0; i < original.size(); ++i) {
    for (index_t j = 0; j < original.dim(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.x(i, j), original.x(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(Csv, SkipsHeaderAndComments) {
  const std::string path = "/tmp/hm_test_hdr.csv";
  {
    std::ofstream out(path);
    out << "f0,f1,label\n# a comment\n\n1.0,2.0,0\n3.0,4.0,1\n";
  }
  const Dataset d = load_csv(path);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.dim(), 2);
  EXPECT_EQ(d.num_classes, 2);
  EXPECT_DOUBLE_EQ(d.x(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST(Csv, InfersNumClasses) {
  const std::string path = "/tmp/hm_test_cls.csv";
  {
    std::ofstream out(path);
    out << "0.0,0\n0.1,4\n0.2,2\n";
  }
  EXPECT_EQ(load_csv(path).num_classes, 5);
  std::remove(path.c_str());
}

TEST(Csv, RejectsMalformedRows) {
  const std::string path = "/tmp/hm_test_bad.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0,0\n1.0,0\n";  // inconsistent column count
  }
  EXPECT_THROW(load_csv(path), CheckError);
  {
    std::ofstream out(path);
    out << "1.0,2.0,0\n1.0,2.0,1.5\n";  // fractional label
  }
  EXPECT_THROW(load_csv(path), CheckError);
  {
    std::ofstream out(path);
    out << "1.0,2.0,0\nabc,2.0,1\n";  // non-numeric mid-file
  }
  EXPECT_THROW(load_csv(path), CheckError);
  EXPECT_THROW(load_csv("/tmp/hm_no_such_file.csv"), CheckError);
  std::remove(path.c_str());
}

class SimilaritySweep : public ::testing::TestWithParam<double> {};

TEST_P(SimilaritySweep, LabelDiversityGrowsWithSimilarity) {
  const double s = GetParam();
  const Dataset all = make_gaussian_classes({});
  rng::Xoshiro256 gen(12);
  const TrainTest tt = split_train_test(all, 0.2, gen);
  const auto fed = partition_similarity(tt, 10, 3, s, gen);
  fed.validate();
  // Mean distinct labels per edge should be monotone-ish in s; at least
  // verify the two endpoints of the property here per-instance.
  double mean_labels = 0;
  for (index_t e = 0; e < 10; ++e) {
    std::set<index_t> labels;
    for (index_t i = 0; i < 3; ++i) {
      for (const index_t y : fed.shard(e, i).y) labels.insert(y);
    }
    mean_labels += static_cast<double>(labels.size());
  }
  mean_labels /= 10;
  if (s <= 0.01) {
    EXPECT_LE(mean_labels, 3.0);
  }
  if (s >= 0.99) {
    EXPECT_GE(mean_labels, 9.0);
  }
  if (s >= 0.3) {
    EXPECT_GE(mean_labels, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimilaritySweep,
                         ::testing::Values(0.0, 0.3, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace hm::data
