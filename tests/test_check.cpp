// Contract-layer tests: the HM_CHECK tier (always on, throws CheckError)
// and the HM_ASSERT tier (armed here via HM_ENABLE_ASSERTS on this
// target; prints and aborts). Death tests pin down the failure *behavior*
// — a check must not be silently recoverable past corrupted state — and
// the message tests pin down the operand formatting that makes a CI
// sanitizer log actionable without a debugger.
#include <gtest/gtest.h>

#include <string>

#include "core/check.hpp"
#include "tensor/matrix.hpp"

namespace {

using hm::CheckError;

std::string message_of(void (*fn)()) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return "";
}

TEST(HmCheck, PassingConditionIsSilent) {
  EXPECT_NO_THROW(HM_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(HM_CHECK_MSG(true, "unused " << 42));
}

TEST(HmCheck, FailureThrowsCheckError) {
  EXPECT_THROW(HM_CHECK(false), CheckError);
  EXPECT_THROW(HM_CHECK_MSG(false, "ctx"), CheckError);
}

TEST(HmCheck, CheckErrorIsLogicError) {
  // Callers that already catch std::logic_error keep working.
  EXPECT_THROW(HM_CHECK(false), std::logic_error);
}

TEST(HmCheck, MessageCarriesExpressionAndLocation) {
  const std::string what = message_of(+[] { HM_CHECK(2 < 1); });
  EXPECT_NE(what.find("check failed: 2 < 1"), std::string::npos) << what;
  EXPECT_NE(what.find("test_check.cpp:"), std::string::npos) << what;
}

TEST(HmCheck, MsgFormatsOperands) {
  const std::string what = message_of(+[] {
    const int n = -3;
    HM_CHECK_MSG(n > 0, "n=" << n << " must be positive");
  });
  EXPECT_NE(what.find("n=-3 must be positive"), std::string::npos) << what;
}

TEST(HmCheckBounds, InRangeIsSilent) {
  const long i = 4, n = 5;
  EXPECT_NO_THROW(HM_CHECK_BOUNDS(i, n));
  EXPECT_NO_THROW(HM_CHECK_BOUNDS(0, 1));
}

TEST(HmCheckBounds, FailureFormatsBothOperands) {
  const std::string what = message_of(+[] {
    const long idx = 7, len = 5;
    HM_CHECK_BOUNDS(idx, len);
  });
  EXPECT_NE(what.find("index idx=7 out of range [0, len=5)"),
            std::string::npos)
      << what;
}

TEST(HmCheckBounds, NegativeIndexThrows) {
  EXPECT_THROW(HM_CHECK_BOUNDS(-1, 5), CheckError);
  EXPECT_THROW(HM_CHECK_BOUNDS(5, 5), CheckError);
}

TEST(HmCheckBounds, EvaluatesOperandsOnce) {
  int evals = 0;
  auto next = [&evals] { return evals++; };
  HM_CHECK_BOUNDS(next(), 5);
  EXPECT_EQ(evals, 1);
}

// --- death tests -----------------------------------------------------------

using HmCheckDeathTest = ::testing::Test;
using HmAssertDeathTest = ::testing::Test;

TEST(HmCheckDeathTest, UncaughtCheckTerminatesWithMessage) {
  // A CheckError that no frame catches must take the process down with
  // the failed expression visible (std::terminate prints what()). The
  // noexcept boundary models the production case inside the death-test
  // child, since gtest itself would otherwise intercept the exception.
  EXPECT_DEATH({ []() noexcept { HM_CHECK(1 == 2); }(); },
               "check failed: 1 == 2");
}

TEST(HmCheckDeathTest, UncaughtCheckMsgCarriesOperands) {
  EXPECT_DEATH(
      {
        []() noexcept {
          const int got = 9;
          HM_CHECK_MSG(got == 3, "got=" << got);
        }();
      },
      "got=9");
}

TEST(HmAssertDeathTest, PassingAssertIsSilent) {
  HM_ASSERT(true);
  HM_ASSERT_MSG(2 + 2 == 4, "arithmetic");
  HM_ASSERT_BOUNDS(0, 3);
}

TEST(HmAssertDeathTest, FailedAssertAborts) {
  EXPECT_DEATH({ HM_ASSERT(false); }, "assert failed: false");
}

TEST(HmAssertDeathTest, FailedAssertMsgFormatsOperands) {
  EXPECT_DEATH(
      {
        const long left = 0;
        HM_ASSERT_MSG(left >= 1, "latch underflow: left=" << left);
      },
      "latch underflow: left=0");
}

TEST(HmAssertDeathTest, FailedAssertBoundsFormatsOperands) {
  EXPECT_DEATH(
      {
        const long i = 12;
        const long n = 8;
        HM_ASSERT_BOUNDS(i, n);
      },
      "index i=12 out of range \\[0, n=8\\)");
}

TEST(HmAssertDeathTest, MatrixElementAccessIsAssertGuarded) {
  // matrix.hpp deploys HM_ASSERT_BOUNDS in operator(); with asserts
  // armed on this target, an out-of-bounds element access must abort
  // rather than read past the row.
  EXPECT_DEATH(
      {
        hm::tensor::Matrix m(2, 3);
        (void)m(1, 3);
      },
      "assert failed");
}

TEST(HmCheck, MatrixRowIsCheckGuarded) {
  hm::tensor::Matrix m(2, 3);
  EXPECT_THROW((void)m.row(2), CheckError);
  EXPECT_THROW((void)m.view().row(-1), CheckError);
}

}  // namespace
