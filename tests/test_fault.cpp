// Deterministic fault-matrix suite for the fault-injection subsystem:
// every algorithm x every degradation policy x a set of fault scenarios,
// checking (a) bit-identical replay of two same-seed runs, (b) a
// zero-probability enabled plan is bit-identical to the fault-free path
// (golden replay within one binary — no stored hashes, so platform libm
// differences cannot break it), and (c) the minimax weights stay on the
// simplex under renormalization. Plus directed tests for the skip-round
// fallback, the empty-participant regression, end-to-end delivery
// conservation, and the CI smoke target (FaultSmoke).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/fault_config.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "algo/trainer_common.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

// Fingerprinting, fixtures, and the scenario rows live in test_util.hpp,
// shared with the snapshot and adversarial-scenario matrices.
using testing_util::bits;
using testing_util::fault_scenarios;
using testing_util::fingerprint;
using testing_util::heterogeneous_task;
using testing_util::Scenario;

// ---------------------------------------------------------------------
// The matrix axes.

const std::vector<OnFault> kPolicies = {
    OnFault::kRenormalize, OnFault::kReuseStale, OnFault::kSkipRound};

TrainOptions fault_opts(const sim::FaultSpec& spec, OnFault policy) {
  TrainOptions o;
  o.rounds = 6;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  o.sampled_edges = 3;    // partial participation in both phases
  o.sampled_clients = 5;
  o.fault = spec;
  o.on_fault = policy;
  return o;
}

MultiTrainOptions multi_fault_opts(const sim::FaultSpec& spec,
                                   OnFault policy) {
  MultiTrainOptions o;
  o.rounds = 5;
  o.taus = {2, 2};
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  o.sampled_areas = 3;
  o.fault = spec;
  o.on_fault = policy;
  return o;
}

/// One fixture per algorithm: run under (spec, policy) and fingerprint.
/// The fault-free baseline is the same run with a default (disabled)
/// FaultSpec.
struct Algorithm {
  std::string name;
  std::uint64_t (*run)(const sim::FaultSpec&, OnFault, bool model_only);
  std::vector<scalar_t> (*weights)(const sim::FaultSpec&, OnFault);
};

const data::FederatedDataset& shared_task() {
  static const data::FederatedDataset fed = heterogeneous_task(4, 2);
  return fed;
}

std::vector<Algorithm> algorithms() {
  std::vector<Algorithm> out;
  out.push_back(
      {"fedavg",
       [](const sim::FaultSpec& s, OnFault p, bool mo) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(train_fedavg(model, fed, fault_opts(s, p)), mo);
       },
       [](const sim::FaultSpec& s, OnFault p) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return train_fedavg(model, fed, fault_opts(s, p)).p;
       }});
  out.push_back(
      {"hierfavg",
       [](const sim::FaultSpec& s, OnFault p, bool mo) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(train_hierfavg(model, fed, topo, fault_opts(s, p)),
                            mo);
       },
       [](const sim::FaultSpec& s, OnFault p) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return train_hierfavg(model, fed, topo, fault_opts(s, p)).p;
       }});
  out.push_back(
      {"drfa",
       [](const sim::FaultSpec& s, OnFault p, bool mo) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(train_drfa(model, fed, fault_opts(s, p)), mo);
       },
       [](const sim::FaultSpec& s, OnFault p) {
         const auto& fed = shared_task();
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return train_drfa(model, fed, fault_opts(s, p)).p;
       }});
  out.push_back(
      {"hierminimax",
       [](const sim::FaultSpec& s, OnFault p, bool mo) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(
             train_hierminimax(model, fed, topo, fault_opts(s, p)), mo);
       },
       [](const sim::FaultSpec& s, OnFault p) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return train_hierminimax(model, fed, topo, fault_opts(s, p)).p;
       }});
  out.push_back(
      {"hierminimax_multi",
       [](const sim::FaultSpec& s, OnFault p, bool mo) {
         const auto& fed = shared_task();
         const sim::MultiTopology topo({fed.num_edges(),
                                        fed.clients_per_edge});
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(
             train_hierminimax_multi(model, fed, topo,
                                     multi_fault_opts(s, p)),
             mo);
       },
       [](const sim::FaultSpec& s, OnFault p) {
         const auto& fed = shared_task();
         const sim::MultiTopology topo({fed.num_edges(),
                                        fed.clients_per_edge});
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return train_hierminimax_multi(model, fed, topo,
                                        multi_fault_opts(s, p))
             .p;
       }});
  return out;
}

// ---------------------------------------------------------------------
// (a) Bit-identical replay: same seed, same plan -> identical everything,
// fault counters included.

TEST(FaultMatrix, SameSeedRunsReplayBitIdentically) {
  for (const auto& algo : algorithms()) {
    for (const auto& sc : fault_scenarios()) {
      for (const OnFault policy : kPolicies) {
        const auto a = algo.run(sc.spec, policy, /*model_only=*/false);
        const auto b = algo.run(sc.spec, policy, /*model_only=*/false);
        EXPECT_EQ(a, b) << algo.name << " x " << sc.name << " x "
                        << to_string(policy);
      }
    }
  }
}

// (b) Golden replay: the enabled zero-probability plan must produce a
// bit-identical model trajectory to the pre-fault (disabled) path under
// every policy — the fault layer is pay-for-what-you-use.

TEST(FaultMatrix, ZeroProbabilityPlanMatchesFaultFreePath) {
  const sim::FaultSpec disabled;  // default: enabled == false
  sim::FaultSpec zero;
  zero.enabled = true;  // fault code path on, nothing ever fails
  for (const auto& algo : algorithms()) {
    const auto golden =
        algo.run(disabled, OnFault::kRenormalize, /*model_only=*/true);
    for (const OnFault policy : kPolicies) {
      EXPECT_EQ(algo.run(zero, policy, /*model_only=*/true), golden)
          << algo.name << " x " << to_string(policy);
    }
  }
}

// (c) Renormalization keeps the minimax weights on the (capped) simplex.

TEST(FaultMatrix, WeightsStayOnSimplexUnderRenormalization) {
  for (const auto& algo : algorithms()) {
    for (const auto& sc : fault_scenarios()) {
      const auto p = algo.weights(sc.spec, OnFault::kRenormalize);
      ASSERT_FALSE(p.empty()) << algo.name;
      scalar_t sum = 0;
      for (const scalar_t x : p) {
        EXPECT_GE(x, -1e-12) << algo.name << " x " << sc.name;
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << algo.name << " x " << sc.name;
    }
  }
}

// ---------------------------------------------------------------------
// Skip-round fallback: when every report is lost, kSkipRound must leave
// the model exactly at its (deterministic) initialization no matter how
// many rounds elapse.

TEST(FaultPolicy, SkipRoundUnderTotalDropoutFreezesTheModel) {
  sim::FaultSpec all_lost;
  all_lost.enabled = true;
  all_lost.client_dropout_prob = 1.0;

  const auto& fed = shared_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts3 = fault_opts(all_lost, OnFault::kSkipRound);
  opts3.rounds = 3;
  auto opts7 = fault_opts(all_lost, OnFault::kSkipRound);
  opts7.rounds = 7;
  const auto r3 = train_fedavg(model, fed, opts3);
  const auto r7 = train_fedavg(model, fed, opts7);
  ASSERT_EQ(r3.w.size(), r7.w.size());
  for (std::size_t i = 0; i < r3.w.size(); ++i) {
    EXPECT_EQ(bits(r3.w[i]), bits(r7.w[i])) << i;
  }
  // Every offered report was metered as lost.
  EXPECT_EQ(r7.comm.edge_cloud_fault.delivered, 0u);
  EXPECT_GT(r7.comm.edge_cloud_fault.dropped, 0u);
}

// An empty surviving set skips the round under every policy — including
// kRenormalize, which would otherwise divide by a zero total.

TEST(FaultPolicy, EmptySurvivorsSkipUnderEveryPolicy) {
  sim::FaultSpec all_lost;
  all_lost.enabled = true;
  all_lost.client_dropout_prob = 1.0;
  const auto& fed = shared_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  std::vector<std::uint64_t> fps;
  for (const OnFault policy : kPolicies) {
    auto opts = fault_opts(all_lost, policy);
    const auto r = train_hierminimax(
        model, fed, sim::HierTopology(fed.num_edges(), fed.clients_per_edge),
        opts);
    fps.push_back(fingerprint(r, /*model_only=*/true));
  }
  // With zero survivors the policies cannot diverge: all skip.
  EXPECT_EQ(fps[0], fps[1]);
  EXPECT_EQ(fps[0], fps[2]);
}

// ---------------------------------------------------------------------
// Regression: Participants::from_draws on an empty draw list, and the
// aggregation behavior that hangs off it.

TEST(Participants, EmptyDrawsYieldEmptyParticipants) {
  const auto p = detail::Participants::from_draws({});
  EXPECT_TRUE(p.ids.empty());
  EXPECT_TRUE(p.multiplicity.empty());
  EXPECT_EQ(p.total, 0);
  // The strict aggregator refuses an empty set...
  std::vector<std::vector<scalar_t>> vectors;
  std::vector<scalar_t> out(3, 0);
  EXPECT_THROW(detail::weighted_average(vectors, p, out), CheckError);
  // ...while the degraded one reports "skip this round" for every policy.
  detail::StaleStore stale;
  for (const OnFault policy : kPolicies) {
    std::vector<scalar_t> w = {1, 2, 3};
    EXPECT_FALSE(detail::degraded_weighted_average(
        vectors, p, {}, policy, 0.5, 0, stale, w, w));
    EXPECT_EQ(w, (std::vector<scalar_t>{1, 2, 3}));  // untouched
  }
}

// ---------------------------------------------------------------------
// End-to-end conservation: after a faulty training run, every wire
// attempt on every link resolved to exactly one of the three states.

TEST(FaultAccounting, EndToEndConservation) {
  sim::FaultSpec spec;
  spec.enabled = true;
  spec.client_dropout_prob = 0.25;
  spec.straggler_prob = 0.3;
  spec.edge_loss_prob = 0.35;
  spec.max_retries = 2;
  const auto& fed = shared_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto r = train_hierminimax(
      model, fed, topo, fault_opts(spec, OnFault::kRenormalize));
  for (const auto* link :
       {&r.comm.client_edge_fault, &r.comm.edge_cloud_fault}) {
    EXPECT_EQ(link->attempted,
              link->delivered + link->dropped + link->in_retry);
  }
  // The faulty wide-area link actually exercised retries and drops.
  EXPECT_GT(r.comm.edge_cloud_fault.in_retry, 0u);
  EXPECT_GT(r.comm.msgs_dropped(), 0u);
  EXPECT_GT(r.comm.msgs_straggled(), 0u);
}

// ---------------------------------------------------------------------
// CI smoke target: one HierMinimax round under 50% dropout. The ASan+
// UBSan smoke job runs exactly this filter.

TEST(FaultSmoke, HierMinimaxOneRoundHalfDropout) {
  sim::FaultSpec spec;
  spec.enabled = true;
  spec.client_dropout_prob = 0.5;
  const auto& fed = shared_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = fault_opts(spec, OnFault::kRenormalize);
  opts.rounds = 1;
  const auto r = train_hierminimax(model, fed, topo, opts);
  EXPECT_EQ(r.w.size(), static_cast<std::size_t>(model.num_params()));
  EXPECT_EQ(r.comm.client_edge_fault.attempted,
            r.comm.client_edge_fault.delivered +
                r.comm.client_edge_fault.dropped +
                r.comm.client_edge_fault.in_retry);
}

}  // namespace
}  // namespace hm::algo
