// Transport layer suite:
//   (a) frame codec: round-trip, the full corruption/truncation decode
//       table, and the pinned FrameError taxonomy names,
//   (b) frames over a real socketpair: delivery, timeout before a frame,
//       torn writes (via the FrameFaultHook seam), boundary close,
//   (c) transports: loopback echo + stats, socket retry-after-slow-start,
//       timeout demotion, kill injection, orderly shutdown with no
//       leaked fds and no zombie children,
//   (d) the tentpole acceptance: HierMinimax over loopback and socket
//       backends is bit-identical (w, p, history TSV, comm counters) to
//       the in-process oracle — clean, and with a worker SIGKILLed at
//       each kill point under each OnFault policy, where the dead
//       process must degrade exactly like the equivalent in-proc
//       edge-crash fault plan.
//
// NOT labeled PARALLEL in tests/CMakeLists.txt: the socket backend forks
// workers, and TSan does not support fork from a threaded process. The
// ASan+UBSan CI leg covers this suite instead (workers _exit, so LSan
// never scans the children).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algo/fault_config.hpp"
#include "algo/hierminimax.hpp"
#include "io/snapshot.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::expect_same_output;
using testing_util::heterogeneous_task;
using testing_util::output_of;
using testing_util::RunOutput;

std::chrono::steady_clock::time_point in_ms(int ms) {
  return net::MonoClock::now() + std::chrono::milliseconds(ms);
}

net::Frame sample_frame() {
  net::Frame f;
  f.type = net::FrameType::kReply;
  f.seq = 0x1122334455667788ull;
  f.tag = 42;
  f.payload.resize(257);
  for (std::size_t i = 0; i < f.payload.size(); ++i) {
    f.payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  return f;
}

// ---------------------------------------------------------------------
// (a) Frame codec.

TEST(FrameCodec, RoundTripPreservesEverything) {
  const net::Frame f = sample_frame();
  const auto bytes = net::encode_frame(f);
  ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + f.payload.size());

  net::Frame out;
  std::string detail;
  ASSERT_EQ(net::decode_frame(bytes.data(), bytes.size(), out, &detail),
            net::FrameError::kOk)
      << detail;
  EXPECT_EQ(out.type, f.type);
  EXPECT_EQ(out.seq, f.seq);
  EXPECT_EQ(out.tag, f.tag);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  net::Frame f;
  f.type = net::FrameType::kPing;
  f.seq = 5;
  const auto bytes = net::encode_frame(f);
  ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes);
  net::Frame out;
  ASSERT_EQ(net::decode_frame(bytes.data(), bytes.size(), out),
            net::FrameError::kOk);
  EXPECT_EQ(out.type, net::FrameType::kPing);
  EXPECT_TRUE(out.payload.empty());
}

/// The taxonomy names are diagnostics the transport quotes verbatim;
/// pin them so log output stays greppable.
TEST(FrameCodec, ErrorNamesArePinned) {
  EXPECT_STREQ(net::frame_error_name(net::FrameError::kOk), "ok");
  EXPECT_STREQ(net::frame_error_name(net::FrameError::kClosed), "closed");
  EXPECT_STREQ(net::frame_error_name(net::FrameError::kTorn), "torn");
  EXPECT_STREQ(net::frame_error_name(net::FrameError::kCorrupt), "corrupt");
  EXPECT_STREQ(net::frame_error_name(net::FrameError::kTimeout), "timeout");
}

/// Decode table: every damage class maps to the documented FrameError —
/// and in particular "no data" (kClosed) and "mid-frame cut" (kTorn)
/// stay distinguishable from structural corruption (kCorrupt).
TEST(FrameCodec, DamageTableMapsToTheDocumentedErrors) {
  const auto good = net::encode_frame(sample_frame());
  net::Frame out;
  std::string detail;

  // No data at all: benign close, not an error.
  EXPECT_EQ(net::decode_frame(good.data(), 0, out, &detail),
            net::FrameError::kClosed);
  EXPECT_EQ(detail, "empty buffer (closed)");

  // Cut mid-header / mid-payload: torn.
  EXPECT_EQ(net::decode_frame(good.data(), 10, out, &detail),
            net::FrameError::kTorn);
  EXPECT_EQ(detail, "short header (torn frame)");
  EXPECT_EQ(net::decode_frame(good.data(), good.size() - 3, out, &detail),
            net::FrameError::kTorn);
  EXPECT_EQ(detail, "short payload (torn frame)");

  // Structural damage: corrupt, with the cause named.
  auto bad = good;
  bad[0] ^= 0xff;  // magic
  EXPECT_EQ(net::decode_frame(bad.data(), bad.size(), out, &detail),
            net::FrameError::kCorrupt);
  EXPECT_EQ(detail, "bad magic");

  bad = good;
  bad[4] ^= 0xff;  // version
  EXPECT_EQ(net::decode_frame(bad.data(), bad.size(), out, &detail),
            net::FrameError::kCorrupt);
  EXPECT_EQ(detail, "unsupported frame version");

  bad = good;
  bad[44] ^= 0x01;  // header CRC itself
  EXPECT_EQ(net::decode_frame(bad.data(), bad.size(), out, &detail),
            net::FrameError::kCorrupt);
  EXPECT_EQ(detail, "header checksum mismatch");

  bad = good;
  bad[8] = 99;  // frame type, with the header CRC re-stamped to match
  const std::uint32_t fixed = io::crc32(bad.data(), 44);
  std::memcpy(bad.data() + 44, &fixed, sizeof(fixed));
  EXPECT_EQ(net::decode_frame(bad.data(), bad.size(), out, &detail),
            net::FrameError::kCorrupt);
  EXPECT_EQ(detail, "unknown frame type");

  bad = good;
  bad[net::kFrameHeaderBytes + 5] ^= 0x20;  // payload bit flip
  EXPECT_EQ(net::decode_frame(bad.data(), bad.size(), out, &detail),
            net::FrameError::kCorrupt);
  EXPECT_EQ(detail, "payload checksum mismatch");

  bad = good;
  bad.push_back(0);  // trailing garbage
  EXPECT_EQ(net::decode_frame(bad.data(), bad.size(), out, &detail),
            net::FrameError::kCorrupt);
  EXPECT_EQ(detail, "trailing bytes after frame");
}

// ---------------------------------------------------------------------
// (b) Frames over a real socketpair.

class Socketpair {
 public:
  Socketpair() {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a_ = sv[0];
    b_ = sv[1];
  }
  ~Socketpair() {
    close_a();
    close_b();
  }
  int a() const { return a_; }
  int b() const { return b_; }
  void close_a() {
    if (a_ >= 0) ::close(a_);
    a_ = -1;
  }
  void close_b() {
    if (b_ >= 0) ::close(b_);
    b_ = -1;
  }

 private:
  int a_ = -1, b_ = -1;
};

TEST(FrameWire, SendAndRecvAcrossASocketpair) {
  Socketpair sp;
  const net::Frame f = sample_frame();
  ASSERT_EQ(net::send_frame(sp.a(), f, in_ms(2000)), net::FrameError::kOk);

  net::Frame out;
  std::string detail;
  ASSERT_EQ(net::recv_frame(sp.b(), out, in_ms(2000), &detail),
            net::FrameError::kOk)
      << detail;
  EXPECT_EQ(out.seq, f.seq);
  EXPECT_EQ(out.tag, f.tag);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(FrameWire, DeadlineBeforeAnyByteIsATimeout) {
  Socketpair sp;
  net::Frame out;
  std::string detail;
  EXPECT_EQ(net::recv_frame(sp.b(), out, in_ms(50), &detail),
            net::FrameError::kTimeout);
  EXPECT_EQ(detail, "deadline expired waiting for a frame");
}

TEST(FrameWire, PeerCloseAtBoundaryIsClosedNotTorn) {
  Socketpair sp;
  sp.close_a();
  net::Frame out;
  std::string detail;
  EXPECT_EQ(net::recv_frame(sp.b(), out, in_ms(200), &detail),
            net::FrameError::kClosed);
  EXPECT_EQ(detail, "peer closed at frame boundary");
}

/// The FrameFaultHook seam models a writer dying mid-frame: the reader
/// must report kTorn (unrecoverable), never kClosed or a bogus decode.
TEST(FrameWire, TruncatedWriteThenCloseIsTorn) {
  for (const std::uint64_t cut :
       {std::uint64_t{5}, net::kFrameHeaderBytes + std::uint64_t{8}}) {
    Socketpair sp;
    const net::FrameFaultHook hook{cut};
    net::set_frame_fault_hook(&hook);
    ASSERT_EQ(net::send_frame(sp.a(), sample_frame(), in_ms(2000)),
              net::FrameError::kOk);
    net::set_frame_fault_hook(nullptr);
    sp.close_a();

    net::Frame out;
    std::string detail;
    EXPECT_EQ(net::recv_frame(sp.b(), out, in_ms(2000), &detail),
              net::FrameError::kTorn)
        << "cut=" << cut << " " << detail;
  }
}

// ---------------------------------------------------------------------
// (c) Transport backends.

bool no_children_remain() {
  int status = 0;
  const pid_t r = ::waitpid(-1, &status, WNOHANG);
  return r == -1 && errno == ECHILD;
}

int open_fd_count() {
  int n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

net::HandlerFactory echo_factory() {
  return [](index_t lane) {
    return [lane](std::uint64_t tag, const net::Bytes& req) {
      net::Bytes out = req;
      out.push_back(static_cast<std::uint8_t>(tag));
      out.push_back(static_cast<std::uint8_t>(lane));
      return out;
    };
  };
}

TEST(TransportKinds, NamesParseAndPrint) {
  net::TransportKind k = net::TransportKind::kSocket;
  EXPECT_TRUE(net::parse_transport_kind("inproc", k));
  EXPECT_EQ(k, net::TransportKind::kInproc);
  EXPECT_TRUE(net::parse_transport_kind("loopback", k));
  EXPECT_EQ(k, net::TransportKind::kLoopback);
  EXPECT_TRUE(net::parse_transport_kind("socket", k));
  EXPECT_EQ(k, net::TransportKind::kSocket);
  EXPECT_FALSE(net::parse_transport_kind("carrier-pigeon", k));
  EXPECT_STREQ(net::to_string(net::TransportKind::kInproc), "inproc");
  EXPECT_STREQ(net::to_string(net::TransportKind::kLoopback), "loopback");
  EXPECT_STREQ(net::to_string(net::TransportKind::kSocket), "socket");
}

TEST(LoopbackTransport, EchoesThroughTheWireCodecAndMeters) {
  auto t = net::make_loopback_transport(2, echo_factory());
  EXPECT_EQ(t->lanes(), 2);
  EXPECT_FALSE(t->fallible());

  std::vector<std::optional<net::RpcRequest>> reqs(2);
  reqs[0] = net::RpcRequest{7, {1, 2, 3}};
  // Lane 1 idle this round.
  const auto replies = t->exchange(reqs);
  ASSERT_EQ(replies.size(), 2u);
  ASSERT_TRUE(replies[0].has_value());
  EXPECT_EQ(*replies[0], (net::Bytes{1, 2, 3, 7, 0}));
  EXPECT_FALSE(replies[1].has_value());
  EXPECT_TRUE(t->lane_up(0));
  EXPECT_TRUE(t->lane_up(1));
  // One request + one reply crossed the (simulated) wire.
  EXPECT_EQ(t->stats().frames_sent, 1u);
  EXPECT_EQ(t->stats().frames_received, 1u);
  EXPECT_GT(t->stats().bytes_sent, 0u);
  t->shutdown();
}

TEST(SocketTransport, ExchangeRoundTripsAndShutdownLeaksNothing) {
  const int fds_before = open_fd_count();
  {
    net::TransportSpec spec;
    spec.kind = net::TransportKind::kSocket;
    auto t = net::make_socket_transport(spec, 3, echo_factory());
    EXPECT_TRUE(t->fallible());

    std::vector<std::optional<net::RpcRequest>> reqs(3);
    for (index_t l = 0; l < 3; ++l) {
      reqs[static_cast<std::size_t>(l)] =
          net::RpcRequest{static_cast<std::uint64_t>(l + 10),
                          {static_cast<std::uint8_t>(l)}};
    }
    const auto replies = t->exchange(reqs);
    for (index_t l = 0; l < 3; ++l) {
      const auto& r = replies[static_cast<std::size_t>(l)];
      ASSERT_TRUE(r.has_value()) << "lane " << l;
      EXPECT_EQ(*r, (net::Bytes{static_cast<std::uint8_t>(l),
                                static_cast<std::uint8_t>(l + 10),
                                static_cast<std::uint8_t>(l)}));
    }
    t->check_liveness();
    for (index_t l = 0; l < 3; ++l) EXPECT_TRUE(t->lane_up(l));
    EXPECT_EQ(t->stats().worker_deaths, 0u);
    t->shutdown();
    EXPECT_TRUE(no_children_remain());
  }
  EXPECT_EQ(open_fd_count(), fds_before);
}

/// A worker that is merely slow to boot must be absorbed by the retry
/// envelope: the first attempt times out, the retransmission (with its
/// backoff-extended deadline) succeeds, and the lane stays up.
TEST(SocketTransport, SlowWorkerIsAbsorbedByRetries) {
  net::TransportSpec spec;
  spec.kind = net::TransportKind::kSocket;
  spec.rpc_timeout_ms = 300;
  spec.rpc_retries = 3;
  spec.rpc_backoff_ms = 400;
  auto t = net::make_socket_transport(spec, 1, [](index_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    return [](std::uint64_t tag, const net::Bytes& req) {
      net::Bytes out = req;
      out.push_back(static_cast<std::uint8_t>(tag));
      return out;
    };
  });
  std::vector<std::optional<net::RpcRequest>> reqs(1);
  reqs[0] = net::RpcRequest{7, {9}};
  const auto replies = t->exchange(reqs);
  ASSERT_TRUE(replies[0].has_value());
  EXPECT_EQ(*replies[0], (net::Bytes{9, 7}));
  EXPECT_TRUE(t->lane_up(0));
  EXPECT_GE(t->stats().retries, 1u);
  EXPECT_EQ(t->stats().worker_deaths, 0u);
  t->shutdown();
  EXPECT_TRUE(no_children_remain());
}

/// A lane that exhausts its retry budget is demoted — and shutdown must
/// still reap the (hung) worker without hanging itself.
TEST(SocketTransport, UnresponsiveLaneTimesOutAndIsDemoted) {
  net::TransportSpec spec;
  spec.kind = net::TransportKind::kSocket;
  spec.rpc_timeout_ms = 100;
  spec.rpc_retries = 1;
  spec.rpc_backoff_ms = 50;
  auto t = net::make_socket_transport(spec, 2, [](index_t lane) {
    return [lane](std::uint64_t tag, const net::Bytes& req) {
      if (lane == 1) {  // hang forever; SIGKILL is the only way out
        std::this_thread::sleep_for(std::chrono::hours(1));
      }
      net::Bytes out = req;
      out.push_back(static_cast<std::uint8_t>(tag));
      return out;
    };
  });
  std::vector<std::optional<net::RpcRequest>> reqs(2);
  reqs[0] = net::RpcRequest{3, {1}};
  reqs[1] = net::RpcRequest{3, {2}};
  const auto replies = t->exchange(reqs);
  ASSERT_TRUE(replies[0].has_value());
  EXPECT_FALSE(replies[1].has_value());
  EXPECT_TRUE(t->lane_up(0));
  EXPECT_FALSE(t->lane_up(1));
  EXPECT_GE(t->stats().retries, 1u);
  EXPECT_GE(t->stats().timeouts, 1u);
  t->shutdown();
  EXPECT_TRUE(no_children_remain());
}

/// Kill injection at the transport level: the targeted worker dies on
/// the matching tag, the other lane is unaffected, and a liveness sweep
/// confirms the demotion.
TEST(SocketTransport, KillInjectionDemotesOnlyTheTargetLane) {
  for (const net::KillPoint point :
       {net::KillPoint::kPreHandle, net::KillPoint::kTornReply,
        net::KillPoint::kPostReply}) {
    net::TransportSpec spec;
    spec.kind = net::TransportKind::kSocket;
    spec.kill = net::KillSpec{0, 42, point};
    auto t = net::make_socket_transport(spec, 2, echo_factory());

    // Payloads well past the torn-reply truncation point, so the
    // kTornReply worker really does die mid-frame.
    std::vector<std::optional<net::RpcRequest>> reqs(2);
    reqs[0] = net::RpcRequest{42, net::Bytes(64, 1)};
    reqs[1] = net::RpcRequest{42, net::Bytes(64, 2)};
    const auto replies = t->exchange(reqs);
    ASSERT_TRUE(replies[1].has_value());
    if (point == net::KillPoint::kPostReply) {
      // The full reply made it out before the crash.
      ASSERT_TRUE(replies[0].has_value());
    } else {
      EXPECT_FALSE(replies[0].has_value())
          << "point=" << static_cast<int>(point);
    }
    t->check_liveness();
    EXPECT_FALSE(t->lane_up(0));
    EXPECT_TRUE(t->lane_up(1));
    EXPECT_GE(t->stats().worker_deaths, 1u);
    t->shutdown();
    EXPECT_TRUE(no_children_remain());
  }
}

// ---------------------------------------------------------------------
// (d) Trainer acceptance: backends vs the in-proc oracle.

TrainOptions transport_opts() {
  TrainOptions o;
  o.rounds = 4;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 2;
  o.seed = 9;
  return o;
}

RunOutput run_with(const TrainOptions& opts) {
  const auto& fed = []() -> const data::FederatedDataset& {
    static const data::FederatedDataset f = heterogeneous_task(4, 2);
    return f;
  }();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  return output_of(train_hierminimax(model, fed, topo, opts));
}

TEST(TransportOracle, LoopbackIsBitIdenticalToInproc) {
  const RunOutput oracle = run_with(transport_opts());
  for (const index_t workers : {index_t{0}, index_t{1}, index_t{3}}) {
    TrainOptions o = transport_opts();
    o.transport.kind = net::TransportKind::kLoopback;
    o.transport.workers = workers;
    expect_same_output(oracle, run_with(o),
                       "loopback workers=" + std::to_string(workers));
  }
}

TEST(TransportOracle, SocketIsBitIdenticalToInprocAndLeaksNothing) {
  const RunOutput oracle = run_with(transport_opts());
  const int fds_before = open_fd_count();
  TrainOptions o = transport_opts();
  o.transport.kind = net::TransportKind::kSocket;
  o.transport.workers = 3;  // uneven lane/edge split on 4 edges
  expect_same_output(oracle, run_with(o), "socket workers=3");
  EXPECT_EQ(open_fd_count(), fds_before);
  EXPECT_TRUE(no_children_remain());
}

/// Backends must also agree under partial edge participation (the lane
/// grouping then changes round to round) and an active fault plan.
TEST(TransportOracle, BackendsAgreeUnderSamplingAndFaults) {
  TrainOptions base = transport_opts();
  base.sampled_edges = 3;
  base.fault.enabled = true;
  base.fault.client_dropout_prob = 0.25;
  base.fault.straggler_prob = 0.3;
  base.fault.edge_loss_prob = 0.2;
  base.on_fault = OnFault::kReuseStale;

  const RunOutput oracle = run_with(base);
  TrainOptions lo = base;
  lo.transport.kind = net::TransportKind::kLoopback;
  expect_same_output(oracle, run_with(lo), "loopback+faults");
  TrainOptions so = base;
  so.transport.kind = net::TransportKind::kSocket;
  so.transport.workers = 2;
  expect_same_output(oracle, run_with(so), "socket+faults");
  EXPECT_TRUE(no_children_remain());
}

/// The kill matrix. Worker 1 of 2 serves edges {1, 3} (lane = edge % 2).
/// SIGKILLing it {before handling, mid-reply-frame, after the reply} is
/// observed by the coordinator at a known round, so each cell must be
/// bit-identical to the in-proc oracle whose FaultSpec crashes exactly
/// those edges at that round — under every OnFault policy. Both sides
/// run an enabled zero-probability plan so degraded-mode metering is
/// active in both.
TEST(TransportOracle, KillMatrixMatchesTheEdgeCrashOracle) {
  struct KillCase {
    const char* name;
    net::KillPoint point;
    std::uint64_t tag;    // 2*round + (phase - 1)
    index_t crash_round;  // oracle crash round for lane-1 edges
  };
  // pre/torn at round 1 phase 1: the round-1 request dies -> the oracle
  // crashes the edges at round 1. post at round 1 phase 2: the round
  // completes, the corpse is found at round 2's liveness sweep.
  const KillCase cases[] = {
      {"pre", net::KillPoint::kPreHandle, 2, 1},
      {"torn", net::KillPoint::kTornReply, 2, 1},
      {"post", net::KillPoint::kPostReply, 3, 2},
  };
  const OnFault policies[] = {OnFault::kRenormalize, OnFault::kReuseStale,
                              OnFault::kSkipRound};

  TrainOptions base = transport_opts();
  base.fault.enabled = true;  // zero probabilities: only the crash differs

  std::map<std::pair<index_t, int>, RunOutput> oracles;
  for (const OnFault policy : policies) {
    for (const KillCase& kc : cases) {
      const auto key = std::make_pair(kc.crash_round, static_cast<int>(policy));
      if (oracles.find(key) == oracles.end()) {
        TrainOptions o = base;
        o.on_fault = policy;
        o.fault.edge_crash_round = {-1, kc.crash_round, -1, kc.crash_round};
        oracles.emplace(key, run_with(o));
      }

      TrainOptions s = base;
      s.on_fault = policy;
      s.transport.kind = net::TransportKind::kSocket;
      s.transport.workers = 2;
      s.transport.kill = net::KillSpec{1, kc.tag, kc.point};
      expect_same_output(
          oracles.at(key), run_with(s),
          std::string("kill=") + kc.name + " policy=" + to_string(policy));
    }
  }
  EXPECT_TRUE(no_children_remain());
}

}  // namespace
}  // namespace hm::algo
