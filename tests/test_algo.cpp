// Tests for the shared algorithm machinery (local SGD, participant
// bookkeeping) and the baseline trainers (FedAvg, HierFAVG, DRFA/AFL):
// convergence on easy tasks, communication accounting, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/local_sgd.hpp"
#include "algo/trainer_common.hpp"
#include "nn/softmax_regression.hpp"
#include "tensor/vecops.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::heterogeneous_task;
using testing_util::iid_task;

TEST(LocalSgd, ReducesLossOnShard) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto& shard = fed.client_train[0];
  std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
  ClientScratch scratch;
  scratch.ensure(model);
  auto ws = model.make_workspace();
  const auto batch = nn::all_indices(shard.size());
  const scalar_t before = model.loss(w, shard, batch, *ws);
  LocalSgdConfig cfg;
  cfg.steps = 200;
  cfg.batch_size = 8;
  cfg.eta = 0.1;
  rng::Xoshiro256 gen(1);
  run_local_sgd(model, shard, cfg, w, {}, gen, scratch);
  EXPECT_LT(model.loss(w, shard, batch, *ws), 0.7 * before);
}

TEST(LocalSgd, CheckpointCapturesIntermediateIterate) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto& shard = fed.client_train[0];
  const auto d = static_cast<std::size_t>(model.num_params());

  // Run 5 steps with checkpoint at step 3.
  std::vector<scalar_t> w5(d, 0), ckpt(d, 0);
  LocalSgdConfig cfg;
  cfg.steps = 5;
  cfg.batch_size = 4;
  cfg.eta = 0.05;
  cfg.checkpoint_step = 3;
  ClientScratch scratch;
  rng::Xoshiro256 gen_a(9);
  run_local_sgd(model, shard, cfg, w5, ckpt, gen_a, scratch);

  // Reference: 3 steps with the same stream must equal the checkpoint.
  std::vector<scalar_t> w3(d, 0);
  LocalSgdConfig cfg3;
  cfg3.steps = 3;
  cfg3.batch_size = 4;
  cfg3.eta = 0.05;
  rng::Xoshiro256 gen_b(9);
  run_local_sgd(model, shard, cfg3, w3, {}, gen_b, scratch);
  for (std::size_t i = 0; i < d; ++i) EXPECT_DOUBLE_EQ(ckpt[i], w3[i]);
  // And the final iterate moved past the checkpoint.
  EXPECT_GT(tensor::dist2(w5, ckpt), 0);
}

TEST(LocalSgd, CheckpointAtFinalStepEqualsResult) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto& shard = fed.client_train[0];
  const auto d = static_cast<std::size_t>(model.num_params());
  std::vector<scalar_t> w(d, 0), ckpt(d, 0);
  LocalSgdConfig cfg;
  cfg.steps = 4;
  cfg.batch_size = 2;
  cfg.eta = 0.05;
  cfg.checkpoint_step = 4;
  ClientScratch scratch;
  rng::Xoshiro256 gen(10);
  run_local_sgd(model, shard, cfg, w, ckpt, gen, scratch);
  for (std::size_t i = 0; i < d; ++i) EXPECT_DOUBLE_EQ(ckpt[i], w[i]);
}

TEST(LocalSgd, ProjectionKeepsIterateInBall) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
  LocalSgdConfig cfg;
  cfg.steps = 100;
  cfg.batch_size = 4;
  cfg.eta = 0.5;  // aggressive, would escape a small ball
  cfg.w_radius = 0.2;
  ClientScratch scratch;
  rng::Xoshiro256 gen(11);
  run_local_sgd(model, fed.client_train[0], cfg, w, {}, gen, scratch);
  EXPECT_LE(tensor::nrm2(w), 0.2 + 1e-9);
}

TEST(LocalSgd, WeightDecayShrinksParameterNorm) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto& shard = fed.client_train[0];
  auto run_with_decay = [&](scalar_t decay) {
    std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
    LocalSgdConfig cfg;
    cfg.steps = 300;
    cfg.batch_size = 8;
    cfg.eta = 0.1;
    cfg.weight_decay = decay;
    ClientScratch scratch;
    rng::Xoshiro256 gen(21);
    run_local_sgd(model, shard, cfg, w, {}, gen, scratch);
    return tensor::nrm2(w);
  };
  const scalar_t plain = run_with_decay(0.0);
  const scalar_t decayed = run_with_decay(0.5);
  EXPECT_LT(decayed, plain);
  EXPECT_GT(decayed, 0);
}

TEST(LocalSgd, ProximalTermLimitsDrift) {
  // With a strong proximal anchor the iterate stays near its start even
  // after many steps on skewed data.
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto& shard = fed.client_train[0];  // single-class shard -> drift
  auto drift_with_mu = [&](scalar_t mu) {
    std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
    LocalSgdConfig cfg;
    cfg.steps = 200;
    cfg.batch_size = 8;
    cfg.eta = 0.1;
    cfg.prox_mu = mu;
    ClientScratch scratch;
    rng::Xoshiro256 gen(31);
    run_local_sgd(model, shard, cfg, w, {}, gen, scratch);
    return tensor::nrm2(w);  // start was 0, so norm == drift
  };
  const scalar_t free_drift = drift_with_mu(0.0);
  const scalar_t anchored = drift_with_mu(5.0);
  EXPECT_LT(anchored, 0.5 * free_drift);
  EXPECT_GT(anchored, 0);
}

TEST(Participants, DedupAndMultiplicity) {
  const auto p = detail::Participants::from_draws({3, 1, 3, 3, 2});
  EXPECT_EQ(p.total, 5);
  EXPECT_EQ(p.ids, (std::vector<index_t>{3, 1, 2}));
  EXPECT_EQ(p.multiplicity, (std::vector<index_t>{3, 1, 1}));
}

TEST(Participants, WeightedAverageUsesMultiplicity) {
  std::vector<std::vector<scalar_t>> vecs = {
      {1.0}, {2.0}, {3.0}};
  const auto p = detail::Participants::from_draws({0, 2, 2, 2});
  std::vector<scalar_t> out(1);
  detail::weighted_average(vecs, p, out);
  EXPECT_DOUBLE_EQ(out[0], (1.0 + 3 * 3.0) / 4);
}

TEST(Participants, ManyDrawsPreserveFirstDrawOrder) {
  // The id->slot map must keep ids in first-draw order with exact
  // multiplicities even when draws are large and repetitive.
  std::vector<index_t> draws;
  for (index_t r = 0; r < 50; ++r) {
    for (const index_t id : {7, 3, 7, 11, 3, 7}) draws.push_back(id);
  }
  const auto p = detail::Participants::from_draws(draws);
  EXPECT_EQ(p.total, static_cast<index_t>(draws.size()));
  EXPECT_EQ(p.ids, (std::vector<index_t>{7, 3, 11}));
  EXPECT_EQ(p.multiplicity, (std::vector<index_t>{150, 100, 50}));
}

TEST(Participants, SingleRepeatedId) {
  const auto p = detail::Participants::from_draws({4, 4, 4, 4});
  EXPECT_EQ(p.ids, (std::vector<index_t>{4}));
  EXPECT_EQ(p.multiplicity, (std::vector<index_t>{4}));
  EXPECT_EQ(p.total, 4);
}

TEST(Averages, WeightedAverageMatchesSequentialAxpyChain) {
  // The fused axpby/axpy2 implementation promises bit-identity with the
  // plain chain out = sum_i w_i * v_i folded left-to-right per element.
  rng::Xoshiro256 gen(61);
  const std::size_t dim = 37;
  std::vector<std::vector<scalar_t>> vecs(7);
  for (auto& v : vecs) {
    v.resize(dim);
    for (auto& x : v) x = gen.normal();
  }
  // Odd and even participant counts exercise the pair loop and the tail.
  for (const auto& draws :
       {std::vector<index_t>{5, 2, 5, 0, 1}, std::vector<index_t>{6, 4}}) {
    const auto p = detail::Participants::from_draws(draws);
    std::vector<scalar_t> out(dim, -7.0);  // stale contents must not leak
    detail::weighted_average(vecs, p, out);
    const auto total = static_cast<scalar_t>(p.total);
    std::vector<scalar_t> expected(dim, 0.0);
    for (std::size_t i = 0; i < p.ids.size(); ++i) {
      const scalar_t w = static_cast<scalar_t>(p.multiplicity[i]) / total;
      const auto& v = vecs[static_cast<std::size_t>(p.ids[i])];
      for (std::size_t d = 0; d < dim; ++d) {
        expected[d] = i == 0 ? w * v[d] : expected[d] + w * v[d];
      }
    }
    EXPECT_EQ(out, expected);
  }
}

TEST(Averages, UniformAverageMatchesSequentialChain) {
  rng::Xoshiro256 gen(62);
  const std::size_t dim = 19;
  std::vector<std::vector<scalar_t>> vecs(5);
  for (auto& v : vecs) {
    v.resize(dim);
    for (auto& x : v) x = gen.normal();
  }
  const std::vector<index_t> ids = {4, 0, 2};
  std::vector<scalar_t> out(dim, 99.0);
  detail::uniform_average(vecs, ids, out);
  const scalar_t inv = 1.0 / static_cast<scalar_t>(ids.size());
  std::vector<scalar_t> expected(dim, 0.0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& v = vecs[static_cast<std::size_t>(ids[i])];
    for (std::size_t d = 0; d < dim; ++d) {
      expected[d] = i == 0 ? inv * v[d] : expected[d] + inv * v[d];
    }
  }
  EXPECT_EQ(out, expected);
}

TEST(RunningAverage, MatchesArithmeticMean) {
  std::vector<scalar_t> avg = {0.0};
  const std::vector<std::vector<scalar_t>> values = {{2}, {4}, {9}};
  // First fold replaces (k = 0 prior points).
  detail::update_running_average(avg, values[0], 0);
  detail::update_running_average(avg, values[1], 1);
  detail::update_running_average(avg, values[2], 2);
  EXPECT_NEAR(avg[0], 5.0, 1e-12);
}

TrainOptions quick_opts(index_t rounds = 40) {
  TrainOptions o;
  o.rounds = rounds;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.01;
  o.eval_every = 0;  // final only — tests that need curves override
  o.seed = 5;
  return o;
}

TEST(Trainers, FedProxOptionChangesTrajectory) {
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(10);
  const auto plain = train_fedavg(model, fed, opts);
  opts.prox_mu = 1.0;
  const auto prox = train_fedavg(model, fed, opts);
  EXPECT_GT(tensor::dist2(plain.w, prox.w), 0);
  // Proximal runs still learn.
  EXPECT_GT(prox.history.back().summary.average, 0.5);
}

TEST(FedAvg, LearnsIidTask) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(60);
  const auto result = train_fedavg(model, fed, opts);
  ASSERT_FALSE(result.history.empty());
  EXPECT_GT(result.history.back().summary.average, 0.85);
  EXPECT_GT(result.history.back().summary.worst, 0.8);
}

TEST(FedAvg, CommAccountingMatchesFormula) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(10);
  opts.sampled_clients = 4;
  const auto result = train_fedavg(model, fed, opts);
  // Per round: 1 server round, m models down, m models up.
  EXPECT_EQ(result.comm.edge_cloud_rounds, 10u);
  EXPECT_EQ(result.comm.edge_cloud_models_down, 40u);
  EXPECT_EQ(result.comm.edge_cloud_models_up, 40u);
  EXPECT_EQ(result.comm.client_edge_rounds, 0u);
}

TEST(FedAvg, DeterministicAcrossThreadCounts) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto opts = quick_opts(8);
  parallel::ThreadPool pool1(1), pool8(8);
  const auto r1 = train_fedavg(model, fed, opts, pool1);
  const auto r8 = train_fedavg(model, fed, opts, pool8);
  ASSERT_EQ(r1.w.size(), r8.w.size());
  for (std::size_t i = 0; i < r1.w.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.w[i], r8.w[i]);
  }
}

TEST(FedAvg, SeedChangesTrajectory) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(8);
  const auto a = train_fedavg(model, fed, opts);
  opts.seed += 1;
  const auto b = train_fedavg(model, fed, opts);
  EXPECT_GT(tensor::dist2(a.w, b.w), 0);
}

TEST(HierFavg, LearnsIidTask) {
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto result = train_hierfavg(model, fed, topo, quick_opts(40));
  EXPECT_GT(result.history.back().summary.average, 0.85);
}

TEST(HierFavg, CommAccountingMatchesFormula) {
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(10);
  opts.sampled_edges = 2;
  const auto result = train_hierfavg(model, fed, topo, opts);
  // Per round: tau2 client-edge rounds, 1 edge-cloud round.
  EXPECT_EQ(result.comm.client_edge_rounds,
            static_cast<std::uint64_t>(10 * opts.tau2));
  EXPECT_EQ(result.comm.edge_cloud_rounds, 10u);
  EXPECT_EQ(result.comm.edge_cloud_models_up, 20u);    // m_E per round
  EXPECT_EQ(result.comm.edge_cloud_models_down, 20u);
  EXPECT_EQ(result.comm.client_edge_models_down,
            static_cast<std::uint64_t>(10 * opts.tau2 * 2 * 2));
}

TEST(HierFavg, TopologyMismatchThrows) {
  const auto fed = iid_task(4, 2);
  const sim::HierTopology wrong(5, 2);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  EXPECT_THROW(train_hierfavg(model, fed, wrong, quick_opts(2)), CheckError);
}

TEST(Drfa, LearnsIidTaskAndKeepsWeightsOnSimplex) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto result = train_drfa(model, fed, quick_opts(60));
  EXPECT_GT(result.history.back().summary.average, 0.8);
  // Reported per-edge weights sum to 1.
  scalar_t total = 0;
  for (const scalar_t p : result.p) {
    EXPECT_GE(p, -1e-9);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Drfa, CommAccountingMatchesFormula) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(5);
  opts.sampled_clients = 8;  // no duplicate-edge dedup effects to predict:
                             // uniform start means duplicates possible, so
                             // only round counters are exact.
  const auto result = train_drfa(model, fed, opts);
  EXPECT_EQ(result.comm.edge_cloud_rounds, 10u);  // 2 per round
  EXPECT_EQ(result.comm.edge_cloud_scalars, 40u); // m per round
  EXPECT_EQ(result.comm.client_edge_rounds, 0u);
}

TEST(Afl, IsSingleStepDrfa) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(10);
  opts.tau1 = 7;  // must be ignored by AFL
  const auto afl = train_stochastic_afl(model, fed, opts);
  opts.tau1 = 1;
  opts.tau2 = 1;
  const auto drfa1 = train_drfa(model, fed, opts);
  ASSERT_EQ(afl.w.size(), drfa1.w.size());
  for (std::size_t i = 0; i < afl.w.size(); ++i) {
    EXPECT_DOUBLE_EQ(afl.w[i], drfa1.w[i]);
  }
}

TEST(Drfa, WeightsShiftTowardHardClients) {
  // Heterogeneous task: DRFA should end with non-uniform edge weights.
  const auto fed = heterogeneous_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(60);
  opts.eta_p = 0.05;
  const auto result = train_drfa(model, fed, opts);
  scalar_t spread = 0;
  const scalar_t uniform = 1.0 / static_cast<scalar_t>(result.p.size());
  for (const scalar_t p : result.p) spread += std::abs(p - uniform);
  EXPECT_GT(spread, 0.05);
}

TEST(Trainers, HistoryCadenceRespected) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(20);
  opts.eval_every = 5;
  const auto result = train_fedavg(model, fed, opts);
  // Records at rounds 0, 5, 10, 15, 20.
  ASSERT_EQ(result.history.size(), 5u);
  EXPECT_EQ(result.history.records()[0].round, 0);
  EXPECT_EQ(result.history.back().round, 20);
  // Comm counters monotone non-decreasing along the history.
  std::uint64_t prev = 0;
  for (const auto& r : result.history.records()) {
    EXPECT_GE(r.comm.total_rounds(), prev);
    prev = r.comm.total_rounds();
  }
}

TEST(Trainers, InvalidOptionsThrow) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts();
  opts.rounds = 0;
  EXPECT_THROW(train_fedavg(model, fed, opts), CheckError);
  opts = quick_opts();
  opts.sampled_clients = fed.num_clients() + 1;
  EXPECT_THROW(train_fedavg(model, fed, opts), CheckError);
}

}  // namespace
}  // namespace hm::algo
