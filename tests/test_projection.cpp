// Property tests for the simplex projections used by the weight-update
// step (Eq. 7) — the numerical heart of Pi_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "algo/projection.hpp"
#include "rng/rng.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {
namespace {

std::vector<scalar_t> random_vector(index_t n, seed_t seed,
                                    scalar_t scale = 2.0) {
  rng::Xoshiro256 gen(seed);
  std::vector<scalar_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = gen.normal(0.0, scale);
  return v;
}

bool on_simplex(const std::vector<scalar_t>& p, scalar_t lo = 0,
                scalar_t hi = 1, scalar_t tol = 1e-9) {
  scalar_t total = 0;
  for (const scalar_t x : p) {
    if (x < lo - tol || x > hi + tol) return false;
    total += x;
  }
  return std::abs(total - 1) < 1e-8;
}

TEST(SimplexSet, Feasibility) {
  EXPECT_TRUE(SimplexSet::full().feasible(5));
  EXPECT_TRUE((SimplexSet{0.05, 0.5}.feasible(5)));
  EXPECT_FALSE((SimplexSet{0.3, 0.5}.feasible(5)));   // 5*0.3 > 1
  EXPECT_FALSE((SimplexSet{0.0, 0.1}.feasible(5)));   // 5*0.1 < 1
  EXPECT_FALSE((SimplexSet{0.5, 0.2}.feasible(5)));   // hi < lo
}

TEST(ProjectSimplex, AlreadyOnSimplexIsFixedPoint) {
  std::vector<scalar_t> p = {0.2, 0.3, 0.5};
  auto q = p;
  project_simplex(q);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(q[i], p[i], 1e-12);
}

TEST(ProjectSimplex, KnownCase) {
  // Projection of (1.5, 0.5) onto the simplex: subtract 0.5 -> (1, 0).
  std::vector<scalar_t> v = {1.5, 0.5};
  project_simplex(v);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 0.0, 1e-12);
}

TEST(ProjectSimplex, UniformNegativeInput) {
  std::vector<scalar_t> v = {-5, -5, -5, -5};
  project_simplex(v);
  for (const scalar_t x : v) EXPECT_NEAR(x, 0.25, 1e-12);
}

class SimplexProjectionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SimplexProjectionProperty, ResultIsOnSimplex) {
  const auto [n, seed] = GetParam();
  auto v = random_vector(n, static_cast<seed_t>(seed));
  project_simplex(v);
  EXPECT_TRUE(on_simplex(v));
}

TEST_P(SimplexProjectionProperty, Idempotent) {
  const auto [n, seed] = GetParam();
  auto v = random_vector(n, static_cast<seed_t>(seed) + 100);
  project_simplex(v);
  auto w = v;
  project_simplex(w);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(w[i], v[i], 1e-9);
}

TEST_P(SimplexProjectionProperty, IsNearestPoint) {
  // Projection optimality: for random feasible q, ||v - proj|| <= ||v - q||.
  const auto [n, seed] = GetParam();
  const auto v = random_vector(n, static_cast<seed_t>(seed) + 200);
  auto proj = v;
  project_simplex(proj);
  rng::Xoshiro256 gen(static_cast<seed_t>(seed) + 300);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<scalar_t> q(static_cast<std::size_t>(n));
    scalar_t total = 0;
    for (auto& x : q) {
      x = gen.uniform();
      total += x;
    }
    for (auto& x : q) x /= total;
    EXPECT_LE(tensor::dist2(v, proj), tensor::dist2(v, q) + 1e-9);
  }
}

TEST_P(SimplexProjectionProperty, MatchesCappedWithFullBounds) {
  const auto [n, seed] = GetParam();
  const auto v = random_vector(n, static_cast<seed_t>(seed) + 400);
  auto exact = v;
  project_simplex(exact);
  auto capped = v;
  project_capped_simplex(capped, SimplexSet::full());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(capped[i], exact[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimplexProjectionProperty,
                         ::testing::Combine(::testing::Values(2, 3, 10, 100),
                                            ::testing::Values(1, 2, 3)));

TEST(ProjectCappedSimplex, RespectsCaps) {
  std::vector<scalar_t> v = {10.0, 0.0, 0.0, 0.0};
  const SimplexSet set{0.05, 0.6};
  project_capped_simplex(v, set);
  EXPECT_TRUE(on_simplex(v, set.lo, set.hi));
  EXPECT_NEAR(v[0], 0.6, 1e-7);  // capped at hi
  // Remaining mass split equally among the tied coordinates.
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(v[static_cast<std::size_t>(i)],
                                          0.4 / 3, 1e-7);
}

TEST(ProjectCappedSimplex, LowerBoundBinds) {
  std::vector<scalar_t> v = {1.0, -10.0, 0.5};
  const SimplexSet set{0.1, 1.0};
  project_capped_simplex(v, set);
  EXPECT_TRUE(on_simplex(v, set.lo, set.hi));
  EXPECT_NEAR(v[1], 0.1, 1e-7);
}

TEST(ProjectCappedSimplex, InfeasibleThrows) {
  std::vector<scalar_t> v = {0.5, 0.5};
  EXPECT_THROW(project_capped_simplex(v, SimplexSet{0.6, 1.0}), CheckError);
}

class CappedProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(CappedProjectionProperty, FeasibleAndNearest) {
  const int seed = GetParam();
  const index_t n = 8;
  const auto v = random_vector(n, static_cast<seed_t>(seed) + 500);
  const SimplexSet set{0.02, 0.4};
  auto proj = v;
  project_capped_simplex(proj, set);
  EXPECT_TRUE(on_simplex(proj, set.lo, set.hi, 1e-7));
  // Compare against random feasible points.
  rng::Xoshiro256 gen(static_cast<seed_t>(seed) + 600);
  for (int trial = 0; trial < 30; ++trial) {
    auto q = random_vector(n, static_cast<seed_t>(trial) + 700, 1.0);
    project_capped_simplex(q, set);
    EXPECT_LE(tensor::dist2(v, proj), tensor::dist2(v, q) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappedProjectionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MaxLinear, FullSimplexIsMaxCoordinate) {
  const std::vector<scalar_t> v = {0.3, 1.7, -0.2};
  EXPECT_DOUBLE_EQ(max_linear_over_simplex(v, SimplexSet::full()), 1.7);
  const auto p = argmax_linear_over_simplex(v, SimplexSet::full());
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
}

TEST(MaxLinear, CappedSpreadsMass) {
  const std::vector<scalar_t> v = {3.0, 2.0, 1.0, 0.0};
  const SimplexSet set{0.1, 0.5};
  const auto p = argmax_linear_over_simplex(v, set);
  // Best coordinate takes hi=0.5; second takes what is left above the
  // floors: 1 - 0.5 - 2*0.1 = 0.3 -> p1 = 0.1 + 0.2? No: greedy pours
  // (hi-lo)=0.4 into coord 0 (0.1->0.5), then remaining 0.2 into coord 1.
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.3, 1e-12);
  EXPECT_NEAR(p[2], 0.1, 1e-12);
  EXPECT_NEAR(p[3], 0.1, 1e-12);
  EXPECT_NEAR(max_linear_over_simplex(v, set),
              0.5 * 3 + 0.3 * 2 + 0.1 * 1 + 0.1 * 0, 1e-12);
}

TEST(MaxLinear, DominatesRandomFeasiblePoints) {
  const auto v = random_vector(6, 900);
  const SimplexSet set{0.05, 0.5};
  const scalar_t best = max_linear_over_simplex(v, set);
  for (int trial = 0; trial < 50; ++trial) {
    auto q = random_vector(6, static_cast<seed_t>(trial) + 1000, 1.0);
    project_capped_simplex(q, set);
    scalar_t val = 0;
    for (std::size_t i = 0; i < q.size(); ++i) val += q[i] * v[i];
    EXPECT_GE(best + 1e-7, val);
  }
}

}  // namespace
}  // namespace hm::algo
