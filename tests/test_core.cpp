// Unit tests for hm::core: check macros, flag parsing, logging.
#include <gtest/gtest.h>

#include "core/check.hpp"
#include "core/flags.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"

namespace hm {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(HM_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(HM_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(HM_CHECK(false), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    HM_CHECK_MSG(false, "value=" << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = parse({"--rounds=100", "--eta=0.5", "--name=abc"});
  EXPECT_EQ(f.get_int("rounds", 0), 100);
  EXPECT_DOUBLE_EQ(f.get_double("eta", 0), 0.5);
  EXPECT_EQ(f.get_string("name", ""), "abc");
}

TEST(Flags, SpaceSyntax) {
  const Flags f = parse({"--rounds", "7", "--label", "x"});
  EXPECT_EQ(f.get_int("rounds", 0), 7);
  EXPECT_EQ(f.get_string("label", ""), "x");
}

TEST(Flags, BooleanForms) {
  const Flags f = parse({"--verbose", "--no-color", "--flag=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("color", true));
  EXPECT_FALSE(f.get_bool("flag", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(f.get_string("missing", "d"), "d");
  EXPECT_TRUE(f.get_bool("missing", true));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"one", "--x=1", "two"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "one");
  EXPECT_EQ(f.positional()[1], "two");
}

TEST(Flags, MalformedIntegerThrows) {
  const Flags f = parse({"--n=12abc"});
  EXPECT_THROW(f.get_int("n", 0), CheckError);
}

TEST(Flags, MalformedDoubleThrows) {
  const Flags f = parse({"--x=1.2.3"});
  EXPECT_THROW(f.get_double("x", 0), CheckError);
}

TEST(Flags, MalformedBoolThrows) {
  const Flags f = parse({"--b=maybe"});
  EXPECT_THROW(f.get_bool("b", false), CheckError);
}

TEST(Flags, NegativeNumberAsValue) {
  const Flags f = parse({"--offset", "-5"});
  // "-5" is not a --flag, so it binds as the value.
  EXPECT_EQ(f.get_int("offset", 0), -5);
}

TEST(Log, ThresholdFiltering) {
  const auto saved = log::threshold();
  log::set_threshold(log::Level::kError);
  EXPECT_EQ(log::threshold(), log::Level::kError);
  log::info() << "suppressed";  // must not crash
  log::set_threshold(saved);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace hm
