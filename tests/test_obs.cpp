// Observability subsystem suite (DESIGN.md §15): the metrics registry
// (registration-order independence, histogram bucketing, snapshot
// algebra), the span tracer and both exporters, and — the load-bearing
// part — the zero-perturbation contract: every trainer's trajectory is
// bit-identical with the tracer armed vs. disarmed, and the value
// channel of the metrics delta is a pure function of (seed, config).
// The compiled-out arm of the contract is covered by the CI leg that
// rebuilds with -DHM_OBS=OFF and re-runs test_golden.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "algo/qffl.hpp"
#include "core/check.hpp"
#include "nn/softmax_regression.hpp"
#include "obs/obs.hpp"
#include "sim/multi_topology.hpp"
#include "sim/topology.hpp"
#include "test_util.hpp"

namespace hm::obs {
namespace {

using testing_util::bits;
using testing_util::heterogeneous_task;

// ——— Metrics registry ———

TEST(MetricsRegistry, SnapshotIsIndependentOfRegistrationOrder) {
  Registry forward;
  forward.counter("alpha").add(3);
  forward.gauge("mid").set(-7);
  forward.histogram("zeta", {1, 2, 4}).record(3);

  Registry backward;
  backward.histogram("zeta", {1, 2, 4}).record(3);
  backward.gauge("mid").set(-7);
  backward.counter("alpha").add(3);

  const MetricsSnapshot a = forward.snapshot();
  const MetricsSnapshot b = backward.snapshot();
  ASSERT_EQ(a.metrics.size(), 3u);
  EXPECT_EQ(a.metrics, b.metrics);
  // Sorted by name regardless of insertion order.
  EXPECT_EQ(a.metrics[0].name, "alpha");
  EXPECT_EQ(a.metrics[1].name, "mid");
  EXPECT_EQ(a.metrics[2].name, "zeta");
}

TEST(MetricsRegistry, GetOrRegisterReturnsTheSameInstrument) {
  Registry r;
  Counter& first = r.counter("hits");
  Counter& again = r.counter("hits");
  EXPECT_EQ(&first, &again);
  first.add(2);
  again.add(3);
  EXPECT_EQ(first.value(), 5u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), CheckError);
  EXPECT_THROW(r.histogram("x", {1}), CheckError);
}

TEST(MetricsRegistry, HistogramBucketsPartitionObservations) {
  Registry r;
  Histogram& h = r.histogram("sizes", {1, 2, 4, 8});
  // v <= bounds[i] lands in bucket i; past the last bound = overflow.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 8ull, 9ull,
                                1000ull}) {
    h.record(v);
  }
  const MetricsSnapshot snap = r.snapshot();
  const MetricValue* m = snap.find("sizes");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->value, 8);  // total count
  EXPECT_EQ(m->sum, 0u + 1 + 2 + 3 + 4 + 8 + 9 + 1000);
  // {0,1} | {2} | {3,4} | {8} | {9,1000}
  const std::vector<std::uint64_t> want = {2, 1, 2, 1, 2};
  EXPECT_EQ(m->buckets, want);
}

TEST(MetricsRegistry, BadHistogramBoundsThrow) {
  Registry r;
  EXPECT_THROW(r.histogram("unsorted", {4, 2}), CheckError);
  EXPECT_THROW(r.histogram("dup", {2, 2}), CheckError);
}

TEST(MetricsRegistry, DiffSubtractsCountersAndKeepsGauges) {
  Registry r;
  Counter& c = r.counter("events");
  Gauge& g = r.gauge("level");
  Histogram& h = r.histogram("obs", {10});
  c.add(5);
  g.set(100);
  h.record(3);
  const MetricsSnapshot before = r.snapshot();
  c.add(7);
  g.set(42);
  h.record(30);
  const MetricsSnapshot delta = r.snapshot().diff(before);
  EXPECT_EQ(delta.find("events")->value, 7);
  EXPECT_EQ(delta.find("level")->value, 42);  // gauges keep current
  EXPECT_EQ(delta.find("obs")->value, 1);
  const std::vector<std::uint64_t> want = {0, 1};
  EXPECT_EQ(delta.find("obs")->buckets, want);
}

TEST(MetricsRegistry, MergeUnionAddsAcrossSnapshots) {
  Registry a;
  a.counter("shared").add(2);
  a.counter("only_a").add(1);
  Registry b;
  b.counter("shared").add(3);
  b.counter("only_b").add(4);
  const MetricsSnapshot merged = a.snapshot().merge(b.snapshot());
  ASSERT_EQ(merged.metrics.size(), 3u);
  EXPECT_EQ(merged.find("shared")->value, 5);
  EXPECT_EQ(merged.find("only_a")->value, 1);
  EXPECT_EQ(merged.find("only_b")->value, 4);
  // Merged output stays name-sorted.
  EXPECT_EQ(merged.metrics[0].name, "only_a");
}

TEST(MetricsRegistry, ValueChannelFiltersTimingMetrics) {
  Registry r;
  r.counter("pure", Channel::kValue).add(1);
  r.counter("jittery", Channel::kTiming).add(1);
  const MetricsSnapshot vc = r.snapshot().value_channel();
  ASSERT_EQ(vc.metrics.size(), 1u);
  EXPECT_EQ(vc.metrics[0].name, "pure");
}

TEST(MetricsRegistry, JsonExportCarriesSchemaAndTags) {
  Registry r;
  r.counter("a.count").add(2);
  r.histogram("a.hist", {1, 2}, Channel::kTiming).record(2);
  const std::string doc =
      render_metrics_json(r.snapshot(), "{\"schema\":\"hm.obs/1\"}");
  EXPECT_NE(doc.find("\"schema\":\"hm.metrics/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"manifest\":{\"schema\":\"hm.obs/1\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("{\"name\":\"a.count\",\"kind\":\"counter\","
                     "\"channel\":\"value\",\"value\":2}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"channel\":\"timing\""), std::string::npos);
  EXPECT_NE(doc.find("\"bounds\":[1,2],\"buckets\":[0,1,0]"),
            std::string::npos);
}

// ——— Tracer ———

/// Arms the tracer for one test body and always disarms on exit, so a
/// failing assertion can't leak an enabled tracer into later tests.
struct TraceSession {
  explicit TraceSession(std::size_t capacity) {
    set_trace_capacity(capacity);
    set_trace_enabled(true);
  }
  ~TraceSession() { set_trace_enabled(false); }
};

TEST(Tracer, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  {
    const Span s("round", "algo", 1, 2);
  }
  { TraceSession session(16); }  // arm+reset, then disarm
  EXPECT_TRUE(trace_spans().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST(Tracer, RecordsSpansWithArgsAndMonotoneSeq) {
  TraceSession session(64);
  {
    const Span outer("round", "algo", 7, 0);
    const Span inner("phase", "algo", 7, 3);
  }
  const std::vector<SpanRecord> spans = trace_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first, so it is admitted first.
  EXPECT_STREQ(spans[0].name, "phase");
  EXPECT_EQ(spans[0].a1, 3u);
  EXPECT_STREQ(spans[1].name, "round");
  EXPECT_EQ(spans[1].a0, 7u);
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_EQ(spans[1].seq, 1u);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  TraceSession session(4);
  for (int i = 0; i < 10; ++i) {
    const Span s("tick", "sim", static_cast<std::uint64_t>(i), 0);
  }
  const std::vector<SpanRecord> spans = trace_spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(trace_dropped(), 6u);
  // Oldest-first unroll of the surviving suffix.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].a0, 6 + i);
    EXPECT_EQ(spans[i].seq, 6 + i);
  }
}

TEST(Tracer, ReenablingResetsTheSession) {
  {
    TraceSession session(16);
    const Span s("old", "sim", 0, 0);
  }
  TraceSession session(16);
  EXPECT_TRUE(trace_spans().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST(Tracer, JsonlRoundTripsHeaderAndSpans) {
  TraceSession session(16);
  {
    const Span s("round", "algo", 1, 2);
  }
  const std::string doc = render_trace_jsonl();
  EXPECT_EQ(doc.find("{\"type\":\"trace_header\",\"spans\":1,\"dropped\":0}"),
            0u);
  EXPECT_NE(doc.find("{\"type\":\"span\",\"name\":\"round\",\"cat\":\"algo\","
                     "\"a0\":1,\"a1\":2,\"channel\":\"value\""),
            std::string::npos);
  // One header + one span, newline-terminated.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '\n'), 2);
}

TEST(Tracer, ChromeExportIsACompleteEventPerSpan) {
  TraceSession session(16);
  {
    const Span s("exchange", "net", 4, 0, Channel::kTiming);
  }
  const std::string doc =
      render_chrome_trace("{\"schema\":\"hm.obs/1\"}");
  EXPECT_EQ(doc.find("{\"displayTimeUnit\":\"ms\",\"metadata\":"
                     "{\"schema\":\"hm.obs/1\"},\"traceEvents\":["),
            0u);
  EXPECT_NE(doc.find("\"ph\":\"X\",\"pid\":0,\"tid\":"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"exchange\",\"cat\":\"net\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"a0\":4,\"a1\":0,\"channel\":\"timing\"}"),
            std::string::npos);
}

TEST(Manifest, BaseManifestIsSelfDescribing) {
  const Manifest m = make_base_manifest();
  ASSERT_NE(m.find("schema"), nullptr);
  EXPECT_EQ(*m.find("schema"), "hm.obs/1");
  EXPECT_NE(m.find("git"), nullptr);
  EXPECT_NE(m.find("obs_hooks"), nullptr);
  const std::string json = m.render_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"schema\":\"hm.obs/1\""), std::string::npos);
}

// ——— Zero-perturbation contract ———

algo::TrainOptions contract_opts() {
  algo::TrainOptions o;
  o.rounds = 3;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 1;
  o.seed = 5;
  return o;
}

algo::MultiTrainOptions multi_contract_opts() {
  algo::MultiTrainOptions o;
  o.rounds = 3;
  o.taus = {2, 2};
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 1;
  o.seed = 5;
  return o;
}

const data::FederatedDataset& shared_task() {
  static const data::FederatedDataset fed = heterogeneous_task(4, 2);
  return fed;
}

/// The compared quantities: every per-round global-loss bit pattern plus
/// the final adversarial weights p.
struct Trajectory {
  std::vector<std::uint64_t> loss;
  std::vector<std::uint64_t> p;

  bool operator==(const Trajectory&) const = default;
};

template <typename Result>
Trajectory trajectory_of(const Result& r) {
  Trajectory t;
  for (const auto& rec : r.history.records()) {
    t.loss.push_back(bits(rec.global_loss));
  }
  for (const scalar_t x : r.p) t.p.push_back(bits(x));
  return t;
}

struct Runner {
  std::string name;
  Trajectory (*run)();
};

std::vector<Runner> runners() {
  std::vector<Runner> out;
  out.push_back({"fedavg", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       algo::train_fedavg(model, fed, contract_opts()));
                 }});
  out.push_back({"hierfavg", [] {
                   const auto& fed = shared_task();
                   const sim::HierTopology topo(fed.num_edges(),
                                                fed.clients_per_edge);
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(algo::train_hierfavg(
                       model, fed, topo, contract_opts()));
                 }});
  out.push_back({"drfa", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       algo::train_drfa(model, fed, contract_opts()));
                 }});
  out.push_back({"qffl", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(algo::train_qffl(
                       model, fed, contract_opts(), /*q=*/2.0));
                 }});
  out.push_back({"hierminimax", [] {
                   const auto& fed = shared_task();
                   const sim::HierTopology topo(fed.num_edges(),
                                                fed.clients_per_edge);
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(algo::train_hierminimax(
                       model, fed, topo, contract_opts()));
                 }});
  out.push_back({"hierminimax_multi", [] {
                   const auto& fed = shared_task();
                   const sim::MultiTopology topo(
                       {fed.num_edges(), fed.clients_per_edge});
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(algo::train_hierminimax_multi(
                       model, fed, topo, multi_contract_opts()));
                 }});
  return out;
}

// The tracer armed vs. disarmed must not change a single trajectory bit,
// for every trainer. (The metrics counters have no off switch when
// compiled in — they are exercised identically in both arms, which is
// itself the claim: hot-path increments do not feed back into training.)
TEST(ZeroPerturbation, TraceOnVsOffIsBitIdenticalForEveryTrainer) {
  for (const Runner& r : runners()) {
    SCOPED_TRACE(r.name);
    set_trace_enabled(false);
    const Trajectory off = r.run();
    Trajectory on;
    {
      TraceSession session(1 << 14);
      on = r.run();
#if HM_OBS_ENABLED
      EXPECT_FALSE(trace_spans().empty()) << r.name;
#endif
    }
    EXPECT_EQ(off, on) << r.name << ": tracer perturbed the trajectory";
  }
}

// Two identical runs must produce identical value-channel metric deltas
// (timing-channel metrics — joiner occupancy, dispatch splits — are
// explicitly exempt, which is what the channel tag is for).
TEST(ZeroPerturbation, ValueChannelDeltaIsReproducible) {
#if !HM_OBS_ENABLED
  GTEST_SKIP() << "obs hooks compiled out (HM_OBS=OFF)";
#endif
  const Runner hm_runner = runners()[4];  // hierminimax
  const MetricsSnapshot s0 = registry().snapshot();
  (void)hm_runner.run();
  const MetricsSnapshot s1 = registry().snapshot();
  (void)hm_runner.run();
  const MetricsSnapshot s2 = registry().snapshot();
  const MetricsSnapshot d1 = s1.diff(s0).value_channel();
  const MetricsSnapshot d2 = s2.diff(s1).value_channel();
  ASSERT_FALSE(d1.metrics.empty());
  ASSERT_EQ(d1.metrics.size(), d2.metrics.size());
  for (std::size_t i = 0; i < d1.metrics.size(); ++i) {
    EXPECT_EQ(d1.metrics[i], d2.metrics[i])
        << "value-channel metric '" << d1.metrics[i].name
        << "' differs between identical runs";
  }
}

// The delivery accounting published to the registry must reconcile
// exactly with the simulator's own LinkFaultStats (src/sim/comm.hpp):
// attempted == delivered + dropped + in_retry, per hierarchy link — on
// a run with real dropout, wide-area loss, and retries.
TEST(ZeroPerturbation, DeliveryCountersReconcileWithLinkFaultStats) {
#if !HM_OBS_ENABLED
  GTEST_SKIP() << "obs hooks compiled out (HM_OBS=OFF)";
#endif
  const auto& fed = shared_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  algo::TrainOptions opts = contract_opts();
  opts.rounds = 6;
  opts.fault.enabled = true;
  opts.fault.client_dropout_prob = 0.3;
  opts.fault.edge_loss_prob = 0.3;
  opts.fault.max_retries = 2;
  opts.on_fault = algo::OnFault::kRenormalize;
  const auto result = algo::train_hierminimax(model, fed, topo, opts);

  const MetricsSnapshot snap = registry().snapshot();
  const auto gauge = [&snap](const std::string& name) {
    const MetricValue* m = snap.find(name);
    EXPECT_NE(m, nullptr) << name;
    return m != nullptr ? static_cast<std::uint64_t>(m->value) : 0;
  };
  const auto check_link = [&](const std::string& prefix,
                              const sim::LinkFaultStats& stats) {
    EXPECT_EQ(gauge(prefix + ".attempted"), stats.attempted);
    EXPECT_EQ(gauge(prefix + ".delivered"), stats.delivered);
    EXPECT_EQ(gauge(prefix + ".dropped"), stats.dropped);
    EXPECT_EQ(gauge(prefix + ".in_retry"), stats.in_retry);
    EXPECT_EQ(gauge(prefix + ".straggled"), stats.straggled);
    EXPECT_EQ(gauge(prefix + ".attempted"),
              gauge(prefix + ".delivered") + gauge(prefix + ".dropped") +
                  gauge(prefix + ".in_retry"));
  };
  check_link("sim.comm.client_edge_fault", result.comm.client_edge_fault);
  check_link("sim.comm.edge_cloud_fault", result.comm.edge_cloud_fault);
  // The run actually exercised loss + retry paths.
  EXPECT_GT(result.comm.msgs_dropped(), 0u);
  EXPECT_GT(result.comm.edge_cloud_fault.in_retry, 0u);
}

}  // namespace
}  // namespace hm::obs
