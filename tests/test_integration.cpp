// End-to-end integration tests: the paper's qualitative claims at
// miniature scale — minimax methods improve worst-edge accuracy and
// reduce accuracy variance vs minimization methods; the duality gap of
// HierMinimax's averaged iterates shrinks with training.
#include <gtest/gtest.h>

#include "algo/drfa.hpp"
#include "algo/duality_gap.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "nn/convnet.hpp"
#include "nn/mlp.hpp"
#include "nn/softmax_regression.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::heterogeneous_task;

/// A task where one-class-per-edge heterogeneity plus partial
/// participation makes plain averaging visibly unfair.
data::FederatedDataset unfair_task(seed_t seed) {
  return heterogeneous_task(5, 2, seed, 2500, /*separation=*/2.8);
}

TrainOptions base_opts(index_t rounds) {
  TrainOptions o;
  o.rounds = rounds;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.05;
  o.eta_p = 0.003;
  o.sampled_edges = 3;
  o.sampled_clients = 6;
  o.eval_every = 0;
  o.seed = 13;
  return o;
}

TEST(Integration, MinimaxImprovesWorstEdgeVsMinimization) {
  const auto fed = unfair_task(301);
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = base_opts(300);
  opts.eval_every = 10;

  const auto mm = train_hierminimax(model, fed, topo, opts);
  const auto fa = train_hierfavg(model, fed, topo, opts);
  const auto dr = train_drfa(model, fed, opts);
  const auto fv = train_fedavg(model, fed, opts);

  // Tail-averaged: final snapshots alone are SGD-noisy.
  const auto s_mm = mm.history.tail_summary(8);
  const auto s_fa = fa.history.tail_summary(8);
  const auto s_dr = dr.history.tail_summary(8);
  const auto s_fv = fv.history.tail_summary(8);

  // Paper Table 2 shape: minimax variants dominate their minimization
  // counterparts on worst accuracy (allow tiny numerical slack).
  EXPECT_GE(s_mm.worst + 0.03, s_fa.worst);
  EXPECT_GE(s_dr.worst + 0.03, s_fv.worst);
  // And all methods still learn something on average.
  EXPECT_GT(s_mm.average, 0.5);
  EXPECT_GT(s_fa.average, 0.5);
}

TEST(Integration, MinimaxReducesVarianceAcrossSeeds) {
  // Averaged over seeds, HierMinimax's across-edge accuracy variance must
  // not exceed HierFAVG's (the Table 2 variance column).
  double var_mm = 0, var_fa = 0;
  for (const seed_t seed : {11u, 22u, 33u}) {
    const auto fed = unfair_task(400 + seed);
    const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
    const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
    auto opts = base_opts(200);
    opts.seed = seed;
    opts.eval_every = 10;
    var_mm += train_hierminimax(model, fed, topo, opts)
                  .history.tail_summary(8).variance_pct2;
    var_fa += train_hierfavg(model, fed, topo, opts)
                  .history.tail_summary(8).variance_pct2;
  }
  EXPECT_LE(var_mm, var_fa * 1.10 + 3.0);
}

TEST(Integration, DualityGapShrinksWithTraining) {
  const auto fed = heterogeneous_task(4, 2, 505, 1600, 2.5);
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  DualityGapOptions gap_opts;
  gap_opts.minimize_iters = 80;
  gap_opts.eta = 0.2;
  parallel::ThreadPool pool(4);

  auto gap_after = [&](index_t rounds) {
    auto opts = base_opts(rounds);
    opts.sampled_edges = 0;  // full participation for a clean signal
    const auto result = train_hierminimax(model, fed, topo, opts, pool);
    return estimate_duality_gap(model, fed, result.w_avg, result.p_avg,
                                gap_opts, pool)
        .gap;
  };
  const scalar_t early = gap_after(3);
  const scalar_t late = gap_after(150);
  EXPECT_LT(late, early);
  EXPECT_GT(early, 0);      // start far from a saddle point
  EXPECT_GT(late, -0.05);   // gap is nonnegative up to estimation noise
}

TEST(Integration, DualityGapRejectsNonConvexModel) {
  const auto fed = heterogeneous_task();
  const nn::Mlp mlp({fed.dim(), 8, fed.num_classes()});
  std::vector<scalar_t> w(static_cast<std::size_t>(mlp.num_params()), 0);
  std::vector<scalar_t> p(static_cast<std::size_t>(fed.num_edges()),
                          1.0 / static_cast<scalar_t>(fed.num_edges()));
  parallel::ThreadPool pool(2);
  EXPECT_THROW(
      estimate_duality_gap(mlp, fed, w, p, DualityGapOptions{}, pool),
      CheckError);
}

TEST(Integration, NonConvexMlpTrainsUnderHierMinimax) {
  const auto fed = heterogeneous_task(4, 2, 606, 1600, 3.0);
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::Mlp model({fed.dim(), 16, fed.num_classes()});
  auto opts = base_opts(120);
  opts.sampled_edges = 2;
  opts.eta_w = 0.05;
  const auto result = train_hierminimax(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.7);
}

TEST(Integration, ConvNetTrainsUnderHierMinimax) {
  // Image-shaped inputs end to end: 6x6 "images", conv feature extractor.
  data::GaussianSpec spec;
  spec.dim = 36;
  spec.num_classes = 4;
  spec.num_samples = 1600;
  spec.separation = 3.0;
  spec.seed = 808;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(809);
  const auto tt = data::split_train_test(all, 0.25, gen);
  const auto fed = data::partition_iid(tt, 4, 2, gen);
  const sim::HierTopology topo(4, 2);
  const nn::ConvNet model(6, 4, 3, 4);
  auto opts = base_opts(100);
  opts.sampled_edges = 2;
  opts.eta_w = 0.05;
  const auto result = train_hierminimax(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.7);
}

TEST(Integration, CommunicationCostOrdering) {
  // For equal K, per-round communication rounds satisfy
  // FedAvg < HierFAVG < HierMinimax (hierarchy + phase 2 add events),
  // and AFL == DRFA (same structure, different tau1).
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto opts = base_opts(10);
  const auto fv = train_fedavg(model, fed, opts);
  const auto fa = train_hierfavg(model, fed, topo, opts);
  const auto mm = train_hierminimax(model, fed, topo, opts);
  const auto dr = train_drfa(model, fed, opts);
  const auto afl = train_stochastic_afl(model, fed, opts);
  EXPECT_LT(fv.comm.total_rounds(), fa.comm.total_rounds());
  EXPECT_LT(fa.comm.total_rounds(), mm.comm.total_rounds());
  EXPECT_EQ(dr.comm.total_rounds(), afl.comm.total_rounds());
}

TEST(Integration, ProgressIsMonotoneOnAverageLoss) {
  // Global loss along the recorded history should broadly decrease
  // (compare first vs last rather than strict monotonicity).
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = base_opts(60);
  opts.eval_every = 20;
  const auto result = train_hierminimax(model, fed, topo, opts);
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().global_loss,
            result.history.records().front().global_loss);
}

}  // namespace
}  // namespace hm::algo
