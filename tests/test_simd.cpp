// Cross-variant equivalence suite for the runtime SIMD dispatch layer.
//
// The determinism contract promises that every dispatched variant
// (generic / AVX2 / AVX-512) of every kernel is bit-identical: the
// rounding sequence is fixed at the source level and kernels_impl.inc is
// merely recompiled with wider register tiles. This suite enforces the
// promise at 0 ULP by calling each entry of detail::kernel_table(level)
// for every CPU-supported level against the generic baseline, over shape
// sweeps chosen to hit the register-tile interiors AND every tail case
// (sub-MR row tails, sub-NR column tails, sub-vector k tails, empty and
// singleton operands).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "rng/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/simd.hpp"
#include "tensor/vecops.hpp"

namespace hm::tensor {
namespace {

std::uint64_t bits(scalar_t x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Deterministic ill-conditioned-ish fill: mixed signs and magnitudes so
/// a reassociated reduction cannot round the same by accident.
std::vector<scalar_t> fill(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<scalar_t> v(n);
  for (auto& x : v) {
    const scalar_t u = 2 * static_cast<scalar_t>(gen.uniform()) - 1;
    const int mag = static_cast<int>(gen.uniform_index(13)) - 6;
    x = std::ldexp(u, mag);
  }
  return v;
}

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> out;
  for (int l = 0; l < kNumSimdLevels; ++l) {
    const auto level = static_cast<SimdLevel>(l);
    if (simd_level_supported(level)) out.push_back(level);
  }
  return out;
}

void expect_vec_eq(const std::vector<scalar_t>& want,
                   const std::vector<scalar_t>& got,
                   const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(bits(want[i]), bits(got[i]))
        << label << "[" << i << "]: " << want[i] << " vs " << got[i];
  }
}

// Vector lengths hitting every unroll/tail combination for the widest
// variant (AVX-512 uses 8-lane vectors, unrolled pairs -> period 16).
const index_t kVecLens[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64, 257};

TEST(SimdDispatch, ActiveLevelIsSupported) {
  EXPECT_TRUE(simd_level_supported(active_simd_level()));
  EXPECT_TRUE(simd_level_supported(SimdLevel::kGeneric));
  EXPECT_STREQ(simd_level_name(SimdLevel::kGeneric), "generic");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
}

TEST(SimdDispatch, ElementwiseKernelsBitIdentical) {
  const auto& base = detail::kernel_table(SimdLevel::kGeneric);
  for (const SimdLevel level : supported_levels()) {
    const auto& kt = detail::kernel_table(level);
    const std::string tag = simd_level_name(level);
    for (const index_t n : kVecLens) {
      const auto sz = static_cast<std::size_t>(n);
      const auto x = fill(sz, 11 + sz);
      const auto z = fill(sz, 23 + sz);
      const scalar_t alpha = 0.7301, beta = -1.25;

      auto want = fill(sz, 37 + sz), got = want;
      base.axpy(alpha, x, want);
      kt.axpy(alpha, x, got);
      expect_vec_eq(want, got, tag + " axpy n=" + std::to_string(n));

      want = fill(sz, 41 + sz), got = want;
      base.axpby(alpha, x, beta, want);
      kt.axpby(alpha, x, beta, got);
      expect_vec_eq(want, got, tag + " axpby n=" + std::to_string(n));

      want = fill(sz, 43 + sz), got = want;
      base.axpy2(alpha, x, beta, z, want);
      kt.axpy2(alpha, x, beta, z, got);
      expect_vec_eq(want, got, tag + " axpy2 n=" + std::to_string(n));

      want = fill(sz, 47 + sz), got = want;
      base.scale(beta, want);
      kt.scale(beta, got);
      expect_vec_eq(want, got, tag + " scale n=" + std::to_string(n));
    }
  }
}

TEST(SimdDispatch, ReductionKernelsBitIdentical) {
  const auto& base = detail::kernel_table(SimdLevel::kGeneric);
  for (const SimdLevel level : supported_levels()) {
    const auto& kt = detail::kernel_table(level);
    const std::string tag = simd_level_name(level);
    for (const index_t n : kVecLens) {
      const auto sz = static_cast<std::size_t>(n);
      const auto x = fill(sz, 53 + sz);
      const auto y = fill(sz, 59 + sz);
      const auto z = fill(sz, 61 + sz);
      const std::string at = " n=" + std::to_string(n);

      EXPECT_EQ(bits(base.dot(x, y)), bits(kt.dot(x, y)))
          << tag << " dot" << at;
      EXPECT_EQ(bits(base.sum(x)), bits(kt.sum(x))) << tag << " sum" << at;
      EXPECT_EQ(bits(base.dist2(x, y)), bits(kt.dist2(x, y)))
          << tag << " dist2" << at;

      scalar_t w0 = 0, w1 = 0, g0 = 0, g1 = 0;
      base.dot2(x, y, z, w0, w1);
      kt.dot2(x, y, z, g0, g1);
      EXPECT_EQ(bits(w0), bits(g0)) << tag << " dot2.0" << at;
      EXPECT_EQ(bits(w1), bits(g1)) << tag << " dot2.1" << at;
    }
  }
}

// GEMM shapes: interiors and tails of every register tile in play
// (generic 8x6, AVX2 4x8, AVX-512 8x16), plus degenerate edges. Chosen
// so m % MR, n % NR, and k % VW are nonzero somewhere for every variant.
struct GemmShape {
  index_t m, n, k;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},  {1, 1, 7},   {2, 3, 5},    {3, 17, 9},  {5, 16, 8},
    {8, 6, 12}, {9, 7, 13},  {16, 16, 16}, {17, 33, 5}, {23, 19, 31},
    {4, 8, 64}, {33, 47, 3}, {64, 10, 11}, {1, 48, 24},
};

TEST(SimdDispatch, GemmVariantsBitIdentical) {
  const auto& base = detail::kernel_table(SimdLevel::kGeneric);
  for (const SimdLevel level : supported_levels()) {
    const auto& kt = detail::kernel_table(level);
    const std::string tag = simd_level_name(level);
    for (const auto& s : kGemmShapes) {
      const auto mm = static_cast<std::size_t>(s.m);
      const auto nn = static_cast<std::size_t>(s.n);
      const auto kk = static_cast<std::size_t>(s.k);
      const std::string at = " m=" + std::to_string(s.m) +
                             " n=" + std::to_string(s.n) +
                             " k=" + std::to_string(s.k);
      const auto a = fill(mm * kk, 67 + mm + nn);
      const auto b = fill(kk * nn, 71 + mm + nn);
      const auto bt = fill(nn * kk, 73 + mm + nn);
      const auto at_mat = fill(mm * kk, 79 + mm + nn);
      const auto bn = fill(mm * nn, 83 + mm + nn);

      for (const scalar_t beta : {scalar_t{0}, scalar_t{0.5}}) {
        auto want = fill(mm * nn, 89 + mm), got = want;
        base.gemm(ConstMatView(a.data(), s.m, s.k),
                  ConstMatView(b.data(), s.k, s.n),
                  MatView(want.data(), s.m, s.n), beta);
        kt.gemm(ConstMatView(a.data(), s.m, s.k),
                ConstMatView(b.data(), s.k, s.n),
                MatView(got.data(), s.m, s.n), beta);
        expect_vec_eq(want, got, tag + " gemm" + at);

        want = fill(mm * nn, 97 + mm), got = want;
        base.gemm_nt(ConstMatView(a.data(), s.m, s.k),
                     ConstMatView(bt.data(), s.n, s.k),
                     MatView(want.data(), s.m, s.n), beta);
        kt.gemm_nt(ConstMatView(a.data(), s.m, s.k),
                   ConstMatView(bt.data(), s.n, s.k),
                   MatView(got.data(), s.m, s.n), beta);
        expect_vec_eq(want, got, tag + " gemm_nt" + at);

        want = fill(kk * nn, 101 + mm), got = want;
        base.gemm_tn(ConstMatView(at_mat.data(), s.m, s.k),
                     ConstMatView(bn.data(), s.m, s.n),
                     MatView(want.data(), s.k, s.n), beta);
        kt.gemm_tn(ConstMatView(at_mat.data(), s.m, s.k),
                   ConstMatView(bn.data(), s.m, s.n),
                   MatView(got.data(), s.k, s.n), beta);
        expect_vec_eq(want, got, tag + " gemm_tn" + at);
      }

      auto ywant = fill(mm, 103 + mm), ygot = ywant;
      const auto xv = fill(kk, 107 + kk);
      base.gemv(ConstMatView(a.data(), s.m, s.k), xv, ywant, 0.25);
      kt.gemv(ConstMatView(a.data(), s.m, s.k), xv, ygot, 0.25);
      expect_vec_eq(ywant, ygot, tag + " gemv" + at);

      auto cwant = fill(mm * nn, 109 + mm), cgot = cwant;
      base.dot_nt(ConstMatView(a.data(), s.m, s.k),
                  ConstMatView(bt.data(), s.n, s.k),
                  MatView(cwant.data(), s.m, s.n));
      kt.dot_nt(ConstMatView(a.data(), s.m, s.k),
                ConstMatView(bt.data(), s.n, s.k),
                MatView(cgot.data(), s.m, s.n));
      expect_vec_eq(cwant, cgot, tag + " dot_nt" + at);
    }
  }
}

TEST(SimdDispatch, GemmNtFmaBitIdenticalAcrossVariantsAndMatchesNaiveFma) {
  // The explicitly-fused family has its own contract: every variant must
  // agree at 0 ULP, and all of them must equal the naive triple loop
  // whose accumulator update is a correctly-rounded fused multiply-add
  // (acc = fma(a, b, acc), k strictly increasing). It is a different
  // rounding sequence than gemm_nt, so it gets its own reference rather
  // than a cross-check against the unfused kernels.
  const auto& base = detail::kernel_table(SimdLevel::kGeneric);
  for (const SimdLevel level : supported_levels()) {
    const auto& kt = detail::kernel_table(level);
    const std::string tag = simd_level_name(level);
    for (const auto& s : kGemmShapes) {
      const auto mm = static_cast<std::size_t>(s.m);
      const auto nn = static_cast<std::size_t>(s.n);
      const auto kk = static_cast<std::size_t>(s.k);
      const std::string at = " m=" + std::to_string(s.m) +
                             " n=" + std::to_string(s.n) +
                             " k=" + std::to_string(s.k);
      const auto a = fill(mm * kk, 137 + mm + nn);
      const auto bt = fill(nn * kk, 139 + mm + nn);
      for (const scalar_t beta : {scalar_t{0}, scalar_t{0.5}}) {
        const auto c0 = fill(mm * nn, 149 + mm);
        auto want = c0, got = c0, naive = c0;
        base.gemm_nt_fma(ConstMatView(a.data(), s.m, s.k),
                         ConstMatView(bt.data(), s.n, s.k),
                         MatView(want.data(), s.m, s.n), beta);
        kt.gemm_nt_fma(ConstMatView(a.data(), s.m, s.k),
                       ConstMatView(bt.data(), s.n, s.k),
                       MatView(got.data(), s.m, s.n), beta);
        expect_vec_eq(want, got, tag + " gemm_nt_fma" + at);

        for (index_t i = 0; i < s.m; ++i) {
          for (index_t j = 0; j < s.n; ++j) {
            scalar_t acc = 0;
            for (index_t p = 0; p < s.k; ++p) {
              acc = std::fma(a[static_cast<std::size_t>(i * s.k + p)],
                             bt[static_cast<std::size_t>(j * s.k + p)], acc);
            }
            auto& c = naive[static_cast<std::size_t>(i * s.n + j)];
            c = beta == 0 ? acc : beta * c + acc;
          }
        }
        expect_vec_eq(naive, got, tag + " gemm_nt_fma vs naive fma" + at);
      }
    }
  }
}

TEST(SimdDispatch, GemmBatchMatchesSingleCallsEveryVariant) {
  // Ragged multi-group batch (the clients x layers schedule): each group
  // must match its own single-call result bitwise, per variant, and
  // every variant must agree with generic.
  const GemmShape shapes[] = {{1, 6, 12}, {9, 6, 12}, {17, 6, 12},
                              {3, 16, 5}, {8, 16, 5}};
  for (const SimdLevel level : supported_levels()) {
    const auto& kt = detail::kernel_table(level);
    const std::string tag = simd_level_name(level);
    const GemmKind kinds[] = {GemmKind::kNN, GemmKind::kNT, GemmKind::kTN};
    for (const GemmKind kind : kinds) {
      std::vector<std::vector<scalar_t>> as, bs, singles, batched;
      std::vector<GemmGroup> groups;
      for (std::size_t g = 0; g < std::size(shapes); ++g) {
        const auto& s = shapes[g];
        const auto mm = static_cast<std::size_t>(s.m);
        const auto nn = static_cast<std::size_t>(s.n);
        const auto kk = static_cast<std::size_t>(s.k);
        as.push_back(fill(mm * kk, 113 + g));
        const std::size_t bsz = kind == GemmKind::kNT ? nn * kk : kk * nn;
        const std::size_t csz = kind == GemmKind::kTN ? kk * nn : mm * nn;
        bs.push_back(kind == GemmKind::kTN ? fill(mm * nn, 127 + g)
                                           : fill(bsz, 127 + g));
        singles.push_back(fill(csz, 131 + g));
        batched.push_back(singles.back());
      }
      for (std::size_t g = 0; g < std::size(shapes); ++g) {
        const auto& s = shapes[g];
        const ConstMatView a(as[g].data(), s.m, s.k);
        if (kind == GemmKind::kNN) {
          const ConstMatView b(bs[g].data(), s.k, s.n);
          kt.gemm(a, b, MatView(singles[g].data(), s.m, s.n), 0.5);
          groups.push_back({a, b, MatView(batched[g].data(), s.m, s.n)});
        } else if (kind == GemmKind::kNT) {
          const ConstMatView b(bs[g].data(), s.n, s.k);
          kt.gemm_nt(a, b, MatView(singles[g].data(), s.m, s.n), 0.5);
          groups.push_back({a, b, MatView(batched[g].data(), s.m, s.n)});
        } else {
          const ConstMatView b(bs[g].data(), s.m, s.n);
          kt.gemm_tn(a, b, MatView(singles[g].data(), s.k, s.n), 0.5);
          groups.push_back({a, b, MatView(batched[g].data(), s.k, s.n)});
        }
      }
      kt.gemm_batch(kind, groups, 0.5);
      for (std::size_t g = 0; g < std::size(shapes); ++g) {
        expect_vec_eq(singles[g], batched[g],
                      tag + " gemm_batch kind=" +
                          std::to_string(static_cast<int>(kind)) +
                          " group=" + std::to_string(g));
      }
    }
  }
}

TEST(SimdDispatch, PublicEntryPointsUseActiveTable) {
  // The public wrappers must agree bitwise with the active table (they
  // ARE the active table; this guards against a wrapper bypassing
  // dispatch and silently pinning one variant).
  const auto& kt = detail::active_kernel_table();
  const auto x = fill(257, 5), y = fill(257, 6);
  EXPECT_EQ(bits(dot(x, y)), bits(kt.dot(x, y)));
  auto a = fill(257, 7), b = a;
  axpy(0.5, x, a);
  kt.axpy(0.5, x, b);
  expect_vec_eq(a, b, "public axpy");
}

}  // namespace
}  // namespace hm::tensor
