// Shared fixtures and helpers for the algorithm-level tests: small
// federated tasks with controlled heterogeneity that train in well under
// a second, the bit-exact fingerprint/trajectory-comparison helpers used
// by the fault, snapshot, and scenario matrices, and the scenario
// enumeration for the adversarial matrix.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "algo/hierminimax_multi.hpp"
#include "algo/options.hpp"
#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/fault.hpp"
#include "sim/topology.hpp"

namespace hm::testing_util {

/// Heterogeneous task: `num_edges` edges, one class each (paper §6.1
/// protocol), low dimension for speed.
inline data::FederatedDataset heterogeneous_task(index_t num_edges = 4,
                                                 index_t clients_per_edge = 2,
                                                 seed_t seed = 77,
                                                 index_t samples = 1200,
                                                 scalar_t separation = 3.0) {
  data::GaussianSpec spec;
  spec.dim = 12;
  spec.num_classes = num_edges;
  spec.num_samples = samples;
  spec.separation = separation;
  // Classes (== edges) of unequal hardness and size: the regime where
  // minimax weighting matters (see DESIGN.md).
  spec.difficulty_spread = 0.5;
  spec.imbalance = 2.0;
  spec.seed = seed;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(seed + 1);
  const auto tt = data::split_train_test(all, 0.25, gen);
  return data::partition_one_class_per_edge(tt, num_edges, clients_per_edge,
                                            gen);
}

/// I.i.d. control task (every edge sees every class).
inline data::FederatedDataset iid_task(index_t num_edges = 4,
                                       index_t clients_per_edge = 2,
                                       seed_t seed = 88) {
  data::GaussianSpec spec;
  spec.dim = 12;
  spec.num_classes = 4;
  spec.num_samples = 1200;
  spec.separation = 3.0;
  spec.seed = seed;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(seed + 1);
  const auto tt = data::split_train_test(all, 0.25, gen);
  return data::partition_iid(tt, num_edges, clients_per_edge, gen);
}

// ---------------------------------------------------------------------
// Bit-exact fingerprinting. Scalars are hashed through their bit
// patterns, so two fingerprints agree iff every value is bit-identical.

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t bits(scalar_t x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

inline std::uint64_t mix_vec(std::uint64_t h,
                             const std::vector<scalar_t>& v) {
  h = mix(h, v.size());
  for (const scalar_t x : v) h = mix(h, bits(x));
  return h;
}

inline std::uint64_t mix_link(std::uint64_t h,
                              const sim::LinkFaultStats& f) {
  h = mix(h, f.attempted);
  h = mix(h, f.delivered);
  h = mix(h, f.dropped);
  h = mix(h, f.in_retry);
  h = mix(h, f.straggled);
  h = mix(h, bits(f.extra_rtts));
  return h;
}

/// `model_only` drops the fault delivery counters: an enabled
/// zero-probability plan legitimately meters deliveries the disabled
/// fast path never counts, while every model-visible quantity must stay
/// bit-identical.
inline std::uint64_t mix_comm(std::uint64_t h, const sim::CommStats& c,
                              bool model_only = false) {
  h = mix(h, c.client_edge_rounds);
  h = mix(h, c.edge_cloud_rounds);
  h = mix(h, c.client_edge_models_up);
  h = mix(h, c.client_edge_models_down);
  h = mix(h, c.edge_cloud_models_up);
  h = mix(h, c.edge_cloud_models_down);
  h = mix(h, c.client_edge_scalars);
  h = mix(h, c.edge_cloud_scalars);
  h = mix(h, c.client_edge_bytes);
  h = mix(h, c.edge_cloud_bytes);
  if (!model_only) {
    h = mix_link(h, c.client_edge_fault);
    h = mix_link(h, c.edge_cloud_fault);
  }
  return h;
}

inline std::uint64_t fingerprint_history(
    std::uint64_t h, const metrics::TrainingHistory& hist,
    bool model_only) {
  h = mix(h, hist.size());
  for (const auto& r : hist.records()) {
    h = mix(h, static_cast<std::uint64_t>(r.round));
    h = mix_comm(h, r.comm, model_only);
    h = mix_vec(h, r.edge_acc);
    h = mix(h, bits(r.summary.average));
    h = mix(h, bits(r.summary.worst));
    h = mix(h, bits(r.global_loss));
  }
  return h;
}

inline std::uint64_t fingerprint(const algo::TrainResult& r,
                                 bool model_only) {
  std::uint64_t h = 0;
  h = mix_vec(h, r.w);
  h = mix_vec(h, r.p);
  h = mix_vec(h, r.w_avg);
  h = mix_vec(h, r.p_avg);
  h = mix_comm(h, r.comm, model_only);
  h = fingerprint_history(h, r.history, model_only);
  return h;
}

inline std::uint64_t fingerprint(const algo::MultiTrainResult& r,
                                 bool model_only) {
  std::uint64_t h = 0;
  h = mix_vec(h, r.w);
  h = mix_vec(h, r.p);
  h = mix(h, r.comm.levels.size());
  for (const auto& l : r.comm.levels) {
    h = mix(h, l.rounds);
    h = mix(h, l.models_up);
    h = mix(h, l.models_down);
  }
  if (!model_only) {
    h = mix_link(h, r.comm.leaf_fault);
    h = mix_link(h, r.comm.top_fault);
  }
  h = fingerprint_history(h, r.history, model_only);
  return h;
}

// ---------------------------------------------------------------------
// Trajectory byte-comparison (snapshot/scenario matrices).

/// Everything a run produces, reduced to exact-comparable form. `tsv` is
/// the full history dump, so a diverging run with a duplicated or
/// missing evaluation record fails with a readable diff.
struct RunOutput {
  std::vector<scalar_t> w;
  std::uint64_t fp = 0;  // p, averages, comm counters, history records
  std::string tsv;
};

inline void expect_same_output(const RunOutput& a, const RunOutput& b,
                               const std::string& label) {
  ASSERT_EQ(a.w.size(), b.w.size()) << label;
  for (std::size_t i = 0; i < a.w.size(); ++i) {
    ASSERT_EQ(bits(a.w[i]), bits(b.w[i]))
        << label << ": w[" << i << "] diverged";
  }
  EXPECT_EQ(a.fp, b.fp) << label;
  EXPECT_EQ(a.tsv, b.tsv) << label;
}

inline RunOutput output_of(const algo::TrainResult& r) {
  RunOutput out;
  out.w = r.w;
  std::uint64_t h = 0;
  h = mix_vec(h, r.p);
  h = mix_vec(h, r.w_avg);
  h = mix_vec(h, r.p_avg);
  h = mix_comm(h, r.comm);
  for (const auto& rec : r.history.records()) {
    h = mix(h, static_cast<std::uint64_t>(rec.round));
    h = mix_comm(h, rec.comm);
    h = mix_vec(h, rec.edge_acc);
    h = mix(h, bits(rec.global_loss));
  }
  out.fp = h;
  std::ostringstream os;
  r.history.write_tsv(os, "run");
  out.tsv = os.str();
  return out;
}

inline RunOutput output_of(const algo::MultiTrainResult& r) {
  RunOutput out;
  out.w = r.w;
  std::uint64_t h = 0;
  h = mix_vec(h, r.p);
  h = mix(h, r.comm.levels.size());
  for (const auto& l : r.comm.levels) {
    h = mix(h, l.rounds);
    h = mix(h, l.models_up);
    h = mix(h, l.models_down);
  }
  h = mix_link(h, r.comm.leaf_fault);
  h = mix_link(h, r.comm.top_fault);
  for (const auto& rec : r.history.records()) {
    h = mix(h, static_cast<std::uint64_t>(rec.round));
    h = mix_comm(h, rec.comm);
    h = mix_vec(h, rec.edge_acc);
    h = mix(h, bits(rec.global_loss));
  }
  out.fp = h;
  std::ostringstream os;
  r.history.write_tsv(os, "run");
  out.tsv = os.str();
  return out;
}

// ---------------------------------------------------------------------
// Scenario-matrix enumeration: one named FaultSpec per row, shared by
// the fault matrix (test_fault.cpp) and the adversarial matrix
// (test_scenario.cpp).

struct Scenario {
  std::string name;
  sim::FaultSpec spec;  // always enabled; "none" is the zero-prob plan
};

/// Classic fault rows: dropout, stragglers + lossy links, crashes.
inline std::vector<Scenario> fault_scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "none";
    s.spec.enabled = true;  // exercises the fault code path, zero faults
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "dropout20";
    s.spec.enabled = true;
    s.spec.client_dropout_prob = 0.2;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "heavy_stragglers";
    s.spec.enabled = true;
    s.spec.straggler_prob = 0.6;
    s.spec.straggler_mult_mean = 8.0;
    s.spec.edge_loss_prob = 0.3;  // wide-area retries in the same scenario
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "edge_crash";
    s.spec.enabled = true;
    s.spec.edge_crash_round = {-1, 2};        // edge 1 dies at round 2
    s.spec.client_crash_round = {-1, -1, 3};  // client 2 dies at round 3
    s.spec.client_dropout_prob = 0.1;
    out.push_back(s);
  }
  return out;
}

/// Adversarial & non-stationary rows: the three Byzantine attacks plus
/// population churn. (Concept drift lives in the dataset, not the
/// FaultSpec, and is enumerated separately by test_scenario.cpp.)
inline std::vector<Scenario> adversarial_scenarios(
    double attack_frac = 0.25) {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "sign_flip";
    s.spec.enabled = true;
    s.spec.attack = sim::AttackKind::kSignFlip;
    s.spec.attack_prob = attack_frac;
    s.spec.attack_scale = 4.0;  // amplified reflection
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "scaled_noise";
    s.spec.enabled = true;
    s.spec.attack = sim::AttackKind::kScaledNoise;
    s.spec.attack_prob = attack_frac;
    s.spec.attack_scale = 8.0;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "label_flip";
    s.spec.enabled = true;
    s.spec.attack = sim::AttackKind::kLabelFlip;
    s.spec.attack_prob = attack_frac;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "churn";
    s.spec.enabled = true;
    s.spec.churn_prob = 0.3;
    s.spec.churn_dwell = 2;
    out.push_back(s);
  }
  return out;
}

}  // namespace hm::testing_util
