// Shared fixtures for the algorithm-level tests: small federated tasks
// with controlled heterogeneity that train in well under a second.
#pragma once

#include "data/federated.hpp"
#include "data/generators.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/topology.hpp"

namespace hm::testing_util {

/// Heterogeneous task: `num_edges` edges, one class each (paper §6.1
/// protocol), low dimension for speed.
inline data::FederatedDataset heterogeneous_task(index_t num_edges = 4,
                                                 index_t clients_per_edge = 2,
                                                 seed_t seed = 77,
                                                 index_t samples = 1200,
                                                 scalar_t separation = 3.0) {
  data::GaussianSpec spec;
  spec.dim = 12;
  spec.num_classes = num_edges;
  spec.num_samples = samples;
  spec.separation = separation;
  // Classes (== edges) of unequal hardness and size: the regime where
  // minimax weighting matters (see DESIGN.md).
  spec.difficulty_spread = 0.5;
  spec.imbalance = 2.0;
  spec.seed = seed;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(seed + 1);
  const auto tt = data::split_train_test(all, 0.25, gen);
  return data::partition_one_class_per_edge(tt, num_edges, clients_per_edge,
                                            gen);
}

/// I.i.d. control task (every edge sees every class).
inline data::FederatedDataset iid_task(index_t num_edges = 4,
                                       index_t clients_per_edge = 2,
                                       seed_t seed = 88) {
  data::GaussianSpec spec;
  spec.dim = 12;
  spec.num_classes = 4;
  spec.num_samples = 1200;
  spec.separation = 3.0;
  spec.seed = seed;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(seed + 1);
  const auto tt = data::split_train_test(all, 0.25, gen);
  return data::partition_iid(tt, num_edges, clients_per_edge, gen);
}

}  // namespace hm::testing_util
