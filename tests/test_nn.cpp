// Unit + property tests for hm::nn: exact gradients (finite differences),
// loss semantics, prediction, initialization statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "data/generators.hpp"
#include "nn/convnet.hpp"
#include "nn/grad_check.hpp"
#include "nn/linear_regression.hpp"
#include "nn/mlp.hpp"
#include "nn/model.hpp"
#include "nn/softmax_regression.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {
namespace {

data::Dataset small_task(index_t dim = 6, index_t classes = 4,
                         index_t n = 64, seed_t seed = 3) {
  data::GaussianSpec spec;
  spec.dim = dim;
  spec.num_classes = classes;
  spec.num_samples = n;
  spec.separation = 2.5;
  spec.seed = seed;
  return data::make_gaussian_classes(spec);
}

std::vector<scalar_t> random_params(const Model& m, seed_t seed) {
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 gen(seed);
  for (auto& v : w) v = gen.normal(0.0, 0.3);
  return w;
}

TEST(SoftmaxRegression, ParamCountAndMetadata) {
  const SoftmaxRegression m(10, 4);
  EXPECT_EQ(m.num_params(), 44);  // 10*4 weights + 4 biases
  EXPECT_EQ(m.num_classes(), 4);
  EXPECT_EQ(m.input_dim(), 10);
  EXPECT_TRUE(m.is_convex());
}

TEST(SoftmaxRegression, ZeroInitGivesUniformLoss) {
  const SoftmaxRegression m(6, 4);
  const auto d = small_task();
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 gen(1);
  m.init_params(w, gen);
  auto ws = m.make_workspace();
  const auto batch = all_indices(d.size());
  // With all-zero params every class has probability 1/4.
  EXPECT_NEAR(m.loss(w, d, batch, *ws), std::log(4.0), 1e-12);
}

TEST(SoftmaxRegression, GradientMatchesFiniteDifferences) {
  const SoftmaxRegression m(6, 4);
  const auto d = small_task();
  const auto w = random_params(m, 11);
  const std::vector<index_t> batch = {0, 5, 9, 17};
  const auto result = check_gradients(m, w, d, batch);
  EXPECT_LT(result.max_rel_error, 1e-5);
  EXPECT_EQ(result.coords_checked, m.num_params());
}

TEST(SoftmaxRegression, LossConsistentWithLossAndGrad) {
  const SoftmaxRegression m(6, 4);
  const auto d = small_task();
  const auto w = random_params(m, 12);
  auto ws = m.make_workspace();
  std::vector<scalar_t> grad(static_cast<std::size_t>(m.num_params()));
  const std::vector<index_t> batch = {1, 2, 3};
  EXPECT_NEAR(m.loss(w, d, batch, *ws),
              m.loss_and_grad(w, d, batch, grad, *ws), 1e-12);
}

TEST(SoftmaxRegression, GradientDescentReducesLoss) {
  const SoftmaxRegression m(6, 4);
  const auto d = small_task();
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()), 0);
  std::vector<scalar_t> grad(w.size());
  auto ws = m.make_workspace();
  const auto batch = all_indices(d.size());
  const scalar_t initial = m.loss(w, d, batch, *ws);
  for (int it = 0; it < 50; ++it) {
    m.loss_and_grad(w, d, batch, grad, *ws);
    tensor::axpy(-0.5, grad, VecView(w));
  }
  const scalar_t final_loss = m.loss(w, d, batch, *ws);
  EXPECT_LT(final_loss, 0.5 * initial);
  EXPECT_GT(accuracy(m, w, d, *ws), 0.8);
}

TEST(SoftmaxRegression, PredictPicksArgmaxClass) {
  const SoftmaxRegression m(2, 3);
  // Craft weights so that class = argmax over (w_c . x).
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()), 0);
  w[0] = 1;  // class 0 likes x0
  w[3] = 1;  // class 1 likes x1
  data::Dataset d;
  d.num_classes = 3;
  d.x.resize(2, 2);
  d.x(0, 0) = 5;  // -> class 0
  d.x(1, 1) = 5;  // -> class 1
  d.y = {0, 1};
  auto ws = m.make_workspace();
  std::vector<index_t> pred(2);
  m.predict(w, d, all_indices(2), pred, *ws);
  EXPECT_EQ(pred[0], 0);
  EXPECT_EQ(pred[1], 1);
  EXPECT_DOUBLE_EQ(accuracy(m, w, d, *ws), 1.0);
}

TEST(Mlp, ParamLayoutAndViews) {
  const Mlp m({5, 7, 3});
  EXPECT_EQ(m.num_params(), 5 * 7 + 7 + 7 * 3 + 3);
  EXPECT_EQ(m.num_layers(), 2);
  EXPECT_FALSE(m.is_convex());
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  std::iota(w.begin(), w.end(), scalar_t{0});
  const auto w0 = m.weights(ConstVecView(w), 0);
  EXPECT_EQ(w0.rows(), 7);
  EXPECT_EQ(w0.cols(), 5);
  EXPECT_DOUBLE_EQ(w0(0, 0), 0);
  const auto b0 = m.biases(ConstVecView(w), 0);
  EXPECT_DOUBLE_EQ(b0[0], 35);  // right after the 35 weights
  const auto w1 = m.weights(ConstVecView(w), 1);
  EXPECT_DOUBLE_EQ(w1(0, 0), 42);
}

TEST(Mlp, SingleLayerMatchesSoftmaxRegression) {
  // An MLP with no hidden layers is exactly softmax regression (up to
  // parameter ordering, which happens to coincide).
  const Mlp mlp({6, 4});
  const SoftmaxRegression smr(6, 4);
  ASSERT_EQ(mlp.num_params(), smr.num_params());
  const auto d = small_task();
  const auto w = random_params(mlp, 21);
  auto ws_a = mlp.make_workspace();
  auto ws_b = smr.make_workspace();
  const std::vector<index_t> batch = {0, 3, 7};
  EXPECT_NEAR(mlp.loss(w, d, batch, *ws_a), smr.loss(w, d, batch, *ws_b),
              1e-10);
  std::vector<scalar_t> ga(w.size()), gb(w.size());
  mlp.loss_and_grad(w, d, batch, ga, *ws_a);
  smr.loss_and_grad(w, d, batch, gb, *ws_b);
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(ga[i], gb[i], 1e-10);
  }
}

struct MlpShape {
  std::vector<index_t> dims;
};

class MlpGradient : public ::testing::TestWithParam<MlpShape> {};

TEST_P(MlpGradient, MatchesFiniteDifferences) {
  const Mlp m(GetParam().dims);
  data::GaussianSpec spec;
  spec.dim = GetParam().dims.front();
  spec.num_classes = GetParam().dims.back();
  spec.num_samples = 32;
  spec.seed = 31;
  const auto d = data::make_gaussian_classes(spec);
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 gen(32);
  m.init_params(w, gen);
  const std::vector<index_t> batch = {0, 7, 13, 28};
  const auto result =
      check_gradients(m, w, d, batch, /*epsilon=*/1e-5, /*max_coords=*/300);
  EXPECT_LT(result.max_rel_error, 2e-4) << "abs=" << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradient,
    ::testing::Values(MlpShape{{4, 3}}, MlpShape{{6, 8, 3}},
                      MlpShape{{5, 10, 6, 4}}, MlpShape{{8, 16, 16, 2}}));

TEST(Mlp, HeInitStatistics) {
  const Mlp m({100, 50, 10});
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 gen(5);
  m.init_params(w, gen);
  // Layer 0 weights ~ N(0, 2/100).
  const auto w0 = m.weights(ConstVecView(w), 0);
  scalar_t sum = 0, sum2 = 0;
  for (const scalar_t v : w0.flat()) {
    sum += v;
    sum2 += v * v;
  }
  const auto n = static_cast<scalar_t>(w0.flat().size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 2.0 / 100, 0.005);
  // Biases exactly zero.
  for (const scalar_t b : m.biases(ConstVecView(w), 0)) {
    EXPECT_DOUBLE_EQ(b, 0.0);
  }
}

TEST(Mlp, TrainingReducesLossOnSmallTask) {
  const Mlp m({6, 16, 4});
  const auto d = small_task(6, 4, 128, 7);
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 gen(8);
  m.init_params(w, gen);
  auto ws = m.make_workspace();
  std::vector<scalar_t> grad(w.size());
  const auto batch = all_indices(d.size());
  const scalar_t initial = m.loss(w, d, batch, *ws);
  for (int it = 0; it < 120; ++it) {
    m.loss_and_grad(w, d, batch, grad, *ws);
    tensor::axpy(-0.3, grad, VecView(w));
  }
  EXPECT_LT(m.loss(w, d, batch, *ws), 0.5 * initial);
  EXPECT_GT(accuracy(m, w, d, *ws), 0.85);
}

TEST(Mlp, PaperArchitectureFactory) {
  const Mlp m = make_paper_mlp(784, 10);
  EXPECT_EQ(m.layer_dims(), (std::vector<index_t>{784, 300, 100, 10}));
  // 784*300+300 + 300*100+100 + 100*10+10 = 266,610 — the paper's
  // W = R^266610.
  EXPECT_EQ(m.num_params(), 266610);
}

TEST(Model, BatchSubsetLossIsMeanOverBatch) {
  const SoftmaxRegression m(6, 4);
  const auto d = small_task();
  const auto w = random_params(m, 40);
  auto ws = m.make_workspace();
  const std::vector<index_t> b1 = {3};
  const std::vector<index_t> b2 = {9};
  const std::vector<index_t> both = {3, 9};
  const scalar_t mean =
      (m.loss(w, d, b1, *ws) + m.loss(w, d, b2, *ws)) / 2;
  EXPECT_NEAR(m.loss(w, d, both, *ws), mean, 1e-12);
}

TEST(LinearRegression, MetadataAndConvexity) {
  const LinearRegression m(8, 3);
  EXPECT_EQ(m.num_params(), 27);
  EXPECT_TRUE(m.is_convex());
  EXPECT_EQ(m.num_classes(), 3);
}

TEST(LinearRegression, GradientMatchesFiniteDifferences) {
  const LinearRegression m(6, 4);
  const auto d = small_task();
  const auto w = random_params(m, 61);
  const std::vector<index_t> batch = {0, 4, 9};
  const auto result = check_gradients(m, w, d, batch);
  EXPECT_LT(result.max_rel_error, 1e-6);
}

TEST(LinearRegression, ZeroInitLossIsHalf) {
  // Zero scores vs one-hot target: loss = 0.5 * 1 per sample.
  const LinearRegression m(6, 4);
  const auto d = small_task();
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()), 0);
  auto ws = m.make_workspace();
  EXPECT_NEAR(m.loss(w, d, all_indices(d.size()), *ws), 0.5, 1e-12);
}

TEST(LinearRegression, GradientDescentLearnsSeparableTask) {
  const LinearRegression m(6, 4);
  const auto d = small_task(6, 4, 200, 9);
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()), 0);
  std::vector<scalar_t> grad(w.size());
  auto ws = m.make_workspace();
  const auto batch = all_indices(d.size());
  // MSE Hessian ~ E[xx^T]: keep the step below 2/lambda_max.
  for (int it = 0; it < 400; ++it) {
    m.loss_and_grad(w, d, batch, grad, *ws);
    tensor::axpy(-0.05, grad, VecView(w));
  }
  EXPECT_GT(accuracy(m, w, d, *ws), 0.8);
}

TEST(ConvNet, ParamCountAndShapes) {
  // 8x8 input, 3 filters of 3x3 -> 6x6 features -> 4 classes.
  const ConvNet m(8, 3, 3, 4);
  EXPECT_EQ(m.input_dim(), 64);
  EXPECT_EQ(m.feature_side(), 6);
  EXPECT_EQ(m.num_params(), 3 * 9 + 3 + 4 * 3 * 36 + 4);
  EXPECT_FALSE(m.is_convex());
}

TEST(ConvNet, InvalidGeometryThrows) {
  EXPECT_THROW(ConvNet(4, 2, 5, 3), CheckError);  // kernel > side
  EXPECT_THROW(ConvNet(4, 0, 2, 3), CheckError);
}

TEST(ConvNet, GradientMatchesFiniteDifferences) {
  const ConvNet m(6, 2, 3, 3);
  data::GaussianSpec spec;
  spec.dim = 36;
  spec.num_classes = 3;
  spec.num_samples = 16;
  spec.seed = 71;
  const auto d = data::make_gaussian_classes(spec);
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 gen(72);
  m.init_params(w, gen);
  const std::vector<index_t> batch = {0, 5, 11};
  const auto result =
      check_gradients(m, w, d, batch, /*epsilon=*/1e-5, /*max_coords=*/200);
  EXPECT_LT(result.max_rel_error, 2e-4) << "abs=" << result.max_abs_error;
}

TEST(ConvNet, LearnsTranslationStructuredTask) {
  // Task where the class is a local 2x2 pattern placed at a random
  // location: exactly what a conv filter can detect and a dense model of
  // the same size finds hard. Checks the model trains end-to-end.
  const index_t side = 6;
  data::Dataset d;
  d.num_classes = 2;
  const index_t n = 256;
  d.x.resize(n, side * side);
  d.y.resize(static_cast<std::size_t>(n));
  rng::Xoshiro256 gen(73);
  for (index_t i = 0; i < n; ++i) {
    auto row = d.x.row(i);
    for (auto& v : row) v = gen.normal(0.0, 0.3);
    const index_t label = static_cast<index_t>(gen.uniform_index(2));
    const auto r0 = static_cast<index_t>(gen.uniform_index(side - 1));
    const auto c0 = static_cast<index_t>(gen.uniform_index(side - 1));
    // Class 0: bright diagonal pair; class 1: bright anti-diagonal pair.
    if (label == 0) {
      row[static_cast<std::size_t>(r0 * side + c0)] += 2.5;
      row[static_cast<std::size_t>((r0 + 1) * side + c0 + 1)] += 2.5;
    } else {
      row[static_cast<std::size_t>(r0 * side + c0 + 1)] += 2.5;
      row[static_cast<std::size_t>((r0 + 1) * side + c0)] += 2.5;
    }
    d.y[static_cast<std::size_t>(i)] = label;
  }
  const ConvNet m(side, 4, 2, 2);
  std::vector<scalar_t> w(static_cast<std::size_t>(m.num_params()));
  rng::Xoshiro256 init(74);
  m.init_params(w, init);
  auto ws = m.make_workspace();
  std::vector<scalar_t> grad(w.size());
  const auto batch = all_indices(d.size());
  for (int it = 0; it < 250; ++it) {
    m.loss_and_grad(w, d, batch, grad, *ws);
    tensor::axpy(-0.5, grad, VecView(w));
  }
  EXPECT_GT(accuracy(m, w, d, *ws), 0.9);
}

TEST(GradCheck, DetectsBrokenGradient) {
  // A model with a deliberately wrong gradient must fail the check:
  // here we corrupt one coordinate of the analytic gradient by wrapping.
  class Broken final : public Model {
   public:
    explicit Broken(SoftmaxRegression inner) : inner_(std::move(inner)) {}
    index_t num_params() const override { return inner_.num_params(); }
    index_t num_classes() const override { return inner_.num_classes(); }
    index_t input_dim() const override { return inner_.input_dim(); }
    bool is_convex() const override { return true; }
    std::unique_ptr<Workspace> make_workspace() const override {
      return inner_.make_workspace();
    }
    void init_params(VecView w, rng::Xoshiro256& gen) const override {
      inner_.init_params(w, gen);
    }
    scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                           std::span<const index_t> batch, VecView grad,
                           Workspace& ws) const override {
      const scalar_t loss = inner_.loss_and_grad(w, d, batch, grad, ws);
      grad[0] += 1.0;  // the bug
      return loss;
    }
    scalar_t loss(ConstVecView w, const data::Dataset& d,
                  std::span<const index_t> batch,
                  Workspace& ws) const override {
      return inner_.loss(w, d, batch, ws);
    }
    void predict(ConstVecView w, const data::Dataset& d,
                 std::span<const index_t> batch, std::span<index_t> out,
                 Workspace& ws) const override {
      inner_.predict(w, d, batch, out, ws);
    }

   private:
    SoftmaxRegression inner_;
  };

  const Broken m(SoftmaxRegression(6, 4));
  const auto d = small_task();
  const auto w = random_params(m, 50);
  const std::vector<index_t> batch = {0, 1};
  const auto result = check_gradients(m, w, d, batch);
  EXPECT_GT(result.max_abs_error, 0.5);
}

}  // namespace
}  // namespace hm::nn
