// Golden-trajectory regression test: a short seeded run of every trainer
// is pinned to checked-in exact bit patterns (per-record global loss plus
// the final minimax weights p). Any change to initialization, RNG stream
// layout, reduction order, or aggregation semantics shows up here as a
// bit difference with a readable hex diff — the cross-binary complement
// of the within-binary replay checks in test_fault / test_scenario.
//
// Regenerating after an *intentional* trajectory change:
//   HM_GOLDEN_PRINT=1 ./test_golden --gtest_filter='Golden.*'
// prints the replacement table; paste it over kGolden below. The values
// are produced and verified on the same platform class as CI (x86-64
// glibc); a port with a different libm would regenerate first.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "algo/qffl.hpp"
#include "nn/softmax_regression.hpp"
#include "sim/multi_topology.hpp"
#include "sim/topology.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::bits;
using testing_util::heterogeneous_task;

TrainOptions golden_opts() {
  TrainOptions o;
  o.rounds = 3;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 1;  // a loss record every round
  o.seed = 5;
  return o;
}

MultiTrainOptions multi_golden_opts() {
  MultiTrainOptions o;
  o.rounds = 3;
  o.taus = {2, 2};
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 1;
  o.seed = 5;
  return o;
}

const data::FederatedDataset& shared_task() {
  static const data::FederatedDataset fed = heterogeneous_task(4, 2);
  return fed;
}

/// The pinned quantities: one u64 bit pattern per per-round global loss,
/// then one per coordinate of the final p.
struct Trajectory {
  std::vector<std::uint64_t> loss;
  std::vector<std::uint64_t> p;
};

template <typename Result>
Trajectory trajectory_of(const Result& r) {
  Trajectory t;
  for (const auto& rec : r.history.records()) {
    t.loss.push_back(bits(rec.global_loss));
  }
  for (const scalar_t x : r.p) t.p.push_back(bits(x));
  return t;
}

struct Runner {
  std::string name;
  Trajectory (*run)();
};

std::vector<Runner> runners() {
  std::vector<Runner> out;
  out.push_back({"fedavg", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       train_fedavg(model, fed, golden_opts()));
                 }});
  out.push_back({"hierfavg", [] {
                   const auto& fed = shared_task();
                   const sim::HierTopology topo(fed.num_edges(),
                                                fed.clients_per_edge);
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       train_hierfavg(model, fed, topo, golden_opts()));
                 }});
  out.push_back({"drfa", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       train_drfa(model, fed, golden_opts()));
                 }});
  out.push_back({"stochastic_afl", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       train_stochastic_afl(model, fed, golden_opts()));
                 }});
  out.push_back({"qffl", [] {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       train_qffl(model, fed, golden_opts(), /*q=*/2.0));
                 }});
  out.push_back({"hierminimax", [] {
                   const auto& fed = shared_task();
                   const sim::HierTopology topo(fed.num_edges(),
                                                fed.clients_per_edge);
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(
                       train_hierminimax(model, fed, topo, golden_opts()));
                 }});
  out.push_back({"hierminimax_multi", [] {
                   const auto& fed = shared_task();
                   const sim::MultiTopology topo(
                       {fed.num_edges(), fed.clients_per_edge});
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(train_hierminimax_multi(
                       model, fed, topo, multi_golden_opts()));
                 }});
  out.push_back({"hierfavg_multi", [] {
                   const auto& fed = shared_task();
                   const sim::MultiTopology topo(
                       {fed.num_edges(), fed.clients_per_edge});
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return trajectory_of(train_hierfavg_multi(
                       model, fed, topo, multi_golden_opts()));
                 }});
  return out;
}

struct GoldenRow {
  const char* name;
  std::vector<std::uint64_t> loss;
  std::vector<std::uint64_t> p;
};

// Regenerate with HM_GOLDEN_PRINT=1 (see the file comment). The first
// loss record of every trainer is the untrained model's ln(4) — the
// uniform-prediction cross-entropy on 4 classes — which doubles as a
// sanity check that the table belongs to this fixture.
const std::vector<GoldenRow>& golden() {
  static const std::vector<GoldenRow> kGolden = {
      {"fedavg",
       {0x3ff62e42fefa39f5ull, 0x3ff37698d73f6106ull, 0x3ff169492d846874ull,
        0x3fefee554d14f2f2ull},
       {0x3fd0000000000000ull, 0x3fd0000000000000ull, 0x3fd0000000000000ull,
        0x3fd0000000000000ull}},
      {"hierfavg",
       {0x3ff62e42fefa39f5ull, 0x3ff24c27b3f6df52ull, 0x3fefd7b79e0ac40cull,
        0x3fec4c773c205420ull},
       {0x3fd0000000000000ull, 0x3fd0000000000000ull, 0x3fd0000000000000ull,
        0x3fd0000000000000ull}},
      {"drfa",
       {0x3ff62e42fefa39f5ull, 0x3ff341bdad572d5full, 0x3ff15ce5cb2f0c1cull,
        0x3ff012481ac47856ull},
       {0x3fc614b3f7b48f05ull, 0x3fcea700b1fc86eeull, 0x3fd4768af52f616bull,
        0x3fd12b9ab5f8139bull}},
      {"stochastic_afl",
       {0x3ff62e42fefa39f5ull, 0x3ff4914f3a32dddfull, 0x3ff348b2dfb8c7a2ull,
        0x3ff22b42b3fd0734ull},
       {0x3fcc569ff2f3b1bdull, 0x3fcf90017a73e5baull, 0x3fd16f734fb2c377ull,
        0x3fd09d3bf99970cfull}},
      {"qffl",
       {0x3ff62e42fefa39f5ull, 0x3ff56c4aee3a7a80ull, 0x3ff4b354a2c7cc17ull,
        0x3ff40aa5d91781b8ull},
       {0x3fd0000000000000ull, 0x3fd0000000000000ull, 0x3fd0000000000000ull,
        0x3fd0000000000000ull}},
      {"hierminimax",
       {0x3ff62e42fefa39f5ull, 0x3ff205c7d64a446full, 0x3ff0a7ec6dbced9eull,
        0x3fed272e2800a0c9ull},
       {0x3fc6c1120383ff93ull, 0x3fc808bd341923e9ull, 0x3fd6c76904804384ull,
        0x3fd1d3af5fb12abeull}},
      {"hierminimax_multi",
       {0x3ff62e42fefa39f5ull, 0x3ff2016d2bcf495aull, 0x3ff0aa9cda991ea8ull,
        0x3febd75e223577fcull},
       {0x3fca69edb31c100bull, 0x3fc8bc356268d59full, 0x3fd6c505d195cbf7ull,
        0x3fcf4fd1474f8269ull}},
      {"hierfavg_multi",
       {0x3ff62e42fefa39f5ull, 0x3ff24d3a48756d37ull, 0x3fefcadf9d1684deull,
        0x3fec43145c31d985ull},
       {0x3fd0000000000000ull, 0x3fd0000000000000ull, 0x3fd0000000000000ull,
        0x3fd0000000000000ull}},
  };
  return kGolden;
}

void print_row(const std::string& name, const Trajectory& t) {
  std::printf("    {\"%s\",\n     {", name.c_str());
  for (std::size_t i = 0; i < t.loss.size(); ++i) {
    std::printf("%s0x%016llxull", i ? ", " : "",
                static_cast<unsigned long long>(t.loss[i]));
  }
  std::printf("},\n     {");
  for (std::size_t i = 0; i < t.p.size(); ++i) {
    std::printf("%s0x%016llxull", i ? ", " : "",
                static_cast<unsigned long long>(t.p[i]));
  }
  std::printf("}},\n");
}

TEST(Golden, SeededTrajectoriesMatchPinnedBitPatterns) {
  const bool regen = std::getenv("HM_GOLDEN_PRINT") != nullptr;
  const auto rows = runners();
  if (regen) {
    std::printf("  static const std::vector<GoldenRow> kGolden = {\n");
    for (const auto& r : rows) print_row(r.name, r.run());
    std::printf("  };\n");
    GTEST_SKIP() << "printed regeneration table";
  }
  ASSERT_EQ(golden().size(), rows.size())
      << "trainer list and golden table out of sync";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& want = golden()[i];
    ASSERT_EQ(rows[i].name, std::string(want.name));
    const Trajectory got = rows[i].run();
    ASSERT_EQ(got.loss.size(), want.loss.size()) << want.name;
    for (std::size_t j = 0; j < got.loss.size(); ++j) {
      EXPECT_EQ(got.loss[j], want.loss[j])
          << want.name << " loss record " << j << std::hex << " got 0x"
          << got.loss[j] << " want 0x" << want.loss[j];
    }
    ASSERT_EQ(got.p.size(), want.p.size()) << want.name;
    for (std::size_t j = 0; j < got.p.size(); ++j) {
      EXPECT_EQ(got.p[j], want.p[j])
          << want.name << " p[" << j << "]" << std::hex << " got 0x"
          << got.p[j] << " want 0x" << want.p[j];
    }
  }
}

}  // namespace
}  // namespace hm::algo
