// Unit tests for hm::metrics: summaries, worst-k%, per-edge evaluation,
// training-history thresholds, TSV emission.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/generators.hpp"
#include "metrics/evaluation.hpp"
#include "metrics/history.hpp"
#include "nn/softmax_regression.hpp"
#include "tensor/vecops.hpp"

namespace hm::metrics {
namespace {

TEST(Summary, BasicStatistics) {
  const std::vector<scalar_t> acc = {0.9, 0.8, 0.7};
  const AccuracySummary s = summarize(acc);
  EXPECT_NEAR(s.average, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(s.worst, 0.7);
  EXPECT_DOUBLE_EQ(s.best, 0.9);
  // Accuracies in % are 90, 80, 70 -> population variance = 200/3.
  EXPECT_NEAR(s.variance_pct2, 200.0 / 3.0, 1e-9);
}

TEST(Summary, SingleEdgeHasZeroVariance) {
  const AccuracySummary s = summarize({0.5});
  EXPECT_DOUBLE_EQ(s.average, 0.5);
  EXPECT_DOUBLE_EQ(s.worst, 0.5);
  EXPECT_DOUBLE_EQ(s.variance_pct2, 0.0);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW(summarize({}), CheckError);
}

TEST(Summary, VarianceMatchesPaperUnits) {
  // Table 2 reports variances like 21.05 for accuracies ~0.80-0.90;
  // sanity-check our unit convention lands in that magnitude.
  const std::vector<scalar_t> acc = {0.90, 0.85, 0.88, 0.80, 0.92,
                                     0.87, 0.83, 0.89, 0.91, 0.86};
  const AccuracySummary s = summarize(acc);
  EXPECT_GT(s.variance_pct2, 1.0);
  EXPECT_LT(s.variance_pct2, 100.0);
}

TEST(Gini, UniformIsZeroAndConcentrationGrows) {
  EXPECT_NEAR(gini_coefficient({0.8, 0.8, 0.8, 0.8}), 0.0, 1e-12);
  const scalar_t mild = gini_coefficient({0.7, 0.8, 0.9});
  const scalar_t strong = gini_coefficient({0.1, 0.5, 0.9});
  EXPECT_GT(mild, 0.0);
  EXPECT_GT(strong, mild);
  // Scale-free: multiplying all accuracies leaves Gini unchanged.
  EXPECT_NEAR(gini_coefficient({0.2, 1.0, 1.8}),
              gini_coefficient({0.1, 0.5, 0.9}), 1e-12);
  // Extreme concentration approaches (n-1)/n.
  EXPECT_NEAR(gini_coefficient({0.0, 0.0, 0.0, 1.0}), 0.75, 1e-12);
}

TEST(Gini, RejectsBadInput) {
  EXPECT_THROW(gini_coefficient({}), CheckError);
  EXPECT_THROW(gini_coefficient({0.5, -0.1}), CheckError);
}

TEST(Entropy, MaximalForUniform) {
  const scalar_t uniform = accuracy_entropy({0.5, 0.5, 0.5, 0.5});
  EXPECT_NEAR(uniform, std::log(4.0), 1e-12);
  EXPECT_LT(accuracy_entropy({0.9, 0.1, 0.1, 0.1}), uniform);
  // Degenerate single mass -> zero entropy.
  EXPECT_NEAR(accuracy_entropy({1.0, 0.0, 0.0}), 0.0, 1e-12);
  EXPECT_THROW(accuracy_entropy({0.0, 0.0}), CheckError);
}

TEST(WorstFraction, PicksBottomShare) {
  std::vector<scalar_t> acc;
  for (int i = 1; i <= 100; ++i) acc.push_back(i / 100.0);
  // Worst 10% = mean of 0.01..0.10 = 0.055.
  EXPECT_NEAR(worst_fraction_accuracy(acc, 0.10), 0.055, 1e-12);
  // Fraction 1.0 = overall mean.
  EXPECT_NEAR(worst_fraction_accuracy(acc, 1.0), 0.505, 1e-12);
}

TEST(WorstFraction, AtLeastOneEdge) {
  EXPECT_DOUBLE_EQ(worst_fraction_accuracy({0.3, 0.9}, 0.01), 0.3);
}

TEST(Evaluation, PerEdgeAccuracyAndLossShapes) {
  const auto all = data::make_gaussian_classes({});
  rng::Xoshiro256 gen(1);
  const auto tt = data::split_train_test(all, 0.2, gen);
  const auto fed = data::partition_one_class_per_edge(tt, 5, 2, gen);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
  parallel::ThreadPool pool(4);
  const auto acc = per_edge_accuracy(model, w, fed, pool);
  ASSERT_EQ(acc.size(), 5u);
  const auto losses = per_edge_loss(model, w, fed, pool);
  ASSERT_EQ(losses.size(), 5u);
  for (const scalar_t l : losses) EXPECT_NEAR(l, std::log(10.0), 1e-9);
}

TEST(Evaluation, PerfectModelScoresOneOnItsEdge) {
  // One-class-per-edge: a strong logistic model trained globally gets
  // each single-class edge either right or wrong; train it well enough
  // and per-edge accuracy is high.
  data::GaussianSpec spec;
  spec.separation = 5.0;  // easy task
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(2);
  const auto tt = data::split_train_test(all, 0.2, gen);
  const auto fed = data::partition_one_class_per_edge(tt, 10, 2, gen);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  std::vector<scalar_t> w(static_cast<std::size_t>(model.num_params()), 0);
  std::vector<scalar_t> grad(w.size());
  auto ws = model.make_workspace();
  const auto batch = nn::all_indices(tt.train.size());
  for (int it = 0; it < 60; ++it) {
    model.loss_and_grad(w, tt.train, batch, grad, *ws);
    tensor::axpy(-0.5, grad, nn::VecView(w));
  }
  parallel::ThreadPool pool(4);
  const auto acc = per_edge_accuracy(model, w, fed, pool);
  const auto s = summarize(acc);
  EXPECT_GT(s.worst, 0.9);
}

RoundRecord record_at(index_t round, std::uint64_t total_rounds,
                      scalar_t worst, scalar_t avg) {
  RoundRecord r;
  r.round = round;
  r.comm.edge_cloud_rounds = total_rounds;
  r.edge_acc = {avg + (avg - worst), worst};  // avg of the two == avg
  r.summary = summarize(r.edge_acc);
  return r;
}

TEST(History, RoundsToThreshold) {
  TrainingHistory h;
  h.add(record_at(0, 0, 0.1, 0.2));
  h.add(record_at(10, 30, 0.4, 0.5));
  h.add(record_at(20, 60, 0.7, 0.8));
  EXPECT_EQ(h.rounds_to_worst_accuracy(0.4).value(), 30u);
  EXPECT_EQ(h.rounds_to_worst_accuracy(0.5).value(), 60u);
  EXPECT_FALSE(h.rounds_to_worst_accuracy(0.9).has_value());
  EXPECT_EQ(h.rounds_to_average_accuracy(0.75).value(), 60u);
}

TEST(History, TsvHasOneLinePerRecordWithLabel) {
  TrainingHistory h;
  h.add(record_at(0, 0, 0.1, 0.2));
  h.add(record_at(5, 12, 0.3, 0.4));
  std::ostringstream os;
  h.write_tsv(os, "hierminimax");
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(out.rfind("hierminimax\t", 0), 0u);
}

TEST(History, TailSummaryAveragesLastWindow) {
  TrainingHistory h;
  h.add(record_at(0, 0, 0.1, 0.2));
  h.add(record_at(1, 1, 0.3, 0.4));
  h.add(record_at(2, 2, 0.5, 0.6));
  const auto tail2 = h.tail_summary(2);
  EXPECT_NEAR(tail2.worst, 0.4, 1e-12);
  EXPECT_NEAR(tail2.average, 0.5, 1e-12);
  // Window larger than the history clamps to everything.
  const auto tail9 = h.tail_summary(9);
  EXPECT_NEAR(tail9.worst, 0.3, 1e-12);
}

TEST(History, SustainedThresholdIgnoresSpikes) {
  TrainingHistory h;
  RoundRecord spike;
  spike.round = 0;
  spike.comm.edge_cloud_models_up = 10;
  spike.edge_acc = {0.9, 0.9};  // single spike
  spike.summary = summarize(spike.edge_acc);
  h.add(spike);
  for (int i = 1; i <= 4; ++i) {
    RoundRecord r;
    r.round = i;
    r.comm.edge_cloud_models_up = static_cast<std::uint64_t>(10 * (i + 1));
    const scalar_t worst = i <= 1 ? 0.2 : 0.85;
    r.edge_acc = {worst, worst};
    r.summary = summarize(r.edge_acc);
    h.add(r);
  }
  // Plain threshold is fooled by the round-0 spike; sustained (window 3)
  // waits for records 2..4 all >= 0.8.
  EXPECT_EQ(h.wan_payloads_to_worst_accuracy(0.8).value(), 10u);
  EXPECT_EQ(h.wan_payloads_to_sustained_worst(0.8, 3).value(), 50u);
  EXPECT_FALSE(h.wan_payloads_to_sustained_worst(0.95, 3).has_value());
}

TEST(History, EmptyAndBack) {
  TrainingHistory h;
  EXPECT_TRUE(h.empty());
  h.add(record_at(3, 9, 0.2, 0.3));
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.back().round, 3);
}

}  // namespace
}  // namespace hm::metrics
