// Algorithm-specific tests for HierMinimax (Algorithm 1): weight-vector
// dynamics, fairness behaviour, communication accounting, determinism,
// and the checkpoint mechanism.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "nn/softmax_regression.hpp"
#include "tensor/vecops.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::heterogeneous_task;
using testing_util::iid_task;

TrainOptions quick_opts(index_t rounds = 40) {
  TrainOptions o;
  o.rounds = rounds;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.01;
  o.eval_every = 0;
  o.seed = 5;
  return o;
}

TEST(HierMinimax, LearnsIidTask) {
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto result = train_hierminimax(model, fed, topo, quick_opts(40));
  EXPECT_GT(result.history.back().summary.average, 0.85);
}

TEST(HierMinimax, WeightsStayOnSimplexEveryRound) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(30);
  opts.eta_p = 0.1;  // large steps stress the projection
  const auto result = train_hierminimax(model, fed, topo, opts);
  scalar_t total = 0;
  for (const scalar_t p : result.p) {
    EXPECT_GE(p, -1e-9);
    EXPECT_LE(p, 1 + 1e-9);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The time-average is also a simplex point.
  total = 0;
  for (const scalar_t p : result.p_avg) total += p;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(HierMinimax, RespectsCappedWeightSet) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(25);
  opts.p_set = SimplexSet{0.1, 0.5};
  opts.eta_p = 0.2;
  const auto result = train_hierminimax(model, fed, topo, opts);
  for (const scalar_t p : result.p) {
    EXPECT_GE(p, 0.1 - 1e-7);
    EXPECT_LE(p, 0.5 + 1e-7);
  }
}

TEST(HierMinimax, WeightMovesTowardHighLossEdge) {
  // Make edge 0's task intrinsically noisier by shrinking its data; with
  // one-class-per-edge, the edge with the least data is learned worst, so
  // p should grow there relative to uniform.
  auto fed = heterogeneous_task(4, 2, 77, 2400);
  // Decimate edge 0's shards to starve it.
  for (index_t i = 0; i < fed.clients_per_edge; ++i) {
    auto& shard = fed.client_train[static_cast<std::size_t>(i)];
    std::vector<index_t> keep;
    for (index_t s = 0; s < std::min<index_t>(6, shard.size()); ++s) {
      keep.push_back(s);
    }
    shard = shard.subset(keep);
  }
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(50);
  opts.eta_p = 0.05;
  const auto result = train_hierminimax(model, fed, topo, opts);
  // p concentrated above uniform somewhere — and the dynamics moved p.
  const scalar_t uniform = 0.25;
  scalar_t spread = 0;
  for (const scalar_t p : result.p) spread += std::abs(p - uniform);
  EXPECT_GT(spread, 0.02);
}

TEST(HierMinimax, ImprovesWorstEdgeOverHierFavg) {
  // The paper's central claim at miniature scale: on a heterogeneous
  // task where plain averaging under-serves some edge, minimax weighting
  // must raise the worst edge accuracy.
  const auto fed = heterogeneous_task(5, 2, 99, 3000, /*separation=*/2.0);
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(400);
  opts.eta_w = 0.05;
  opts.eta_p = 0.003;
  opts.sampled_edges = 3;  // partial participation
  opts.eval_every = 10;
  const auto mm = train_hierminimax(model, fed, topo, opts);
  const auto fa = train_hierfavg(model, fed, topo, opts);
  // Tail-average the last evaluations: snapshots are SGD-noisy. Allow an
  // equality margin — both can saturate on easy seeds — but minimax must
  // never be substantially worse, and variance must not explode.
  const auto s_mm = mm.history.tail_summary(8);
  const auto s_fa = fa.history.tail_summary(8);
  EXPECT_GE(s_mm.worst + 0.02, s_fa.worst);
  EXPECT_LE(s_mm.variance_pct2, s_fa.variance_pct2 * 1.5 + 5.0);
}

TEST(HierMinimax, CommAccountingMatchesFormula) {
  const auto fed = iid_task();  // uniform p start; dedup may merge edges,
                                // so pick m_E = 1 to make counts exact
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(6);
  opts.sampled_edges = 1;
  const auto result = train_hierminimax(model, fed, topo, opts);
  const auto k = 6u;
  // Rounds: tau2 client-edge (phase 1) + 1 client-edge (phase 2 loss
  // broadcast), and 2 edge-cloud (aggregate + weight update).
  EXPECT_EQ(result.comm.client_edge_rounds,
            k * (static_cast<std::uint64_t>(opts.tau2) + 1));
  EXPECT_EQ(result.comm.edge_cloud_rounds, 2 * k);
  // Phase 1 with m_E=1: 1 model down, 2 up (final + checkpoint) per round.
  EXPECT_EQ(result.comm.edge_cloud_models_up, 2 * k);
  // Phase 2: 1 checkpoint down per round -> down = 1 (phase1) + 1 (phase2).
  EXPECT_EQ(result.comm.edge_cloud_models_down, 2 * k);
  EXPECT_EQ(result.comm.edge_cloud_scalars, k);
  // Client-edge models up: tau2 blocks x N0 models, +N0 checkpoints once.
  EXPECT_EQ(result.comm.client_edge_models_up,
            k * (static_cast<std::uint64_t>(opts.tau2) * 2 + 2));
}

TEST(HierMinimax, DeterministicAcrossThreadCounts) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto opts = quick_opts(8);
  parallel::ThreadPool pool1(1), pool6(6);
  const auto r1 = train_hierminimax(model, fed, topo, opts, pool1);
  const auto r6 = train_hierminimax(model, fed, topo, opts, pool6);
  for (std::size_t i = 0; i < r1.w.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.w[i], r6.w[i]);
  }
  for (std::size_t i = 0; i < r1.p.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.p[i], r6.p[i]);
  }
}

TEST(HierMinimax, ReproducibleForSameSeed) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto opts = quick_opts(10);
  const auto a = train_hierminimax(model, fed, topo, opts);
  const auto b = train_hierminimax(model, fed, topo, opts);
  EXPECT_EQ(a.w, b.w);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.comm.total_rounds(), b.comm.total_rounds());
}

TEST(HierMinimax, FullParticipationEqualsSampledEdgesAllButUsesAllEdges) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(4);
  opts.sampled_edges = 0;  // = all edges
  const auto result = train_hierminimax(model, fed, topo, opts);
  // Phase-2 scalars: all N_E edges report each round.
  EXPECT_EQ(result.comm.edge_cloud_scalars,
            static_cast<std::uint64_t>(4 * fed.num_edges()));
}

TEST(HierMinimax, WRadiusConstrainsGlobalModel) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(15);
  opts.w_radius = 0.5;
  opts.eta_w = 0.3;
  const auto result = train_hierminimax(model, fed, topo, opts);
  EXPECT_LE(tensor::nrm2(result.w), 0.5 + 1e-9);
}

TEST(HierMinimax, Tau1Tau2OneMatchesPaperSpecialCase) {
  // tau1 = tau2 = 1: one local step, one aggregation per round. The
  // algorithm must still run and converge (Stochastic-AFL-like regime,
  // §5.1's first special case).
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(80);
  opts.tau1 = 1;
  opts.tau2 = 1;
  const auto result = train_hierminimax(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.8);
  // Exactly K client-edge rounds from phase 1 + K from phase 2.
  EXPECT_EQ(result.comm.client_edge_rounds, 160u);
}

TEST(HierMinimax, QuantizedRunsDeterministicAcrossThreadCounts) {
  // Quantization adds per-payload randomness; it must come from the
  // named streams, not from scheduling.
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(6);
  opts.quantize_bits = 6;
  parallel::ThreadPool pool1(1), pool6(6);
  const auto a = train_hierminimax(model, fed, topo, opts, pool1);
  const auto b = train_hierminimax(model, fed, topo, opts, pool6);
  EXPECT_EQ(a.w, b.w);
  EXPECT_EQ(a.p, b.p);
}

TEST(HierMinimax, CheckpointAblationStillConverges) {
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(40);
  opts.use_checkpoint = false;  // last-iterate loss estimation
  const auto result = train_hierminimax(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.85);
}

TEST(HierMinimax, LossEstimationFullBatchOption) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(10);
  opts.loss_est_batch = 0;  // full client shards
  const auto result = train_hierminimax(model, fed, topo, opts);
  EXPECT_EQ(result.history.back().round, 10);
}

TEST(HierMinimax, HistoryRecordsIncludeWeights) {
  const auto fed = heterogeneous_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = quick_opts(12);
  opts.eval_every = 4;
  const auto result = train_hierminimax(model, fed, topo, opts);
  ASSERT_EQ(result.history.size(), 4u);  // rounds 0, 4, 8, 12
  for (const auto& r : result.history.records()) {
    EXPECT_EQ(r.edge_acc.size(), 4u);
    EXPECT_GE(r.summary.best, r.summary.worst);
  }
}

}  // namespace
}  // namespace hm::algo
