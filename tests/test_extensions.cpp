// Tests for the extension features: Dirichlet partitioning, q-FFL,
// quantized training, checkpoint/CSV persistence, and the L-level
// multi-hierarchy generalization of HierMinimax.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "algo/fedavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "algo/qffl.hpp"
#include "data/generators.hpp"
#include "io/checkpoint.hpp"
#include "nn/softmax_regression.hpp"
#include "tensor/vecops.hpp"
#include "test_util.hpp"

namespace hm {
namespace {

using algo::TrainOptions;
using testing_util::heterogeneous_task;
using testing_util::iid_task;

// ---------------------------------------------------------------- Dirichlet

data::TrainTest dirichlet_source(seed_t seed = 41) {
  data::GaussianSpec spec;
  spec.dim = 12;
  spec.num_classes = 6;
  spec.num_samples = 4000;
  spec.seed = seed;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(seed + 1);
  return data::split_train_test(all, 0.25, gen);
}

TEST(Dirichlet, PartitionCoversAllTrainingData) {
  const auto tt = dirichlet_source();
  rng::Xoshiro256 gen(1);
  const auto fed = data::partition_dirichlet(tt, 5, 2, 0.5, gen);
  fed.validate();
  index_t total = 0;
  for (const auto& shard : fed.client_train) total += shard.size();
  EXPECT_EQ(total, tt.train.size());
}

TEST(Dirichlet, SmallAlphaConcentratesLabels) {
  const auto tt = dirichlet_source();
  auto mean_distinct_labels = [&](scalar_t alpha, seed_t seed) {
    rng::Xoshiro256 gen(seed);
    const auto fed = data::partition_dirichlet(tt, 5, 2, alpha, gen);
    double total = 0;
    for (index_t e = 0; e < fed.num_edges(); ++e) {
      std::set<index_t> labels;
      for (index_t i = 0; i < fed.clients_per_edge; ++i) {
        for (const index_t y : fed.shard(e, i).y) labels.insert(y);
      }
      total += static_cast<double>(labels.size());
    }
    return total / static_cast<double>(fed.num_edges());
  };
  // Labels with >= a handful of samples at tiny alpha vs near-complete
  // coverage at huge alpha.
  EXPECT_LT(mean_distinct_labels(0.1, 2), mean_distinct_labels(100.0, 3));
  EXPECT_GT(mean_distinct_labels(100.0, 3), 5.5);
}

TEST(Dirichlet, InvalidAlphaThrows) {
  const auto tt = dirichlet_source();
  rng::Xoshiro256 gen(4);
  EXPECT_THROW(data::partition_dirichlet(tt, 4, 2, 0.0, gen), CheckError);
  EXPECT_THROW(data::partition_dirichlet(tt, 4, 2, -1.0, gen), CheckError);
}

TEST(Dirichlet, DeterministicGivenGenerator) {
  const auto tt = dirichlet_source();
  rng::Xoshiro256 gen_a(7), gen_b(7);
  const auto fed_a = data::partition_dirichlet(tt, 4, 2, 1.0, gen_a);
  const auto fed_b = data::partition_dirichlet(tt, 4, 2, 1.0, gen_b);
  for (index_t n = 0; n < fed_a.num_clients(); ++n) {
    EXPECT_EQ(fed_a.client_train[static_cast<std::size_t>(n)].y,
              fed_b.client_train[static_cast<std::size_t>(n)].y);
  }
}

// ------------------------------------------------------------------- q-FFL

TrainOptions qffl_opts(index_t rounds = 60) {
  TrainOptions o;
  o.rounds = rounds;
  o.tau1 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eval_every = 0;
  o.seed = 5;
  return o;
}

TEST(Qffl, LearnsIidTask) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto result = algo::train_qffl(model, fed, qffl_opts(80), 1.0);
  EXPECT_GT(result.history.back().summary.average, 0.8);
}

TEST(Qffl, PositiveQImprovesWorstOverQZero) {
  const auto fed = heterogeneous_task(5, 2, 99, 3000, 2.8);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = qffl_opts(250);
  opts.eta_w = 0.05;
  opts.sampled_clients = 6;
  opts.eval_every = 10;
  const auto q0 = algo::train_qffl(model, fed, opts, 0.0);
  const auto q5 = algo::train_qffl(model, fed, opts, 5.0);
  const auto s0 = q0.history.tail_summary(8);
  const auto s5 = q5.history.tail_summary(8);
  EXPECT_GE(s5.worst + 0.02, s0.worst);
  EXPECT_LE(s5.variance_pct2, s0.variance_pct2 * 1.2 + 3.0);
}

TEST(Qffl, NegativeQThrows) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  EXPECT_THROW(algo::train_qffl(model, fed, qffl_opts(2), -1.0), CheckError);
}

TEST(Qffl, CommAccounting) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = qffl_opts(5);
  opts.sampled_clients = 4;
  const auto result = algo::train_qffl(model, fed, opts, 1.0);
  EXPECT_EQ(result.comm.edge_cloud_rounds, 5u);
  EXPECT_EQ(result.comm.edge_cloud_models_up, 20u);
  EXPECT_EQ(result.comm.edge_cloud_scalars, 40u);
}

// ----------------------------------------------------------- quantization

TEST(QuantizedTraining, EightBitsStillLearns) {
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  TrainOptions opts;
  opts.rounds = 60;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.batch_size = 4;
  opts.eta_w = 0.1;
  opts.eta_p = 0.005;
  opts.eval_every = 0;
  opts.seed = 9;
  opts.quantize_bits = 8;
  const auto result = algo::train_hierminimax(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.8);
}

TEST(QuantizedTraining, BytesShrinkWithBits) {
  const auto fed = iid_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  TrainOptions opts;
  opts.rounds = 4;
  opts.tau1 = 2;
  opts.tau2 = 2;
  opts.eta_w = 0.05;
  opts.eta_p = 0.005;
  opts.eval_every = 0;
  opts.seed = 9;
  const auto full = algo::train_hierminimax(model, fed, topo, opts);
  opts.quantize_bits = 4;
  const auto q4 = algo::train_hierminimax(model, fed, topo, opts);
  EXPECT_LT(q4.comm.edge_cloud_bytes, full.comm.edge_cloud_bytes);
  EXPECT_LT(q4.comm.client_edge_bytes, full.comm.client_edge_bytes);
  // Round/model *counts* are unchanged by compression.
  EXPECT_EQ(q4.comm.edge_cloud_models(), full.comm.edge_cloud_models());
}

TEST(QuantizedTraining, ZeroBitsIsExactlyBaseline) {
  const auto fed = iid_task();
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  TrainOptions opts;
  opts.rounds = 5;
  opts.tau1 = 2;
  opts.eta_w = 0.05;
  opts.eval_every = 0;
  opts.seed = 10;
  const auto a = algo::train_fedavg(model, fed, opts);
  opts.quantize_bits = 0;
  const auto b = algo::train_fedavg(model, fed, opts);
  EXPECT_EQ(a.w, b.w);
}

// -------------------------------------------------------------------- io

TEST(Io, VectorRoundTrip) {
  const std::string path = "/tmp/hm_test_ckpt.bin";
  std::vector<scalar_t> v = {1.5, -2.25, 0.0, 1e-17, 3e200};
  io::save_vector(path, v);
  const auto loaded = io::load_vector(path);
  EXPECT_EQ(loaded, v);
  std::remove(path.c_str());
}

TEST(Io, EmptyVectorRoundTrip) {
  const std::string path = "/tmp/hm_test_ckpt_empty.bin";
  io::save_vector(path, {});
  EXPECT_TRUE(io::load_vector(path).empty());
  std::remove(path.c_str());
}

TEST(Io, RejectsCorruptFiles) {
  const std::string path = "/tmp/hm_test_ckpt_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  EXPECT_THROW(io::load_vector(path), CheckError);
  EXPECT_THROW(io::load_vector("/tmp/hm_does_not_exist.bin"), CheckError);
  std::remove(path.c_str());
}

TEST(Io, RejectsTruncatedFiles) {
  const std::string path = "/tmp/hm_test_ckpt_trunc.bin";
  io::save_vector(path, {1.0, 2.0, 3.0});
  // Chop the last 8 bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_THROW(io::load_vector(path), CheckError);
  std::remove(path.c_str());
}

TEST(Io, HistoryCsvHasHeaderAndRows) {
  metrics::TrainingHistory h;
  metrics::RoundRecord r;
  r.round = 3;
  r.edge_acc = {0.5, 0.7};
  r.summary = metrics::summarize(r.edge_acc);
  h.add(r);
  const std::string path = "/tmp/hm_test_history.csv";
  io::save_history_csv(path, h);
  std::ifstream in(path);
  std::string header, row, extra;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header.rfind("round,", 0), 0u);
  ASSERT_TRUE(static_cast<bool>(std::getline(in, row)));
  EXPECT_EQ(row.rfind("3,", 0), 0u);
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  std::remove(path.c_str());
}

// ------------------------------------------------- multi-level hierarchy

TEST(MultiTopology, Cardinalities) {
  const sim::MultiTopology topo({4, 3, 2});  // 4 areas, 3 mid, 2 leaves
  EXPECT_EQ(topo.depth(), 3);
  EXPECT_EQ(topo.num_areas(), 4);
  EXPECT_EQ(topo.num_leaves(), 24);
  EXPECT_EQ(topo.leaves_per_area(), 6);
  EXPECT_EQ(topo.nodes_at(2), 12);
  EXPECT_EQ(topo.area_of_leaf(0), 0);
  EXPECT_EQ(topo.area_of_leaf(23), 3);
  EXPECT_EQ(topo.first_leaf_of(2, 5), 10);
}

TEST(MultiTopology, InvalidConstructionThrows) {
  EXPECT_THROW(sim::MultiTopology({}), CheckError);
  EXPECT_THROW(sim::MultiTopology({3, 0}), CheckError);
}

algo::MultiTrainOptions multi_opts(std::vector<index_t> taus,
                                   index_t rounds = 60) {
  algo::MultiTrainOptions o;
  o.rounds = rounds;
  o.taus = std::move(taus);
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.005;
  o.eval_every = 0;
  o.seed = 5;
  return o;
}

TEST(MultiHierMinimax, DepthTwoLearnsIidTask) {
  const auto fed = iid_task();  // 4 edges x 2 clients
  const sim::MultiTopology topo({fed.num_edges(), fed.clients_per_edge});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto result =
      algo::train_hierminimax_multi(model, fed, topo, multi_opts({2, 2}));
  EXPECT_GT(result.history.back().summary.average, 0.85);
  scalar_t total = 0;
  for (const scalar_t p : result.p) total += p;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(MultiHierMinimax, DepthThreeLearns) {
  // 4 areas x (2 mid-nodes x 2 clients) = 16 leaves.
  const auto fed = testing_util::heterogeneous_task(4, 4, 77, 3200);
  const sim::MultiTopology topo({4, 2, 2});
  ASSERT_EQ(topo.leaves_per_area(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = multi_opts({2, 2, 2}, 80);
  opts.eta_w = 0.05;
  const auto result = algo::train_hierminimax_multi(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.6);
  // Per-level meters: level 0 = 2 rounds per training round (both
  // phases); level 1 = taus[0] blocks per *unique* sampled area (with-
  // replacement sampling dedups, so only divisibility is fixed); level 2
  // = branching[1] * taus[1] child rounds per level-1 block.
  EXPECT_EQ(result.comm.levels.size(), 3u);
  EXPECT_EQ(result.comm.levels[0].rounds, 2u * 80u);
  EXPECT_EQ(result.comm.levels[1].rounds % 2, 0u);       // taus[0] = 2
  EXPECT_GE(result.comm.levels[1].rounds, 2u * 80u);     // >= 1 area/round
  EXPECT_LE(result.comm.levels[1].rounds, 2u * 4u * 80u);
  EXPECT_EQ(result.comm.levels[2].rounds,
            result.comm.levels[1].rounds * 2u * 2u);
}

TEST(MultiHierMinimax, PartialParticipationAndCappedSet) {
  const auto fed = heterogeneous_task(4, 2);
  const sim::MultiTopology topo({4, 2});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = multi_opts({2, 2}, 30);
  opts.sampled_areas = 2;
  opts.p_set = algo::SimplexSet{0.1, 0.5};
  opts.eta_p = 0.1;
  const auto result = algo::train_hierminimax_multi(model, fed, topo, opts);
  for (const scalar_t p : result.p) {
    EXPECT_GE(p, 0.1 - 1e-7);
    EXPECT_LE(p, 0.5 + 1e-7);
  }
}

TEST(MultiHierMinimax, DeterministicAcrossThreadCounts) {
  const auto fed = heterogeneous_task(4, 2);
  const sim::MultiTopology topo({4, 2});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto opts = multi_opts({2, 3}, 6);
  parallel::ThreadPool pool1(1), pool8(8);
  const auto a = algo::train_hierminimax_multi(model, fed, topo, opts, pool1);
  const auto b = algo::train_hierminimax_multi(model, fed, topo, opts, pool8);
  EXPECT_EQ(a.w, b.w);
  EXPECT_EQ(a.p, b.p);
}

TEST(MultiHierMinimax, MismatchedTausThrow) {
  const auto fed = heterogeneous_task(4, 2);
  const sim::MultiTopology topo({4, 2});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  EXPECT_THROW(
      algo::train_hierminimax_multi(model, fed, topo, multi_opts({2})),
      CheckError);
  EXPECT_THROW(
      algo::train_hierminimax_multi(model, fed, topo, multi_opts({2, 0})),
      CheckError);
}

TEST(MultiHierFavg, DepthThreeLearnsAndHasNoWeightAdaptation) {
  const auto fed = testing_util::heterogeneous_task(4, 4, 77, 3200);
  const sim::MultiTopology topo({4, 2, 2});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = multi_opts({2, 2, 2}, 80);
  opts.eta_w = 0.05;
  const auto result = algo::train_hierfavg_multi(model, fed, topo, opts);
  EXPECT_GT(result.history.back().summary.average, 0.6);
  for (const scalar_t p : result.p) EXPECT_DOUBLE_EQ(p, 0.25);  // fixed
  // Top link: 1 round per training round (no phase 2).
  EXPECT_EQ(result.comm.levels[0].rounds, 80u);
}

TEST(MultiHierFavg, DeterministicAcrossThreadCounts) {
  const auto fed = heterogeneous_task(4, 2);
  const sim::MultiTopology topo({4, 2});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  const auto opts = multi_opts({3, 2}, 5);
  parallel::ThreadPool pool1(1), pool8(8);
  const auto a = algo::train_hierfavg_multi(model, fed, topo, opts, pool1);
  const auto b = algo::train_hierfavg_multi(model, fed, topo, opts, pool8);
  EXPECT_EQ(a.w, b.w);
}

TEST(MultiHierMinimax, TrivialMiddleLevelCollapsesToDepthTwo) {
  // A middle level with tau = 1 and matching fan-out is pure relabeling:
  // branching {A, 2, 2} with taus {t, 1, s} computes exactly what
  // branching {A, 4} with taus {t, s} computes (same leaf ids, same
  // iteration bases, same averaging tree) — so the results agree up to
  // floating-point averaging associativity ((a+b)/2 + (c+d))/2 vs
  // (a+b+c+d)/4).
  const auto fed = testing_util::heterogeneous_task(4, 4, 55, 3200);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts2 = multi_opts({3, 2}, 12);
  auto opts3 = multi_opts({3, 1, 2}, 12);
  const sim::MultiTopology topo2({4, 4});
  const sim::MultiTopology topo3({4, 2, 2});
  const auto a = algo::train_hierminimax_multi(model, fed, topo2, opts2);
  const auto b = algo::train_hierminimax_multi(model, fed, topo3, opts3);
  ASSERT_EQ(a.w.size(), b.w.size());
  for (std::size_t i = 0; i < a.w.size(); ++i) {
    EXPECT_NEAR(a.w[i], b.w[i], 1e-10);
  }
  for (std::size_t i = 0; i < a.p.size(); ++i) {
    EXPECT_NEAR(a.p[i], b.p[i], 1e-10);
  }
}

TEST(MultiHierMinimax, ImprovesFairnessOnHeterogeneousTask) {
  // Depth-3 fairness smoke test: weights should deviate from uniform on a
  // task with unequal class difficulty.
  const auto fed = testing_util::heterogeneous_task(4, 4, 31, 3200, 2.5);
  const sim::MultiTopology topo({4, 2, 2});
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = multi_opts({2, 1, 2}, 120);
  opts.eta_w = 0.05;
  opts.eta_p = 0.01;
  const auto result = algo::train_hierminimax_multi(model, fed, topo, opts);
  scalar_t spread = 0;
  for (const scalar_t p : result.p) spread += std::abs(p - 0.25);
  EXPECT_GT(spread, 0.02);
}

}  // namespace
}  // namespace hm
