// Property tests for the robust aggregation kernels in isolation
// (trainer_common's robust_combine and the robust_* wrappers):
//   (a) permutation invariance at 0 ULP — the combine is a pure function
//       of the multiset of (vector, multiplicity) inputs,
//   (b) kMean dispatch agrees bit-for-bit with the plain weighted /
//       uniform mean (zero attackers, zero behavior change),
//   (c) the breakdown bound: with f attacking weight units out of m,
//       median and (sufficiently) trimmed mean stay inside the honest
//       envelope iff f < m/2 — and are demonstrably corrupted at
//       majority, so the bound is tight,
//   (d) the even-count median tie: exactly half the weight at or below
//       a value yields the exact midpoint of the straddling pair,
//       replayed bit-identically across input orders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "rng/rng.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using detail::AggregateSpec;
using detail::Participants;
using detail::robust_combine;
using testing_util::bits;

std::vector<const std::vector<scalar_t>*> ptrs(
    const std::vector<std::vector<scalar_t>>& v) {
  std::vector<const std::vector<scalar_t>*> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = &v[i];
  return out;
}

std::vector<std::vector<scalar_t>> random_sources(std::size_t m,
                                                  std::size_t dim,
                                                  seed_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<std::vector<scalar_t>> v(m, std::vector<scalar_t>(dim));
  for (auto& row : v) {
    for (auto& x : row) x = gen.normal();
  }
  return v;
}

// ---------------------------------------------------------------------
// (a) Permutation invariance, bit-exact.

TEST(RobustCombine, PermutationInvariantAtZeroUlp) {
  const std::size_t m = 7;
  const std::size_t dim = 13;
  const auto base = random_sources(m, dim, 123);
  const std::vector<index_t> mults = {1, 2, 1, 3, 1, 2, 1};
  const index_t total =
      std::accumulate(mults.begin(), mults.end(), index_t{0});

  for (const Aggregate kind :
       {Aggregate::kMedian, Aggregate::kTrimmedMean}) {
    const AggregateSpec agg{kind, 0.2};
    std::vector<scalar_t> ref(dim, 0);
    robust_combine(ptrs(base), mults, total, agg, ref);

    // Walk a handful of distinct permutations of the (source, mult)
    // pairs; every one must reproduce `ref` bit-for-bit.
    std::vector<std::size_t> perm(m);
    std::iota(perm.begin(), perm.end(), 0u);
    rng::Xoshiro256 gen(321);
    for (int trial = 0; trial < 8; ++trial) {
      for (std::size_t i = m - 1; i > 0; --i) {
        std::swap(perm[i],
                  perm[gen.uniform_index(static_cast<std::uint64_t>(i + 1))]);
      }
      std::vector<const std::vector<scalar_t>*> srcs(m);
      std::vector<index_t> pm(m);
      for (std::size_t i = 0; i < m; ++i) {
        srcs[i] = &base[perm[i]];
        pm[i] = mults[perm[i]];
      }
      std::vector<scalar_t> out(dim, 0);
      robust_combine(srcs, pm, total, agg, out);
      for (std::size_t c = 0; c < dim; ++c) {
        ASSERT_EQ(bits(out[c]), bits(ref[c]))
            << "kind=" << static_cast<int>(kind) << " trial=" << trial
            << " c=" << c;
      }
    }
  }
}

/// `out` may alias a source: each coordinate is read before written.
TEST(RobustCombine, AliasingOutputWithASourceIsSafe) {
  const std::size_t dim = 9;
  auto v = random_sources(4, dim, 7);
  const std::vector<index_t> mults = {1, 1, 1, 1};
  const AggregateSpec agg{Aggregate::kMedian, 0.2};
  std::vector<scalar_t> ref(dim, 0);
  robust_combine(ptrs(v), mults, 4, agg, ref);
  // Same combine writing into v[2] in place.
  robust_combine(ptrs(v), mults, 4, agg, v[2]);
  for (std::size_t c = 0; c < dim; ++c) {
    EXPECT_EQ(bits(v[2][c]), bits(ref[c])) << c;
  }
}

// ---------------------------------------------------------------------
// (b) Zero attackers: the kMean dispatch is the plain mean, bit-for-bit,
// and robust_combine itself refuses kMean (callers own that fast path).

TEST(RobustAverage, MeanKindDelegatesBitIdentically) {
  const auto v = random_sources(6, 11, 99);
  const Participants parts =
      Participants::from_draws({0, 2, 2, 4, 5, 1, 2});
  std::vector<scalar_t> plain(11, 0);
  std::vector<scalar_t> robust(11, 0);

  detail::weighted_average(v, parts, plain);
  detail::robust_weighted_average(v, parts, AggregateSpec{}, robust);
  for (std::size_t c = 0; c < plain.size(); ++c) {
    EXPECT_EQ(bits(robust[c]), bits(plain[c])) << "weighted c=" << c;
  }

  const std::vector<index_t> ids = {1, 3, 5};
  detail::uniform_average(v, ids, plain);
  detail::robust_uniform_average(v, ids, AggregateSpec{}, robust);
  for (std::size_t c = 0; c < plain.size(); ++c) {
    EXPECT_EQ(bits(robust[c]), bits(plain[c])) << "uniform c=" << c;
  }
}

TEST(RobustCombine, MeanKindIsRejected) {
  const auto v = random_sources(3, 4, 1);
  std::vector<scalar_t> out(4, 0);
  EXPECT_THROW(
      robust_combine(ptrs(v), {1, 1, 1}, 3, AggregateSpec{}, out),
      CheckError);
}

/// Unanimous honest input is a fixed point of every robust combiner.
TEST(RobustCombine, UnanimousSourcesAreAFixedPoint) {
  const std::size_t dim = 8;
  const auto one = random_sources(1, dim, 55);
  const std::vector<std::vector<scalar_t>> v(5, one[0]);
  for (const Aggregate kind :
       {Aggregate::kMedian, Aggregate::kTrimmedMean}) {
    std::vector<scalar_t> out(dim, 0);
    robust_combine(ptrs(v), {1, 2, 1, 1, 3}, 8, AggregateSpec{kind, 0.25},
                   out);
    for (std::size_t c = 0; c < dim; ++c) {
      EXPECT_EQ(bits(out[c]), bits(one[0][c]))
          << "kind=" << static_cast<int>(kind) << " c=" << c;
    }
  }
}

// ---------------------------------------------------------------------
// (c) Breakdown bound. Honest sources live in [-1, 1]; attackers report
// +/- 1e9. Under an honest majority (f < m/2 weight units) the median
// stays inside the honest envelope, and so does the trimmed mean once
// trim >= f per side. At attacker majority both are corrupted — the
// f < m/2 bound is tight, not conservative.

TEST(RobustCombine, HonestMajorityKeepsOutputInHonestEnvelope) {
  const std::size_t dim = 6;
  const index_t m = 9;  // unit weights
  for (index_t f = 0; f < (m + 1) / 2; ++f) {  // f = 0..4 < m/2
    rng::Xoshiro256 gen(1000 + static_cast<seed_t>(f));
    std::vector<std::vector<scalar_t>> v(
        static_cast<std::size_t>(m), std::vector<scalar_t>(dim));
    scalar_t lo = 1, hi = -1;
    for (index_t i = 0; i < m; ++i) {
      const bool attacker = i < f;  // permutation invariance is (a)
      for (std::size_t c = 0; c < dim; ++c) {
        if (attacker) {
          // Coordinated one-sided push, the worst case for a median.
          v[static_cast<std::size_t>(i)][c] = 1e9;
        } else {
          const scalar_t x = 2 * gen.uniform() - 1;
          v[static_cast<std::size_t>(i)][c] = x;
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
    }
    const std::vector<index_t> mults(static_cast<std::size_t>(m), 1);

    std::vector<scalar_t> med(dim, 0);
    robust_combine(ptrs(v), mults, m, AggregateSpec{Aggregate::kMedian, 0},
                   med);
    // Trim exactly f units per side (trim_frac = f/m picks floor == f).
    std::vector<scalar_t> trm(dim, 0);
    robust_combine(ptrs(v), mults, m,
                   AggregateSpec{Aggregate::kTrimmedMean,
                                 static_cast<scalar_t>(f) /
                                     static_cast<scalar_t>(m)},
                   trm);
    for (std::size_t c = 0; c < dim; ++c) {
      EXPECT_GE(med[c], lo) << "f=" << f << " c=" << c;
      EXPECT_LE(med[c], hi) << "f=" << f << " c=" << c;
      EXPECT_GE(trm[c], lo) << "f=" << f << " c=" << c;
      EXPECT_LE(trm[c], hi) << "f=" << f << " c=" << c;
    }
  }
}

TEST(RobustCombine, AttackerMajorityBreaksBothCombiners) {
  const std::size_t dim = 3;
  const index_t m = 9;
  const index_t f = 5;  // f >= m/2: attackers own the median position
  std::vector<std::vector<scalar_t>> v(
      static_cast<std::size_t>(m), std::vector<scalar_t>(dim, 0.0));
  for (index_t i = 0; i < f; ++i) {
    for (auto& x : v[static_cast<std::size_t>(i)]) x = 1e9;
  }
  const std::vector<index_t> mults(static_cast<std::size_t>(m), 1);
  std::vector<scalar_t> med(dim, 0);
  robust_combine(ptrs(v), mults, m, AggregateSpec{Aggregate::kMedian, 0},
                 med);
  std::vector<scalar_t> trm(dim, 0);
  robust_combine(ptrs(v), mults, m,
                 AggregateSpec{Aggregate::kTrimmedMean, 0.4}, trm);
  for (std::size_t c = 0; c < dim; ++c) {
    EXPECT_GE(med[c], 1e8) << c;  // pulled all the way to the attack
    EXPECT_GE(trm[c], 1e8) << c;  // max trim cannot outvote a majority
  }
}

/// Multiplicities are weight units: one source drawn three times beats
/// two sources drawn once each, exactly as three separate copies would.
TEST(RobustCombine, MultiplicitiesActAsRepeatedSources) {
  const std::size_t dim = 5;
  const auto v = random_sources(3, dim, 42);
  const AggregateSpec agg{Aggregate::kMedian, 0};
  std::vector<scalar_t> weighted(dim, 0);
  robust_combine(ptrs(v), {3, 1, 1}, 5, agg, weighted);

  const std::vector<std::vector<scalar_t>> expanded = {v[0], v[0], v[0],
                                                       v[1], v[2]};
  std::vector<scalar_t> flat(dim, 0);
  robust_combine(ptrs(expanded), {1, 1, 1, 1, 1}, 5, agg, flat);
  for (std::size_t c = 0; c < dim; ++c) {
    EXPECT_EQ(bits(weighted[c]), bits(flat[c])) << c;
  }
}

// ---------------------------------------------------------------------
// (d) Even-count median ties: exactly half the weight at or below the
// straddle point gives the exact midpoint, deterministically.

TEST(RobustCombine, EvenCountMedianTieIsExactMidpoint) {
  const AggregateSpec agg{Aggregate::kMedian, 0};
  {
    // Four unit weights, values 1 < 2 < 3 < 4: median = (2 + 3) / 2.
    const std::vector<std::vector<scalar_t>> v = {{1}, {2}, {3}, {4}};
    std::vector<scalar_t> out(1, 0);
    robust_combine(ptrs(v), {1, 1, 1, 1}, 4, agg, out);
    EXPECT_EQ(bits(out[0]), bits(scalar_t{2.5}));
  }
  {
    // Two sources, weight 2 each: the tie straddles them.
    const std::vector<std::vector<scalar_t>> v = {{1}, {3}};
    std::vector<scalar_t> out(1, 0);
    robust_combine(ptrs(v), {2, 2}, 4, agg, out);
    EXPECT_EQ(bits(out[0]), bits(scalar_t{2.0}));
  }
  {
    // Odd total weight never ties: weight 3 at 1.0 vs weight 2 at 3.0
    // puts the median strictly inside the heavier source.
    const std::vector<std::vector<scalar_t>> v = {{1}, {3}};
    std::vector<scalar_t> out(1, 0);
    robust_combine(ptrs(v), {3, 2}, 5, agg, out);
    EXPECT_EQ(bits(out[0]), bits(scalar_t{1.0}));
  }
  {
    // The midpoint of values needing actual FP arithmetic replays at
    // 0 ULP across input orders.
    const std::vector<std::vector<scalar_t>> a = {{0.1}, {0.2}, {0.3},
                                                  {0.7}};
    const std::vector<std::vector<scalar_t>> b = {{0.7}, {0.3}, {0.2},
                                                  {0.1}};
    std::vector<scalar_t> ra(1, 0);
    std::vector<scalar_t> rb(1, 0);
    robust_combine(ptrs(a), {1, 1, 1, 1}, 4, agg, ra);
    robust_combine(ptrs(b), {1, 1, 1, 1}, 4, agg, rb);
    EXPECT_EQ(bits(ra[0]), bits(rb[0]));
    EXPECT_EQ(bits(ra[0]), bits(scalar_t{0.5} * (0.2 + 0.3)));
  }
}

/// Trimming is symmetric in weight units and capped so at least one unit
/// survives even under an aggressive trim_frac.
TEST(RobustCombine, TrimIsCappedSoOneUnitSurvives) {
  const std::vector<std::vector<scalar_t>> v = {{1}, {5}, {9}};
  std::vector<scalar_t> out(1, 0);
  // trim_frac 0.49 on total 3 -> floor(1.47) = 1 unit per side: keeps
  // exactly the middle value.
  robust_combine(ptrs(v), {1, 1, 1}, 3,
                 AggregateSpec{Aggregate::kTrimmedMean, 0.49}, out);
  EXPECT_EQ(bits(out[0]), bits(scalar_t{5.0}));
  // Even total: floor(0.49 * 4) = 1 per side over weights {1,2,1} keeps
  // the heavy middle source's two units.
  robust_combine(ptrs(v), {1, 2, 1}, 4,
                 AggregateSpec{Aggregate::kTrimmedMean, 0.49}, out);
  EXPECT_EQ(bits(out[0]), bits(scalar_t{5.0}));
}

}  // namespace
}  // namespace hm::algo
