// Adversarial & non-stationary scenario matrix: every algorithm x every
// model-report combiner x {sign-flip, scaled-noise, label-flip, churn}
// plus concept drift, checking
//   (a) bit-identical replay of two same-seed attacked runs,
//   (b) an enabled plan whose attack/churn probabilities are zero is
//       bit-identical (model-only) to the fully disabled path under
//       every combiner — attacks are pay-for-what-you-use,
//   (c) the fairness claim: under each Byzantine attack, the worst
//       edge's loss with a median / trimmed-mean defense beats the
//       undefended plain mean,
//   (d) churn deterministically removes computation and reports,
//   (e) the minimax weights p track the worst group when concept drift
//       moves it mid-run,
// and the CI smoke target (AdversarialSmoke): one HierMinimax round at
// 20% sign-flip attackers with the trimmed-mean defense.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/drfa.hpp"
#include "algo/fedavg.hpp"
#include "algo/fault_config.hpp"
#include "algo/hierfavg.hpp"
#include "algo/hierminimax.hpp"
#include "algo/hierminimax_multi.hpp"
#include "data/generators.hpp"
#include "metrics/evaluation.hpp"
#include "nn/softmax_regression.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace hm::algo {
namespace {

using testing_util::adversarial_scenarios;
using testing_util::fingerprint;
using testing_util::heterogeneous_task;
using testing_util::Scenario;

// ---------------------------------------------------------------------
// The matrix axes: scenarios come from test_util (shared with the fault
// matrix); the combiner axis is ours.

const std::vector<Aggregate> kAggregates = {
    Aggregate::kMean, Aggregate::kMedian, Aggregate::kTrimmedMean};

TrainOptions scenario_opts(const sim::FaultSpec& spec, Aggregate agg) {
  TrainOptions o;
  o.rounds = 6;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  o.sampled_edges = 3;  // partial participation in both phases
  o.sampled_clients = 5;
  o.fault = spec;
  o.aggregate = agg;
  o.trim_frac = 0.25;
  return o;
}

MultiTrainOptions multi_scenario_opts(const sim::FaultSpec& spec,
                                      Aggregate agg) {
  MultiTrainOptions o;
  o.rounds = 5;
  o.taus = {2, 2};
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 3;
  o.seed = 5;
  o.sampled_areas = 3;
  o.fault = spec;
  o.aggregate = agg;
  o.trim_frac = 0.25;
  return o;
}

const data::FederatedDataset& shared_task() {
  static const data::FederatedDataset fed = heterogeneous_task(4, 2);
  return fed;
}

/// One fixture per algorithm: run under (spec, combiner) and fingerprint.
struct Algorithm {
  std::string name;
  std::uint64_t (*run)(const sim::FaultSpec&, Aggregate, bool model_only);
};

std::vector<Algorithm> algorithms() {
  std::vector<Algorithm> out;
  out.push_back({"fedavg", [](const sim::FaultSpec& s, Aggregate a, bool mo) {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return fingerprint(
                       train_fedavg(model, fed, scenario_opts(s, a)), mo);
                 }});
  out.push_back(
      {"hierfavg", [](const sim::FaultSpec& s, Aggregate a, bool mo) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(
             train_hierfavg(model, fed, topo, scenario_opts(s, a)), mo);
       }});
  out.push_back({"drfa", [](const sim::FaultSpec& s, Aggregate a, bool mo) {
                   const auto& fed = shared_task();
                   const nn::SoftmaxRegression model(fed.dim(),
                                                     fed.num_classes());
                   return fingerprint(
                       train_drfa(model, fed, scenario_opts(s, a)), mo);
                 }});
  out.push_back(
      {"hierminimax", [](const sim::FaultSpec& s, Aggregate a, bool mo) {
         const auto& fed = shared_task();
         const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(
             train_hierminimax(model, fed, topo, scenario_opts(s, a)), mo);
       }});
  out.push_back(
      {"hierminimax_multi",
       [](const sim::FaultSpec& s, Aggregate a, bool mo) {
         const auto& fed = shared_task();
         const sim::MultiTopology topo(
             {fed.num_edges(), fed.clients_per_edge});
         const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
         return fingerprint(
             train_hierminimax_multi(model, fed, topo,
                                     multi_scenario_opts(s, a)),
             mo);
       }});
  return out;
}

// ---------------------------------------------------------------------
// (a) Bit-identical replay: same seed, same attacked plan, same combiner
// -> identical everything, attack and delivery metering included.

TEST(ScenarioMatrix, SameSeedAttackedRunsReplayBitIdentically) {
  for (const auto& algo : algorithms()) {
    for (const auto& sc : adversarial_scenarios()) {
      for (const Aggregate agg : kAggregates) {
        const auto a = algo.run(sc.spec, agg, /*model_only=*/false);
        const auto b = algo.run(sc.spec, agg, /*model_only=*/false);
        EXPECT_EQ(a, b) << algo.name << " x " << sc.name << " x "
                        << to_string(agg);
      }
    }
  }
}

// (b) An enabled plan with every attack/churn probability at zero must
// be bit-identical (model-only) to the fully disabled path, under every
// combiner — setting --attack sign-flip --attack-frac 0 changes nothing.

TEST(ScenarioMatrix, ZeroProbabilityAttackMatchesCleanPath) {
  const sim::FaultSpec disabled;  // default: enabled == false
  std::vector<Scenario> zeros;
  for (Scenario sc : adversarial_scenarios(/*attack_frac=*/0.0)) {
    sc.spec.churn_prob = 0;  // the churn row's only nonzero knob
    zeros.push_back(sc);
  }
  for (const auto& algo : algorithms()) {
    for (const Aggregate agg : kAggregates) {
      const auto golden = algo.run(disabled, agg, /*model_only=*/true);
      for (const auto& sc : zeros) {
        EXPECT_EQ(algo.run(sc.spec, agg, /*model_only=*/true), golden)
            << algo.name << " x " << sc.name << " x " << to_string(agg);
      }
    }
  }
}

// ---------------------------------------------------------------------
// (c) Fairness under attack: with ~20% Byzantine clients, the worst
// edge's training loss under a median or trimmed-mean defense must beat
// the undefended plain mean, for every attack kind. Full participation,
// 4 clients per edge, trim_frac 0.25 (tolerates one attacker per edge).
//
// The fixture uses the similarity partition (s = 0.5), not the extreme
// one-class-per-edge split: when every edge holds a disjoint class, the
// cloud-level coordinate median *across edges* discards the cross-class
// signal the mean would blend, and that self-inflicted cost can exceed
// what a bounded attack (label-flip) costs the mean (DESIGN.md §13).
// With partial overlap the defense wins for every attack kind.

scalar_t worst_edge_loss_under(const sim::FaultSpec& spec, Aggregate agg) {
  static const data::FederatedDataset fed = [] {
    data::GaussianSpec gs;
    gs.dim = 12;
    gs.num_classes = 4;
    gs.num_samples = 1200;
    gs.separation = 3.0;
    gs.difficulty_spread = 0.5;
    gs.imbalance = 2.0;
    gs.seed = 77;
    const auto all = data::make_gaussian_classes(gs);
    rng::Xoshiro256 gen(78);
    const auto tt = data::split_train_test(all, 0.25, gen);
    return data::partition_similarity(tt, 4, 4, /*similarity=*/0.5, gen);
  }();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  TrainOptions o;
  o.rounds = 12;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.02;
  o.eval_every = 0;
  o.seed = 5;
  o.fault = spec;
  o.aggregate = agg;
  o.trim_frac = 0.25;
  const auto r = train_hierminimax(model, fed, topo, o);
  const auto losses = metrics::per_edge_loss(
      model, r.w, fed, parallel::ThreadPool::global());
  return *std::max_element(losses.begin(), losses.end());
}

TEST(ScenarioFairness, RobustDefensesBeatMeanUnderEveryByzantineAttack) {
  for (const auto& sc : adversarial_scenarios(/*attack_frac=*/0.2)) {
    if (sc.spec.attack == sim::AttackKind::kNone) continue;  // churn row
    const scalar_t mean = worst_edge_loss_under(sc.spec, Aggregate::kMean);
    const scalar_t median =
        worst_edge_loss_under(sc.spec, Aggregate::kMedian);
    const scalar_t trimmed =
        worst_edge_loss_under(sc.spec, Aggregate::kTrimmedMean);
    EXPECT_LT(median, mean) << sc.name;
    EXPECT_LT(trimmed, mean) << sc.name;
  }
}

// ---------------------------------------------------------------------
// (d) Churn: absent clients compute nothing and report nothing, so the
// wire-attempt count drops relative to the zero-churn plan — and the
// whole thing replays (covered by (a); asserted here on the counters).

TEST(ScenarioChurn, AbsentClientsNeverReachTheWire) {
  const auto& fed = shared_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());

  sim::FaultSpec zero;
  zero.enabled = true;  // metered fault path, no faults
  sim::FaultSpec churn = zero;
  churn.churn_prob = 0.4;
  churn.churn_dwell = 2;

  const auto base =
      train_hierminimax(model, fed, topo,
                        scenario_opts(zero, Aggregate::kMean));
  const auto churned =
      train_hierminimax(model, fed, topo,
                        scenario_opts(churn, Aggregate::kMean));
  EXPECT_LT(churned.comm.client_edge_fault.attempted,
            base.comm.client_edge_fault.attempted);
  // Nothing was dropped in flight — absences are not delivery failures.
  EXPECT_EQ(churned.comm.client_edge_fault.dropped, 0u);
  EXPECT_EQ(churned.comm.client_edge_fault.attempted,
            churned.comm.client_edge_fault.delivered);
}

/// Dwell windows quantize membership: within one window a client's
/// presence is constant, so dwell = rounds makes churn a single draw per
/// client for the whole run.
TEST(ScenarioChurn, DwellWindowsQuantizeMembership) {
  sim::FaultSpec churn;
  churn.enabled = true;
  churn.churn_prob = 0.5;
  churn.churn_dwell = 4;
  const sim::FaultPlan plan(churn);
  for (index_t c = 0; c < 8; ++c) {
    for (index_t w = 0; w < 3; ++w) {  // windows [0,4), [4,8), [8,12)
      const bool first = plan.client_absent(w * 4, c);
      for (index_t k = 1; k < 4; ++k) {
        EXPECT_EQ(plan.client_absent(w * 4 + k, c), first)
            << "client " << c << " window " << w << " round offset " << k;
      }
    }
  }
}

// ---------------------------------------------------------------------
// (e) Concept drift: rotating the hard/rare class mid-run moves the
// worst group; the minimax weights must follow it.

/// heterogeneous_task with the hard class rotated by `rotation`: class
/// (C-1-rotation) mod C becomes the shrunk-and-rare one, so edge
/// (C-1-rotation) mod C becomes the worst group.
data::FederatedDataset rotated_task(index_t rotation) {
  data::GaussianSpec spec;
  spec.dim = 12;
  spec.num_classes = 4;
  spec.num_samples = 1200;
  spec.separation = 3.0;
  spec.difficulty_spread = 0.5;
  spec.imbalance = 2.0;
  spec.hard_class_rotation = rotation;
  spec.seed = 77;
  const auto all = data::make_gaussian_classes(spec);
  rng::Xoshiro256 gen(78);
  const auto tt = data::split_train_test(all, 0.25, gen);
  return data::partition_one_class_per_edge(tt, 4, 2, gen);
}

TrainOptions drift_opts() {
  TrainOptions o;
  o.rounds = 16;
  o.tau1 = 2;
  o.tau2 = 2;
  o.batch_size = 4;
  o.eta_w = 0.1;
  o.eta_p = 0.1;
  o.eval_every = 8;
  o.seed = 5;
  return o;
}

index_t argmax_p(const std::vector<scalar_t>& p) {
  return static_cast<index_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

TEST(ScenarioDrift, MinimaxWeightsTrackTheMovingWorstGroup) {
  // Stationary control: the hard class is 3, so p concentrates on edge 3.
  const auto stationary = rotated_task(0);
  const sim::HierTopology topo(stationary.num_edges(),
                               stationary.clients_per_edge);
  const nn::SoftmaxRegression model(stationary.dim(),
                                    stationary.num_classes());
  const auto control =
      train_hierminimax(model, stationary, topo, drift_opts());
  EXPECT_EQ(argmax_p(control.p), 3);

  // Drift at round 8: rotation 2 makes class (3 - 2) = 1 the hard one.
  auto drifting = rotated_task(0);
  drifting.add_drift_phase(8, rotated_task(2).client_train);
  const auto drifted =
      train_hierminimax(model, drifting, topo, drift_opts());
  EXPECT_EQ(argmax_p(drifted.p), 1);

  // The drifting run replays bit-identically.
  const auto replay =
      train_hierminimax(model, drifting, topo, drift_opts());
  EXPECT_EQ(fingerprint(drifted, /*model_only=*/false),
            fingerprint(replay, /*model_only=*/false));
}

/// A drift phase in the future is invisible: rounds before start_round
/// read the base shards, so the pre-drift prefix matches the stationary
/// run exactly.
TEST(ScenarioDrift, FutureDriftPhaseIsInvisibleBeforeItsStartRound) {
  const auto stationary = rotated_task(0);
  const sim::HierTopology topo(stationary.num_edges(),
                               stationary.clients_per_edge);
  const nn::SoftmaxRegression model(stationary.dim(),
                                    stationary.num_classes());
  auto opts = drift_opts();
  opts.rounds = 6;  // entirely before the drift point

  auto drifting = rotated_task(0);
  drifting.add_drift_phase(8, rotated_task(2).client_train);

  const auto a = train_hierminimax(model, stationary, topo, opts);
  const auto b = train_hierminimax(model, drifting, topo, opts);
  EXPECT_EQ(fingerprint(a, /*model_only=*/false),
            fingerprint(b, /*model_only=*/false));
}

// ---------------------------------------------------------------------
// CI smoke target: one HierMinimax round at 20% sign-flip attackers with
// the trimmed-mean defense. The ASan+UBSan adversarial-smoke job runs
// exactly this filter.

TEST(AdversarialSmoke, HierMinimaxOneRoundSignFlipTrimmed) {
  sim::FaultSpec spec;
  spec.enabled = true;
  spec.attack = sim::AttackKind::kSignFlip;
  spec.attack_prob = 0.2;
  spec.attack_scale = 4.0;
  const auto& fed = shared_task();
  const sim::HierTopology topo(fed.num_edges(), fed.clients_per_edge);
  const nn::SoftmaxRegression model(fed.dim(), fed.num_classes());
  auto opts = scenario_opts(spec, Aggregate::kTrimmedMean);
  opts.rounds = 1;
  const auto r = train_hierminimax(model, fed, topo, opts);
  EXPECT_EQ(r.w.size(), static_cast<std::size_t>(model.num_params()));
  EXPECT_EQ(r.comm.client_edge_fault.attempted,
            r.comm.client_edge_fault.delivered +
                r.comm.client_edge_fault.dropped +
                r.comm.client_edge_fault.in_retry);
}

}  // namespace
}  // namespace hm::algo
