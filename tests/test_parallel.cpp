// Unit tests for hm::parallel: thread pool semantics, parallel_for
// coverage, exception propagation, deterministic reduction.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace hm::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](index_t i) { ++hits[i]; }, /*grain=*/8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  ThreadPool pool(4);
  std::vector<int> order;
  parallel_for(pool, 0, 5, [&](index_t i) { order.push_back(static_cast<int>(i)); },
               /*grain=*/64);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          pool, 0, 1000,
          [](index_t i) {
            if (i == 573) throw std::logic_error("bad index");
          },
          /*grain=*/1),
      std::logic_error);
}

TEST(ParallelFor, InvalidRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10, 5, [](index_t) {}), CheckError);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const index_t n = 100000;
  const auto result = parallel_reduce(
      pool, 0, n, 0.0, [](index_t i) { return static_cast<double>(i); },
      std::plus<double>(), /*grain=*/64);
  EXPECT_DOUBLE_EQ(result, static_cast<double>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  // Floating-point sums depend on combine order; the chunked scheme must
  // give bit-identical results run-to-run.
  ThreadPool pool(7);
  auto run = [&] {
    return parallel_reduce(
        pool, 0, 50000, 0.0,
        [](index_t i) { return 1.0 / static_cast<double>(i + 1); },
        std::plus<double>(), /*grain=*/16);
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const auto result = parallel_reduce(
      pool, 3, 3, 123.0, [](index_t) { return 1.0; }, std::plus<double>());
  EXPECT_DOUBLE_EQ(result, 123.0);
}

// ---------------------------------------------------------------------
// Stress tests for the region dispatcher. The pools force region
// dispatch so the concurrent path (epoch handshake, chunk ticket,
// countdown latch) is exercised even on a single-CPU host, where
// production pools would inline regions.

TEST(RegionStress, ReduceBitIdenticalAcrossPoolSizes) {
  // FP sums depend on combine order; the chunk-ordered reduction must be
  // bit-identical no matter how many workers claim the chunks.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads, /*force_region_dispatch=*/true);
    return parallel_reduce(
        pool, 0, 40000, 0.0,
        [](index_t i) { return std::sqrt(static_cast<double>(i)) / 3.0; },
        std::plus<double>(), /*grain=*/8);
  };
  const double one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(RegionStress, RepeatedRegionsOnOnePoolCoverEveryIndex) {
  // Back-to-back regions reuse the same descriptor; stragglers from
  // round r must never touch round r+1 (epoch/quiesce protocol).
  ThreadPool pool(8, /*force_region_dispatch=*/true);
  std::vector<std::atomic<int>> hits(512);
  for (int round = 0; round < 200; ++round) {
    parallel_for(pool, 0, 512, [&](index_t i) { ++hits[i]; }, /*grain=*/1);
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 200);
}

TEST(RegionStress, EdgeCaseRangesAndGrains) {
  ThreadPool pool(4, /*force_region_dispatch=*/true);
  for (const index_t n : {0, 1, 2, 3, 63, 64, 65, 1000}) {
    for (const index_t grain : {1, 7, 64, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      parallel_for(pool, 0, n, [&](index_t i) { ++hits[i]; }, grain);
      for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1) << "n=" << n << " grain=" << grain;
      }
    }
  }
}

TEST(RegionStress, SubmittedTasksInterleaveWithRegions) {
  // Workers serve both the task queues and regions; mixing the two paths
  // must lose neither tasks nor chunks.
  ThreadPool pool(4, /*force_region_dispatch=*/true);
  std::atomic<int> task_sum{0};
  std::vector<std::future<void>> futures;
  std::atomic<long> region_sum{0};
  for (int round = 0; round < 50; ++round) {
    futures.push_back(pool.submit([&task_sum] { ++task_sum; }));
    parallel_for(pool, 0, 64, [&](index_t) { ++region_sum; }, /*grain=*/1);
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(task_sum.load(), 50);
  EXPECT_EQ(region_sum.load(), 50 * 64);
}

class ParallelForThreadCount : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForThreadCount, SumIndependentOfThreads) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  std::vector<double> out(10000, 0);
  parallel_for(pool, 0, 10000,
               [&](index_t i) { out[static_cast<std::size_t>(i)] =
                                    std::sqrt(static_cast<double>(i)); },
               /*grain=*/4);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  // Serial reference.
  double expected = 0;
  for (index_t i = 0; i < 10000; ++i) {
    expected += std::sqrt(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForThreadCount,
                         ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace hm::parallel
