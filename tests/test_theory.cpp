// Tests for the theory module: Theorem 1 / Theorem 2 bound evaluation,
// step-size prerequisites, and the Table 1 alpha-tradeoff schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/theory.hpp"
#include "core/check.hpp"

namespace hm::algo::theory {
namespace {

AlgoConfig paper_config() {
  AlgoConfig a;
  a.num_edges = 10;
  a.clients_per_edge = 3;
  a.sampled_edges = 5;
  a.tau1 = 2;
  a.tau2 = 2;
  a.rounds = 1000;
  a.eta_w = 0.001;
  a.eta_p = 0.001;
  return a;
}

TEST(Theorem1, ComponentsArePositiveAndSum) {
  const auto b = theorem1_bound(ProblemConstants{}, paper_config());
  EXPECT_GT(b.maximization_gap_p, 0);
  EXPECT_GT(b.minimization_gap_w, 0);
  EXPECT_GT(b.client_edge_term, 0);
  EXPECT_GT(b.edge_cloud_term, 0);
  EXPECT_NEAR(b.total,
              b.maximization_gap_p + b.minimization_gap_w +
                  b.client_edge_term + b.edge_cloud_term,
              1e-12);
}

TEST(Theorem1, MoreRoundsTightensBound) {
  auto a = paper_config();
  const auto loose = theorem1_bound(ProblemConstants{}, a);
  a.rounds *= 16;
  const auto tight = theorem1_bound(ProblemConstants{}, a);
  EXPECT_LT(tight.total, loose.total);
}

TEST(Theorem1, LargerTauRaisesAggregationPenalty) {
  auto a = paper_config();
  const auto base = theorem1_bound(ProblemConstants{}, a);
  a.tau2 *= 4;
  const auto worse = theorem1_bound(ProblemConstants{}, a);
  EXPECT_GT(worse.edge_cloud_term, base.edge_cloud_term);
}

TEST(Theorem1, Tau2OneKillsNoEdgeCloudTermButScalesLikeDrfa) {
  // Special case tau2 = 1 (DRFA regime): the edge-cloud penalty reduces
  // to the same tau1^2 scaling as the client-edge term.
  auto a = paper_config();
  a.tau2 = 1;
  const auto b = theorem1_bound(ProblemConstants{}, a);
  EXPECT_GT(b.edge_cloud_term, 0);
  // tau1^2*tau2^2 == tau1^2.
  auto a2 = a;
  a2.tau1 *= 2;
  const auto b2 = theorem1_bound(ProblemConstants{}, a2);
  EXPECT_NEAR(b2.edge_cloud_term / b.edge_cloud_term, 4.0, 1e-9);
}

TEST(Theorem1, DissimilarityOnlyAffectsAggregationTerms) {
  auto c = ProblemConstants{};
  const auto base = theorem1_bound(c, paper_config());
  c.dissimilarity *= 10;
  const auto hetero = theorem1_bound(c, paper_config());
  EXPECT_NEAR(hetero.maximization_gap_p, base.maximization_gap_p, 1e-15);
  EXPECT_NEAR(hetero.minimization_gap_w, base.minimization_gap_w, 1e-15);
  EXPECT_GT(hetero.client_edge_term, base.client_edge_term);
  EXPECT_GT(hetero.edge_cloud_term, base.edge_cloud_term);
}

TEST(Lemma1, StepSizeCondition) {
  auto a = paper_config();
  a.eta_w = 0.001;
  EXPECT_TRUE(lemma1_step_size_ok(ProblemConstants{}, a));
  a.eta_w = 1.0;  // way too large
  EXPECT_FALSE(lemma1_step_size_ok(ProblemConstants{}, a));
}

TEST(Lemma2, StepSizeCondition) {
  auto a = paper_config();
  a.eta_w = 0.01;
  EXPECT_TRUE(lemma2_step_size_ok(ProblemConstants{}, a));
  a.eta_w = 0.5;
  EXPECT_FALSE(lemma2_step_size_ok(ProblemConstants{}, a));
}

TEST(Theorem2, PositiveAndShrinksWithRounds) {
  auto a = paper_config();
  a.eta_w = 1e-3;
  a.eta_p = 1e-3;
  const auto loose = theorem2_bound(ProblemConstants{}, a);
  EXPECT_GT(loose, 0);
  // Follow the schedule: more iterations with schedule-consistent rates.
  auto a2 = a;
  a2.rounds = a.rounds * 256;
  const auto s = nonconvex_schedule(a2.total_iterations(), /*alpha=*/0.0);
  a2.eta_w = s.eta_w;
  a2.eta_p = s.eta_p;
  auto a1 = a;
  const auto s1 = nonconvex_schedule(a1.total_iterations(), 0.0);
  a1.eta_w = s1.eta_w;
  a1.eta_p = s1.eta_p;
  EXPECT_LT(theorem2_bound(ProblemConstants{}, a2),
            theorem2_bound(ProblemConstants{}, a1));
}

TEST(Theorem2, SensitivityToHeterogeneityAndSampling) {
  auto c = ProblemConstants{};
  auto a = paper_config();
  a.eta_w = 1e-3;
  a.eta_p = 1e-3;
  const auto base = theorem2_bound(c, a);
  // More dissimilar edges -> looser bound.
  c.dissimilarity *= 9;
  EXPECT_GT(theorem2_bound(c, a), base);
  c = ProblemConstants{};
  // More clients per edge -> tighter: every sigma_w variance term in the
  // bound carries 1/N_0 or 1/m = 1/(m_E N_0). (Note m_E itself is NOT
  // monotone: the (m_E+1)/N_0 edge-sampling term grows with it.)
  auto a_more = a;
  a_more.clients_per_edge = a.clients_per_edge * 8;
  EXPECT_LT(theorem2_bound(c, a_more), theorem2_bound(c, a));
}

TEST(Tradeoff, Table1Exponents) {
  // alpha = 0 recovers the Stochastic-AFL scaling row of Table 1:
  // O(T) communication, O(T^{-1/2}) convex / O(T^{-1/4}) non-convex rate.
  const auto p0 = tradeoff(0.0);
  EXPECT_DOUBLE_EQ(p0.comm_exponent, 1.0);
  EXPECT_DOUBLE_EQ(p0.rate_exponent_convex, 0.5);
  EXPECT_DOUBLE_EQ(p0.rate_exponent_nonconvex, 0.25);

  // DRFA's row: O(T^{3/4}) communication with O(T^{-3/8}) convex rate is
  // the alpha = 1/4 point of our family.
  const auto pq = tradeoff(0.25);
  EXPECT_DOUBLE_EQ(pq.comm_exponent, 0.75);
  EXPECT_DOUBLE_EQ(pq.rate_exponent_convex, 0.375);
  EXPECT_DOUBLE_EQ(pq.rate_exponent_nonconvex, 0.1875);
}

TEST(Tradeoff, MonotoneInAlpha) {
  scalar_t prev_comm = 2, prev_rate = 1;
  for (scalar_t alpha = 0; alpha < 0.95; alpha += 0.1) {
    const auto p = tradeoff(alpha);
    EXPECT_LT(p.comm_exponent, prev_comm);
    EXPECT_LT(p.rate_exponent_convex, prev_rate);
    prev_comm = p.comm_exponent;
    prev_rate = p.rate_exponent_convex;
  }
}

TEST(Tradeoff, InvalidAlphaThrows) {
  EXPECT_THROW(tradeoff(-0.1), CheckError);
  EXPECT_THROW(tradeoff(1.0), CheckError);
}

TEST(Schedule, ConvexTauProductScalesAsTAlpha) {
  const auto s = convex_schedule(10000, 0.5);
  EXPECT_EQ(s.tau_product, 100);  // 10000^0.5
  const auto s0 = convex_schedule(10000, 0.0);
  EXPECT_EQ(s0.tau_product, 1);
}

TEST(Schedule, ConvexLearningRatesUseCorrectedExponent) {
  // We use eta_w ~ T^{-(1+alpha)/2} (the paper's printed §5.1 exponent
  // fails to control the edge-cloud term for alpha > 1/3; see theory.cpp).
  const index_t t = 1 << 16;
  const auto s = convex_schedule(t, 0.5);
  EXPECT_NEAR(s.eta_w, std::pow(static_cast<scalar_t>(t), -0.75), 1e-12);
  EXPECT_NEAR(s.eta_p, std::pow(static_cast<scalar_t>(t), -0.75), 1e-12);
  const auto s2 = convex_schedule(t, 0.0);
  EXPECT_NEAR(s2.eta_w, std::pow(static_cast<scalar_t>(t), -0.5), 1e-12);
}

TEST(Schedule, NonconvexLearningRatesFollowSection52) {
  const index_t t = 1 << 16;
  const auto s = nonconvex_schedule(t, 0.0);
  EXPECT_NEAR(s.eta_w, std::pow(static_cast<scalar_t>(t), -0.75), 1e-12);
  EXPECT_NEAR(s.eta_p, std::pow(static_cast<scalar_t>(t), -0.25), 1e-12);
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, BoundUnderScheduleDecaysWithT) {
  // Under the §5.1 schedule the Theorem 1 bound must decrease in T for
  // every alpha — the substance of the communication/convergence
  // tradeoff claim.
  const double alpha = GetParam();
  auto bound_at = [&](index_t t_iters) {
    const auto s = convex_schedule(t_iters, alpha);
    AlgoConfig a = paper_config();
    a.tau1 = std::max<index_t>(1, s.tau_product);
    a.tau2 = 1;
    a.rounds = std::max<index_t>(1, t_iters / a.tau1);
    a.eta_w = s.eta_w;
    a.eta_p = s.eta_p;
    return theorem1_bound(ProblemConstants{}, a).total;
  };
  EXPECT_LT(bound_at(1 << 18), bound_at(1 << 10));
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75));

}  // namespace
}  // namespace hm::algo::theory
