#!/usr/bin/env python3
"""Validate observability exports against the checked-in JSON schemas.

Usage:
  scripts/validate_obs.py --metrics metrics.json [--trace trace.json]
                          [--trace-format chrome|jsonl] [--reconcile]

Checks
  * --metrics FILE  validates against tools/schemas/metrics.schema.json
  * --trace FILE    validates against tools/schemas/trace.schema.json
                    (chrome, the default) or trace_jsonl.schema.json
                    (one schema application per line)
  * --reconcile     cross-checks the metrics snapshot against the
                    LinkFaultStats invariant (src/sim/comm.hpp):
                        attempted == delivered + dropped + in_retry
                    for both hierarchy links, and — when a trace is
                    given too — that every span category in the trace
                    is one the schema knows.
  * --expect-span NAME (repeatable) asserts the trace contains at
                    least one span with that exact name.

No third-party dependencies: the validator implements exactly the
JSON-Schema subset the two schemas use (type, const, enum, required,
properties, additionalProperties, items, pattern, minimum, oneOf).
Exit code 0 = all good, 1 = validation failure, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, List

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA_DIR = REPO_ROOT / "tools" / "schemas"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
}


def _type_ok(value: Any, name: str) -> bool:
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "null":
        return value is None
    return isinstance(value, _TYPES[name])


def validate(value: Any, schema: dict, path: str, errors: List[str]) -> None:
    """Appends one message per violation; descends only into values that
    satisfy their structural keyword, so a wrong type yields one error,
    not a cascade."""
    if "oneOf" in schema:
        branches = schema["oneOf"]
        failures: List[List[str]] = []
        for branch in branches:
            sub: List[str] = []
            validate(value, branch, path, sub)
            if not sub:
                return
            failures.append(sub)
        errors.append(f"{path}: matched none of the {len(branches)} oneOf "
                      f"branches (closest: {min(failures, key=len)[0]})")
        return
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, "
                          f"got {value!r}")
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return
    if "type" in schema:
        names = schema["type"]
        names = [names] if isinstance(names, str) else names
        if not any(_type_ok(value, n) for n in names):
            errors.append(f"{path}: expected {'/'.join(names)}, "
                          f"got {type(value).__name__}")
            return
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key '{key}'")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}", errors)
    elif isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, str) and "pattern" in schema:
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match "
                          f"{schema['pattern']!r}")


def _load(path: Path) -> Any:
    try:
        with path.open(encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def _metric_map(metrics_doc: dict) -> dict:
    return {m["name"]: m["value"] for m in metrics_doc.get("metrics", [])}


def check_reconcile(metrics_doc: dict, errors: List[str]) -> None:
    """LinkFaultStats invariant, per hierarchy link (src/sim/comm.hpp):
    attempted == delivered + dropped + in_retry. The sim.comm.*_fault
    gauges are published verbatim from the final CommStats, so any slack
    here means the obs export and the simulator's own accounting have
    diverged."""
    values = _metric_map(metrics_doc)
    for link in ("client_edge", "edge_cloud"):
        prefix = f"sim.comm.{link}_fault."
        parts = {f: values.get(prefix + f)
                 for f in ("attempted", "delivered", "dropped", "in_retry")}
        missing = [prefix + f for f, v in parts.items() if v is None]
        if missing:
            errors.append(f"reconcile: metrics missing {missing}")
            continue
        lhs = parts["attempted"]
        rhs = parts["delivered"] + parts["dropped"] + parts["in_retry"]
        if lhs != rhs:
            errors.append(
                f"reconcile: {prefix}attempted={lhs} != delivered+dropped+"
                f"in_retry={rhs}")


def _trace_span_names(trace_doc: Any, fmt: str) -> List[str]:
    if fmt == "chrome":
        return [e["name"] for e in trace_doc.get("traceEvents", [])
                if isinstance(e, dict) and "name" in e]
    return [line["name"] for line in trace_doc
            if isinstance(line, dict) and line.get("type") == "span"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--metrics", type=Path, help="metrics snapshot JSON")
    ap.add_argument("--trace", type=Path, help="trace export")
    ap.add_argument("--trace-format", choices=("chrome", "jsonl"),
                    default="chrome")
    ap.add_argument("--reconcile", action="store_true",
                    help="check the LinkFaultStats delivery invariant")
    ap.add_argument("--expect-span", action="append", default=[],
                    metavar="NAME",
                    help="require at least one span with this name")
    args = ap.parse_args()
    if args.metrics is None and args.trace is None:
        ap.error("nothing to validate: pass --metrics and/or --trace")
    if args.reconcile and args.metrics is None:
        ap.error("--reconcile needs --metrics")
    if args.expect_span and args.trace is None:
        ap.error("--expect-span needs --trace")

    errors: List[str] = []
    metrics_doc = None
    if args.metrics is not None:
        schema = _load(SCHEMA_DIR / "metrics.schema.json")
        metrics_doc = _load(args.metrics)
        validate(metrics_doc, schema, "$", errors)
        print(f"metrics: {args.metrics} — "
              f"{len(metrics_doc.get('metrics', []))} metrics"
              if isinstance(metrics_doc, dict) else "metrics: not an object")

    trace_doc: Any = None
    if args.trace is not None:
        if args.trace_format == "chrome":
            schema = _load(SCHEMA_DIR / "trace.schema.json")
            trace_doc = _load(args.trace)
            validate(trace_doc, schema, "$", errors)
            n = len(trace_doc.get("traceEvents", [])) \
                if isinstance(trace_doc, dict) else 0
        else:
            schema = _load(SCHEMA_DIR / "trace_jsonl.schema.json")
            trace_doc = []
            with args.trace.open(encoding="utf-8") as fh:
                for lineno, raw in enumerate(fh, start=1):
                    if not raw.strip():
                        continue
                    try:
                        line = json.loads(raw)
                    except json.JSONDecodeError as e:
                        errors.append(f"line {lineno}: not JSON: {e}")
                        continue
                    validate(line, schema, f"line {lineno}", errors)
                    trace_doc.append(line)
            n = sum(1 for d in trace_doc
                    if isinstance(d, dict) and d.get("type") == "span")
        print(f"trace: {args.trace} — {n} spans ({args.trace_format})")

    if args.reconcile and isinstance(metrics_doc, dict):
        check_reconcile(metrics_doc, errors)

    if args.expect_span:
        names = set(_trace_span_names(trace_doc, args.trace_format))
        for want in args.expect_span:
            if want not in names:
                errors.append(f"trace: no span named '{want}' "
                              f"(saw: {sorted(names)})")

    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    if errors:
        print(f"validate_obs: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("validate_obs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
