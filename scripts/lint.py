#!/usr/bin/env python3
"""Determinism / convention lint for the HierMinimax sources.

Lints the C++ source tree (default: the repo's src/) with the detlint
token-stream rule engine and the whole-project analyses (include-graph
layering, cross-file contracts) — the machine-checked half of the repo's
bit-exact reproducibility guarantee.  Registered with ctest as
`determinism_lint`; the engine, rules, and fixtures live in
tools/detlint/.

Usage:
  scripts/lint.py                       # full project lint (baseline-aware)
  scripts/lint.py --json                # machine-readable findings on stdout
  scripts/lint.py --changed-since REF   # per-file rules only on files that
                                        # changed vs. the git ref (project
                                        # analyses always run — they are
                                        # global by nature and cheap)
  scripts/lint.py --no-baseline         # ignore tools/detlint/baseline.json
  scripts/lint.py --write-baseline      # accept current findings as baseline
  scripts/lint.py --selftest            # lexer + fixture + project selftests
  scripts/lint.py --selftest-cli        # exit-code / JSON contract selftest
  scripts/lint.py --list-rules          # print every rule with its rationale

Exit codes (a contract, asserted by the determinism_lint_exitcodes
ctest): 0 clean, 1 findings (or selftest failures), 2 usage or internal
error (bad flag, missing directory, unresolvable git ref, bad baseline).
"""

import argparse
import json
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.detlint import (  # noqa: E402
    ALL_PROJECT_RULES, ALL_RULES, Baseline, Project, findings_to_json,
    run_lint, run_selftest, write_baseline,
)
from tools.detlint.engine import iter_source_files  # noqa: E402

FIXTURES = REPO_ROOT / "tools" / "detlint" / "fixtures"
FIXTURES_PROJECT = REPO_ROOT / "tools" / "detlint" / "fixtures_project"
DEFAULT_BASELINE = REPO_ROOT / "tools" / "detlint" / "baseline.json"

EXIT_CLEAN, EXIT_FINDINGS, EXIT_ERROR = 0, 1, 2


def changed_files(project_root: Path, ref: str):
    """Repo paths changed vs. `ref` (committed, staged, unstaged) plus
    untracked files. Raises CalledProcessError on a bad ref."""
    diff = subprocess.run(
        ["git", "-C", str(project_root), "diff", "--name-only", ref, "--"],
        check=True, capture_output=True, text=True)
    untracked = subprocess.run(
        ["git", "-C", str(project_root), "ls-files", "--others",
         "--exclude-standard"],
        check=True, capture_output=True, text=True)
    names = set(diff.stdout.splitlines()) | set(untracked.stdout.splitlines())
    return sorted(project_root / n for n in names if n)


def cmd_lint(args) -> int:
    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint: not a directory: {root}", file=sys.stderr)
        return EXIT_ERROR
    project_root = args.project_root.resolve()
    project = Project(project_root, root)

    files = None
    if args.changed_since is not None:
        try:
            changed = changed_files(project_root, args.changed_since)
        except (subprocess.CalledProcessError, FileNotFoundError) as e:
            detail = getattr(e, "stderr", "") or str(e)
            print(f"lint: cannot diff against '{args.changed_since}': "
                  f"{detail.strip()}", file=sys.stderr)
            return EXIT_ERROR
        lintable = set(iter_source_files(root))
        files = [p for p in changed if p in lintable]

    findings = run_lint(root, ALL_RULES, files=files, project=project,
                        project_rules=ALL_PROJECT_RULES)

    baseline = Baseline()
    baseline_path = args.baseline if args.baseline else DEFAULT_BASELINE
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"lint: bad baseline {baseline_path}: {e}", file=sys.stderr)
            return EXIT_ERROR

    if args.write_baseline:
        write_baseline(baseline_path, findings, keep=baseline)
        print(f"detlint: wrote {len(findings)} finding(s) to "
              f"{baseline_path} — fill in the rationale fields")
        return EXIT_CLEAN

    surviving, baselined, stale = baseline.apply(findings)
    # Diff-aware runs see only a slice of the per-file findings, so a
    # baseline entry "missing" there proves nothing — suppress the
    # stale report to keep fast PR runs quiet; the full run (CI) owns it.
    if files is not None:
        stale = []

    if args.json:
        print(findings_to_json(surviving, root=str(root),
                               baselined=baselined, stale_baseline=stale))
    else:
        for f in surviving:
            print(f.render())
        for f in baselined:
            print(f"{f.render()} [baselined]")
        for e in stale:
            print(f"stale baseline entry (fixed? remove it): "
                  f"{e['path']}: [{e['rule']}] {e['message']}",
                  file=sys.stderr)
        n = len(surviving)
        scope = (f"{len(files)} changed file(s)" if files is not None
                 else str(root))
        print(f"detlint: {n} finding{'s' if n != 1 else ''} in {scope}"
              + (f" ({len(baselined)} baselined)" if baselined else ""))
    return EXIT_FINDINGS if surviving else EXIT_CLEAN


def cmd_selftest() -> int:
    errors = run_selftest(FIXTURES, ALL_RULES,
                          project_rules=ALL_PROJECT_RULES,
                          fixtures_project_root=FIXTURES_PROJECT)
    for e in errors:
        print(f"selftest: {e}", file=sys.stderr)
    n_fixtures = len(list(FIXTURES.rglob("*.*"))) \
        + len(list(FIXTURES_PROJECT.rglob("*.*")))
    print(f"detlint selftest: {'FAIL' if errors else 'OK'} "
          f"({n_fixtures} fixture files)")
    return EXIT_FINDINGS if errors else EXIT_CLEAN


def cmd_selftest_cli() -> int:
    """Assert the exit-code and JSON contracts by invoking this script
    the way CI and ctest do (real subprocesses, real exit codes)."""
    me = Path(__file__).resolve()

    def run(*extra):
        return subprocess.run([sys.executable, str(me), *extra],
                              capture_output=True, text=True)

    failures = []

    def expect(label, proc, code):
        if proc.returncode != code:
            failures.append(
                f"{label}: exit {proc.returncode}, want {code}\n"
                f"  stdout: {proc.stdout.strip()[:300]}\n"
                f"  stderr: {proc.stderr.strip()[:300]}")

    clean = FIXTURES_PROJECT / "clean"
    dirty = FIXTURES_PROJECT / "upward_include"
    expect("clean project -> 0",
           run("--project-root", str(clean), "--root", str(clean / "src"),
               "--no-baseline"), EXIT_CLEAN)
    expect("findings -> 1",
           run("--project-root", str(dirty), "--root", str(dirty / "src"),
               "--no-baseline"), EXIT_FINDINGS)
    expect("missing root -> 2",
           run("--root", str(REPO_ROOT / "no-such-dir")), EXIT_ERROR)
    expect("unknown flag -> 2 (argparse usage error)",
           run("--definitely-not-a-flag"), EXIT_ERROR)
    expect("bad git ref -> 2",
           run("--changed-since", "no-such-ref-detlint"), EXIT_ERROR)

    proc = run("--project-root", str(dirty), "--root", str(dirty / "src"),
               "--no-baseline", "--json")
    expect("findings --json -> 1", proc, EXIT_FINDINGS)
    try:
        doc = json.loads(proc.stdout)
        if doc.get("tool") != "detlint" or not doc.get("findings"):
            failures.append("--json: missing tool tag or findings array")
        want = {"path", "line", "rule", "message"}
        if doc.get("findings") and set(doc["findings"][0]) != want:
            failures.append(
                f"--json: finding keys {sorted(doc['findings'][0])}, "
                f"want {sorted(want)}")
    except json.JSONDecodeError as e:
        failures.append(f"--json output is not valid JSON: {e}")

    for f in failures:
        print(f"selftest-cli: {f}", file=sys.stderr)
    print(f"detlint exit-code contract: {'FAIL' if failures else 'OK'} "
          f"(6 scenarios)")
    return EXIT_FINDINGS if failures else EXIT_CLEAN


def cmd_list_rules() -> int:
    for rule in ALL_RULES:
        print(rule.name)
        print(textwrap.indent(textwrap.fill(rule.description, 74), "    "))
    for rule in ALL_PROJECT_RULES:
        names = ", ".join(rule.finding_names)
        print(f"{names}  (whole-project)")
        print(textwrap.indent(textwrap.fill(rule.description, 74), "    "))
    return EXIT_CLEAN


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=REPO_ROOT / "src",
                    help="C++ tree the per-file rules walk "
                         "(default: %(default)s)")
    ap.add_argument("--project-root", type=Path, default=REPO_ROOT,
                    help="project root anchoring cross-file contract "
                         "artifacts — tests/, README.md, DESIGN.md "
                         "(default: %(default)s)")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable findings as JSON on stdout")
    ap.add_argument("--changed-since", metavar="REF",
                    help="run per-file rules only on files changed vs. the "
                         "git ref (fast PR mode; whole-project analyses "
                         "still run)")
    ap.add_argument("--baseline", type=Path,
                    help=f"baseline file (default: {DEFAULT_BASELINE})")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, ignoring the baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write current findings to the baseline file and "
                         "exit 0 (rationales of surviving entries are kept)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the lexer unit tests and lint the fixture "
                         "trees, verifying each fixture triggers exactly "
                         "its declared rules")
    ap.add_argument("--selftest-cli", action="store_true",
                    help="verify the exit-code and --json contracts via "
                         "real subprocess invocations")
    ap.add_argument("--list-rules", action="store_true",
                    help="print every rule name and rationale, then exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        return cmd_list_rules()
    if args.selftest:
        return cmd_selftest()
    if args.selftest_cli:
        return cmd_selftest_cli()
    return cmd_lint(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
