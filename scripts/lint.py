#!/usr/bin/env python3
"""Determinism / convention lint for the HierMinimax sources.

Walks a C++ source tree (default: the repo's src/) and rejects known
nondeterminism sources and convention violations — the machine-checked
half of the repo's bit-exact reproducibility guarantee.  Registered with
ctest as `determinism_lint`; the rule engine and fixtures live in
tools/detlint/.

Usage:
  scripts/lint.py                 # lint src/
  scripts/lint.py --root DIR      # lint another tree
  scripts/lint.py --selftest      # run the lint's own fixture tests
  scripts/lint.py --list-rules    # print every rule with its rationale

Exit codes: 0 clean, 1 findings (or selftest failures), 2 usage error.
"""

import argparse
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.detlint import ALL_RULES, run_lint, run_selftest  # noqa: E402

FIXTURES = REPO_ROOT / "tools" / "detlint" / "fixtures"


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=REPO_ROOT / "src",
                    help="source tree to lint (default: %(default)s)")
    ap.add_argument("--selftest", action="store_true",
                    help="lint the fixture tree and verify each fixture "
                         "triggers exactly its declared rules")
    ap.add_argument("--list-rules", action="store_true",
                    help="print every rule name and rationale, then exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule.name)
            print(textwrap.indent(textwrap.fill(rule.description, 74), "    "))
        return 0

    if args.selftest:
        errors = run_selftest(FIXTURES, ALL_RULES)
        for e in errors:
            print(f"selftest: {e}", file=sys.stderr)
        print(f"detlint selftest: {'FAIL' if errors else 'OK'} "
              f"({len(list(FIXTURES.rglob('*.*')))} fixtures)")
        return 1 if errors else 0

    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint: not a directory: {root}", file=sys.stderr)
        return 2
    findings = run_lint(root, ALL_RULES)
    for f in findings:
        print(f.render())
    n = len(findings)
    print(f"detlint: {n} finding{'s' if n != 1 else ''} in {root}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
