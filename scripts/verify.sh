#!/usr/bin/env bash
# Repo verification: tier-1 build + full ctest, the determinism lint, and
# a sanitizer / static-analysis matrix. Each configuration builds into
# its own tree, so switching legs never thrashes one cache:
#
#   build/            default Release          full ctest + determinism lint
#   build-tsan/       HM_SANITIZE=thread       ctest -L parallel (every suite
#                                              whose code reaches hm::parallel)
#   build-asan-ubsan/ HM_SANITIZE=address,undefined   full ctest
#   build-tidy/       compile database only    scripts/tidy.sh
#
# Usage: scripts/verify.sh [--matrix] [--skip-tsan] [--skip-asan]
#                          [--skip-tidy] [--skip-lint]
#
# Default run: tier-1 + lint + TSan leg (the pre-merge gate). --matrix
# adds the ASan+UBSan full suite and the clang-tidy leg — everything the
# CI workflow runs, end to end.
#
# Sanitizer legs are probed against the host toolchain first and fail
# fast with an actionable message instead of erroring mid-build; the
# tidy leg degrades to SKIPPED when clang-tidy is absent (gcc-only
# hosts), since the sanitizers — not tidy — are the merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

MATRIX=0 SKIP_TSAN=0 SKIP_ASAN=0 SKIP_TIDY=0 SKIP_LINT=0
for arg in "$@"; do
  case "$arg" in
    --matrix)    MATRIX=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    --skip-lint) SKIP_LINT=1 ;;
    -h|--help) sed -n '2,22p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "verify: unknown argument: $arg (see --help)" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc)"
# One compiler for the probe and every cmake leg: honoring $CXX here but
# not there would let the probe pass while the real build fails (or vice
# versa) on hosts where they differ.
CXX_BIN="${CXX:-c++}"
SUMMARY=()
note() { SUMMARY+=("$1"); echo "== $1 =="; }

# Fail fast when the host toolchain cannot link the requested sanitizer
# (e.g. missing libtsan): a 2-second probe beats a mid-build error after
# minutes of compiling.
probe_sanitizer() {
  local san="$1" skip_flag="$2"
  local dir; dir="$(mktemp -d)"
  echo 'int main() { return 0; }' > "$dir/probe.cpp"
  if ! "$CXX_BIN" "-fsanitize=$san" -o "$dir/probe" "$dir/probe.cpp" \
       >"$dir/log" 2>&1; then
    echo "verify: host toolchain does not support -fsanitize=$san" >&2
    sed 's/^/verify:   | /' "$dir/log" | head -n 5 >&2
    echo "verify: install the sanitizer runtime or rerun with $skip_flag" >&2
    rm -rf "$dir"
    exit 1
  fi
  rm -rf "$dir"
}

note "tier-1: configure + build (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_COMPILER="$CXX_BIN" >/dev/null
cmake --build build -j"$JOBS"

note "tier-1: full ctest"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "$SKIP_LINT" == 1 ]]; then
  note "lint: skipped (--skip-lint)"
elif ! command -v python3 >/dev/null 2>&1; then
  echo "verify: python3 not found; determinism lint needs it" >&2
  echo "verify: rerun with --skip-lint to bypass" >&2
  exit 1
else
  note "lint: selftest + exit-code contract + baseline-aware scan"
  python3 scripts/lint.py --selftest
  python3 scripts/lint.py --selftest-cli
  python3 scripts/lint.py
  # JSON smoke: the CI gate consumes --json; keep the schema honest here.
  python3 scripts/lint.py --json | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["tool"] == "detlint" and doc["schema_version"] == 2, doc
print("lint: --json ok:", doc["counts"])'
fi

if [[ "$SKIP_TSAN" == 1 ]]; then
  note "tsan: skipped (--skip-tsan)"
else
  probe_sanitizer thread --skip-tsan
  note "tsan: configure + build (build-tsan/)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="$CXX_BIN" \
    -DHM_SANITIZE=thread -DHM_BUILD_BENCH=OFF -DHM_BUILD_EXAMPLES=OFF \
    >/dev/null
  cmake --build build-tsan -j"$JOBS"
  note "tsan: every hm::parallel-touching suite (ctest -L parallel)"
  # force_region_dispatch pools in the stress tests exercise the real
  # concurrent region path even on single-CPU hosts.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan -L parallel --output-on-failure -j"$JOBS"
fi

if [[ "$MATRIX" == 1 ]]; then
  if [[ "$SKIP_ASAN" == 1 ]]; then
    note "asan+ubsan: skipped (--skip-asan)"
  else
    probe_sanitizer address,undefined --skip-asan
    note "asan+ubsan: configure + build (build-asan-ubsan/)"
    cmake -B build-asan-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_COMPILER="$CXX_BIN" \
      -DHM_SANITIZE=address,undefined -DHM_BUILD_BENCH=OFF \
      -DHM_BUILD_EXAMPLES=OFF >/dev/null
    cmake --build build-asan-ubsan -j"$JOBS"
    note "asan+ubsan: full ctest"
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
      ctest --test-dir build-asan-ubsan --output-on-failure -j"$JOBS"
  fi

  if [[ "$SKIP_TIDY" == 1 ]]; then
    note "tidy: skipped (--skip-tidy)"
  else
    note "tidy: clang-tidy over src/"
    scripts/tidy.sh --allow-missing
  fi
fi

echo
echo "verify: OK"
for s in "${SUMMARY[@]}"; do echo "  - $s"; done
