#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then a ThreadSanitizer pass
# over the concurrency suite (the thread-pool region protocol is the one
# place a data race could hide from the functional tests).
#
# Usage: scripts/verify.sh [--skip-tsan]
#
# Build trees:
#   build/       — default flags (created if missing, reused otherwise)
#   build-tsan/  — HM_SANITIZE=thread, only test_parallel + test_tensor
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tsan: skipped =="
  exit 0
fi

echo "== tsan: configure + build (build-tsan/) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_parallel test_tensor

echo "== tsan: concurrency suites =="
# force_region_dispatch pools in the stress tests exercise the real
# concurrent region path even on single-CPU hosts.
./build-tsan/tests/test_parallel
./build-tsan/tests/test_tensor --gtest_filter='Gemm*:Shapes/*:KernelEquivalence*'

echo "verify: OK"
