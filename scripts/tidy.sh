#!/usr/bin/env bash
# clang-tidy runner over the library sources, using the repo-tuned
# .clang-tidy at the root. Non-suppressed findings fail the script.
#
# Usage: scripts/tidy.sh [--fix] [--allow-missing] [file.cpp ...]
#
#   --fix            apply clang-tidy fix-its in place
#   --allow-missing  exit 0 (with a SKIPPED notice) when clang-tidy is not
#                    on PATH — used by verify.sh --matrix so the matrix
#                    stays runnable on gcc-only hosts
#   file.cpp ...     restrict to specific sources (default: all of src/)
#
# Environment: CLANG_TIDY overrides the binary (e.g. clang-tidy-18).
#
# A dedicated build tree (build-tidy/) supplies compile_commands.json;
# it only runs cmake configure, never a build.
set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
ALLOW_MISSING=0
FILES=()
for arg in "$@"; do
  case "$arg" in
    --fix) FIX=1 ;;
    --allow-missing) ALLOW_MISSING=1 ;;
    -*) echo "tidy: unknown argument: $arg" >&2; exit 2 ;;
    *) FILES+=("$arg") ;;
  esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [[ "$ALLOW_MISSING" == 1 ]]; then
    echo "tidy: SKIPPED — '$TIDY' not found on PATH (install clang-tidy" \
         "or set CLANG_TIDY)"
    exit 0
  fi
  echo "tidy: '$TIDY' not found on PATH; install clang-tidy, set" \
       "CLANG_TIDY, or pass --allow-missing" >&2
  exit 1
fi

echo "== tidy: configure compile database (build-tidy/) =="
cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

if [[ ${#FILES[@]} -eq 0 ]]; then
  mapfile -t FILES < <(find src -name '*.cpp' | sort)
fi

ARGS=(-p build-tidy --quiet --warnings-as-errors='*')
if [[ "$FIX" == 1 ]]; then ARGS+=(--fix); fi

echo "== tidy: ${#FILES[@]} sources, $("$TIDY" --version | head -n1) =="
STATUS=0
FAILED=()
for f in "${FILES[@]}"; do
  if ! "$TIDY" "${ARGS[@]}" "$f"; then
    STATUS=1
    FAILED+=("$f")
  fi
done

if [[ "$STATUS" != 0 ]]; then
  echo "tidy: findings in: ${FAILED[*]}" >&2
  exit 1
fi
echo "tidy: OK (zero non-suppressed findings)"
