"""detlint baseline: a checked-in ledger of accepted findings.

The baseline exists so a *new rule* can land without a flag-day: known
pre-existing findings go into tools/detlint/baseline.json (each with a
rationale) and the rule immediately gates every *new* violation. The
contract, enforced by CI's blocking `detlint --json` step:

  * a finding not covered by the baseline fails the run — fixing it or
    baselining it (with a rationale) must happen in the same PR;
  * a baseline entry that no longer matches anything is reported as
    stale (warning, not failure) so the ledger shrinks as debt is paid.

Entries match on (path, rule, message) — never on line numbers, which
churn with every unrelated edit above the finding.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .engine import Finding


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    path: str
    rule: str
    message: str
    rationale: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.message)

    def to_json(self) -> dict:
        return {"path": self.path, "rule": self.rule,
                "message": self.message, "rationale": self.rationale}


class Baseline:
    def __init__(self, entries: Sequence[BaselineEntry] = (),
                 selftest_expect_stale: Optional[int] = None):
        self.entries = list(entries)
        self.selftest_expect_stale = selftest_expect_stale

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        doc = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(doc, dict) or doc.get("version") != 1:
            raise ValueError(
                f"{path}: expected a baseline object with \"version\": 1")
        entries = []
        for raw in doc.get("entries", []):
            entries.append(BaselineEntry(
                path=raw["path"], rule=raw["rule"], message=raw["message"],
                rationale=raw.get("rationale", "")))
        return cls(entries, doc.get("selftest_expect_stale"))

    def apply(self, findings: Sequence[Finding]):
        """Split findings into (surviving, baselined) and report stale
        entries (as JSON-ready dicts) that matched nothing."""
        by_key = {e.key(): e for e in self.entries}
        surviving: List[Finding] = []
        baselined: List[Finding] = []
        used = set()
        for f in findings:
            key = (f.path, f.rule, f.message)
            if key in by_key:
                baselined.append(f)
                used.add(key)
            else:
                surviving.append(f)
        stale = [e.to_json() for e in self.entries if e.key() not in used]
        return surviving, baselined, stale


def write_baseline(path: Path, findings: Sequence[Finding],
                   keep: Optional[Baseline] = None) -> None:
    """Serialize current findings as the new baseline, preserving the
    rationale of any entry that is still live."""
    rationales = {}
    if keep is not None:
        rationales = {e.key(): e.rationale for e in keep.entries}
    entries = []
    seen = set()
    for f in findings:
        key = (f.path, f.rule, f.message)
        if key in seen:
            continue
        seen.add(key)
        entries.append(BaselineEntry(
            f.path, f.rule, f.message,
            rationales.get(key, "TODO: justify or fix")).to_json())
    doc = {"version": 1, "entries": entries}
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
