"""detlint rule set.

Each rule names the determinism invariant or repo convention it guards.
Scopes are directories relative to the lint root (normally src/).  See
DESIGN.md §8 for the rationale behind every rule.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence

from .engine import Finding, Rule, SourceFile


def _regex_rule(name: str, description: str, pattern: str, message: str,
                scope: Optional[Sequence[str]] = None,
                exclude: Optional[Sequence[str]] = None,
                raw: bool = False) -> Rule:
    """Rule that flags every code line matching `pattern`.

    scope/exclude are root-relative directory or file prefixes; `raw`
    matches against unstripped lines (needed for preprocessor pragmas).
    """
    rx = re.compile(pattern)

    def check(f: SourceFile) -> Iterable[Finding]:
        if scope is not None and not f.in_dir(*scope):
            return
        if exclude is not None and any(
                f.rel == e or f.rel.startswith(e) for e in exclude):
            return
        lines = f.raw_lines if raw else f.code_lines
        for i, line in enumerate(lines, start=1):
            if rx.search(line):
                yield Finding(f.rel, i, name, message)

    return Rule(name, description, check)


# --- nondeterminism sources -------------------------------------------------

RULE_RANDOM_DEVICE = _regex_rule(
    "banned-random-device",
    "std::random_device draws hardware entropy; every RNG stream must "
    "derive from an explicit seed_t (src/rng) so runs replay bit-exactly.",
    r"\brandom_device\b",
    "std::random_device is nondeterministic; seed an hm::rng stream instead",
)

RULE_C_RANDOM = _regex_rule(
    "banned-c-random",
    "rand()/srand()/rand_r() use hidden global state with "
    "implementation-defined sequences; results differ across libcs.",
    r"\b(?:s?rand|rand_r)\s*\(",
    "C rand()/srand() is banned; use hm::rng::Xoshiro256",
)

RULE_WALL_CLOCK = _regex_rule(
    "banned-wall-clock",
    "Wall-clock reads (time(), clock(), system_clock, "
    "high_resolution_clock) leak the host's clock into results or seeds. "
    "Timing measurements use steady_clock via hm::Stopwatch.",
    r"\btime\s*\(|\bclock\s*\(|\bsystem_clock\b|\bhigh_resolution_clock\b",
    "wall-clock access is banned in src/; use hm::Stopwatch (steady_clock) "
    "for timing and explicit seeds for RNG",
)

RULE_UNORDERED_ACCUM = _regex_rule(
    "unordered-accumulation",
    "std::reduce / std::transform_reduce / parallel execution policies "
    "reassociate floating-point sums, so totals depend on the "
    "implementation's chunking. Numeric code uses the fixed-order "
    "hm::tensor reductions or std::accumulate.",
    r"\breduce\s*\(|\btransform_reduce\s*\(|\bexecution::",
    "unordered accumulation primitive; use hm::tensor::sum/dot or "
    "std::accumulate (fixed order)",
)

RULE_FLOAT_IN_KERNEL = _regex_rule(
    "float-narrowing-in-kernel",
    "Kernels compute in scalar_t (double). A float temporary inserts a "
    "double->float->double narrowing round-trip that silently changes "
    "results vs. the scalar references the tests compare against.",
    r"\bfloat\b",
    "float in a kernel narrows scalar_t arithmetic; use scalar_t",
    scope=("tensor",),
)


RULE_RAW_SIMD = _regex_rule(
    "raw-simd-outside-tensor",
    "ISA-specific SIMD (intrinsics headers, _mm* calls, __m128/256/512 "
    "vector types, ia32 builtins) is confined to src/tensor: the runtime "
    "dispatch layer there is the one place allowed to know about vector "
    "widths, and every variant it builds is bit-compared against the "
    "generic kernels (tests/test_simd.cpp). An intrinsic anywhere else "
    "forks the rounding/width behavior per build flag with no oracle.",
    r"\b\w*intrin\.h\b|\barm_neon\.h\b|\b_mm\d*_\w+\s*\(|"
    r"\b__m(?:128|256|512)[di]?\b|\b__builtin_ia32_\w+",
    "raw SIMD intrinsic outside src/tensor; call the tensor kernels and "
    "let runtime dispatch pick the ISA",
    exclude=("tensor",),
)


class _UnorderedIterationRule(Rule):
    """Iteration over std::unordered_{map,set} in deterministic modules.

    Hash-container iteration order is unspecified and varies with libc++,
    load factor, and pointer values; iterating one inside src/algo,
    src/sim, or src/metrics reorders float accumulation or client visit
    order between hosts. Keyed lookup (find/at/[]/count/contains) is fine.
    """

    NAME = "unordered-iteration"
    SCOPE = ("algo", "sim", "metrics")

    # Catches locals, members, and (reference/pointer) parameters.
    DECL_RE = re.compile(
        r"unordered_(?:map|set|multimap|multiset)\s*<(?:[^<>]|<[^<>]*>)*>"
        r"\s*[&*]*\s*(\w+)\s*[;,)({=\[]")
    TEMP_ITER_RE = re.compile(r"for\s*\([^()]*:[^()]*\bunordered_")

    def __init__(self):
        super().__init__(
            self.NAME,
            "Iterating a std::unordered_map/set yields an unspecified, "
            "host-dependent order; inside src/algo, src/sim, and "
            "src/metrics that order reaches float accumulation and "
            "scheduling decisions. Use std::map/std::vector, or sort keys "
            "before iterating.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if not f.in_dir(*self.SCOPE):
            return
        names = set()
        for line in f.code_lines:
            for m in self.DECL_RE.finditer(line):
                names.add(m.group(1))
        iter_res: List[re.Pattern] = [self.TEMP_ITER_RE]
        if names:
            alt = "|".join(sorted(re.escape(n) for n in names))
            iter_res.append(
                re.compile(r"for\s*\([^()]*:[^()]*\b(?:%s)\b" % alt))
            # .begin() starts an iteration; bare .end() in a find()
            # comparison is keyed lookup and stays legal.
            iter_res.append(
                re.compile(r"\b(?:%s)\s*\.\s*c?r?begin\s*\(" % alt))
        msg = ("iteration over an unordered container has host-dependent "
               "order; use an ordered container or sort the keys first")
        for i, line in enumerate(f.code_lines, start=1):
            if any(rx.search(line) for rx in iter_res):
                yield Finding(f.rel, i, self.NAME, msg)


# --- repo conventions -------------------------------------------------------

RULE_OMP = _regex_rule(
    "no-openmp",
    "Threading goes through hm::parallel exclusively — its chunking is "
    "what makes reductions thread-count-invariant. An OpenMP pragma "
    "bypasses that contract (and the build does not pass -fopenmp).",
    r"#\s*pragma\s+omp\b",
    "#pragma omp bypasses hm::parallel's deterministic chunking",
)

RULE_STDOUT = _regex_rule(
    "stray-stdout",
    "All user-facing output flows through src/core/log so verbosity is "
    "centrally controlled and benchmark stdout stays machine-parseable.",
    r"\bstd::cout\b|\bprintf\s*\(|\bputs\s*\(|\bfprintf\s*\(\s*stdout\b",
    "direct stdout write outside src/core/log; use hm::log",
    exclude=("core/log",),
)


RULE_PERSISTENCE = _regex_rule(
    "direct-persistence",
    "Durable artifacts must go through src/io: its temp-file + fsync + "
    "atomic-rename protocol with checksums is what makes writes crash-safe "
    "and loads corruption-tolerant. A stray ofstream/fopen/rename "
    "elsewhere can leave a torn, unchecksummed file behind a crash.",
    r"\bofstream\b|\bfopen\s*\(|\bfreopen\s*\(|\brename\s*\(|"
    r"\bremove\s*\(|\bunlink\s*\(|\bfilesystem\s*::",
    "direct file persistence outside src/io; route writes through the "
    "crash-safe io layer (io::atomic_write_file / io::save_*)",
    exclude=("io",),
)


class _ModelEntryCheckRule(Rule):
    """Every public Model entry point must open with HM_CHECK guards.

    The Model interface takes caller-owned spans (parameters, batches,
    outputs); an unguarded size mismatch is a silent out-of-bounds read.
    The rule accepts any HM_CHECK* within the first lines of the
    definition body.
    """

    NAME = "model-entry-unchecked"
    SCOPE = ("nn",)
    METHODS = ("init_params", "loss_and_grad", "loss", "predict")
    WINDOW = 40  # lines of body scanned for a check

    DEF_RE = re.compile(
        r"\b(\w+)::(%s)\s*\(" % "|".join(METHODS))

    def __init__(self):
        super().__init__(
            self.NAME,
            "Public Model entry points (init_params, loss_and_grad, loss, "
            "predict) must guard their span/shape preconditions with "
            "HM_CHECK before touching caller memory.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if not f.in_dir(*self.SCOPE) or not f.rel.endswith(".cpp"):
            return
        n = len(f.code_lines)
        for i, line in enumerate(f.code_lines, start=1):
            m = self.DEF_RE.search(line)
            if m is None:
                continue
            # Definition, not a qualified call: the statement must open a
            # brace before it hits a ';'.
            window = " ".join(f.code_lines[i - 1:min(n, i + 4)])
            tail = window[window.index(m.group(0)):]
            brace, semi = tail.find("{"), tail.find(";")
            if brace == -1 or (semi != -1 and semi < brace):
                continue
            # Scan the body only up to its closing brace (or WINDOW lines,
            # whichever comes first) so a guard in the *next* definition
            # cannot satisfy this one.
            depth, opened = 0, False
            body_lines = []
            for j in range(i - 1, min(n, i - 1 + self.WINDOW)):
                body_lines.append(f.code_lines[j])
                depth += f.code_lines[j].count("{")
                opened = opened or depth > 0
                depth -= f.code_lines[j].count("}")
                if opened and depth <= 0:
                    break
            body = "\n".join(body_lines)
            if "HM_CHECK" not in body:
                yield Finding(
                    f.rel, i, self.NAME,
                    f"{m.group(1)}::{m.group(2)} has no HM_CHECK guard in "
                    f"the first {self.WINDOW} lines of its body")


ALL_RULES: List[Rule] = [
    RULE_RANDOM_DEVICE,
    RULE_C_RANDOM,
    RULE_WALL_CLOCK,
    RULE_UNORDERED_ACCUM,
    RULE_FLOAT_IN_KERNEL,
    RULE_RAW_SIMD,
    _UnorderedIterationRule(),
    RULE_OMP,
    RULE_STDOUT,
    RULE_PERSISTENCE,
    _ModelEntryCheckRule(),
]
