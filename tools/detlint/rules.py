"""detlint per-file rule set, expressed over the token stream.

Each rule names the determinism invariant or repo convention it guards.
Scopes are directories relative to the lint root (normally src/).  See
DESIGN.md §8 and §12 for the rationale behind every rule.

All eleven rules from the regex engine are ported here as token
matchers: identifier rules match whole identifier tokens (no substring
false positives, no lookbehind hacks), call rules require an actual
``(`` token, and the structural rules (unordered-iteration declarations,
Model entry-point bodies) use real template-argument and brace matching
instead of bounded regex windows.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Set

from .engine import Finding, Rule, SourceFile
from .lexer import Token


def _next(tokens: Sequence[Token], i: int) -> Optional[Token]:
    return tokens[i + 1] if i + 1 < len(tokens) else None


def _is_call(tokens: Sequence[Token], i: int) -> bool:
    nxt = _next(tokens, i)
    return nxt is not None and nxt.kind == "punct" and nxt.text == "("


def _skip_template_args(tokens: Sequence[Token], i: int) -> int:
    """With tokens[i] == '<', return the index just past the matching
    '>' (treating '>>' as two closers, as C++ has since C++11). Returns
    i unchanged if the angle brackets never balance."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif t.text in (";", "{"):
                return i  # not a template argument list after all
            if depth <= 0 and t.text in (">", ">>"):
                return j + 1
        j += 1
    return i


def _matching_close(tokens: Sequence[Token], i: int, open_: str,
                    close: str) -> int:
    """tokens[i] must be `open_`; returns the index of the matching
    `close`, or len(tokens) if unbalanced."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == open_:
                depth += 1
            elif t.text == close:
                depth -= 1
                if depth == 0:
                    return j
    return len(tokens)


def _ident_rule(name: str, description: str, message: str, *,
                idents: Sequence[str] = (),
                called_idents: Sequence[str] = (),
                ident_pattern: Optional[str] = None,
                scope: Optional[Sequence[str]] = None,
                exclude: Optional[Sequence[str]] = None) -> Rule:
    """Rule that flags identifier tokens: `idents` match anywhere,
    `called_idents` only when followed by '(', `ident_pattern` is a
    full-token regex matched anywhere."""
    ident_set = set(idents)
    called_set = set(called_idents)
    rx = re.compile(ident_pattern) if ident_pattern else None

    def check(f: SourceFile) -> Iterable[Finding]:
        if scope is not None and not f.in_dir(*scope):
            return
        if exclude is not None and any(
                f.rel == e or f.rel.startswith(e) for e in exclude):
            return
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind != "ident":
                continue
            if (t.text in ident_set
                    or (t.text in called_set and _is_call(ts, i))
                    or (rx is not None and rx.fullmatch(t.text))):
                yield Finding(f.rel, t.line, name, message)

    return Rule(name, description, check)


# --- nondeterminism sources -------------------------------------------------

RULE_RANDOM_DEVICE = _ident_rule(
    "banned-random-device",
    "std::random_device draws hardware entropy; every RNG stream must "
    "derive from an explicit seed_t (src/rng) so runs replay bit-exactly.",
    "std::random_device is nondeterministic; seed an hm::rng stream instead",
    idents=("random_device",),
)

RULE_C_RANDOM = _ident_rule(
    "banned-c-random",
    "rand()/srand()/rand_r() use hidden global state with "
    "implementation-defined sequences; results differ across libcs.",
    "C rand()/srand() is banned; use hm::rng::Xoshiro256",
    called_idents=("rand", "srand", "rand_r"),
)

RULE_WALL_CLOCK = _ident_rule(
    "banned-wall-clock",
    "Wall-clock reads (time(), clock(), system_clock, "
    "high_resolution_clock) leak the host's clock into results or seeds. "
    "Timing measurements use steady_clock via hm::Stopwatch.",
    "wall-clock access is banned in src/; use hm::Stopwatch (steady_clock) "
    "for timing and explicit seeds for RNG",
    idents=("system_clock", "high_resolution_clock"),
    called_idents=("time", "clock"),
)

class _UnorderedAccumRule(Rule):
    """std::reduce / std::transform_reduce calls and `execution::`
    (parallel execution policies) — both reassociate floating-point
    sums, so totals depend on the implementation's chunking."""

    NAME = "unordered-accumulation"

    def __init__(self):
        super().__init__(
            self.NAME,
            "std::reduce / std::transform_reduce / parallel execution "
            "policies reassociate floating-point sums, so totals depend "
            "on the implementation's chunking. Numeric code uses the "
            "fixed-order hm::tensor reductions or std::accumulate.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        msg = ("unordered accumulation primitive; use hm::tensor::sum/dot "
               "or std::accumulate (fixed order)")
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind != "ident":
                continue
            if t.text in ("reduce", "transform_reduce") and _is_call(ts, i):
                yield Finding(f.rel, t.line, self.NAME, msg)
            elif t.text == "execution":
                nxt = _next(ts, i)
                if nxt is not None and nxt.kind == "punct" \
                        and nxt.text == "::":
                    yield Finding(f.rel, t.line, self.NAME, msg)


RULE_FLOAT_IN_KERNEL = _ident_rule(
    "float-narrowing-in-kernel",
    "Kernels compute in scalar_t (double). A float temporary inserts a "
    "double->float->double narrowing round-trip that silently changes "
    "results vs. the scalar references the tests compare against.",
    "float in a kernel narrows scalar_t arithmetic; use scalar_t",
    idents=("float",),
    scope=("tensor",),
)


class _RawSimdRule(Rule):
    """ISA-specific SIMD outside src/tensor: intrinsics headers,
    _mm* calls, __m128/256/512 vector types, ia32 builtins."""

    NAME = "raw-simd-outside-tensor"
    HEADER_RE = re.compile(r"\w*intrin\.h$|arm_neon\.h$")
    CALL_RE = re.compile(r"_mm\d*_\w+")
    TYPE_RE = re.compile(r"__m(?:128|256|512)[di]?|__builtin_ia32_\w+")

    def __init__(self):
        super().__init__(
            self.NAME,
            "ISA-specific SIMD (intrinsics headers, _mm* calls, "
            "__m128/256/512 vector types, ia32 builtins) is confined to "
            "src/tensor: the runtime dispatch layer there is the one place "
            "allowed to know about vector widths, and every variant it "
            "builds is bit-compared against the generic kernels "
            "(tests/test_simd.cpp). An intrinsic anywhere else forks the "
            "rounding/width behavior per build flag with no oracle.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if f.in_dir("tensor"):
            return
        msg = ("raw SIMD intrinsic outside src/tensor; call the tensor "
               "kernels and let runtime dispatch pick the ISA")
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind in ("header", "string"):
                # '<immintrin.h>' / "immintrin.h" include operands.
                name = t.text.strip('<>"')
                if self.HEADER_RE.search(name):
                    yield Finding(f.rel, t.line, self.NAME, msg)
            elif t.kind == "ident":
                if self.TYPE_RE.fullmatch(t.text) or (
                        self.CALL_RE.fullmatch(t.text)
                        and _is_call(ts, i)):
                    yield Finding(f.rel, t.line, self.NAME, msg)


class _UnorderedIterationRule(Rule):
    """Iteration over std::unordered_{map,set} in deterministic modules.

    Hash-container iteration order is unspecified and varies with libc++,
    load factor, and pointer values; iterating one inside src/algo,
    src/sim, or src/metrics reorders float accumulation or client visit
    order between hosts. Keyed lookup (find/at/[]/count/contains) is fine.
    """

    NAME = "unordered-iteration"
    SCOPE = ("algo", "sim", "metrics")
    UNORDERED = {"unordered_map", "unordered_set",
                 "unordered_multimap", "unordered_multiset"}
    BEGIN = {"begin", "cbegin", "rbegin", "crbegin"}
    DECL_TERMINATORS = {";", ",", ")", "(", "{", "=", "["}

    def __init__(self):
        super().__init__(
            self.NAME,
            "Iterating a std::unordered_map/set yields an unspecified, "
            "host-dependent order; inside src/algo, src/sim, and "
            "src/metrics that order reaches float accumulation and "
            "scheduling decisions. Use std::map/std::vector, or sort keys "
            "before iterating.",
            self._check)

    def _declared_names(self, ts: Sequence[Token]) -> Set[str]:
        """Names declared with an unordered container type: after the
        container identifier, skip its template arguments and any &/*
        qualifiers; the next identifier followed by a declarator
        terminator is the declared name (locals, members, parameters)."""
        names: Set[str] = set()
        for i, t in enumerate(ts):
            if t.kind != "ident" or t.text not in self.UNORDERED:
                continue
            j = i + 1
            if j < len(ts) and ts[j].kind == "punct" and ts[j].text == "<":
                j = _skip_template_args(ts, j)
                if j == i + 1:
                    continue  # unbalanced; not a declaration
            while j < len(ts) and ts[j].kind == "punct" \
                    and ts[j].text in ("&", "*", "&&"):
                j += 1
            if j < len(ts) and ts[j].kind == "ident":
                nxt = _next(ts, j)
                if nxt is not None and nxt.kind == "punct" \
                        and nxt.text in self.DECL_TERMINATORS:
                    names.add(ts[j].text)
        return names

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if not f.in_dir(*self.SCOPE):
            return
        ts = f.code_tokens
        names = self._declared_names(ts)
        msg = ("iteration over an unordered container has host-dependent "
               "order; use an ordered container or sort the keys first")
        for i, t in enumerate(ts):
            # Range-for whose range expression mentions a tracked name or
            # an unordered container type (temporaries).
            if t.kind == "ident" and t.text == "for" and _is_call(ts, i):
                close = _matching_close(ts, i + 1, "(", ")")
                head = ts[i + 2:close]
                colon = next((k for k, h in enumerate(head)
                              if h.kind == "punct" and h.text == ":"), None)
                if colon is not None:
                    for h in head[colon + 1:]:
                        if h.kind == "ident" and (
                                h.text in names
                                or h.text in self.UNORDERED):
                            yield Finding(f.rel, t.line, self.NAME, msg)
                            break
            # name.begin() / name.cbegin() — explicit iteration start.
            # A bare .end() in a find() comparison is keyed lookup and
            # stays legal.
            elif (t.kind == "ident" and t.text in names
                  and i + 2 < len(ts)
                  and ts[i + 1].kind == "punct" and ts[i + 1].text == "."
                  and ts[i + 2].kind == "ident"
                  and ts[i + 2].text in self.BEGIN
                  and _is_call(ts, i + 2)):
                yield Finding(f.rel, t.line, self.NAME, msg)


# --- repo conventions -------------------------------------------------------


class _OpenMpRule(Rule):
    """#pragma omp — OpenMP bypasses hm::parallel's deterministic
    chunking (and the build does not pass -fopenmp)."""

    def __init__(self):
        super().__init__(
            "no-openmp",
            "Threading goes through hm::parallel exclusively — its "
            "chunking is what makes reductions thread-count-invariant. An "
            "OpenMP pragma bypasses that contract (and the build does not "
            "pass -fopenmp).",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind == "pp" and t.text == "pragma":
                nxt = _next(ts, i)
                if nxt is not None and nxt.kind == "ident" \
                        and nxt.text == "omp":
                    yield Finding(
                        f.rel, t.line, self.name,
                        "#pragma omp bypasses hm::parallel's deterministic "
                        "chunking")


class _StdoutRule(Rule):
    """Direct stdout writes outside src/core/log."""

    NAME = "stray-stdout"

    def __init__(self):
        super().__init__(
            self.NAME,
            "All user-facing output flows through src/core/log so "
            "verbosity is centrally controlled and benchmark stdout stays "
            "machine-parseable.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if f.in_dir("core/log") or f.rel.startswith("core/log"):
            return
        msg = "direct stdout write outside src/core/log; use hm::log"
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind != "ident":
                continue
            if t.text == "cout":
                # std::cout (or any qualified ::cout).
                if i > 0 and ts[i - 1].kind == "punct" \
                        and ts[i - 1].text == "::":
                    yield Finding(f.rel, t.line, self.NAME, msg)
            elif t.text in ("printf", "puts") and _is_call(ts, i):
                yield Finding(f.rel, t.line, self.NAME, msg)
            elif t.text == "fprintf" and _is_call(ts, i):
                nxt = ts[i + 2] if i + 2 < len(ts) else None
                if nxt is not None and nxt.kind == "ident" \
                        and nxt.text == "stdout":
                    yield Finding(f.rel, t.line, self.NAME, msg)


class _StderrRule(Rule):
    """Direct stderr writes outside src/core/log.

    Diagnostics must flow through hm::log so --log-level / HM_LOG_LEVEL
    control them and multi-process (socket transport) runs interleave
    line-atomically. The one sanctioned exception — the abort path in
    core/check.hpp, which cannot risk re-entering the logger — carries
    an inline ``detlint: allow(stray-stderr)``.
    """

    NAME = "stray-stderr"

    def __init__(self):
        super().__init__(
            self.NAME,
            "Diagnostics flow through src/core/log so --log-level / "
            "HM_LOG_LEVEL gate them and worker processes never tear each "
            "other's lines; raw stderr writes bypass both.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if f.in_dir("core/log") or f.rel.startswith("core/log"):
            return
        msg = "direct stderr write outside src/core/log; use hm::log"
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind != "ident":
                continue
            if t.text == "cerr":
                # std::cerr (or any qualified ::cerr).
                if i > 0 and ts[i - 1].kind == "punct" \
                        and ts[i - 1].text == "::":
                    yield Finding(f.rel, t.line, self.NAME, msg)
            elif t.text == "perror" and _is_call(ts, i):
                yield Finding(f.rel, t.line, self.NAME, msg)
            elif t.text == "fprintf" and _is_call(ts, i):
                nxt = ts[i + 2] if i + 2 < len(ts) else None
                if nxt is not None and nxt.kind == "ident" \
                        and nxt.text == "stderr":
                    yield Finding(f.rel, t.line, self.NAME, msg)


# --- observability contract (DESIGN.md §15) ---------------------------------


class _ObsInKernelRule(Rule):
    """Observability hooks inside src/tensor kernels.

    The determinism contract keeps the tensor math layer free of obs
    instrumentation: a counter bump per kernel invocation would sit on
    the hottest loops in the codebase, and the zero-perturbation claim
    (bit-identical trajectories with obs on/idle/compiled-out) is only
    cheap to audit if the kernels provably contain no hooks at all.
    Kernel-level activity is attributed from the call sites one layer
    up (trainers, ClusterSim, the thread pool). The single exception is
    tensor/simd.cpp, which publishes the run's SIMD dispatch decision —
    once, at startup, outside any kernel.
    """

    NAME = "obs-in-kernel"
    SCOPE = ("tensor",)
    ALLOWED = ("tensor/simd.cpp",)
    HOOK_RE = re.compile(r"HM_OBS_\w+")

    def __init__(self):
        super().__init__(
            self.NAME,
            "src/tensor kernels must stay free of observability hooks "
            "(HM_OBS_* macros, hm::obs calls): they sit on the hottest "
            "loops and would make the zero-perturbation contract "
            "unauditable. Attribute kernel work from the call sites one "
            "layer up; only tensor/simd.cpp may publish its dispatch "
            "decision.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if not f.in_dir(*self.SCOPE):
            return
        if f.rel in self.ALLOWED:
            return
        ts = f.code_tokens
        for i, t in enumerate(ts):
            if t.kind != "ident":
                continue
            if self.HOOK_RE.fullmatch(t.text):
                yield Finding(
                    f.rel, t.line, self.NAME,
                    f"{t.text} inside a tensor kernel; attribute this "
                    "from the calling layer instead")
            elif t.text == "obs":
                nxt = _next(ts, i)
                if nxt is not None and nxt.kind == "punct" \
                        and nxt.text == "::":
                    yield Finding(
                        f.rel, t.line, self.NAME,
                        "hm::obs call inside a tensor kernel; attribute "
                        "this from the calling layer instead")


class _ObsClockRule(Rule):
    """Clock reads in src/obs outside the designated timing TU.

    The obs determinism contract separates channels: value-channel
    payloads must be pure functions of (seed, config), so nothing in
    the metrics registry or manifest may observe a clock. All time
    acquisition lives in obs/trace.cpp (steady_clock only, feeding
    span timestamps on the timing channel). A clock read anywhere else
    in src/obs is a contract breach waiting to leak into a metric.
    """

    NAME = "obs-clock-outside-timing"
    SCOPE = ("obs",)
    ALLOWED = ("obs/trace.cpp",)
    CLOCK_IDENTS = ("chrono", "steady_clock", "Stopwatch", "clock_gettime",
                    "gettimeofday", "timespec")

    def __init__(self):
        super().__init__(
            self.NAME,
            "Value-channel metric payloads must be pure functions of "
            "(seed, config); every clock read in src/obs is confined to "
            "obs/trace.cpp, which stamps span timestamps on the timing "
            "channel. A clock anywhere else in src/obs can leak wall "
            "time into a metric value.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if not f.in_dir(*self.SCOPE):
            return
        if f.rel in self.ALLOWED:
            return
        ts = f.code_tokens
        for t in ts:
            if t.kind == "ident" and t.text in self.CLOCK_IDENTS:
                yield Finding(
                    f.rel, t.line, self.NAME,
                    f"clock access ({t.text}) in src/obs outside "
                    "obs/trace.cpp; time belongs to the timing channel "
                    "only")


RULE_PERSISTENCE = _ident_rule(
    "direct-persistence",
    "Durable artifacts must go through src/io: its temp-file + fsync + "
    "atomic-rename protocol with checksums is what makes writes crash-safe "
    "and loads corruption-tolerant. A stray ofstream/fopen/rename "
    "elsewhere can leave a torn, unchecksummed file behind a crash.",
    "direct file persistence outside src/io; route writes through the "
    "crash-safe io layer (io::atomic_write_file / io::save_*)",
    idents=("ofstream", "filesystem"),
    called_idents=("fopen", "freopen", "rename", "remove", "unlink"),
    exclude=("io",),
)


RULE_RAW_TRANSPORT = _ident_rule(
    "raw-transport-syscall",
    "Raw process/socket syscalls (fork, socketpair, send/recv, poll, "
    "waitpid, kill, ...) are the transport layer's business: src/net owns "
    "worker lifecycle, framing, and deadlines. A stray fork or send "
    "elsewhere bypasses the robustness envelope (retries, liveness "
    "tracking, orderly shutdown) and can leak fds or zombie processes.",
    "raw transport/process syscall outside src/net; route it through "
    "net::Transport",
    called_idents=("fork", "vfork", "socketpair", "send", "recv", "poll",
                   "waitpid", "kill", "pipe", "accept", "connect", "bind",
                   "listen", "prctl", "sigaction", "signal"),
    exclude=("net",),
)


class _ModelEntryCheckRule(Rule):
    """Every public Model entry point must open with HM_CHECK guards.

    The Model interface takes caller-owned spans (parameters, batches,
    outputs); an unguarded size mismatch is a silent out-of-bounds read.
    The rule accepts any HM_CHECK* within the first WINDOW lines of the
    definition body (real brace matching bounds the body, so a guard in
    the *next* definition can never satisfy this one).
    """

    NAME = "model-entry-unchecked"
    SCOPE = ("nn",)
    METHODS = {"init_params", "loss_and_grad", "loss", "predict"}
    WINDOW = 40  # lines of body scanned for a check

    def __init__(self):
        super().__init__(
            self.NAME,
            "Public Model entry points (init_params, loss_and_grad, loss, "
            "predict) must guard their span/shape preconditions with "
            "HM_CHECK before touching caller memory.",
            self._check)

    def _check(self, f: SourceFile) -> Iterable[Finding]:
        if not f.in_dir(*self.SCOPE) or not f.rel.endswith(".cpp"):
            return
        ts = f.code_tokens
        for i, t in enumerate(ts):
            # Class::method( — a qualified definition or call.
            if not (t.kind == "ident" and i + 2 < len(ts)
                    and ts[i + 1].kind == "punct" and ts[i + 1].text == "::"
                    and ts[i + 2].kind == "ident"
                    and ts[i + 2].text in self.METHODS
                    and _is_call(ts, i + 2)):
                continue
            close = _matching_close(ts, i + 3, "(", ")")
            if close >= len(ts):
                continue
            # Definition, not a call: the next structural token after the
            # parameter list (past cv/ref/noexcept qualifiers) must open a
            # brace before any ';'.
            j = close + 1
            while j < len(ts) and not (
                    ts[j].kind == "punct" and ts[j].text in ("{", ";")):
                j += 1
            if j >= len(ts) or ts[j].text != "{":
                continue
            body_end = _matching_close(ts, j, "{", "}")
            deadline = t.line + self.WINDOW
            guarded = any(
                b.kind == "ident" and b.text.startswith("HM_CHECK")
                for b in ts[j:body_end] if b.line <= deadline)
            if not guarded:
                yield Finding(
                    f.rel, t.line, self.NAME,
                    f"{t.text}::{ts[i + 2].text} has no HM_CHECK guard in "
                    f"the first {self.WINDOW} lines of its body")


ALL_RULES: List[Rule] = [
    RULE_RANDOM_DEVICE,
    RULE_C_RANDOM,
    RULE_WALL_CLOCK,
    _UnorderedAccumRule(),
    RULE_FLOAT_IN_KERNEL,
    _RawSimdRule(),
    _UnorderedIterationRule(),
    _OpenMpRule(),
    _StdoutRule(),
    _StderrRule(),
    _ObsInKernelRule(),
    _ObsClockRule(),
    RULE_PERSISTENCE,
    RULE_RAW_TRANSPORT,
    _ModelEntryCheckRule(),
]
