"""Lexer unit selftests, run as tier 1 of `scripts/lint.py --selftest`.

Table-driven checks of exactly the constructs that killed the old regex
engine: raw-string delimiters, u8/L encoding prefixes, digit separators,
backslash line-continuations (including inside // comments and spliced
identifiers), and unterminated-literal recovery. Every case also pins
the *line number* of a sentinel token after the tricky construct —
losing line sync downstream of damage is the failure mode these guard.
"""

from __future__ import annotations

from typing import List, Optional

from .lexer import string_value, tokenize


def _tok(tokens, kind: str, text: str):
    for t in tokens:
        if t.kind == kind and t.text == text:
            return t
    return None


def run() -> List[str]:
    errors: List[str] = []

    def check(cond: bool, label: str) -> None:
        if not cond:
            errors.append(f"lexer selftest: {label}")

    # --- raw strings -------------------------------------------------------
    ts = tokenize('auto s = R"lint(rand() " )not-it" )lint"; int after;\n')
    raw = next((t for t in ts if t.kind == "raw_string"), None)
    check(raw is not None, "raw string with custom delimiter not lexed")
    if raw:
        check(string_value(raw) == 'rand() " )not-it" ',
              f"raw string value wrong: {string_value(raw)!r}")
    check(_tok(ts, "ident", "rand") is None,
          "raw-string body leaked tokens (rand)")
    check(_tok(ts, "ident", "after") is not None,
          "lexing did not resume after raw string")

    # Multi-line raw string: the token after it must be on the right line.
    ts = tokenize('auto s = R"(line one\nline two\nline three)";\nint x;\n')
    x = _tok(ts, "ident", "x")
    check(x is not None and x.line == 4,
          f"token after multi-line raw string on line "
          f"{x.line if x else '?'}, want 4")

    # Identifier merely ending in R: NOT a raw-string prefix (the old
    # engine's lookbehind regression).
    ts = tokenize('auto a = FMT_R"(no close paren";\nint b = rand();\n')
    check(_tok(ts, "raw_string", 'FMT_R"(no close paren"') is None
          and any(t.kind == "string" for t in ts),
          "FMT_R\"...\" must lex as ident + plain string, not raw string")
    b = _tok(ts, "ident", "rand")
    check(b is not None and b.line == 2,
          "file swallowed after identifier-ending-in-R false raw string")

    # u8R / LR prefixes are raw; 16-char delimiter is legal.
    ts = tokenize('auto a = u8R"abcdefghijklmnop(body)abcdefghijklmnop";\n')
    raw = next((t for t in ts if t.kind == "raw_string"), None)
    check(raw is not None and string_value(raw) == "body",
          "u8R raw string with 16-char delimiter mis-lexed")

    # --- encoding prefixes -------------------------------------------------
    ts = tokenize('auto a = u8"utf8"; auto b = L"wide"; auto c = L\'x\';\n')
    check(_tok(ts, "string", 'u8"utf8"') is not None, "u8 string prefix lost")
    check(_tok(ts, "string", 'L"wide"') is not None, "L string prefix lost")
    check(_tok(ts, "char", "L'x'") is not None, "L char prefix lost")
    check(_tok(ts, "ident", "u8") is None and _tok(ts, "ident", "L") is None,
          "encoding prefix split off as its own identifier")

    # --- digit separators --------------------------------------------------
    ts = tokenize("long n = 1'000'000; int m = 0x1F'FFp+2;\n")
    check(_tok(ts, "number", "1'000'000") is not None,
          "digit separators split the number token")
    check(not any(t.kind == "char" for t in ts),
          "digit separator mis-lexed as char literal")
    check(_tok(ts, "number", "0x1F'FFp+2") is not None,
          "hex float with separator mis-lexed")

    # --- line continuations ------------------------------------------------
    # Inside a // comment: the comment legally swallows the next physical
    # line; the code after it must keep its physical line number.
    ts = tokenize("// a comment that continues \\\nint not_code;\nint yes;\n")
    check(_tok(ts, "ident", "not_code") is None,
          "backslash-continued // comment did not swallow the next line")
    yes = _tok(ts, "ident", "yes")
    check(yes is not None and yes.line == 3,
          f"line number after continued comment: "
          f"{yes.line if yes else '?'}, want 3")

    # Inside an identifier and a directive.
    ts = tokenize("in\\\nt spliced_int;\n#inc\\\nlude \"algo/x.hpp\"\n")
    t0 = _tok(ts, "ident", "int")
    check(t0 is not None and t0.line == 1,
          "spliced identifier not reassembled at its first line")
    pp = _tok(ts, "pp", "include")
    check(pp is not None and pp.line == 3,
          "spliced preprocessor directive not recognized")

    # --- unterminated-literal recovery -------------------------------------
    ts = tokenize('auto s = "never closed\nint survivor;\n')
    surv = _tok(ts, "ident", "survivor")
    check(surv is not None and surv.line == 2,
          "unterminated string: lexer lost the next line")
    ts = tokenize("char c = 'x\nint also_here;\n")
    also = _tok(ts, "ident", "also_here")
    check(also is not None and also.line == 2,
          "unterminated char literal: lexer lost the next line")
    # Unterminated raw string / block comment at EOF must not raise or
    # loop; everything after is opaque by design.
    ts = tokenize('auto s = R"(runs to eof\nmore\n')
    check(ts and ts[-1].kind == "raw_string",
          "unterminated raw string not recovered as one token")
    ts = tokenize("/* never closed\nint gone;\n")
    check(ts and ts[-1].kind == "comment",
          "unterminated block comment not recovered")

    # --- preprocessor ------------------------------------------------------
    ts = tokenize('#include <vector>\n#include "sim/fault.hpp"\n'
                  "#pragma omp parallel\n")
    check(_tok(ts, "header", "<vector>") is not None,
          "angle-bracket include operand not lexed as header token")
    check(_tok(ts, "string", '"sim/fault.hpp"') is not None,
          "quoted include operand not lexed as string")
    pragma = _tok(ts, "pp", "pragma")
    check(pragma is not None and pragma.line == 3, "pragma directive lost")
    # '#' mid-line is not a directive.
    ts = tokenize("int a = 1; # \n")
    check(_tok(ts, "pp", "include") is None and ts[-1].text == "#",
          "mid-line '#' wrongly opened a directive")

    return errors
