"""Cross-file contract checks.

These are the invariants that span translation units — the ones a
per-file linter structurally cannot see:

  * kernel-table-unpinned: every function pointer in
    src/tensor/simd.hpp's KernelTable must be exercised by the 0-ULP
    SIMD equivalence suite (tests/test_simd.cpp). A dispatched kernel
    nobody bit-compares is a silent per-ISA determinism fork.
  * trainer-not-in-resume-matrix: every `train_*` entry point declared
    in src/algo must appear in the kill-and-resume matrix
    (tests/test_snapshot.cpp). A trainer outside the matrix can corrupt
    state across a crash without any test noticing.
  * undocumented-flag: every CLI flag read through hm::Flags in src/
    must be documented (as `--name`) in README.md or DESIGN.md. Flags
    only discoverable by reading the source rot instantly.

Each finding anchors at the source line that created the obligation
(the table field, the trainer declaration, the flag read), so inline
`detlint: allow(...)` markers and the baseline both apply naturally.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .engine import Finding, Project, ProjectRule, SourceFile
from .lexer import Token, string_value

KERNEL_TABLE_HEADER = "tensor/simd.hpp"
KERNEL_PIN_SUITE = "tests/test_simd.cpp"
TRAINER_MATRIX_SUITE = "tests/test_snapshot.cpp"
DOC_FILES = ("README.md", "DESIGN.md")


def _kernel_table_fields(src: SourceFile) -> List[Tuple[str, int]]:
    """(field name, line) of each function pointer declared inside
    `struct KernelTable { ... }` — fields have the shape
    `ret (*name)(args...);` so the name is the identifier between
    `(*` and `)`."""
    ts = src.code_tokens
    fields: List[Tuple[str, int]] = []
    for i, t in enumerate(ts):
        if not (t.kind == "ident" and t.text == "KernelTable"
                and i > 0 and ts[i - 1].kind == "ident"
                and ts[i - 1].text == "struct"):
            continue
        j = i + 1
        while j < len(ts) and not (ts[j].kind == "punct"
                                   and ts[j].text in ("{", ";")):
            j += 1
        if j >= len(ts) or ts[j].text != "{":
            continue  # forward declaration
        depth = 0
        for k in range(j, len(ts)):
            tk = ts[k]
            if tk.kind == "punct" and tk.text == "{":
                depth += 1
            elif tk.kind == "punct" and tk.text == "}":
                depth -= 1
                if depth == 0:
                    break
            elif (tk.kind == "punct" and tk.text == "("
                  and k + 2 < len(ts)
                  and ts[k + 1].kind == "punct" and ts[k + 1].text == "*"
                  and ts[k + 2].kind == "ident"
                  and k + 3 < len(ts)
                  and ts[k + 3].kind == "punct" and ts[k + 3].text == ")"):
                fields.append((ts[k + 2].text, ts[k + 2].line))
    return fields


def _member_calls(src: SourceFile) -> Set[str]:
    """Identifiers invoked as `.name(` anywhere in the file."""
    ts = src.code_tokens
    out: Set[str] = set()
    for i, t in enumerate(ts):
        if (t.kind == "punct" and t.text == "."
                and i + 2 < len(ts)
                and ts[i + 1].kind == "ident"
                and ts[i + 2].kind == "punct" and ts[i + 2].text == "("):
            out.add(ts[i + 1].text)
    return out


def _check_kernel_pins(project: Project) -> Iterable[Finding]:
    header = project.src_file(KERNEL_TABLE_HEADER)
    if header is None:
        return
    fields = _kernel_table_fields(header)
    if not fields:
        return
    suite = project.aux_file(KERNEL_PIN_SUITE)
    pinned = _member_calls(suite) if suite is not None else set()
    for name, line in fields:
        if name not in pinned:
            yield Finding(
                header.rel, line, "kernel-table-unpinned",
                f"KernelTable entry '{name}' is not exercised by the 0-ULP "
                f"equivalence suite ({KERNEL_PIN_SUITE}); every dispatched "
                f"kernel must be bit-compared across SIMD variants")


RULE_KERNEL_PINS = ProjectRule(
    "kernel-table-unpinned",
    "Every KernelTable function pointer (src/tensor/simd.hpp) must be "
    "called by tests/test_simd.cpp, the suite that bit-compares all SIMD "
    "variants at 0 ULP. An unpinned entry could silently diverge per ISA.",
    _check_kernel_pins,
)


def _trainer_declarations(src: SourceFile) -> Dict[str, int]:
    """`train_*` function names declared in an algo header, with the
    line of their first declaration."""
    ts = src.code_tokens
    out: Dict[str, int] = {}
    for i, t in enumerate(ts):
        if (t.kind == "ident" and t.text.startswith("train_")
                and i + 1 < len(ts)
                and ts[i + 1].kind == "punct" and ts[i + 1].text == "("):
            out.setdefault(t.text, t.line)
    return out


def _check_trainer_matrix(project: Project) -> Iterable[Finding]:
    suite = project.aux_file(TRAINER_MATRIX_SUITE)
    covered: Set[str] = set()
    if suite is not None:
        covered = {t.text for t in suite.code_tokens
                   if t.kind == "ident" and t.text.startswith("train_")}
    for src in project.src_files():
        if not src.in_dir("algo") or not src.rel.endswith(".hpp"):
            continue
        for name, line in sorted(_trainer_declarations(src).items()):
            if name not in covered:
                yield Finding(
                    src.rel, line, "trainer-not-in-resume-matrix",
                    f"trainer '{name}' is not exercised by the "
                    f"kill-and-resume matrix ({TRAINER_MATRIX_SUITE}); "
                    f"snapshot/resume must be proven bit-exact for every "
                    f"trainer (or the gap baselined with a rationale)")


RULE_TRAINER_MATRIX = ProjectRule(
    "trainer-not-in-resume-matrix",
    "Every train_* entry point declared under src/algo must appear in "
    "tests/test_snapshot.cpp's kill-and-resume matrix, which proves "
    "crash/resume is bit-exact per trainer.",
    _check_trainer_matrix,
)


_FLAG_READERS = {"get_string", "get_int", "get_double", "get_bool", "has"}
_FLAG_NAME_RE = re.compile(r"[A-Za-z][\w-]*$")


def _flag_reads(src: SourceFile) -> Iterable[Tuple[str, int]]:
    """(flag name, line) for each `<expr>.get_*("name", ...)` or
    `<expr>.has("name")` read of an hm::Flags object. The string-literal
    first argument is what distinguishes a Flags read from unrelated
    has()/get() members (snapshot sections, containers) — those pass
    tags or keys, not quoted flag names."""
    ts = src.code_tokens
    for i, t in enumerate(ts):
        if not (t.kind == "ident" and t.text in _FLAG_READERS
                and i >= 1 and ts[i - 1].kind == "punct"
                and ts[i - 1].text == "."
                and i + 2 < len(ts)
                and ts[i + 1].kind == "punct" and ts[i + 1].text == "("
                and ts[i + 2].kind == "string"):
            continue
        name = string_value(ts[i + 2])
        if _FLAG_NAME_RE.fullmatch(name):
            yield name, t.line


def _documented_flags(project: Project) -> Set[str]:
    docs: Set[str] = set()
    for rel in DOC_FILES:
        text = project.read_text(rel)
        if text is None:
            continue
        docs.update(m.group(1)
                    for m in re.finditer(r"--([A-Za-z][\w-]*)", text))
    return docs


def _check_flag_docs(project: Project) -> Iterable[Finding]:
    documented = _documented_flags(project)
    for src in project.src_files():
        for name, line in _flag_reads(src):
            if name not in documented:
                yield Finding(
                    src.rel, line, "undocumented-flag",
                    f"CLI flag '--{name}' is read here but documented in "
                    f"neither README.md nor DESIGN.md")


RULE_FLAG_DOCS = ProjectRule(
    "undocumented-flag",
    "Every CLI flag read via hm::Flags in src/ must appear as --name in "
    "README.md or DESIGN.md; flags discoverable only from the source are "
    "dead weight to users.",
    _check_flag_docs,
)


ALL_PROJECT_RULES: List[ProjectRule] = [
    RULE_KERNEL_PINS,
    RULE_TRAINER_MATRIX,
    RULE_FLAG_DOCS,
]
