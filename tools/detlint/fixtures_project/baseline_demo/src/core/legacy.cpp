// Mini-project fixture (baseline_demo): a real banned-c-random finding
// that the case's baseline.json accepts with a rationale. The selftest
// asserts zero surviving findings AND exactly one stale baseline entry
// (the second entry in baseline.json matches nothing by design).
#include <cstdlib>

int legacy_roll() {
  return std::rand() % 6;
}
