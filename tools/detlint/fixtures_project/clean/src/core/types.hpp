// Mini-project fixture (clean): layer-0 header with no dependencies.
// The whole case must produce zero findings — it is also the "exit 0"
// scenario of the CLI exit-code selftest.
#pragma once

namespace fixture {
using scalar_t = double;
}  // namespace fixture
