// Mini-project fixture (clean): a layer-1 module including layer 0 —
// a legal downward edge in the layering DAG.
#pragma once

#include "core/types.hpp"

namespace fixture {
inline scalar_t twice(scalar_t x) { return x + x; }
}  // namespace fixture
