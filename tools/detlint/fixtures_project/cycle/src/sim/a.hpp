// Mini-project fixture (cycle): sim and metrics sit in the same layer,
// so each edge is individually legal — but together they form a module
// cycle, which the whole-graph check must reject. The finding anchors
// at the witness edge in the alphabetically smallest module (metrics).
#pragma once
#include "metrics/b.hpp"

namespace fixture {
inline int a_value() { return 1; }
}  // namespace fixture
