// Mini-project fixture (cycle): the other half of the sim <-> metrics
// module cycle; see sim/a.hpp. This include is the witness edge the
// layering-cycle finding anchors on.
// detlint-expect: layering-cycle@+2
#pragma once
#include "sim/a.hpp"

namespace fixture {
inline int b_value() { return 2; }
}  // namespace fixture
