// Mini-project fixture (unregistered_trainer): two trainer entry points,
// of which tests/test_snapshot.cpp exercises only train_alpha in the
// kill-and-resume matrix. train_beta must be flagged at its own line.
#pragma once

namespace fixture {

int train_alpha(int rounds);
// detlint-expect: trainer-not-in-resume-matrix@+1
int train_beta(int rounds);

}  // namespace fixture
