// Mini-project fixture: the kill-and-resume matrix for
// unregistered_trainer. Only train_alpha appears; train_beta is
// deliberately missing so the contract check has something to catch.
#include "algo/trainers.hpp"

int main() {
  return fixture::train_alpha(3) == fixture::train_alpha(3) ? 0 : 1;
}
