// Mini-project fixture: tensor (layer 1) including parallel (layer 2)
// is an upward edge — the layering check must flag the include line.
// detlint-expect: layering-upward-include@+2
#pragma once
#include "parallel/pool.hpp"

namespace fixture {
inline Pool* no_pool() { return nullptr; }
}  // namespace fixture
