// Mini-project fixture (upward_include): the layer-2 header that the
// tensor module below it illegally reaches up to.
#pragma once

namespace fixture {
struct Pool {};
}  // namespace fixture
