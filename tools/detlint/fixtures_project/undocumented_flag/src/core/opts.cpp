// Mini-project fixture (undocumented_flag): two flag reads, of which the
// case README.md documents only --documented-flag. The --mystery-flag
// read must be flagged at its own line.
#include <string>

struct Flags {
  int get_int(const std::string&, int) const { return 0; }
  double get_double(const std::string&, double) const { return 0.0; }
};

int configure(const Flags& flags) {
  int n = flags.get_int("documented-flag", 4);
  // detlint-expect: undocumented-flag@+1
  double d = flags.get_double("mystery-flag", 0.5);
  return n + static_cast<int>(d);
}
