// Mini-project fixture (unpinned_kernel): a KernelTable with two
// dispatched entries, of which tests/test_simd.cpp bit-pins only axpy.
// The gemv field must be flagged as unpinned, at its own line.
#pragma once

namespace fixture {

struct KernelTable {
  void (*axpy)(double, const double*, double*);
  // detlint-expect: kernel-table-unpinned@+1
  void (*gemv)(const double*, const double*, double*);
};

}  // namespace fixture
