// Mini-project fixture: the 0-ULP pin suite for unpinned_kernel. Only
// axpy is exercised; gemv is deliberately absent so the contract check
// has something to catch.
#include "tensor/simd.hpp"

int main() {
  fixture::KernelTable t{};
  double x = 1.0, y = 2.0;
  if (t.axpy) t.axpy(0.5, &x, &y);
  return 0;
}
