"""C++ token-stream lexer for detlint.

Tokenizes C++ the way the rules need to see it: identifiers, numbers
(incl. digit separators and pp-number suffixes), string/char literals
(incl. u8/u/U/L prefixes and raw strings with custom delimiters),
comments, preprocessor directives, and operators/punctuation. The lexer
is deliberately simpler than a compiler front end — no keyword table, no
macro expansion — but it is exact about the three things regex line
scanning never was:

  * phase-2 line splicing: a backslash-newline is removed *before*
    tokenization, so an identifier, a string, a `//` comment, or a
    preprocessor directive can span physical lines — exactly as in
    translation. Every token still reports the physical line/column of
    its first character so findings land where the editor does.
  * raw strings: `R"delim( ... )delim"` bodies are one opaque token, no
    matter what they contain, and the delimiter lookbehind cannot be
    fooled by identifiers that merely end in R (``FMT_R"..."``).
  * recovery: an unterminated string/char literal ends at the newline,
    an unterminated raw string or block comment ends at EOF — the lexer
    never throws and never loses line numbers downstream of the damage.

Tokens never overlap and concatenate (plus whitespace) back to the
spliced input; rules walk the list or the per-line index in
engine.SourceFile.
"""

from __future__ import annotations

import bisect
import re
from typing import List, NamedTuple


class Token(NamedTuple):
    kind: str  # ident|number|string|char|raw_string|header|punct|comment|pp
    text: str  # spelling (post-splice, so it may differ from the file bytes)
    line: int  # 1-based physical line of the token's first character
    col: int   # 1-based physical column of the token's first character


# Multi-character operators, longest first so alternation picks e.g. ``<<=``
# over ``<<`` over ``<``.
_OPERATORS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "##",
]

_MASTER = re.compile(
    r"""
      (?P<ws>[ \t\r\n\f\v]+)
    | (?P<line_comment>//[^\n]*)
    | (?P<block_comment>/\*.*?(?:\*/|\Z))
    | (?P<raw_open>(?:u8|[uUL])?R"(?P<raw_delim>[^\s()\\"]{0,16})\()
    | (?P<string>(?:u8|[uUL])?"(?:[^"\\\n]|\\.)*(?:"|(?=\n)|\Z))
    | (?P<char>(?:u8|[uUL])?'(?:[^'\\\n]|\\.)*(?:'|(?=\n)|\Z))
    | (?P<number>\.?[0-9](?:'[0-9A-Za-z_]|[eEpP][+-]|[0-9A-Za-z_.])*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct>%s|[^\sA-Za-z_0-9])
    """ % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)

_SPLICE = re.compile(r"\\\r?\n")
_HEADER = re.compile(r"<[^>\n]*>?")


def _splice(text: str):
    """Remove backslash-newline splices.

    Returns (spliced_text, anchors) where anchors is an ascending list of
    (spliced_offset, original_offset) pairs: the original offset of any
    spliced position is recovered from the nearest anchor at or before it.
    """
    parts: List[str] = []
    anchors = [(0, 0)]
    pos = 0
    out_len = 0
    for m in _SPLICE.finditer(text):
        seg = text[pos:m.start()]
        parts.append(seg)
        out_len += len(seg)
        pos = m.end()
        anchors.append((out_len, pos))
    parts.append(text[pos:])
    return "".join(parts), anchors


class _LineMap:
    """Maps spliced offsets back to physical (line, col) in the original."""

    def __init__(self, original: str, anchors):
        self._anchors = anchors
        self._spliced_offsets = [a[0] for a in anchors]
        self._line_starts = [0]
        for i, c in enumerate(original):
            if c == "\n":
                self._line_starts.append(i + 1)

    def location(self, spliced_offset: int):
        i = bisect.bisect_right(self._spliced_offsets, spliced_offset) - 1
        sp, orig = self._anchors[i]
        orig_offset = orig + (spliced_offset - sp)
        line_idx = bisect.bisect_right(self._line_starts, orig_offset) - 1
        return line_idx + 1, orig_offset - self._line_starts[line_idx] + 1


def tokenize(text: str) -> List[Token]:
    """Lex `text` into a token list. Never raises on malformed input."""
    spliced, anchors = _splice(text)
    lmap = _LineMap(text, anchors)
    tokens: List[Token] = []
    i, n = 0, len(spliced)
    at_line_start = True  # logical-line start: a '#' here opens a directive
    while i < n:
        m = _MASTER.match(spliced, i)
        if m is None:  # unreachable: punct matches any non-space char
            i += 1
            continue
        kind = m.lastgroup
        txt = m.group(0)
        line, col = lmap.location(i)
        if kind == "ws":
            if "\n" in txt:
                at_line_start = True
            i = m.end()
            continue
        if kind == "raw_open":
            # Hunt for the matching )delim" — to EOF if absent (recovery).
            terminator = ")" + m.group("raw_delim") + '"'
            end = spliced.find(terminator, m.end())
            end = n if end == -1 else end + len(terminator)
            tokens.append(Token("raw_string", spliced[i:end], line, col))
            i = end
            at_line_start = False
            continue
        if kind == "line_comment" or kind == "block_comment":
            tokens.append(Token("comment", txt, line, col))
            # A block comment containing a newline leaves us at the start
            # of a fresh logical line; a line comment always does.
            if kind == "line_comment" or "\n" in txt:
                at_line_start = True
            i = m.end()
            continue
        if kind == "punct" and txt == "#" and at_line_start:
            # Preprocessor directive: emit one `pp` token whose text is
            # the directive name ("include", "pragma", ...). The rest of
            # the directive lexes as ordinary tokens, except an
            # #include <header>, whose operand is one `header` token.
            j = m.end()
            while j < n and spliced[j] in " \t":
                j += 1
            dm = re.match(r"[A-Za-z_]\w*", spliced[j:])
            if dm:
                name = dm.group(0)
                tokens.append(Token("pp", name, line, col))
                i = j + len(name)
                if name == "include":
                    k = i
                    while k < n and spliced[k] in " \t":
                        k += 1
                    hm_ = _HEADER.match(spliced, k)
                    if hm_:
                        hline, hcol = lmap.location(k)
                        tokens.append(
                            Token("header", hm_.group(0), hline, hcol))
                        i = hm_.end()
                at_line_start = False
                continue
            # '#' with no name (null directive) falls through as punct.
        tokens.append(Token(kind, txt, line, col))
        at_line_start = False
        i = m.end()
    return tokens


def string_value(tok: Token) -> str:
    """Literal contents of a string/char/raw_string token (no escape
    decoding — detlint only matches names, never binary payloads)."""
    t = tok.text
    if tok.kind == "raw_string":
        open_quote = t.index('"')
        delim = t[open_quote + 1:t.index("(", open_quote)]
        body_start = t.index("(", open_quote) + 1
        closer = ")" + delim + '"'
        return t[body_start:-len(closer)] if t.endswith(closer) \
            else t[body_start:]
    for prefix in ("u8", "u", "U", "L"):
        if t.startswith(prefix):
            t = t[len(prefix):]
            break
    if len(t) >= 2 and t[0] in "\"'" and t[-1] == t[0]:
        return t[1:-1]
    return t[1:] if t and t[0] in "\"'" else t  # unterminated recovery
