"""Include-graph extraction and layering-DAG enforcement.

The repo's modules form a declared layering (DESIGN.md §12):

    layer 0   core
    layer 1   rng, tensor
    layer 2   parallel, nn, data
    layer 3   sim, io, metrics
    layer 4   net
    layer 5   algo

A module may include its own layer and anything below; an include of a
*higher* layer is an upward edge and fails the lint (that boundary is
what lets layers be swapped out independently — the `net` transport
backend of ROADMAP item 1 slots in below algo without touching trainers,
and `net` is the only module allowed to touch raw sockets/fork/poll:
the raw-transport-syscall rule in rules.py enforces that side). Edges
inside one layer are allowed individually but must stay acyclic: the
module graph as a whole is checked for cycles, so two layer-3 modules
cannot quietly grow a mutual dependency either.

Project-local includes are recognized by their quoted, module-qualified
form (`#include "sim/fault.hpp"` — the repo's only include style);
system includes in angle brackets are outside the layering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .engine import Finding, Project, ProjectRule, SourceFile

# The declared layering. Order inside a layer is irrelevant.
LAYERS: List[List[str]] = [
    ["core"],
    ["rng", "tensor", "obs"],
    ["parallel", "nn", "data"],
    ["sim", "io", "metrics"],
    ["net"],
    ["algo"],
]

LAYER_OF: Dict[str, int] = {
    mod: i for i, layer in enumerate(LAYERS) for mod in layer
}


class IncludeEdge:
    """One project-local include directive: from_file (src-relative)
    includes to_path (src-relative) at `line`."""

    def __init__(self, from_file: str, from_module: str,
                 to_path: str, to_module: str, line: int):
        self.from_file = from_file
        self.from_module = from_module
        self.to_path = to_path
        self.to_module = to_module
        self.line = line


def local_includes(src: SourceFile) -> Iterable[Tuple[str, int]]:
    """Yield (included path, line) for each quoted project-local include
    whose path starts with a known or plausible module directory."""
    ts = src.code_tokens
    for i, t in enumerate(ts):
        if t.kind != "pp" or t.text != "include":
            continue
        if i + 1 >= len(ts):
            continue
        operand = ts[i + 1]
        if operand.kind == "string":
            path = operand.text.strip('"')
            if "/" in path:
                yield path, t.line


def build_include_graph(project: Project) -> List[IncludeEdge]:
    edges: List[IncludeEdge] = []
    for src in project.src_files():
        mod = src.module()
        if mod is None:
            continue
        for path, line in local_includes(src):
            to_module = path.split("/", 1)[0]
            edges.append(IncludeEdge(src.rel, mod, path, to_module, line))
    return edges


def module_graph(edges: List[IncludeEdge]) -> Dict[str, Dict[str, IncludeEdge]]:
    """Collapse file-level edges to module level; keeps one witness edge
    (the first in walk order) per module pair, self-edges dropped."""
    graph: Dict[str, Dict[str, IncludeEdge]] = {}
    for e in edges:
        if e.from_module == e.to_module:
            continue
        graph.setdefault(e.from_module, {})
        if e.to_module not in graph[e.from_module]:
            graph[e.from_module][e.to_module] = e
    return graph


def find_cycles(graph: Dict[str, Dict[str, IncludeEdge]]) -> List[List[str]]:
    """All elementary cycles in the module graph, each normalized to
    start at its alphabetically smallest module. Deterministic order."""
    cycles: List[List[str]] = []
    seen = set()

    def dfs(start: str, node: str, path: List[str], on_path: set):
        for succ in sorted(graph.get(node, {})):
            if succ == start:
                # Normalize: rotate so the smallest module leads.
                k = path.index(min(path))
                cyc = path[k:] + path[:k]
                key = tuple(cyc)
                if key not in seen:
                    seen.add(key)
                    cycles.append(cyc)
            elif succ > start and succ not in on_path:
                on_path.add(succ)
                dfs(start, succ, path + [succ], on_path)
                on_path.discard(succ)

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    cycles.sort()
    return cycles


def _check_layering(project: Project) -> Iterable[Finding]:
    edges = build_include_graph(project)

    # Unknown modules: an include into (or a file inside) a directory the
    # DAG does not declare means the layering is out of date — fail
    # loudly rather than silently skipping the edge.
    for src in project.src_files():
        mod = src.module()
        if mod is not None and mod not in LAYER_OF:
            yield Finding(
                src.rel, 1, "layering-unknown-module",
                f"module '{mod}' is not in the declared layering DAG; add "
                f"it to tools/detlint/graph.py LAYERS (and DESIGN.md §12)")
    for e in edges:
        if e.from_module in LAYER_OF and e.to_module not in LAYER_OF:
            yield Finding(
                e.from_file, e.line, "layering-unknown-module",
                f"include of '{e.to_path}': module '{e.to_module}' is not "
                f"in the declared layering DAG")

    # Upward includes.
    for e in edges:
        lf = LAYER_OF.get(e.from_module)
        lt = LAYER_OF.get(e.to_module)
        if lf is None or lt is None:
            continue
        if lt > lf:
            yield Finding(
                e.from_file, e.line, "layering-upward-include",
                f"'{e.from_module}' (layer {lf}) includes '{e.to_path}' "
                f"from '{e.to_module}' (layer {lt}); the declared layering "
                f"is core <- rng/tensor <- parallel/nn/data <- "
                f"sim/io/metrics <- net <- algo")

    # Cycles over the whole module graph (covers same-layer cycles the
    # upward check cannot see).
    graph = module_graph(edges)
    for cyc in find_cycles(graph):
        witness = graph[cyc[0]][cyc[1 % len(cyc)]]
        chain = " -> ".join(cyc + [cyc[0]])
        yield Finding(
            witness.from_file, witness.line, "layering-cycle",
            f"module include cycle {chain}; break the cycle or move the "
            f"shared piece into a lower layer")


RULE_LAYERING = ProjectRule(
    "layering",
    "Include-graph layering: enforces the declared module DAG "
    "(core <- rng/tensor <- parallel/nn/data <- sim/io/metrics <- net "
    "<- algo) over all of src/ — no upward includes, no module cycles, no "
    "undeclared modules. Emits layering-upward-include, layering-cycle, "
    "and layering-unknown-module findings.",
    _check_layering,
    finding_names=["layering-upward-include", "layering-cycle",
                   "layering-unknown-module"],
)
