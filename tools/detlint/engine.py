"""detlint engine: token-stream source model, suppression scoping, file
walking, project context for whole-project rules, and the selftest
harnesses (lexer unit tests, per-file fixtures, mini-project fixtures).

v2 replaces the comment-stripped regex lines of the original engine with
the real lexer in lexer.py: rules receive token streams (per file and
per line), so identifier matching is exact, raw strings and line
continuations cannot desynchronize line numbers, and structural rules
(brace matching, template-argument skipping) stop being regex
approximations.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from .lexer import Token, tokenize

# .inc is walked too: kernels_impl.inc is real compiled code (textually
# included by the per-ISA kernel TUs) and must obey the same rules.
CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h", ".inc"}

SUPPRESS_RE = re.compile(r"detlint:\s*allow\(\s*([\w.,\- ]+?)\s*\)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line (1-based)."""

    path: str  # path relative to the lint root, posix separators
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


class SourceFile:
    """A lexed C++ source file as seen by rules.

    `tokens` is the full stream including comments; `code_tokens` drops
    comments (what most rules walk). `code_by_line` indexes code tokens
    by physical line for line-local matching.
    """

    def __init__(self, root: Path, path: Path, text: Optional[str] = None):
        self.abs_path = path
        self.rel = path.relative_to(root).as_posix()
        if text is None:
            text = path.read_text(encoding="utf-8", errors="replace")
        self.text = text
        self.raw_lines = text.splitlines()
        self.tokens: List[Token] = tokenize(text)
        self.code_tokens: List[Token] = [
            t for t in self.tokens if t.kind != "comment"
        ]
        self.code_by_line: Dict[int, List[Token]] = {}
        for t in self.code_tokens:
            self.code_by_line.setdefault(t.line, []).append(t)
        self._suppressed = self._collect_suppressions()

    def _collect_suppressions(self) -> Dict[int, Set[str]]:
        """Map line number -> rule names allowed on that line.

        Scoping is deliberately tight (one marker, one line):
          * a *trailing* marker — a comment on a line that also carries
            code — covers only its own line;
          * a *whole-line* comment marker covers only the line directly
            below it (stacking another comment in between breaks the
            link on purpose: the marker must sit on the finding).
        """
        allowed: Dict[int, Set[str]] = {}
        for tok in self.tokens:
            if tok.kind != "comment":
                continue
            for offset, comment_line in enumerate(tok.text.split("\n")):
                m = SUPPRESS_RE.search(comment_line)
                if not m:
                    continue
                rules = {r.strip() for r in m.group(1).split(",")
                         if r.strip()}
                marker_line = tok.line + offset
                if self.code_by_line.get(marker_line):
                    target = marker_line          # trailing marker
                else:
                    target = marker_line + 1      # whole-line comment
                allowed.setdefault(target, set()).update(rules)
        return allowed

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self._suppressed.get(line, set())

    def in_dir(self, *prefixes: str) -> bool:
        """True if the file lives under any of the given root-relative
        directory prefixes (posix, e.g. "algo", "sim")."""
        return any(
            self.rel == p or self.rel.startswith(p + "/") for p in prefixes
        )

    def module(self) -> Optional[str]:
        """Top-level directory under the lint root ("tensor", "algo", ...),
        or None for files sitting directly in the root."""
        if "/" not in self.rel:
            return None
        return self.rel.split("/", 1)[0]


class Rule:
    """A named check over one SourceFile."""

    def __init__(self, name: str, description: str,
                 check: Callable[[SourceFile], Iterable[Finding]]):
        self.name = name
        self.description = description
        self._check = check

    def apply(self, f: SourceFile) -> List[Finding]:
        return [
            fi for fi in self._check(f) if not f.is_suppressed(fi.line, fi.rule)
        ]


class ProjectRule:
    """A named whole-project analysis (include graph, cross-file
    contracts). Receives a Project, yields findings anchored at the
    source line that owns the obligation; inline suppressions on that
    line apply exactly as for per-file rules."""

    def __init__(self, name: str, description: str,
                 check: Callable[["Project"], Iterable[Finding]],
                 finding_names: Optional[Sequence[str]] = None):
        self.name = name
        self.description = description
        self._check = check
        # Rule names this analysis may emit (an analysis like `layering`
        # fans out into several finding kinds); used by the selftest's
        # known-rule set and --list-rules.
        self.finding_names = list(finding_names) if finding_names else [name]

    def apply(self, project: "Project") -> List[Finding]:
        out = []
        for fi in self._check(project):
            src = project.src_file(fi.path)
            if src is not None and src.is_suppressed(fi.line, fi.rule):
                continue
            out.append(fi)
        return out


class Project:
    """Filesystem context for whole-project rules.

    `src_root` is the C++ tree the per-file rules walk (normally
    <root>/src); `root` is the project root that anchors the cross-file
    contract artifacts (tests/, README.md, DESIGN.md). Files are lexed
    lazily and cached — several project rules share the same anchors.
    """

    def __init__(self, root: Path, src_root: Optional[Path] = None):
        self.root = root
        self.src_root = src_root if src_root is not None else root / "src"
        self._cache: Dict[Path, Optional[SourceFile]] = {}

    def src_files(self) -> List[SourceFile]:
        return [f for f in (self.src_file_at(p)
                            for p in iter_source_files(self.src_root))
                if f is not None]

    def src_file_at(self, path: Path) -> Optional[SourceFile]:
        return self._load(path, self.src_root)

    def src_file(self, rel: str) -> Optional[SourceFile]:
        return self._load(self.src_root / rel, self.src_root)

    def aux_file(self, rel: str) -> Optional[SourceFile]:
        """Lex a file outside the lint root (e.g. tests/test_simd.cpp),
        relative to the project root. None if absent."""
        return self._load(self.root / rel, self.root)

    def read_text(self, rel: str) -> Optional[str]:
        path = self.root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8", errors="replace")

    def _load(self, path: Path, root: Path) -> Optional[SourceFile]:
        key = path.resolve()
        if key not in self._cache:
            self._cache[key] = (SourceFile(root, path)
                                if path.is_file() else None)
        return self._cache[key]


def iter_source_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*")):
        if path.is_file() and path.suffix in CXX_SUFFIXES:
            yield path


def run_lint(root: Path, rules: Sequence[Rule],
             files: Optional[Sequence[Path]] = None,
             project: Optional[Project] = None,
             project_rules: Sequence[ProjectRule] = ()) -> List[Finding]:
    """Lint every C++ file under `root` (or the explicit file list) with
    the per-file rules, then run the whole-project rules if a Project is
    given. `files` narrows only the per-file pass (diff-aware mode):
    project analyses are global by nature and always see everything."""
    findings: List[Finding] = []
    paths = list(files) if files is not None else list(iter_source_files(root))
    for path in paths:
        src = (project.src_file_at(path) if project is not None
               else SourceFile(root, path))
        if src is None:
            continue
        for rule in rules:
            findings.extend(rule.apply(src))
    if project is not None:
        for prule in project_rules:
            findings.extend(prule.apply(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def findings_to_json(findings: Sequence[Finding], *, root: str,
                     baselined: Sequence[Finding] = (),
                     stale_baseline: Sequence[dict] = ()) -> str:
    doc = {
        "tool": "detlint",
        "schema_version": 2,
        "root": root,
        "findings": [f.to_json() for f in findings],
        "baselined": [f.to_json() for f in baselined],
        "stale_baseline": list(stale_baseline),
        "counts": {
            "findings": len(findings),
            "baselined": len(baselined),
            "stale_baseline": len(stale_baseline),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)


# ---------------------------------------------------------------------------
# Selftest.
#
# Three tiers, all driven from run_selftest():
#   1. lexer unit tests (selftest_lexer.py) — raw strings, prefixes,
#      digit separators, splices, recovery; line numbers must survive.
#   2. per-file fixtures under fixtures/: each declares the rules it
#      must trigger with `// detlint-expect: rule` headers; `rule@N`
#      pins the finding to absolute line N, `rule@+N` to N lines below
#      the expectation comment itself. A fixture with no expectations
#      must lint clean.
#   3. mini-project fixtures under fixtures_project/<case>/: a full
#      project lint (per-file rules over <case>/src plus every project
#      rule) whose findings must exactly satisfy the detlint-expect
#      declarations collected from the case's C++ files. A case may ship
#      a baseline.json to prove the baseline workflow end to end.

EXPECT_RE = re.compile(r"//\s*detlint-expect:\s*([\w\-]+)(@\+?\d+)?")


@dataclasses.dataclass
class _Expectation:
    rel: str
    rule: str
    line: Optional[int]  # None = anywhere in this file

    def claims(self, f: Finding) -> bool:
        return (f.path == self.rel and f.rule == self.rule
                and (self.line is None or f.line == self.line))

    def render(self) -> str:
        where = f" at line {self.line}" if self.line is not None else ""
        return f"[{self.rule}]{where}"


def _collect_expectations(root: Path, path: Path) -> List[_Expectation]:
    rel = path.relative_to(root).as_posix()
    out: List[_Expectation] = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in EXPECT_RE.finditer(line):
            rule, anchor = m.group(1), m.group(2)
            if anchor is None:
                out.append(_Expectation(rel, rule, None))
            elif anchor.startswith("@+"):
                out.append(_Expectation(rel, rule, lineno + int(anchor[2:])))
            else:
                out.append(_Expectation(rel, rule, int(anchor[1:])))
    return out


def _match_expectations(rel_label: str, expected: List[_Expectation],
                        findings: List[Finding], known_rules: Set[str],
                        errors: List[str]) -> None:
    unknown = {e.rule for e in expected} - known_rules
    if unknown:
        errors.append(f"{rel_label}: expects unknown rule(s) {sorted(unknown)}")
        return
    for e in expected:
        if not any(e.claims(f) for f in findings):
            errors.append(
                f"{rel_label}: expected {e.render()} in {e.rel}, "
                f"it did not fire")
    for f in findings:
        if not any(e.claims(f) for e in expected):
            errors.append(
                f"{rel_label}: unexpected finding {f.render()}")


def run_selftest(fixtures_root: Path, rules: Sequence[Rule],
                 project_rules: Sequence[ProjectRule] = (),
                 fixtures_project_root: Optional[Path] = None) -> List[str]:
    """Returns a list of selftest failure messages (empty = pass)."""
    from . import baseline as baseline_mod
    from . import selftest_lexer

    errors: List[str] = list(selftest_lexer.run())

    known = {r.name for r in rules}
    for pr in project_rules:
        known.update(pr.finding_names)

    # Tier 2: per-file fixtures.
    fixture_files = list(iter_source_files(fixtures_root))
    if not fixture_files:
        errors.append(f"no fixture files found under {fixtures_root}")
    for path in fixture_files:
        rel = path.relative_to(fixtures_root).as_posix()
        expected = _collect_expectations(fixtures_root, path)
        findings = run_lint(fixtures_root, rules, files=[path])
        _match_expectations(rel, expected, findings, known, errors)

    # Tier 3: mini-project fixtures.
    if fixtures_project_root is not None and fixtures_project_root.is_dir():
        for case_dir in sorted(p for p in fixtures_project_root.iterdir()
                               if p.is_dir()):
            case = case_dir.name
            src_root = case_dir / "src"
            if not src_root.is_dir():
                errors.append(f"{case}: mini-project has no src/ tree")
                continue
            project = Project(case_dir, src_root)
            findings = run_lint(src_root, rules, project=project,
                                project_rules=project_rules)
            expected: List[_Expectation] = []
            for path in iter_source_files(src_root):
                expected.extend(_collect_expectations(src_root, path))
            baseline_path = case_dir / "baseline.json"
            if baseline_path.is_file():
                baseline = baseline_mod.Baseline.load(baseline_path)
                findings, baselined, stale = baseline.apply(findings)
                want_stale = baseline.selftest_expect_stale
                if want_stale is not None and len(stale) != want_stale:
                    errors.append(
                        f"{case}: expected {want_stale} stale baseline "
                        f"entr{'y' if want_stale == 1 else 'ies'}, "
                        f"got {len(stale)}")
            _match_expectations(case, expected, findings, known, errors)

    return errors
