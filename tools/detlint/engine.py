"""detlint engine: file walking, C++ comment/string stripping, suppression
handling, and the selftest harness.

The stripper is deliberately small: it understands //, /* */, character
and string literals, and raw strings R"delim(...)delim" — enough to keep
rules from firing on prose like "rand" in a comment.  Stripped regions
are replaced with spaces so line numbers and column positions survive.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h"}

SUPPRESS_RE = re.compile(r"detlint:\s*allow\(\s*([\w.,\- ]+?)\s*\)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line (1-based)."""

    path: str  # path relative to the lint root, posix separators
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """A parsed C++ source file as seen by rules.

    `raw_lines` is the file verbatim (used for suppression comments and
    pragma checks); `code_lines` has comments and string/char literal
    contents blanked out, so regex rules match only real code.
    """

    def __init__(self, root: Path, path: Path):
        self.abs_path = path
        self.rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.splitlines()
        self.code_lines = strip_comments_and_strings(text).splitlines()
        # Pad in case the file ends without newline asymmetrically.
        while len(self.code_lines) < len(self.raw_lines):
            self.code_lines.append("")
        self._suppressed = self._collect_suppressions()

    def _collect_suppressions(self) -> dict:
        """Map line number -> set of rule names allowed on that line."""
        allowed = {}
        for i, line in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            # A marker covers its own line and the line below, so both
            # trailing comments and whole-line comments above work.
            allowed.setdefault(i, set()).update(rules)
            allowed.setdefault(i + 1, set()).update(rules)
        return allowed

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self._suppressed.get(line, set())

    def in_dir(self, *prefixes: str) -> bool:
        """True if the file lives under any of the given root-relative
        directory prefixes (posix, e.g. "algo", "sim")."""
        return any(
            self.rel == p or self.rel.startswith(p + "/") for p in prefixes
        )


def strip_comments_and_strings(text: str) -> str:
    """Blank out comment bodies and string/char literal contents.

    Newlines are preserved everywhere so line numbers are stable; the
    delimiters themselves ("", '', //) are blanked too — rules never need
    them and keeping them would let `"//"` confuse later states.
    """
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string?  Look back for R / u8R / LR / uR / UR. The
                # prefix must not be the tail of a longer identifier
                # (`MY_STR_R"..."` is an ordinary literal, not a raw one),
                # so require a non-identifier char — or start of file —
                # immediately before it.
                m = re.search(r'(?:\A|[^0-9A-Za-z_])(?:u8|[uUL])?R$',
                              text[max(0, i - 4):i])
                if m:
                    m2 = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                    if m2:
                        raw_terminator = ")" + m2.group(1) + '"'
                        state = RAW
                        out.append(" " * (len(m2.group(0))))
                        i += len(m2.group(0))
                        continue
                state = STRING
                out.append(" ")
                i += 1
            elif c == "'":
                state = CHAR
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\":
                out.append("  " if nxt != "\n" else " \n")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(" ")
                i += 1
            elif c == "\n":  # unterminated; bail to NORMAL to stay sane
                state = NORMAL
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # RAW
            if text.startswith(raw_terminator, i):
                state = NORMAL
                out.append(" " * len(raw_terminator))
                i += len(raw_terminator)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


class Rule:
    """A named check over one SourceFile."""

    def __init__(self, name: str, description: str,
                 check: Callable[[SourceFile], Iterable[Finding]]):
        self.name = name
        self.description = description
        self._check = check

    def apply(self, f: SourceFile) -> List[Finding]:
        return [
            fi for fi in self._check(f) if not f.is_suppressed(fi.line, fi.rule)
        ]


def iter_source_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*")):
        if path.is_file() and path.suffix in CXX_SUFFIXES:
            yield path


def run_lint(root: Path, rules: Sequence[Rule],
             files: Optional[Sequence[Path]] = None) -> List[Finding]:
    """Lint every C++ file under `root` (or the explicit file list)."""
    findings: List[Finding] = []
    paths = list(files) if files is not None else list(iter_source_files(root))
    for path in paths:
        src = SourceFile(root, path)
        for rule in rules:
            findings.extend(rule.apply(src))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Selftest: fixtures under tools/detlint/fixtures/ mirror the src/ layout
# (rules scoped to src/algo etc. see the same relative paths).  Each
# fixture declares the rules it must trigger with `// detlint-expect:
# rule` header lines; a fixture with no expectations must lint clean.

EXPECT_RE = re.compile(r"//\s*detlint-expect:\s*([\w\-]+)")


def run_selftest(fixtures_root: Path, rules: Sequence[Rule]) -> List[str]:
    """Returns a list of selftest failure messages (empty = pass)."""
    errors: List[str] = []
    fixture_files = list(iter_source_files(fixtures_root))
    if not fixture_files:
        return [f"no fixture files found under {fixtures_root}"]
    for path in fixture_files:
        rel = path.relative_to(fixtures_root).as_posix()
        expected = set(EXPECT_RE.findall(path.read_text(encoding="utf-8")))
        unknown = expected - {r.name for r in rules}
        if unknown:
            errors.append(f"{rel}: expects unknown rule(s) {sorted(unknown)}")
            continue
        got = {f.rule for f in run_lint(fixtures_root, rules, files=[path])}
        missing = expected - got
        surplus = got - expected
        for rule in sorted(missing):
            errors.append(f"{rel}: expected [{rule}] to fire, it did not")
        for rule in sorted(surplus):
            errors.append(f"{rel}: [{rule}] fired unexpectedly")
    return errors
