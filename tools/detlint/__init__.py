"""detlint — the repo's determinism / convention lint.

The headline guarantee of this codebase is bit-exact, thread-count-
invariant reproduction of HierMinimax and its baselines.  That guarantee
is easy to break silently: one iteration over a std::unordered_map, one
wall-clock seed, one std::reduce, and results differ between runs or
hosts while every functional test still passes.  detlint machine-checks
the conventions that keep the guarantee true.

Entry point: scripts/lint.py (also registered as the `determinism_lint`
ctest).  Rule definitions live in rules.py; the file walking, C++
comment/string stripping, and suppression handling live in engine.py.

Suppressions: a finding is suppressed when the offending line or the
line directly above carries a comment `detlint: allow(<rule>) — reason`.
Every suppression is deliberate and reviewable with `git grep 'detlint:'`.
"""

from .engine import Finding, SourceFile, run_lint, run_selftest  # noqa: F401
from .rules import ALL_RULES  # noqa: F401
