"""detlint — the repo's project-aware static analysis framework.

The headline guarantee of this codebase is bit-exact, thread-count-
invariant reproduction of HierMinimax and its baselines.  That guarantee
is easy to break silently: one iteration over a std::unordered_map, one
wall-clock seed, one std::reduce, and results differ between runs or
hosts while every functional test still passes.  detlint machine-checks
the conventions that keep the guarantee true — and, since v2, the
invariants that span translation units: the module layering DAG, the
KernelTable <-> 0-ULP-pin contract, the trainer <-> resume-matrix
contract, and CLI-flag documentation.

Layout:
  lexer.py          C++ token-stream lexer (raw strings, prefixes, digit
                    separators, line splices, unterminated recovery)
  engine.py         SourceFile/Project model, suppression scoping,
                    selftest harnesses
  rules.py          the eleven per-file rules, as token matchers
  graph.py          include-graph extraction + layering DAG enforcement
  contracts.py      cross-file contract checks
  baseline.py       checked-in accepted-findings ledger (baseline.json)
  selftest_lexer.py lexer unit tests
  fixtures/         per-file rule fixtures (detlint-expect headers)
  fixtures_project/ mini-project fixtures for the whole-project analyses

Entry point: scripts/lint.py (also registered as the `determinism_lint`
ctest, with `determinism_lint_selftest` and `determinism_lint_exitcodes`
guarding the harness itself).

Suppressions: a finding is suppressed when the offending line carries a
trailing comment `detlint: allow(<rule>) — reason`, or when the line
directly above is a whole-line comment with the marker. One marker, one
line — see DESIGN.md §12 for etiquette. Every suppression is deliberate
and reviewable with `git grep 'detlint:'`.
"""

from .baseline import Baseline, write_baseline  # noqa: F401
from .contracts import ALL_PROJECT_RULES as CONTRACT_RULES  # noqa: F401
from .engine import (  # noqa: F401
    Finding, Project, ProjectRule, Rule, SourceFile, findings_to_json,
    run_lint, run_selftest,
)
from .graph import RULE_LAYERING  # noqa: F401
from .rules import ALL_RULES  # noqa: F401

ALL_PROJECT_RULES = [RULE_LAYERING] + list(CONTRACT_RULES)
