// Fixture: float arithmetic inside src/tensor must fire (kernels compute
// in scalar_t = double; a float temporary narrows the result).
// detlint-expect: float-narrowing-in-kernel

namespace fixture {

inline double bad_dot(const double* x, const double* y, long n) {
  float acc = 0.0f;  // narrows every partial sum
  for (long i = 0; i < n; ++i) acc += static_cast<float>(x[i] * y[i]);
  return acc;
}

}  // namespace fixture
