// Fixture: src/tensor is the one place ISA-specific SIMD is legal (the
// dispatch layer lives there and every variant is oracle-checked), so
// the same tokens that fire elsewhere must stay silent here. No
// detlint-expect lines: this file must lint clean.
#include <immintrin.h>

namespace fixture {

inline double allowed_kernel_sum(const double* x, long n) {
  __m256d acc = _mm256_setzero_pd();
  for (long i = 0; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

}  // namespace fixture
