// Fixture: observability hooks inside src/tensor must fire — both the
// HM_OBS_* macro form and a direct hm::obs:: call. Kernel work is
// attributed from the calling layer (trainers / sim / thread pool).
// detlint-expect: obs-in-kernel@+6
// detlint-expect: obs-in-kernel@+12

namespace fixture {

inline double bad_dot(const double* x, const double* y, long n) {
  HM_OBS_INC("tensor.dot_calls");  // hook on the hottest loop
  double acc = 0.0;
  for (long i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

inline void bad_publish(long n) {
  obs::registry();  // qualified obs call, equally banned here
  (void)n;
}

// A local identifier merely *containing* obs must not fire.
inline long obs_count_like(long observations) { return observations; }

}  // namespace fixture
