// Fixture: hardware entropy, C PRNG, and wall-clock seeding must all fire.
// detlint-expect: banned-random-device
// detlint-expect: banned-c-random
// detlint-expect: banned-wall-clock
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline unsigned bad_seed() {
  std::random_device rd;
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  auto wall = std::chrono::system_clock::now().time_since_epoch().count();
  return rd() + static_cast<unsigned>(std::rand()) +
         static_cast<unsigned>(wall);
}

}  // namespace fixture
