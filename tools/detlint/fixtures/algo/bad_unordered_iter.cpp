// Fixture: iterating hash containers in src/algo must fire; keyed lookup
// and a suppressed iteration must not add extra findings beyond the rule.
// detlint-expect: unordered-iteration
#include <unordered_map>
#include <unordered_set>

namespace fixture {

inline double bad_weight_sum(
    const std::unordered_map<int, double>& weights) {
  double s = 0;
  for (const auto& [client, w] : weights) s += w;  // order-dependent sum
  return s;
}

inline int bad_explicit_iter(const std::unordered_set<int>& ids) {
  int n = 0;
  for (auto it = ids.begin(); it != ids.end(); ++it) n += *it;
  return n;
}

inline double ok_lookup(const std::unordered_map<int, double>& weights) {
  return weights.count(0) ? weights.at(0) : 0.0;
}

inline int ok_suppressed(const std::unordered_set<int>& ids) {
  int n = 0;
  // Size-only fold, order-invariant. detlint: allow(unordered-iteration)
  for (int id : ids) n += (id ? 1 : 1);
  return n;
}

}  // namespace fixture
