// Fixture: ISA-specific SIMD outside src/tensor must fire — the
// intrinsics header, the vector type, and the intrinsic call each count.
// detlint-expect: raw-simd-outside-tensor
#include <immintrin.h>

namespace fixture {

inline double bad_hand_vectorized_sum(const double* x, long n) {
  __m256d acc = _mm256_setzero_pd();
  for (long i = 0; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

}  // namespace fixture
