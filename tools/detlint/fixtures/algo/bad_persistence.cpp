// Fixture: durable writes outside src/io must fire direct-persistence;
// a suppressed write must not.
// detlint-expect: direct-persistence
#include <cstdio>
#include <fstream>
#include <string>

namespace fixture {

inline void bad_raw_stream(const std::string& path) {
  std::ofstream out(path, std::ios::binary);  // torn on crash, no checksum
  out << 1.0;
}

inline void bad_c_stdio(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f) std::fclose(f);
}

inline void bad_rename(const std::string& a, const std::string& b) {
  std::rename(a.c_str(), b.c_str());
}

inline void ok_suppressed(const std::string& path) {
  // Debug-only dump, never reloaded. detlint: allow(direct-persistence)
  std::ofstream out(path);
  out << "scratch";
}

}  // namespace fixture
