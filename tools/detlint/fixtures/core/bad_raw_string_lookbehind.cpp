// Fixture: raw-string lookbehind regression. FMT_R is an ordinary
// identifier, so the literal after it is a plain string — the stripper
// must not enter raw-string mode (which would hunt for a `)"` terminator
// and swallow the rest of the file, hiding the banned call below).
// detlint-expect: banned-c-random
#include <cstdlib>

namespace fixture {

#define FMT_R "%d"
inline const char* kNotRaw = FMT_R"(open paren, no close paren";

// A genuine raw string still strips: its prose contents must not fire,
// and scanning resumes after the matching delimiter.
inline const char* kRaw = R"lint(calling rand() here is just prose)lint";

inline int bad() { return std::rand(); }

}  // namespace fixture
