// Fixture: suppression scoping is one marker, one line.
//   * a trailing marker covers ONLY its own line — not the next one;
//   * a whole-line comment marker covers ONLY the line directly below.
// The unsuppressed calls are pinned to exact lines (rule@+N) so a
// regression back to "a marker also covers the next line" fails loudly.
// detlint-expect: banned-c-random@+7
// detlint-expect: banned-c-random@+10
#include <cstdlib>

namespace fixture {

inline int covered_trailing() { return std::rand(); }  // detlint: allow(banned-c-random) — scoping fixture
inline int line_after_trailing_marker() { return std::rand(); }

// detlint: allow(banned-c-random) — whole-line marker covers the next line only
inline int covered_by_whole_line() { return std::rand(); }
inline int two_lines_below_whole_line() { return std::rand(); }

}  // namespace fixture
