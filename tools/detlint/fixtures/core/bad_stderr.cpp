// Fixture: raw stderr writes outside src/core/log must fire — std::cerr,
// fprintf(stderr, ...), and perror — while fprintf(stdout, ...) is the
// stray-stdout rule's business and an inline allow() suppresses the
// sanctioned abort-path exception (mirroring core/check.hpp).
// detlint-expect: stray-stderr@+8
// detlint-expect: stray-stderr@+11
// detlint-expect: stray-stdout@+11
// detlint-expect: stray-stderr@+14

namespace fixture {

inline void report(const char* what) {
  std::cerr << "boom: " << what << '\n';
}

inline void report_c(const char* what) {
  std::fprintf(stderr, "boom: %s\n", what);
  std::fprintf(stdout, "ok: %s\n", what);
}

inline void report_errno(const char* what) {
  perror(what);
}

inline void sanctioned_abort_path(const char* what) {
  std::fprintf(stderr, "hm: %s\n", what);  // detlint: allow(stray-stderr)
}

// "stderr" in a string and a cerr-like identifier must not fire.
inline const char* kDoc = "never write to stderr or std::cerr directly";
inline int cerr_like(int lucerne) { return lucerne; }

}  // namespace fixture
