// Fixture: a file that exercises near-miss patterns and must lint clean.
// (No detlint-expect lines — any finding here is a selftest failure.)
#include <map>
#include <numeric>
#include <unordered_map>

namespace fixture {

// The words rand, time(, std::cout, and #pragma omp in comments or
// strings must not fire: the engine strips comments and literals.
// std::random_device is also banned — but only in code.
inline const char* kDoc = "call rand() at time() via std::cout #pragma omp";

// Identifier substrings must not fire: operand, runtime, daytime_offset.
inline int operand_runtime(int daytime_offset) { return daytime_offset; }

// parallel_reduce / reduce_lanes are not std::reduce.
inline int reduce_lanes_sum(int a, int b) { return a + b; }

// Ordered accumulation is allowed.
inline double ordered_sum(const std::map<int, double>& m) {
  double s = 0;
  for (const auto& [k, v] : m) s += v;
  return s;
}

// Keyed lookup into an unordered_map is allowed anywhere (only
// *iteration* is order-dependent) — and this file is under core/, where
// even iteration is unrestricted.
inline double lookup(const std::unordered_map<int, double>& m, int k) {
  auto it = m.find(k);
  return it == m.end() ? 0.0 : it->second;
}

}  // namespace fixture
