// Fixture: clock access in src/obs outside obs/trace.cpp must fire.
// Value-channel payloads are pure functions of (seed, config); only the
// tracer TU may read a clock (timestamps ride the timing channel).
// detlint-expect: obs-clock-outside-timing@+6
// detlint-expect: obs-clock-outside-timing@+5

namespace fixture {

inline long bad_gauge_value() {
  return static_cast<long>(std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count());
}

}  // namespace fixture
