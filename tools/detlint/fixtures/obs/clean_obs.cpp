// Fixture: a clock-free obs file must lint clean. Mentions of clocks in
// comments and strings must not fire (steady_clock, chrono, Stopwatch),
// and identifiers merely containing a clock name are fine.
namespace fixture {

// Doc strings naming clocks are stripped before matching.
inline const char* kDoc = "timestamps come from steady_clock via chrono";

// chronological / stopwatch_count are not clock identifiers.
inline long chronological_rank(long stopwatch_count) {
  return stopwatch_count + 1;
}

}  // namespace fixture
