// Fixture: raw process/socket syscalls outside src/net must fire
// raw-transport-syscall; a suppressed call must not.
// detlint-expect: raw-transport-syscall
#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fixture {

inline int bad_fork_worker() {
  const pid_t pid = fork();  // bypasses net::Transport worker lifecycle
  if (pid == 0) _exit(0);
  return 0;
}

inline void bad_raw_wire(int fd) {
  char b = 0;
  (void)send(fd, &b, 1, 0);  // unframed, no CRC, no deadline
  (void)recv(fd, &b, 1, 0);
}

inline void bad_reap(pid_t pid) {
  kill(pid, 9);
  int status = 0;
  waitpid(pid, &status, 0);
}

inline void ok_suppressed(pid_t pid) {
  // Diagnostic-only probe. detlint: allow(raw-transport-syscall)
  kill(pid, 0);
}

}  // namespace fixture
