// Fixture: OpenMP pragmas and direct stdout/stderr writes must fire.
// detlint-expect: no-openmp
// detlint-expect: stray-stdout
// detlint-expect: stray-stderr
#include <cstdio>
#include <iostream>

namespace fixture {

inline void bad_parallel_print(int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    std::cout << i << "\n";
    printf("%d\n", i);
  }
  std::fprintf(stderr, "stderr is banned too\n");
}

}  // namespace fixture
