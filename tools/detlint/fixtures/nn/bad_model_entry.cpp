// Fixture: a Model entry point without an HM_CHECK guard must fire; the
// guarded one next to it must not produce a second finding.
// detlint-expect: model-entry-unchecked
#define HM_CHECK(cond) ((void)(cond))

namespace fixture {

struct Span { const double* p; long n; };

struct TinyModel {
  double loss(Span w, Span batch) const;
  void predict(Span w, Span batch, long* out) const;
};

double TinyModel::loss(Span w, Span batch) const {
  double s = 0;  // no precondition guard: fires
  for (long i = 0; i < w.n; ++i) s += w.p[i] + batch.n;
  return s;
}

void TinyModel::predict(Span w, Span batch, long* out) const {
  HM_CHECK(w.n > 0 && batch.n > 0);
  out[0] = static_cast<long>(w.p[0] + batch.n);
}

}  // namespace fixture
