// Fixture: src/io is the one place allowed to touch files directly —
// it implements the crash-safe temp + fsync + rename protocol itself.
// No detlint-expect lines: this file must lint clean.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fixture {

inline void ok_io_write(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary);
  out << 1.0;
  out.close();
  std::rename(tmp.c_str(), path.c_str());
}

inline void ok_io_prune(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace fixture
