// Fixture: src/net is the one module allowed to touch raw process and
// socket syscalls — none of these may fire raw-transport-syscall here.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <poll.h>

namespace fixture {

inline int ok_socketpair_fork(int sv[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid == 0) {
    char b = 0;
    (void)::recv(sv[1], &b, 1, 0);
    (void)::send(sv[1], &b, 1, 0);
    _exit(0);
  }
  return 0;
}

inline void ok_poll_reap(int fd, pid_t pid) {
  struct pollfd p = {fd, POLLIN, 0};
  (void)::poll(&p, 1, 100);
  int status = 0;
  (void)::waitpid(pid, &status, WNOHANG);
}

}  // namespace fixture
