// Fixture: unordered accumulation primitives must fire.
// detlint-expect: unordered-accumulation
#include <numeric>
#include <vector>

namespace fixture {

inline double bad_total(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);
}

inline double ok_total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

}  // namespace fixture
