// Pluggable transport layer (ROADMAP item 1, FedML-style separation of
// topology from communication backend): the coordinator talks to a fixed
// set of numbered *lanes*, each lane serving a disjoint subset of the
// simulated entities. The pipeline per message is serialize (caller) →
// send (frames, net/frame.hpp) → meter (TransportStats) → deliver
// (handler reply or a detected failure).
//
// Two backends:
//   * loopback — handlers run in-process, every message round-trips
//     through the real frame codec, nothing ever fails. The wire-format
//     testbed: a loopback run must bit-match the in-proc oracle.
//   * socket   — one forked worker process per lane over a Unix-domain
//     socketpair, with the full robustness envelope: per-request
//     monotonic deadlines, bounded retransmission with deterministic
//     exponential deadline-extension backoff, heartbeat/liveness
//     tracking (ping/pong + waitpid sweeps), worker-crash detection
//     (EOF / torn frames / reaped pids), and orderly shutdown that
//     leaks neither sockets nor zombies.
//
// Failure surface: a lane that dies stays dead (`lane_up` false, every
// later exchange yields nullopt for it). The algorithm layer maps dead
// lanes onto the same edge-crash fault events the simulator emits, so
// the OnFault policies handle real process deaths with no extra code.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hm::net {

enum class TransportKind {
  kInproc,    // direct in-process calls, no serialization (the oracle)
  kLoopback,  // in-process over the wire codec (never fails)
  kSocket,    // forked worker processes over Unix-domain sockets
};

const char* to_string(TransportKind kind);
bool parse_transport_kind(const std::string& name, TransportKind& out);

/// Deterministic worker-kill injection for the fault matrix: when the
/// request with `tag` reaches worker `worker`, the worker SIGKILLs
/// itself at the chosen point. Tags are app-routing tags (the trainer
/// uses 2*round + phase), so the injection is independent of retry
/// sequence numbers.
enum class KillPoint {
  kNone = 0,
  kPreHandle,   // before computing the reply (crash pre-send)
  kTornReply,   // after sending a truncated reply frame (crash mid-frame)
  kPostReply,   // after the full reply is on the wire (crash post-send)
};

struct KillSpec {
  index_t worker = -1;
  std::uint64_t tag = 0;
  KillPoint point = KillPoint::kNone;

  bool armed() const { return point != KillPoint::kNone && worker >= 0; }
};

struct TransportSpec {
  TransportKind kind = TransportKind::kInproc;
  index_t workers = 0;          // lane count; 0 = one lane per 4 entities,
                                // clamped to [1, entities] by the caller
  index_t rpc_timeout_ms = 5000;  // per-attempt reply deadline
  index_t rpc_retries = 2;        // retransmissions after the first attempt
  index_t rpc_backoff_ms = 100;   // deadline extension of retry r (1-based):
                                  // rpc_backoff_ms << (r - 1)
  KillSpec kill;                  // fault-matrix injection (tests/CLI)
};

/// Real traffic counters, kept separate from sim::CommStats: the
/// simulator meters the *modeled* payload bytes (a bit-compared model
/// quantity), the transport meters what actually crossed the wire.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t retries = 0;        // retransmitted requests
  std::uint64_t timeouts = 0;       // lanes declared dead by deadline
  std::uint64_t worker_deaths = 0;  // lanes declared dead by EOF/waitpid
};

using Bytes = std::vector<std::uint8_t>;

struct RpcRequest {
  std::uint64_t tag = 0;
  Bytes payload;
};

/// Pure request handler: (tag, request payload) → reply payload. Must
/// not depend on call count or ordering — retransmitted requests may be
/// handled twice, and only the reply matching the live attempt is kept.
using Handler = std::function<Bytes(std::uint64_t tag, const Bytes& request)>;

/// Invoked once per lane to build its handler. For the socket backend
/// the factory runs in the forked child (so it can build process-local
/// state like thread pools); for loopback it runs in-process.
using HandlerFactory = std::function<Handler(index_t lane)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual index_t lanes() const = 0;

  /// Whether the backend can lose lanes at all (socket: yes). Callers
  /// use this to decide whether to provision degraded-mode state.
  virtual bool fallible() const = 0;

  /// Liveness as of the last exchange()/check_liveness() call.
  virtual bool lane_up(index_t lane) const = 0;

  /// Scatter-gather round: one optional request per lane (nullopt =
  /// lane idle this round), one optional reply per lane back (nullopt =
  /// idle or dead). All posted requests are in flight concurrently; the
  /// call blocks until every lane replied, timed out of its retry
  /// budget, or died.
  virtual std::vector<std::optional<Bytes>> exchange(
      const std::vector<std::optional<RpcRequest>>& requests) = 0;

  /// Heartbeat sweep: reap exited workers, ping the rest, and demote
  /// lanes that fail to pong within the request deadline.
  virtual void check_liveness() = 0;

  virtual const TransportStats& stats() const = 0;

  /// Orderly teardown (idempotent; also run by the destructor): polite
  /// shutdown frames, bounded grace, then SIGKILL + reap. After it
  /// returns no child processes or lane sockets remain.
  virtual void shutdown() = 0;
};

std::unique_ptr<Transport> make_loopback_transport(
    index_t lanes, const HandlerFactory& factory);

std::unique_ptr<Transport> make_socket_transport(
    const TransportSpec& spec, index_t lanes, const HandlerFactory& factory);

}  // namespace hm::net
