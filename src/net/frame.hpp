// Wire framing for the transport layer: length-prefixed, CRC-checked,
// versioned frames carrying opaque payloads (io::Snapshot containers in
// the trainer protocol, but the codec is payload-agnostic).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "HMFR"
//   4       4     u32 format version (currently 1)
//   8       4     u32 frame type (FrameType wire values)
//   12      4     u32 reserved (0)
//   16      8     u64 seq      — per-attempt sequence number; replies echo
//                               the request's seq so stale retransmission
//                               replies can be discarded
//   24      8     u64 tag      — application routing tag (the trainer uses
//                               2*round + phase); kill injection matches on
//                               it because seq drifts under retries
//   32      8     u64 payload length
//   40      4     u32 CRC32 (IEEE) of the payload
//   44      4     u32 CRC32 (IEEE) of header bytes [0, 44)
//   48      ...   payload
//
// Error taxonomy (FrameError) — the transport's failure semantics hang on
// these distinctions:
//   kClosed  — clean EOF at a frame boundary: the peer exited or closed
//              the socket between frames (benign shutdown or a crash
//              detected at a quiescent point).
//   kTorn    — EOF or deadline mid-frame: the peer died while writing (a
//              torn frame desynchronizes the stream, so the connection is
//              unrecoverable — never retried).
//   kCorrupt — structural damage with the stream intact: bad magic,
//              unsupported version, checksum mismatch (hard error).
//   kTimeout — the deadline expired before the first byte of a frame
//              arrived; the stream is still aligned, so the caller may
//              retransmit and keep waiting.
//
// Deadlines are std::chrono::steady_clock time points (monotonic; the
// determinism lint bans wall clocks, and a suspended host must not fire
// spurious timeouts).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hm::net {

inline constexpr std::uint32_t kFrameMagic = 0x52464d48;  // "HMFR" LE
inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 48;

enum class FrameType : std::uint32_t {
  kRequest = 1,
  kReply = 2,
  kPing = 3,
  kPong = 4,
  kShutdown = 5,
};

enum class FrameError {
  kOk = 0,
  kClosed,   // clean EOF at a frame boundary ("no data" — benign)
  kTorn,     // EOF / deadline mid-frame (peer died writing — hard)
  kCorrupt,  // bad magic / version / checksum (hard)
  kTimeout,  // deadline expired before a frame started (retryable)
};

/// Stable diagnostic name ("ok", "closed", "torn", "corrupt", "timeout").
const char* frame_error_name(FrameError err);

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Test seam for torn-write injection — the socket analog of
/// io::WriteFaultHook. While installed, send_frame transmits only the
/// first `truncate_after_bytes` bytes of the encoded frame and reports
/// success; the caller then models the crash (the kill matrix raises
/// SIGKILL right after). Not thread-safe: install/clear around
/// single-threaded test code only. The hook object must outlive its
/// installation.
struct FrameFaultHook {
  std::uint64_t truncate_after_bytes = 0;
};

/// Install (or with nullptr clear) the process-global frame fault hook.
void set_frame_fault_hook(const FrameFaultHook* hook);

using MonoClock = std::chrono::steady_clock;

/// Encode to the wire layout (header + payload).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Strict decode of one complete frame occupying exactly [data, data+n).
/// On error, `detail` (when non-null) receives a one-line diagnostic
/// naming what failed.
FrameError decode_frame(const std::uint8_t* data, std::size_t n,
                        Frame& out, std::string* detail = nullptr);

/// Write one frame to `fd`, honoring the deadline (kTimeout/kTorn when
/// the peer stops draining, kClosed when the peer is gone).
FrameError send_frame(int fd, const Frame& frame,
                      MonoClock::time_point deadline);

/// Read one frame from `fd`. Blocks (via poll) until a full frame
/// arrives, the deadline expires, or the stream fails; see the taxonomy
/// above for which error each case maps to.
FrameError recv_frame(int fd, Frame& out, MonoClock::time_point deadline,
                      std::string* detail = nullptr);

}  // namespace hm::net
