#include "net/frame.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "core/check.hpp"
#include "io/snapshot.hpp"  // io::crc32, io::ByteWriter/ByteReader

namespace hm::net {

namespace {

const FrameFaultHook* g_frame_fault_hook = nullptr;

/// Remaining budget in whole milliseconds, clamped for poll(): at least
/// 0 (expired), at most ~1min per poll round so a far-future deadline
/// ("block forever") never overflows the int timeout.
int remaining_ms(MonoClock::time_point deadline) {
  const auto now = MonoClock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return ms > 60000 ? 60000 : static_cast<int>(ms);
}

bool deadline_passed(MonoClock::time_point deadline) {
  return MonoClock::now() >= deadline;
}

enum class IoStatus { kDone, kPeerClosed, kTimedOut, kFailed };

/// Write exactly n bytes, polling for writability against the deadline.
IoStatus write_exact(int fd, const std::uint8_t* data, std::size_t n,
                     MonoClock::time_point deadline) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kPeerClosed;
    }
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return IoStatus::kFailed;
    }
    if (deadline_passed(deadline)) return IoStatus::kTimedOut;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    ::poll(&pfd, 1, remaining_ms(deadline));
  }
  return IoStatus::kDone;
}

/// Read exactly n bytes; `got` reports how many arrived before EOF or
/// the deadline (distinguishes boundary-EOF from mid-frame death).
IoStatus read_exact(int fd, std::uint8_t* data, std::size_t n,
                    MonoClock::time_point deadline, std::size_t& got) {
  got = 0;
  while (got < n) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
    if (pr == 0) {
      if (deadline_passed(deadline)) return IoStatus::kTimedOut;
      continue;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kFailed;
    }
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r == 0) return IoStatus::kPeerClosed;
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) return IoStatus::kPeerClosed;
      return IoStatus::kFailed;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoStatus::kDone;
}

void fail(std::string* detail, const char* what) {
  if (detail != nullptr) *detail = what;
}

}  // namespace

const char* frame_error_name(FrameError err) {
  switch (err) {
    case FrameError::kOk: return "ok";
    case FrameError::kClosed: return "closed";
    case FrameError::kTorn: return "torn";
    case FrameError::kCorrupt: return "corrupt";
    case FrameError::kTimeout: return "timeout";
  }
  return "unknown";
}

void set_frame_fault_hook(const FrameFaultHook* hook) {
  g_frame_fault_hook = hook;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  io::ByteWriter header;
  header.put_u32(kFrameMagic);
  header.put_u32(kFrameVersion);
  header.put_u32(static_cast<std::uint32_t>(frame.type));
  header.put_u32(0);  // reserved
  header.put_u64(frame.seq);
  header.put_u64(frame.tag);
  header.put_u64(frame.payload.size());
  header.put_u32(io::crc32(frame.payload.data(), frame.payload.size()));
  std::vector<std::uint8_t> out = header.take();
  const std::uint32_t hcrc = io::crc32(out.data(), out.size());
  io::ByteWriter tail;
  tail.put_u32(hcrc);
  const auto& t = tail.bytes();
  out.insert(out.end(), t.begin(), t.end());
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  HM_CHECK(out.size() == kFrameHeaderBytes + frame.payload.size());
  return out;
}

FrameError decode_frame(const std::uint8_t* data, std::size_t n,
                        Frame& out, std::string* detail) {
  if (n == 0) {
    fail(detail, "empty buffer (closed)");
    return FrameError::kClosed;
  }
  if (n < kFrameHeaderBytes) {
    fail(detail, "short header (torn frame)");
    return FrameError::kTorn;
  }
  io::ByteReader r(data, kFrameHeaderBytes);
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const std::uint32_t type = r.u32();
  r.u32();  // reserved
  const std::uint64_t seq = r.u64();
  const std::uint64_t tag = r.u64();
  const std::uint64_t len = r.u64();
  const std::uint32_t payload_crc = r.u32();
  const std::uint32_t header_crc = r.u32();
  if (magic != kFrameMagic) {
    fail(detail, "bad magic");
    return FrameError::kCorrupt;
  }
  if (version != kFrameVersion) {
    fail(detail, "unsupported frame version");
    return FrameError::kCorrupt;
  }
  if (header_crc != io::crc32(data, kFrameHeaderBytes - 4)) {
    fail(detail, "header checksum mismatch");
    return FrameError::kCorrupt;
  }
  if (type < static_cast<std::uint32_t>(FrameType::kRequest) ||
      type > static_cast<std::uint32_t>(FrameType::kShutdown)) {
    fail(detail, "unknown frame type");
    return FrameError::kCorrupt;
  }
  if (n < kFrameHeaderBytes + len) {
    fail(detail, "short payload (torn frame)");
    return FrameError::kTorn;
  }
  if (n > kFrameHeaderBytes + len) {
    fail(detail, "trailing bytes after frame");
    return FrameError::kCorrupt;
  }
  if (payload_crc != io::crc32(data + kFrameHeaderBytes, len)) {
    fail(detail, "payload checksum mismatch");
    return FrameError::kCorrupt;
  }
  out.type = static_cast<FrameType>(type);
  out.seq = seq;
  out.tag = tag;
  out.payload.assign(data + kFrameHeaderBytes, data + kFrameHeaderBytes + len);
  return FrameError::kOk;
}

FrameError send_frame(int fd, const Frame& frame,
                      MonoClock::time_point deadline) {
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::size_t n = bytes.size();
  if (g_frame_fault_hook != nullptr &&
      g_frame_fault_hook->truncate_after_bytes < n) {
    n = static_cast<std::size_t>(g_frame_fault_hook->truncate_after_bytes);
  }
  switch (write_exact(fd, bytes.data(), n, deadline)) {
    case IoStatus::kDone: return FrameError::kOk;
    case IoStatus::kPeerClosed: return FrameError::kClosed;
    case IoStatus::kTimedOut: return FrameError::kTimeout;
    case IoStatus::kFailed: return FrameError::kCorrupt;
  }
  return FrameError::kCorrupt;
}

FrameError recv_frame(int fd, Frame& out, MonoClock::time_point deadline,
                      std::string* detail) {
  std::uint8_t header[kFrameHeaderBytes];
  std::size_t got = 0;
  switch (read_exact(fd, header, kFrameHeaderBytes, deadline, got)) {
    case IoStatus::kDone:
      break;
    case IoStatus::kPeerClosed:
      if (got == 0) {
        fail(detail, "peer closed at frame boundary");
        return FrameError::kClosed;
      }
      fail(detail, "peer closed mid-header (torn frame)");
      return FrameError::kTorn;
    case IoStatus::kTimedOut:
      if (got == 0) {
        fail(detail, "deadline expired waiting for a frame");
        return FrameError::kTimeout;
      }
      fail(detail, "deadline expired mid-header (torn frame)");
      return FrameError::kTorn;
    case IoStatus::kFailed:
      fail(detail, "socket read failed");
      return FrameError::kCorrupt;
  }
  // Validate the header before trusting the payload length.
  io::ByteReader r(header, kFrameHeaderBytes);
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  r.u32();  // type — rechecked by decode_frame
  r.u32();  // reserved
  r.u64();  // seq
  r.u64();  // tag
  const std::uint64_t len = r.u64();
  r.u32();  // payload crc — checked by decode_frame
  const std::uint32_t header_crc = r.u32();
  if (magic != kFrameMagic) {
    fail(detail, "bad magic");
    return FrameError::kCorrupt;
  }
  if (version != kFrameVersion) {
    fail(detail, "unsupported frame version");
    return FrameError::kCorrupt;
  }
  if (header_crc != io::crc32(header, kFrameHeaderBytes - 4)) {
    fail(detail, "header checksum mismatch");
    return FrameError::kCorrupt;
  }
  std::vector<std::uint8_t> whole(kFrameHeaderBytes + len);
  std::memcpy(whole.data(), header, kFrameHeaderBytes);
  if (len > 0) {
    switch (read_exact(fd, whole.data() + kFrameHeaderBytes, len, deadline,
                       got)) {
      case IoStatus::kDone:
        break;
      case IoStatus::kPeerClosed:
        fail(detail, "peer closed mid-payload (torn frame)");
        return FrameError::kTorn;
      case IoStatus::kTimedOut:
        fail(detail, "deadline expired mid-payload (torn frame)");
        return FrameError::kTorn;
      case IoStatus::kFailed:
        fail(detail, "socket read failed");
        return FrameError::kCorrupt;
    }
  }
  return decode_frame(whole.data(), whole.size(), out, detail);
}

}  // namespace hm::net
