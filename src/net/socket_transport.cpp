// The multi-process backend: one forked worker per lane over a
// SOCK_STREAM Unix-domain socketpair.
//
// Child lifecycle: fork → close every inherited coordinator-side fd →
// arm PR_SET_PDEATHSIG (an orphaned worker dies with its coordinator) →
// build the handler via the factory (process-local thread pools etc.) →
// serve request frames until EOF/shutdown → _exit (never runs parent
// destructors, never flushes parent buffers).
//
// Coordinator robustness envelope, per exchange():
//   1. waitpid(WNOHANG) sweep — workers that died since the last round
//      are reaped and their lanes demoted before any send.
//   2. Scatter: all requests are written up front so workers compute
//      concurrently; a failed write demotes the lane immediately.
//   3. Gather: one poll() loop over every pending lane. EOF at a frame
//      boundary, a torn frame, or a corrupt frame demotes the lane (the
//      stream cannot be resynchronized). A deadline expiry retransmits
//      the request under a fresh sequence number with the deadline
//      extended by rpc_backoff_ms << (attempt-1) — deterministic
//      exponential backoff with no sleeping — until the retry budget is
//      spent, at which point the worker is SIGKILLed and reaped.
// Stale replies (sequence number of an abandoned attempt) are drained
// and discarded; handlers are pure, so duplicated work is harmless.
//
// Shutdown: best-effort kShutdown frame per live lane, close sockets, a
// bounded poll-based grace wait for voluntary exits, SIGKILL stragglers,
// and a final blocking reap of every child — no zombies, no leaked fds.
#include <poll.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <exception>

#include "core/check.hpp"
#include "core/log.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace hm::net {

namespace {

MonoClock::time_point deadline_in_ms(index_t ms) {
  return MonoClock::now() + std::chrono::milliseconds(ms);
}

// Manual RPC-attempt spans: an attempt opens at post() and resolves in a
// later poll iteration (reply, lane death, or deadline), so RAII cannot
// scope it. Everything here is timing channel — attempts, retries, and
// their durations exist only because of real-wire behavior.
#if HM_OBS_ENABLED
std::uint64_t attempt_clock() {
  return obs::trace_enabled() ? obs::trace_now_ns() : 0;
}

void record_attempt(std::uint64_t start_ns, index_t lane,
                    std::uint64_t tag) {
  if (start_ns == 0 || !obs::trace_enabled()) return;
  obs::SpanRecord r;
  r.name = "rpc_attempt";
  r.cat = "net";
  r.a0 = static_cast<std::uint64_t>(lane);
  r.a1 = tag;
  r.channel = static_cast<std::uint8_t>(obs::Channel::kTiming);
  r.start_ns = start_ns;
  r.end_ns = obs::trace_now_ns();
  obs::trace_record(r);
}
#else
std::uint64_t attempt_clock() { return 0; }
void record_attempt(std::uint64_t, index_t, std::uint64_t) {}
#endif

/// Child-side request loop. Runs until the coordinator closes the
/// socket, sends a shutdown frame, or the stream breaks. The injected
/// kill (fault matrix) fires when the matching tag arrives.
void serve_worker(int fd, index_t lane, const Handler& handler,
                  const KillSpec& kill) {
  const auto forever = MonoClock::time_point::max();
  FrameFaultHook torn_hook;
  for (;;) {
    Frame req;
    if (recv_frame(fd, req, forever) != FrameError::kOk) return;
    if (req.type == FrameType::kShutdown) return;
    if (req.type == FrameType::kPing) {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.seq = req.seq;
      pong.tag = req.tag;
      if (send_frame(fd, pong, forever) != FrameError::kOk) return;
      continue;
    }
    if (req.type != FrameType::kRequest) continue;
    const bool killed =
        kill.armed() && kill.worker == lane && kill.tag == req.tag;
    if (killed && kill.point == KillPoint::kPreHandle) {
      ::raise(SIGKILL);
    }
    Frame rep;
    rep.type = FrameType::kReply;
    rep.seq = req.seq;
    rep.tag = req.tag;
    rep.payload = handler(req.tag, req.payload);
    if (killed && kill.point == KillPoint::kTornReply) {
      // Torn-write injection: ship a prefix of the reply frame, then
      // die mid-send — the socket analog of io::WriteFaultHook.
      torn_hook.truncate_after_bytes = kFrameHeaderBytes + 8;
      set_frame_fault_hook(&torn_hook);
      send_frame(fd, rep, forever);
      ::raise(SIGKILL);
    }
    if (send_frame(fd, rep, forever) != FrameError::kOk) return;
    if (killed && kill.point == KillPoint::kPostReply) {
      ::raise(SIGKILL);
    }
  }
}

class SocketTransport final : public Transport {
 public:
  SocketTransport(const TransportSpec& spec, index_t lanes,
                  const HandlerFactory& factory)
      : spec_(spec) {
    HM_CHECK(lanes > 0);
    HM_CHECK(spec.rpc_timeout_ms > 0 && spec.rpc_retries >= 0 &&
             spec.rpc_backoff_ms >= 0);
    lanes_.resize(static_cast<std::size_t>(lanes));
    const pid_t coordinator = ::getpid();
    for (index_t lane = 0; lane < lanes; ++lane) {
      int sv[2];
      HM_CHECK_MSG(
          ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) == 0,
          "socketpair failed for worker lane " << lane);
      const pid_t pid = ::fork();
      HM_CHECK_MSG(pid >= 0, "fork failed for worker lane " << lane);
      if (pid == 0) {
        // Child: drop every coordinator-side fd inherited from earlier
        // lanes (fd hygiene — a sibling holding a duplicate would mask
        // EOF-based crash detection), keep only our own endpoint.
        ::close(sv[0]);
        for (index_t prev = 0; prev < lane; ++prev) {
          ::close(lanes_[static_cast<std::size_t>(prev)].fd);
        }
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() != coordinator) ::_exit(0);  // lost the race
        int status = 0;
        try {
          const Handler handler = factory(lane);
          serve_worker(sv[1], lane, handler, spec_.kill);
        } catch (const std::exception& e) {
          // Diagnose through the leveled logger (stderr is shared with
          // the coordinator); the nonzero exit is what the coordinator
          // acts on.
          log::error() << "net: worker lane " << lane
                       << " died on unhandled exception: " << e.what();
          status = 1;
        } catch (...) {
          log::error() << "net: worker lane " << lane
                       << " died on unhandled non-standard exception";
          status = 1;
        }
        ::close(sv[1]);
        ::_exit(status);  // never unwind into the parent's state
      }
      ::close(sv[1]);
      auto& ln = lanes_[static_cast<std::size_t>(lane)];
      ln.pid = pid;
      ln.fd = sv[0];
      ln.up = true;
    }
  }

  ~SocketTransport() override { shutdown(); }

  index_t lanes() const override {
    return static_cast<index_t>(lanes_.size());
  }
  bool fallible() const override { return true; }
  bool lane_up(index_t lane) const override {
    return lanes_[static_cast<std::size_t>(lane)].up;
  }
  const TransportStats& stats() const override { return stats_; }

  std::vector<std::optional<Bytes>> exchange(
      const std::vector<std::optional<RpcRequest>>& requests) override {
    HM_CHECK(static_cast<index_t>(requests.size()) == lanes());
    HM_OBS_SPAN_T("exchange", "net", requests.size(), 0);
    HM_OBS_INC_T("net.socket.exchanges");
    reap_exited();
    std::vector<std::optional<Bytes>> replies(requests.size());

    struct Pending {
      index_t lane = 0;
      const RpcRequest* req = nullptr;
      std::uint64_t seq = 0;
      index_t attempts = 0;  // retransmissions used so far
      MonoClock::time_point deadline;
      std::uint64_t obs_start_ns = 0;  // attempt span origin (0 = idle)
      bool done = false;
    };
    std::vector<Pending> pending;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].has_value()) continue;
      const auto lane = static_cast<index_t>(i);
      if (!lanes_[i].up) continue;  // dead lane: reply stays nullopt
      Pending p;
      p.lane = lane;
      p.req = &*requests[i];
      p.deadline = deadline_in_ms(spec_.rpc_timeout_ms);
      p.obs_start_ns = attempt_clock();
      if (!post(lane, *p.req, p.seq, p.deadline)) {
        record_attempt(p.obs_start_ns, lane, p.req->tag);
        continue;
      }
      pending.push_back(p);
    }

    std::size_t open = pending.size();
    while (open > 0) {
      // One poll over every still-pending lane, bounded by the nearest
      // per-lane deadline.
      auto nearest = MonoClock::time_point::max();
      std::vector<struct pollfd> pfds;
      std::vector<std::size_t> pfd_slot;
      for (std::size_t s = 0; s < pending.size(); ++s) {
        Pending& p = pending[s];
        if (p.done) continue;
        if (!lanes_[static_cast<std::size_t>(p.lane)].up) {
          p.done = true;
          --open;
          continue;
        }
        nearest = p.deadline < nearest ? p.deadline : nearest;
        struct pollfd pfd {};
        pfd.fd = lanes_[static_cast<std::size_t>(p.lane)].fd;
        pfd.events = POLLIN;
        pfds.push_back(pfd);
        pfd_slot.push_back(s);
      }
      if (pfds.empty()) break;
      const auto now = MonoClock::now();
      int wait_ms = 0;
      if (nearest > now) {
        const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            nearest - now)
                            .count();
        wait_ms = ms > 60000 ? 60000 : static_cast<int>(ms);
      }
      ::poll(pfds.data(), pfds.size(), wait_ms);
      for (std::size_t j = 0; j < pfds.size(); ++j) {
        Pending& p = pending[pfd_slot[j]];
        if (p.done) continue;
        if ((pfds[j].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          if (drain_reply(p, replies)) {
            if (p.done) {
              record_attempt(p.obs_start_ns, p.lane, p.req->tag);
              --open;
            }
            continue;
          }
        }
        if (MonoClock::now() >= p.deadline) {
          record_attempt(p.obs_start_ns, p.lane, p.req->tag);
          if (p.attempts < spec_.rpc_retries) {
            // Retransmit under a fresh seq; the deadline grows by the
            // deterministic exponential backoff term.
            p.attempts += 1;
            stats_.retries += 1;
            HM_OBS_INC_T("net.socket.retries");
            p.deadline = deadline_in_ms(
                spec_.rpc_timeout_ms +
                (spec_.rpc_backoff_ms << (p.attempts - 1)));
            p.obs_start_ns = attempt_clock();
            if (!post(p.lane, *p.req, p.seq, p.deadline)) {
              record_attempt(p.obs_start_ns, p.lane, p.req->tag);
              p.done = true;
              --open;
            }
          } else {
            log::warn() << "net: worker lane " << p.lane
                        << " exhausted its retry budget (tag " << p.req->tag
                        << "); killing the hung worker";
            stats_.timeouts += 1;
            HM_OBS_INC_T("net.socket.timeouts");
            demote(p.lane);
            p.done = true;
            --open;
          }
        }
      }
    }
    return replies;
  }

  void check_liveness() override {
    reap_exited();
    for (index_t lane = 0; lane < lanes(); ++lane) {
      auto& ln = lanes_[static_cast<std::size_t>(lane)];
      if (!ln.up) continue;
      Frame ping;
      ping.type = FrameType::kPing;
      ping.seq = ++seq_counter_;
      HM_OBS_INC_T("net.socket.heartbeats");
      const auto deadline = deadline_in_ms(spec_.rpc_timeout_ms);
      if (send_frame(ln.fd, ping, deadline) != FrameError::kOk) {
        demote(lane);
        continue;
      }
      stats_.frames_sent += 1;
      bool ponged = false;
      while (!ponged) {
        Frame f;
        std::string detail;
        const FrameError err = recv_frame(ln.fd, f, deadline, &detail);
        if (err != FrameError::kOk) {
          log::warn() << "net: worker lane " << lane
                      << " failed its heartbeat (" << frame_error_name(err)
                      << ": " << detail << ")";
          demote(lane);
          break;
        }
        stats_.frames_received += 1;
        // Stale replies from abandoned attempts may still be queued
        // ahead of the pong; drain them.
        ponged = f.type == FrameType::kPong && f.seq == ping.seq;
      }
    }
  }

  void shutdown() override {
    if (shut_) return;
    shut_ = true;
    // Polite phase: shutdown frames + closed sockets let workers exit
    // on their own.
    for (auto& ln : lanes_) {
      if (ln.pid == -1) continue;
      if (ln.up) {
        Frame bye;
        bye.type = FrameType::kShutdown;
        bye.seq = ++seq_counter_;
        send_frame(ln.fd, bye, deadline_in_ms(100));
      }
      if (ln.fd != -1) {
        ::close(ln.fd);
        ln.fd = -1;
      }
    }
    // Bounded grace, then force. poll(nullptr) is the sleep primitive
    // (no wall clock, no extra fds).
    const auto grace = deadline_in_ms(1000);
    for (;;) {
      bool alive = false;
      for (auto& ln : lanes_) {
        if (ln.pid == -1) continue;
        if (::waitpid(ln.pid, nullptr, WNOHANG) > 0) {
          ln.pid = -1;
          ln.up = false;
        } else {
          alive = true;
        }
      }
      if (!alive || MonoClock::now() >= grace) break;
      ::poll(nullptr, 0, 10);
    }
    for (auto& ln : lanes_) {
      if (ln.pid == -1) continue;
      ::kill(ln.pid, SIGKILL);
      ::waitpid(ln.pid, nullptr, 0);
      ln.pid = -1;
      ln.up = false;
    }
  }

 private:
  struct Lane {
    pid_t pid = -1;
    int fd = -1;
    bool up = false;
  };

  /// Reap every worker that exited since the last sweep and demote its
  /// lane. The waitpid sweep doubles as the SIGCHLD path: no signal
  /// handler is installed (the host process owns its signal
  /// disposition), polling at every exchange/heartbeat is enough.
  void reap_exited() {
    for (index_t lane = 0; lane < lanes(); ++lane) {
      auto& ln = lanes_[static_cast<std::size_t>(lane)];
      if (!ln.up || ln.pid == -1) continue;
      if (::waitpid(ln.pid, nullptr, WNOHANG) > 0) {
        log::warn() << "net: worker lane " << lane << " (pid " << ln.pid
                    << ") exited; marking the lane down";
        ln.pid = -1;
        close_lane(ln);
      }
    }
  }

  /// Kill + reap + close one lane. Safe to call on an already-dead lane.
  void demote(index_t lane) {
    auto& ln = lanes_[static_cast<std::size_t>(lane)];
    if (ln.pid != -1) {
      ::kill(ln.pid, SIGKILL);
      ::waitpid(ln.pid, nullptr, 0);
      ln.pid = -1;
    }
    close_lane(ln);
  }

  void close_lane(Lane& ln) {
    if (ln.fd != -1) {
      ::close(ln.fd);
      ln.fd = -1;
    }
    if (ln.up) {
      ln.up = false;
      stats_.worker_deaths += 1;
      HM_OBS_INC_T("net.socket.worker_deaths");
    }
  }

  /// Send one request attempt. Returns false (lane demoted) on failure.
  bool post(index_t lane, const RpcRequest& req, std::uint64_t& seq,
            MonoClock::time_point deadline) {
    auto& ln = lanes_[static_cast<std::size_t>(lane)];
    Frame f;
    f.type = FrameType::kRequest;
    f.seq = seq = ++seq_counter_;
    f.tag = req.tag;
    f.payload = req.payload;
    HM_OBS_INC_T("net.socket.rpc_attempts");
    const FrameError err = send_frame(ln.fd, f, deadline);
    if (err != FrameError::kOk) {
      log::warn() << "net: request to worker lane " << lane << " failed ("
                  << frame_error_name(err) << "); marking the lane down";
      demote(lane);
      return false;
    }
    stats_.frames_sent += 1;
    stats_.bytes_sent += kFrameHeaderBytes + f.payload.size();
    HM_OBS_INC_T("net.socket.frames_sent");
    HM_OBS_ADD_T("net.socket.bytes_sent",
                 kFrameHeaderBytes + f.payload.size());
    return true;
  }

  /// Read one available frame from a pending lane. `out` receives the
  /// reply when it matches `want_seq`; `dead` is set when the stream
  /// failed and the lane was demoted. Returns true when the frame
  /// resolved the attempt (reply or death), false for discarded stale
  /// traffic.
  bool drain_reply_impl(index_t lane, std::uint64_t want_seq,
                        std::optional<Bytes>& out, bool& dead) {
    auto& ln = lanes_[static_cast<std::size_t>(lane)];
    Frame f;
    std::string detail;
    const FrameError err =
        recv_frame(ln.fd, f, deadline_in_ms(spec_.rpc_timeout_ms), &detail);
    if (err != FrameError::kOk) {
      log::warn() << "net: worker lane " << lane << " stream failed ("
                  << frame_error_name(err) << ": " << detail
                  << "); marking the lane down";
      demote(lane);
      dead = true;
      return true;
    }
    stats_.frames_received += 1;
    stats_.bytes_received += kFrameHeaderBytes + f.payload.size();
    HM_OBS_INC_T("net.socket.frames_received");
    HM_OBS_ADD_T("net.socket.bytes_received",
                 kFrameHeaderBytes + f.payload.size());
    if (f.type == FrameType::kReply && f.seq == want_seq) {
      out = std::move(f.payload);
      return true;
    }
    HM_OBS_INC_T("net.socket.stale_frames");
    return false;  // stale reply or pong: discarded
  }

  /// Per-lane wrapper over drain_reply_impl for exchange()'s local
  /// Pending records (templated because Pending is exchange-local).
  template <typename P>
  bool drain_reply(P& p, std::vector<std::optional<Bytes>>& replies) {
    bool dead = false;
    std::optional<Bytes> out;
    const bool resolved = drain_reply_impl(p.lane, p.seq, out, dead);
    if (dead) {
      p.done = true;
      return true;
    }
    if (resolved && out.has_value()) {
      replies[static_cast<std::size_t>(p.lane)] = std::move(out);
      p.done = true;
      return true;
    }
    return resolved;
  }

  TransportSpec spec_;
  std::vector<Lane> lanes_;
  TransportStats stats_;
  std::uint64_t seq_counter_ = 0;
  bool shut_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(
    const TransportSpec& spec, index_t lanes, const HandlerFactory& factory) {
  return std::make_unique<SocketTransport>(spec, lanes, factory);
}

}  // namespace hm::net
