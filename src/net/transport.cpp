#include "net/transport.hpp"

#include "core/check.hpp"
#include "net/frame.hpp"
#include "obs/obs.hpp"

namespace hm::net {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInproc: return "inproc";
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kSocket: return "socket";
  }
  return "unknown";
}

bool parse_transport_kind(const std::string& name, TransportKind& out) {
  if (name == "inproc") {
    out = TransportKind::kInproc;
  } else if (name == "loopback") {
    out = TransportKind::kLoopback;
  } else if (name == "socket") {
    out = TransportKind::kSocket;
  } else {
    return false;
  }
  return true;
}

namespace {

/// In-process backend: every message round-trips through the real frame
/// codec (encode → decode → handle → encode → decode), so the wire
/// schema and the codec get full coverage with zero failure modes.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(index_t lanes, const HandlerFactory& factory) {
    HM_CHECK(lanes > 0);
    handlers_.reserve(static_cast<std::size_t>(lanes));
    for (index_t lane = 0; lane < lanes; ++lane) {
      handlers_.push_back(factory(lane));
    }
  }

  index_t lanes() const override {
    return static_cast<index_t>(handlers_.size());
  }
  bool fallible() const override { return false; }
  bool lane_up(index_t) const override { return true; }

  std::vector<std::optional<Bytes>> exchange(
      const std::vector<std::optional<RpcRequest>>& requests) override {
    HM_CHECK(static_cast<index_t>(requests.size()) == lanes());
    HM_OBS_SPAN("exchange", "net", requests.size(), 0);
    HM_OBS_INC("net.exchanges");
    std::vector<std::optional<Bytes>> replies(requests.size());
    for (std::size_t lane = 0; lane < requests.size(); ++lane) {
      if (!requests[lane].has_value()) continue;
      Frame req;
      req.type = FrameType::kRequest;
      req.seq = ++seq_;
      req.tag = requests[lane]->tag;
      req.payload = requests[lane]->payload;
      const std::vector<std::uint8_t> wire = encode_frame(req);
      stats_.frames_sent += 1;
      stats_.bytes_sent += wire.size();
      HM_OBS_INC("net.frames_sent");
      HM_OBS_ADD("net.bytes_sent", wire.size());
      Frame delivered;
      std::string detail;
      const FrameError err =
          decode_frame(wire.data(), wire.size(), delivered, &detail);
      HM_CHECK_MSG(err == FrameError::kOk,
                   "loopback frame failed to round-trip: " << detail);
      Frame rep;
      rep.type = FrameType::kReply;
      rep.seq = delivered.seq;
      rep.tag = delivered.tag;
      rep.payload = handlers_[lane](delivered.tag, delivered.payload);
      const std::vector<std::uint8_t> rep_wire = encode_frame(rep);
      Frame rep_delivered;
      const FrameError rep_err = decode_frame(rep_wire.data(),
                                              rep_wire.size(),
                                              rep_delivered, &detail);
      HM_CHECK_MSG(rep_err == FrameError::kOk,
                   "loopback reply failed to round-trip: " << detail);
      stats_.frames_received += 1;
      stats_.bytes_received += rep_wire.size();
      HM_OBS_INC("net.frames_received");
      HM_OBS_ADD("net.bytes_received", rep_wire.size());
      replies[lane] = std::move(rep_delivered.payload);
    }
    return replies;
  }

  void check_liveness() override {}
  const TransportStats& stats() const override { return stats_; }
  void shutdown() override {}

 private:
  std::vector<Handler> handlers_;
  TransportStats stats_;
  std::uint64_t seq_ = 0;
};

}  // namespace

std::unique_ptr<Transport> make_loopback_transport(
    index_t lanes, const HandlerFactory& factory) {
  return std::make_unique<LoopbackTransport>(lanes, factory);
}

}  // namespace hm::net
