#include "io/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/check.hpp"
#include "core/log.hpp"
#include "obs/obs.hpp"

namespace hm::io {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'H', 'M', 'S', 'N'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 24;  // magic + version + count + rsvd + payload
constexpr std::size_t kCrcBytes = 4;
constexpr char kFilePrefix[] = "snapshot.";
constexpr char kTmpSuffix[] = ".tmp";

const WriteFaultHook* g_write_fault_hook = nullptr;

std::string errno_string() {
  return std::string(std::strerror(errno));
}

/// Parses the round number out of "snapshot.<digits>"; nullopt for any
/// other name (including temp files and non-numeric suffixes).
std::optional<index_t> parse_round(const std::string& filename) {
  const std::string prefix(kFilePrefix);
  if (filename.size() <= prefix.size() ||
      filename.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(prefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  // Bounded by the zero-padded width we write, so stoll cannot overflow
  // on our own files; reject absurd widths from foreign files.
  if (digits.size() > 18) return std::nullopt;
  return static_cast<index_t>(std::stoll(digits));
}

struct Candidate {
  index_t round = 0;
  std::string path;
};

/// All `snapshot.<round>` files in `dir`, newest round first.
std::vector<Candidate> list_candidates(const std::string& dir) {
  std::vector<Candidate> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const auto round = parse_round(it->path().filename().string());
    if (round) out.push_back({*round, it->path().string()});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.round > b.round;
  });
  return out;
}

}  // namespace

void set_write_fault_hook(const WriteFaultHook* hook) {
  g_write_fault_hook = hook;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void ByteWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "f64 must be 8 bytes");
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ByteWriter::put_bytes(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

std::uint32_t ByteReader::u32() {
  HM_CHECK_MSG(remaining() >= 4, "byte stream truncated reading u32 at offset "
                                     << pos_ << " of " << size_);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  HM_CHECK_MSG(remaining() >= 8, "byte stream truncated reading u64 at offset "
                                     << pos_ << " of " << size_);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void ByteReader::read_bytes(void* p, std::size_t n) {
  HM_CHECK_MSG(remaining() >= n, "byte stream truncated reading " << n
                                     << " bytes at offset " << pos_ << " of "
                                     << size_);
  std::memcpy(p, data_ + pos_, n);
  pos_ += n;
}

void Snapshot::add(std::uint32_t tag, std::uint32_t kind,
                   std::vector<std::uint8_t> payload) {
  for (const auto& s : sections_) {
    HM_CHECK_MSG(s.tag != tag, "duplicate snapshot section tag 0x" << std::hex
                                                                  << tag);
  }
  sections_.push_back({tag, kind, std::move(payload)});
}

void Snapshot::put_u64(std::uint32_t tag, std::uint64_t v) {
  ByteWriter w;
  w.put_u64(v);
  add(tag, kKindU64, w.take());
}

void Snapshot::put_f64_vec(std::uint32_t tag,
                           const std::vector<scalar_t>& v) {
  ByteWriter w;
  w.put_u64(v.size());
  for (const scalar_t x : v) w.put_f64(x);
  add(tag, kKindF64Vec, w.take());
}

void Snapshot::put_f64_vec_list(
    std::uint32_t tag, const std::vector<std::vector<scalar_t>>& v) {
  ByteWriter w;
  w.put_u64(v.size());
  for (const auto& row : v) {
    w.put_u64(row.size());
    for (const scalar_t x : row) w.put_f64(x);
  }
  add(tag, kKindF64VecList, w.take());
}

void Snapshot::put_i64_vec(std::uint32_t tag,
                           const std::vector<std::int64_t>& v) {
  ByteWriter w;
  w.put_u64(v.size());
  for (const std::int64_t x : v) w.put_i64(x);
  add(tag, kKindI64Vec, w.take());
}

void Snapshot::put_bytes(std::uint32_t tag,
                         std::vector<std::uint8_t> payload) {
  add(tag, kKindBytes, std::move(payload));
}

bool Snapshot::has(std::uint32_t tag) const {
  for (const auto& s : sections_) {
    if (s.tag == tag) return true;
  }
  return false;
}

const Snapshot::Section& Snapshot::find(std::uint32_t tag,
                                        std::uint32_t kind) const {
  for (const auto& s : sections_) {
    if (s.tag == tag) {
      HM_CHECK_MSG(s.kind == kind, "snapshot section tag 0x"
                                       << std::hex << tag << std::dec
                                       << " has kind " << s.kind
                                       << ", expected " << kind);
      return s;
    }
  }
  HM_CHECK_MSG(false, "snapshot is missing section tag 0x" << std::hex << tag);
  __builtin_unreachable();
}

std::uint64_t Snapshot::get_u64(std::uint32_t tag) const {
  const Section& s = find(tag, kKindU64);
  ByteReader r(s.payload.data(), s.payload.size());
  const std::uint64_t v = r.u64();
  HM_CHECK(r.remaining() == 0);
  return v;
}

std::vector<scalar_t> Snapshot::get_f64_vec(std::uint32_t tag) const {
  const Section& s = find(tag, kKindF64Vec);
  ByteReader r(s.payload.data(), s.payload.size());
  const std::uint64_t n = r.u64();
  HM_CHECK_MSG(r.remaining() == n * 8,
               "f64 vector section: declared " << n << " values but "
                                               << r.remaining()
                                               << " payload bytes remain");
  std::vector<scalar_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.f64();
  return v;
}

std::vector<std::vector<scalar_t>> Snapshot::get_f64_vec_list(
    std::uint32_t tag) const {
  const Section& s = find(tag, kKindF64VecList);
  ByteReader r(s.payload.data(), s.payload.size());
  const std::uint64_t rows = r.u64();
  std::vector<std::vector<scalar_t>> v;
  v.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    const std::uint64_t n = r.u64();
    HM_CHECK_MSG(r.remaining() >= n * 8,
                 "f64 vector-list section: row " << i << " declares " << n
                                                 << " values but only "
                                                 << r.remaining()
                                                 << " payload bytes remain");
    std::vector<scalar_t> row(n);
    for (std::uint64_t j = 0; j < n; ++j) row[j] = r.f64();
    v.push_back(std::move(row));
  }
  HM_CHECK(r.remaining() == 0);
  return v;
}

std::vector<std::int64_t> Snapshot::get_i64_vec(std::uint32_t tag) const {
  const Section& s = find(tag, kKindI64Vec);
  ByteReader r(s.payload.data(), s.payload.size());
  const std::uint64_t n = r.u64();
  HM_CHECK_MSG(r.remaining() == n * 8,
               "i64 vector section: declared " << n << " values but "
                                               << r.remaining()
                                               << " payload bytes remain");
  std::vector<std::int64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.i64();
  return v;
}

const std::vector<std::uint8_t>& Snapshot::get_bytes(
    std::uint32_t tag) const {
  return find(tag, kKindBytes).payload;
}

std::vector<std::uint8_t> Snapshot::serialize() const {
  ByteWriter body;
  for (const auto& s : sections_) {
    body.put_u32(s.tag);
    body.put_u32(s.kind);
    body.put_u64(s.payload.size());
    body.put_bytes(s.payload.data(), s.payload.size());
  }
  const std::vector<std::uint8_t>& payload = body.bytes();

  ByteWriter out;
  out.put_bytes(kMagic, sizeof(kMagic));
  out.put_u32(kVersion);
  out.put_u32(static_cast<std::uint32_t>(sections_.size()));
  out.put_u32(0);  // reserved
  out.put_u64(payload.size());
  out.put_bytes(payload.data(), payload.size());
  const std::uint32_t crc = crc32(out.bytes().data(), out.bytes().size());
  out.put_u32(crc);
  return out.take();
}

Snapshot Snapshot::parse(const std::uint8_t* data, std::size_t n) {
  HM_CHECK_MSG(n >= kHeaderBytes + kCrcBytes,
               "snapshot too short: " << n << " bytes, need at least "
                                      << (kHeaderBytes + kCrcBytes));
  HM_CHECK_MSG(std::memcmp(data, kMagic, sizeof(kMagic)) == 0,
               "bad snapshot magic (not an HMSN file)");
  ByteReader header(data + 4, kHeaderBytes - 4);
  const std::uint32_t version = header.u32();
  HM_CHECK_MSG(version == kVersion,
               "unsupported snapshot version " << version << " (expected "
                                               << kVersion << ")");
  const std::uint32_t section_count = header.u32();
  const std::uint32_t reserved = header.u32();
  HM_CHECK_MSG(reserved == 0, "nonzero reserved header field " << reserved);
  const std::uint64_t payload_bytes = header.u64();
  HM_CHECK_MSG(n == kHeaderBytes + payload_bytes + kCrcBytes,
               "snapshot size mismatch: header declares "
                   << payload_bytes << " payload bytes, so file should be "
                   << (kHeaderBytes + payload_bytes + kCrcBytes)
                   << " bytes, got " << n);

  const std::size_t crc_offset = n - kCrcBytes;
  ByteReader crc_reader(data + crc_offset, kCrcBytes);
  const std::uint32_t stored_crc = crc_reader.u32();
  const std::uint32_t computed_crc = crc32(data, crc_offset);
  HM_CHECK_MSG(stored_crc == computed_crc,
               "snapshot checksum mismatch: stored 0x"
                   << std::hex << stored_crc << ", computed 0x"
                   << computed_crc);

  Snapshot snap;
  ByteReader body(data + kHeaderBytes, payload_bytes);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t tag = body.u32();
    const std::uint32_t kind = body.u32();
    HM_CHECK_MSG(kind >= kKindU64 && kind <= kKindBytes,
                 "unknown snapshot section kind " << kind << " (tag 0x"
                                                  << std::hex << tag << ")");
    const std::uint64_t len = body.u64();
    HM_CHECK_MSG(body.remaining() >= len,
                 "snapshot section tag 0x"
                     << std::hex << tag << std::dec << " declares " << len
                     << " bytes but only " << body.remaining() << " remain");
    std::vector<std::uint8_t> payload(len);
    body.read_bytes(payload.data(), len);
    snap.add(tag, kind, std::move(payload));
  }
  HM_CHECK_MSG(body.remaining() == 0,
               "snapshot payload has " << body.remaining()
                                       << " trailing bytes after "
                                       << section_count << " sections");
  return snap;
}

void atomic_write_file(const std::string& path, const std::uint8_t* data,
                       std::size_t n) {
  const std::string tmp = path + kTmpSuffix;

  // Torn-write injection: truncate the data, optionally rename the torn
  // file into place, then model the process death.
  const WriteFaultHook* hook = g_write_fault_hook;
  std::size_t write_n = n;
  const bool tear = hook != nullptr && hook->fail_after_bytes < n;
  if (tear) write_n = static_cast<std::size_t>(hook->fail_after_bytes);

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  HM_CHECK_MSG(fd >= 0, "cannot open '" << tmp << "' for writing: "
                                        << errno_string());
  std::size_t written = 0;
  while (written < write_n) {
    const ::ssize_t rc = ::write(fd, data + written, write_n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_string();
      ::close(fd);
      HM_CHECK_MSG(false, "write to '" << tmp << "' failed after " << written
                                       << " of " << n << " bytes: " << err);
    }
    written += static_cast<std::size_t>(rc);
  }

  if (tear) {
    // A real crash loses buffered data too, but for determinism the
    // harness flushes what it did "manage" to write before dying.
    ::fsync(fd);
    ::close(fd);
    if (hook->rename_anyway) {
      std::rename(tmp.c_str(), path.c_str());
    }
    std::ostringstream os;
    os << "simulated crash writing '" << path << "': write torn at byte "
       << write_n << " of " << n
       << (hook->rename_anyway ? " (torn file renamed into place)"
                               : " (temp file left behind)");
    throw SimulatedCrash(os.str());
  }

  if (::fsync(fd) != 0) {
    const std::string err = errno_string();
    ::close(fd);
    HM_CHECK_MSG(false, "fsync of '" << tmp << "' failed: " << err);
  }
  HM_CHECK_MSG(::close(fd) == 0, "close of '" << tmp << "' failed: "
                                              << errno_string());
  HM_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "rename '" << tmp << "' -> '" << path << "' failed: "
                          << errno_string());

  // Persist the rename itself: fsync the containing directory.
  const fs::path parent = fs::path(path).parent_path();
  const std::string parent_str = parent.empty() ? "." : parent.string();
  const int dfd = ::open(parent_str.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::string save_snapshot(const std::string& dir, index_t keep,
                          index_t round, const Snapshot& snap) {
  HM_CHECK_MSG(!dir.empty(), "snapshot directory must be non-empty");
  HM_CHECK_MSG(keep >= 1, "snapshot keep=" << keep << " must be >= 1");
  HM_CHECK_MSG(round >= 0, "snapshot round=" << round << " must be >= 0");

  std::error_code ec;
  fs::create_directories(dir, ec);
  HM_CHECK_MSG(!ec, "cannot create snapshot directory '" << dir
                                                         << "': " << ec.message());

  std::ostringstream name;
  name << kFilePrefix;
  name.width(8);
  name.fill('0');
  name << round;
  const std::string path = (fs::path(dir) / name.str()).string();

  const std::vector<std::uint8_t> bytes = snap.serialize();
  atomic_write_file(path, bytes.data(), bytes.size());
  HM_OBS_INC("io.snapshot.writes");
  HM_OBS_ADD("io.snapshot.bytes_written", bytes.size());

  // Prune: keep the `keep` newest snapshot files, drop older ones and any
  // orphaned temp files from interrupted writes.
  const std::vector<Candidate> all = list_candidates(dir);
  for (std::size_t i = static_cast<std::size_t>(keep); i < all.size(); ++i) {
    fs::remove(all[i].path, ec);
    HM_OBS_INC("io.snapshot.rotated");
  }
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string fname = it->path().filename().string();
    if (fname.size() > sizeof(kTmpSuffix) - 1 &&
        fname.compare(fname.size() - (sizeof(kTmpSuffix) - 1),
                      sizeof(kTmpSuffix) - 1, kTmpSuffix) == 0 &&
        it->path().string() != path + kTmpSuffix) {
      std::error_code rm_ec;
      fs::remove(it->path(), rm_ec);
      HM_OBS_INC("io.snapshot.orphans_swept");
    }
  }
  return path;
}

std::optional<LoadedSnapshot> load_latest_snapshot(const std::string& dir,
                                                   LoadMiss* miss) {
  const auto fresh_miss = [&] {
    if (miss != nullptr) {
      *miss = LoadMiss{false, 0,
                       "no snapshot data yet under '" + dir +
                           "' (fresh start)"};
    }
  };
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec)) {
    fresh_miss();
    return std::nullopt;
  }

  std::vector<std::string> rejected;
  for (const Candidate& c : list_candidates(dir)) {
    std::vector<std::uint8_t> bytes;
    {
      std::ifstream in(c.path, std::ios::binary | std::ios::ate);
      if (!in.good()) {
        rejected.push_back(c.path + ": cannot open for reading");
        log::warn() << "snapshot candidate rejected — " << rejected.back();
        continue;
      }
      const std::streamoff size = in.tellg();
      in.seekg(0);
      bytes.resize(static_cast<std::size_t>(size));
      if (size > 0) {
        in.read(reinterpret_cast<char*>(bytes.data()), size);
      }
      if (!in.good() && size > 0) {
        rejected.push_back(c.path + ": short read");
        log::warn() << "snapshot candidate rejected — " << rejected.back();
        continue;
      }
    }
    try {
      Snapshot snap = Snapshot::parse(bytes.data(), bytes.size());
      if (!rejected.empty()) {
        log::warn() << "recovered from fallback snapshot '" << c.path
                    << "' after rejecting " << rejected.size()
                    << " newer candidate(s)";
      }
      HM_OBS_INC("io.snapshot.loads");
      HM_OBS_ADD("io.snapshot.load_rejected", rejected.size());
      return LoadedSnapshot{std::move(snap), c.path, c.round,
                            std::move(rejected)};
    } catch (const CheckError& e) {
      rejected.push_back(c.path + ": " + e.what());
      log::warn() << "snapshot candidate rejected — " << rejected.back();
    }
  }
  if (rejected.empty()) {
    fresh_miss();
  } else {
    log::warn() << "no valid snapshot in '" << dir << "' ("
                << rejected.size() << " candidate(s) rejected)";
    if (miss != nullptr) {
      *miss = LoadMiss{
          true, static_cast<index_t>(rejected.size()),
          std::to_string(rejected.size()) + " snapshot candidate(s) under '" +
              dir + "', none valid (corrupt or torn)"};
    }
  }
  return std::nullopt;
}

}  // namespace hm::io
