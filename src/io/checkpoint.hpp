// Binary model-checkpoint persistence and CSV export of training
// histories — the artifacts a downstream user keeps from a run.
//
// Checkpoint format (little-endian): magic "HMCK", u32 version,
// u64 length, f64 payload[length]. Load validates magic/version and the
// exact byte length.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "metrics/history.hpp"

namespace hm::io {

/// Write a flat parameter (or weight) vector; throws CheckError on I/O
/// failure.
void save_vector(const std::string& path, const std::vector<scalar_t>& v);

/// Read back a vector written by save_vector; throws CheckError on
/// malformed files.
std::vector<scalar_t> load_vector(const std::string& path);

/// Write a TrainingHistory as a CSV with a header row. Columns: round,
/// total_rounds, client_edge_rounds, edge_cloud_rounds, edge_cloud_models,
/// client_edge_bytes, edge_cloud_bytes, msgs_delivered, msgs_dropped,
/// msgs_straggled, avg_acc, worst_acc, variance_pct2, loss.
void save_history_csv(const std::string& path,
                      const metrics::TrainingHistory& history);

}  // namespace hm::io
