#include "io/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "core/check.hpp"

namespace hm::io {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_vector(const std::string& path, const std::vector<scalar_t>& v) {
  const std::uint64_t payload_bytes =
      sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      v.size() * sizeof(scalar_t);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HM_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t length = v.size();
  out.write(reinterpret_cast<const char*>(&length), sizeof(length));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(scalar_t)));
  // A full disk can surface only at flush time; without this check a
  // truncated checkpoint would be reported as success.
  out.flush();
  HM_CHECK_MSG(out.good(), "write of " << payload_bytes << " bytes to '"
                                       << path
                                       << "' failed (disk full or I/O error); "
                                          "file is likely truncated");
}

std::vector<scalar_t> load_vector(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HM_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  char magic[4];
  in.read(magic, sizeof(magic));
  HM_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
               "'" << path << "' is not an HM checkpoint");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  HM_CHECK_MSG(in.good() && version == kVersion,
               "unsupported checkpoint version " << version);
  std::uint64_t length = 0;
  in.read(reinterpret_cast<char*>(&length), sizeof(length));
  HM_CHECK(in.good());
  // Validate the embedded length against the bytes actually present
  // BEFORE allocating — a corrupted length field must not trigger a
  // multi-GB allocation.
  const std::streamoff payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streamoff file_end = in.tellg();
  in.seekg(payload_start);
  HM_CHECK_MSG(payload_start >= 0 && file_end >= payload_start,
               "cannot determine size of '" << path << "'");
  const std::uint64_t remaining =
      static_cast<std::uint64_t>(file_end - payload_start);
  HM_CHECK_MSG(length <= remaining / sizeof(scalar_t) &&
                   length * sizeof(scalar_t) == remaining,
               "'" << path << "' declares " << length << " values ("
                   << length << " * " << sizeof(scalar_t)
                   << " bytes) but holds " << remaining
                   << " payload bytes — corrupt or truncated checkpoint");
  std::vector<scalar_t> v(length);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(length * sizeof(scalar_t)));
  HM_CHECK_MSG(in.good(), "'" << path << "' is truncated");
  // Must be exactly at EOF.
  in.peek();
  HM_CHECK_MSG(in.eof(), "'" << path << "' has trailing bytes");
  return v;
}

void save_history_csv(const std::string& path,
                      const metrics::TrainingHistory& history) {
  std::ofstream out(path, std::ios::trunc);
  HM_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << "round,total_rounds,client_edge_rounds,edge_cloud_rounds,"
         "edge_cloud_models,client_edge_bytes,edge_cloud_bytes,"
         "msgs_delivered,msgs_dropped,msgs_straggled,"
         "avg_acc,worst_acc,variance_pct2,loss\n";
  for (const auto& r : history.records()) {
    out << r.round << ',' << r.comm.total_rounds() << ','
        << r.comm.client_edge_rounds << ',' << r.comm.edge_cloud_rounds
        << ',' << r.comm.edge_cloud_models() << ','
        << r.comm.client_edge_bytes << ',' << r.comm.edge_cloud_bytes << ','
        << r.comm.msgs_delivered() << ',' << r.comm.msgs_dropped() << ','
        << r.comm.msgs_straggled() << ',' << r.summary.average << ','
        << r.summary.worst << ',' << r.summary.variance_pct2 << ','
        << r.global_loss << '\n';
  }
  out.flush();
  HM_CHECK_MSG(out.good(),
               "write of " << history.records().size() << " history rows to '"
                           << path
                           << "' failed (disk full or I/O error); file is "
                              "likely truncated");
}

}  // namespace hm::io
