// Durable, crash-safe trainer snapshots: a versioned, little-endian,
// CRC32-checksummed container of tagged sections, written atomically
// (temp file + fsync + rename) with a rotating last-good fallback.
//
// File layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "HMSN"
//   4       4     u32 format version (currently 1)
//   8       4     u32 section count
//   12      4     u32 reserved (0)
//   16      8     u64 payload bytes (sum of encoded section sizes)
//   24      ...   sections, each: u32 tag | u32 kind | u64 len | len bytes
//   24+p    4     u32 CRC32 (IEEE) over bytes [0, 24 + payload)
//
// A snapshot directory holds `snapshot.<round>` files; saving prunes to
// the `keep` newest. Because the rename is atomic and the checksum covers
// the whole file, a crash at *any* byte offset of a write leaves either
// (a) a stale temp file that is never considered, or (b) a torn
// `snapshot.<round>` that fails validation — and loading falls back to
// the previous last-good file in both cases.
//
// Layering: this is the only module (with checkpoint.cpp) allowed to
// touch the filesystem directly — detlint's `direct-persistence` rule
// rejects ofstream/fopen/rename/remove anywhere else under src/.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hm::io {

/// Cadence and placement of durable trainer snapshots. Threaded through
/// algo::TrainOptions / MultiTrainOptions into every trainer.
struct SnapshotPolicy {
  index_t every_k_rounds = 0;  // snapshot after every k-th round; 0 = off
  std::string dir;             // snapshot directory, created on demand
  index_t keep = 2;            // last-good fallback depth (>= 1)

  // Crash-replay harness: when >= 0, the trainer throws SimulatedCrash
  // after completing round index `crash_after_round` (0-based) — after
  // that round's snapshot, if one was due, has been written. Production
  // runs leave this at -1.
  index_t crash_after_round = -1;

  bool enabled() const { return every_k_rounds > 0 && !dir.empty(); }
};

/// Thrown to model a process death: by SnapshotPolicy::crash_after_round
/// and by an armed WriteFaultHook. Deliberately NOT a CheckError — a
/// simulated crash is not a precondition violation.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Test seam for torn-write injection. While installed, the next
/// atomic_write_file truncates the data at `fail_after_bytes` and throws
/// SimulatedCrash; with `rename_anyway` the truncated file is renamed
/// into place first (modeling a rename that beat the data to disk), so
/// loaders must detect the torn payload via the checksum. Not
/// thread-safe: install/clear only around single-threaded test code.
struct WriteFaultHook {
  std::uint64_t fail_after_bytes = 0;
  bool rename_anyway = false;
};

/// Install (or with nullptr clear) the global write-fault hook. The hook
/// object must outlive its installation.
void set_write_fault_hook(const WriteFaultHook* hook);

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Little-endian byte-buffer encoder. f64 values round-trip by bit
/// pattern, so encode/decode is bit-exact for every finite and
/// non-finite double.
class ByteWriter {
 public:
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_bytes(const void* p, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer; every
/// overrun throws CheckError (never reads past the end).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  void read_bytes(void* p, std::size_t n);

  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// The tagged-section container. Tags are caller-chosen u32 constants and
/// must be unique within one snapshot; getters throw CheckError on a
/// missing tag or a kind mismatch, so a decode against the wrong schema
/// fails loudly instead of misinterpreting bytes.
class Snapshot {
 public:
  // Section kinds (wire values; parse rejects anything else).
  static constexpr std::uint32_t kKindU64 = 1;
  static constexpr std::uint32_t kKindF64Vec = 2;
  static constexpr std::uint32_t kKindF64VecList = 3;
  static constexpr std::uint32_t kKindI64Vec = 4;
  static constexpr std::uint32_t kKindBytes = 5;

  void put_u64(std::uint32_t tag, std::uint64_t v);
  void put_f64_vec(std::uint32_t tag, const std::vector<scalar_t>& v);
  void put_f64_vec_list(std::uint32_t tag,
                        const std::vector<std::vector<scalar_t>>& v);
  void put_i64_vec(std::uint32_t tag, const std::vector<std::int64_t>& v);
  void put_bytes(std::uint32_t tag, std::vector<std::uint8_t> payload);

  bool has(std::uint32_t tag) const;
  std::uint64_t get_u64(std::uint32_t tag) const;
  std::vector<scalar_t> get_f64_vec(std::uint32_t tag) const;
  std::vector<std::vector<scalar_t>> get_f64_vec_list(
      std::uint32_t tag) const;
  std::vector<std::int64_t> get_i64_vec(std::uint32_t tag) const;
  const std::vector<std::uint8_t>& get_bytes(std::uint32_t tag) const;

  std::size_t section_count() const { return sections_.size(); }

  /// Serialize to the on-disk byte layout (header + sections + CRC).
  std::vector<std::uint8_t> serialize() const;

  /// Strict parse of a serialized snapshot. Throws CheckError on any
  /// structural anomaly: short header, bad magic, unsupported version,
  /// size mismatch (truncation or trailing bytes), checksum failure,
  /// unknown section kind, section overrunning the payload, duplicate
  /// tags, or kind/size contradictions.
  static Snapshot parse(const std::uint8_t* data, std::size_t n);

 private:
  struct Section {
    std::uint32_t tag = 0;
    std::uint32_t kind = 0;
    std::vector<std::uint8_t> payload;
  };

  const Section& find(std::uint32_t tag, std::uint32_t kind) const;
  void add(std::uint32_t tag, std::uint32_t kind,
           std::vector<std::uint8_t> payload);

  std::vector<Section> sections_;
};

/// Crash-safe durable write: `<path>.tmp` + full write + fsync + atomic
/// rename onto `path` (+ directory fsync). Throws CheckError with the
/// path and byte counts on real I/O failure, SimulatedCrash when the
/// write-fault hook fires.
void atomic_write_file(const std::string& path, const std::uint8_t* data,
                       std::size_t n);

/// Write `snap` as `<dir>/snapshot.<round>` (zero-padded), creating the
/// directory if needed and pruning to the `keep` newest snapshot files
/// (plus any orphaned temp files). Returns the final path.
std::string save_snapshot(const std::string& dir, index_t keep,
                          index_t round, const Snapshot& snap);

struct LoadedSnapshot {
  Snapshot snapshot;
  std::string path;    // the file that validated
  index_t round = 0;   // round parsed from the file name
  // Newer candidates that failed validation, as "path: reason" strings —
  // surfaced so a resume can report that it degraded to a fallback.
  std::vector<std::string> rejected;
};

/// Why load_latest_snapshot returned nullopt. `hard` separates the two
/// cases a resuming caller must treat differently: "no snapshot data
/// yet" (nothing was ever written — a benign fresh start) versus
/// "candidates exist but every one is corrupt or torn" (the store is
/// damaged — surface it loudly instead of silently retraining).
struct LoadMiss {
  bool hard = false;       // true = candidates existed, none validated
  index_t candidates = 0;  // snapshot files examined
  std::string message;     // one-line diagnostic (wording pinned by tests)
};

/// Newest-first scan of `<dir>/snapshot.*`. Corrupt or torn candidates
/// are skipped (with a log::warn naming the reason) and the previous
/// last-good snapshot is returned instead. nullopt when the directory is
/// missing, empty, or holds no valid snapshot at all; `miss` (optional)
/// then says whether that is a fresh start or a damaged store.
std::optional<LoadedSnapshot> load_latest_snapshot(const std::string& dir,
                                                   LoadMiss* miss = nullptr);

}  // namespace hm::io
