// AVX-512 kernel variant: same source as the generic build (see
// kernels_impl.inc), compiled with -mavx512f and 512-bit preferred
// vector width so the 8-double vec_t lane groups become single zmm
// operations. 8x16 register tile = 16 zmm accumulators (two per row) +
// 2 panel vectors, half the 32-register file left for operands (shape
// picked empirically: ~1.4x over 8x8 on the Fig. 3/4 GEMM sizes).
#define HM_KERNEL_NS avx512_kernels
#define HM_KERNEL_TABLE kernel_table_avx512
#define HM_KERNEL_MR 8
#define HM_KERNEL_NR 16
#define HM_KERNEL_VW 8
#include "tensor/kernels_impl.inc"
