// Runtime SIMD dispatch for the tensor kernels.
//
// The determinism contract (vecops.hpp, gemm.hpp) fixes every kernel's
// per-element rounding sequence at the source level: elementwise ops are
// one rounding per element, reductions use 8 named accumulator lanes with
// a fixed combine tree, and the GEMM micro-kernel folds each C(i, j) over
// the reduction index in strictly increasing order regardless of tile
// shape. Because none of that depends on the vector width the compiler
// targets, the SAME source compiled with -mavx2 / -mavx512f is
// bit-identical to the generic build — just faster. Dispatch therefore
// needs no intrinsics at all: kernels_impl.inc is compiled three times
// (generic baseline, AVX2, AVX-512) into distinct namespaces with
// per-ISA register-tile shapes, each TU exports a function-pointer table,
// and the best CPU-supported table is selected once at startup.
//
// The HM_SIMD environment variable ("generic" | "avx2" | "avx512")
// overrides detection for testing; a requested level the CPU cannot run
// falls back to the best supported one (tests read active_simd_level()
// to notice and skip). All tables are always linked in, so the
// equivalence suite can bit-compare every variant in one process via
// detail::kernel_table(level) even when dispatch picked another.
#pragma once

#include "tensor/gemm.hpp"

namespace hm::tensor {

/// Dispatched kernel variants, ordered by capability.
enum class SimdLevel : int { kGeneric = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kNumSimdLevels = 3;

/// The variant every tensor entry point forwards to. Resolved once (CPU
/// detection + HM_SIMD override) on first use and constant afterwards.
SimdLevel active_simd_level();

/// Whether the running CPU can execute the given variant. kGeneric is
/// always true; on non-x86 or unknown compilers only kGeneric is.
bool simd_level_supported(SimdLevel level);

/// "generic" / "avx2" / "avx512".
const char* simd_level_name(SimdLevel level);

namespace detail {

/// Function-pointer table of every dispatched kernel. One instance per
/// compiled variant; signatures mirror the public entry points, and each
/// implementation performs the same HM_CHECK argument validation the
/// public functions always did.
struct KernelTable {
  void (*axpy)(scalar_t, ConstVecView, VecView);
  void (*axpby)(scalar_t, ConstVecView, scalar_t, VecView);
  void (*axpy2)(scalar_t, ConstVecView, scalar_t, ConstVecView, VecView);
  void (*scale)(scalar_t, VecView);
  scalar_t (*dot)(ConstVecView, ConstVecView);
  void (*dot2)(ConstVecView, ConstVecView, ConstVecView, scalar_t&,
               scalar_t&);
  scalar_t (*sum)(ConstVecView);
  scalar_t (*dist2)(ConstVecView, ConstVecView);
  void (*gemm)(ConstMatView, ConstMatView, MatView, scalar_t);
  void (*gemm_nt)(ConstMatView, ConstMatView, MatView, scalar_t);
  void (*gemm_tn)(ConstMatView, ConstMatView, MatView, scalar_t);
  void (*gemv)(ConstMatView, ConstVecView, VecView, scalar_t);
  void (*gemm_batch)(GemmKind, std::span<const GemmGroup>, scalar_t);
  void (*dot_nt)(ConstMatView, ConstMatView, MatView);
  void (*gemm_nt_fma)(ConstMatView, ConstMatView, MatView, scalar_t);
};

/// Table for one specific variant (the equivalence tests iterate these;
/// calling a table the CPU cannot execute is undefined — check
/// simd_level_supported first).
const KernelTable& kernel_table(SimdLevel level);

/// Table for active_simd_level().
const KernelTable& active_kernel_table();

// Per-variant TU entry points (kernels_generic/avx2/avx512.cpp).
const KernelTable& kernel_table_generic();
const KernelTable& kernel_table_avx2();
const KernelTable& kernel_table_avx512();

}  // namespace detail

}  // namespace hm::tensor
