// Baseline kernel variant: compiled with the project-wide target (x86-64
// SSE2 or whatever the platform default is). Tile shape matches the
// original single-variant kernels, so this table IS the historical
// behavior — and, per the determinism contract, the other variants are
// bit-identical to it.
#define HM_KERNEL_NS generic_kernels
#define HM_KERNEL_TABLE kernel_table_generic
#define HM_KERNEL_MR 8
#define HM_KERNEL_NR 6
#define HM_KERNEL_VW 2
#include "tensor/kernels_impl.inc"
