#include "tensor/vecops.hpp"

#include <algorithm>
#include <cmath>

namespace hm::tensor {

void axpy(scalar_t alpha, ConstVecView x, VecView y) {
  HM_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(scalar_t alpha, VecView x) {
  for (auto& v : x) v *= alpha;
}

scalar_t dot(ConstVecView x, ConstVecView y) {
  HM_CHECK(x.size() == y.size());
  scalar_t acc = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

scalar_t nrm2(ConstVecView x) { return std::sqrt(dot(x, x)); }

scalar_t dist2(ConstVecView x, ConstVecView y) {
  HM_CHECK(x.size() == y.size());
  scalar_t acc = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const scalar_t d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void copy(ConstVecView x, VecView y) {
  HM_CHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void set_zero(VecView x) { std::fill(x.begin(), x.end(), scalar_t{0}); }

scalar_t sum(ConstVecView x) {
  scalar_t acc = 0;
  for (const scalar_t v : x) acc += v;
  return acc;
}

scalar_t max(ConstVecView x) {
  HM_CHECK(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

index_t argmax(ConstVecView x) {
  HM_CHECK(!x.empty());
  return static_cast<index_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

void project_l2_ball(VecView x, scalar_t radius) {
  if (radius <= 0) return;  // W = R^d
  const scalar_t norm = nrm2(x);
  if (norm > radius) scale(radius / norm, x);
}

}  // namespace hm::tensor
