// Public BLAS-1 entry points. The arithmetic lives in kernels_impl.inc,
// compiled once per SIMD variant (see simd.hpp); these wrappers forward
// to the table selected at startup. Argument validation happens inside
// the kernels themselves, so the forwards add nothing but an indirect
// call. Order-insensitive helpers (copy, set_zero, max, argmax) have no
// variant-dependent codegen worth dispatching and stay here.
#include "tensor/vecops.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/simd.hpp"

namespace hm::tensor {

void axpy(scalar_t alpha, ConstVecView x, VecView y) {
  detail::active_kernel_table().axpy(alpha, x, y);
}

void axpby(scalar_t alpha, ConstVecView x, scalar_t beta, VecView y) {
  detail::active_kernel_table().axpby(alpha, x, beta, y);
}

void axpy2(scalar_t a0, ConstVecView x0, scalar_t a1, ConstVecView x1,
           VecView y) {
  detail::active_kernel_table().axpy2(a0, x0, a1, x1, y);
}

void scale(scalar_t alpha, VecView x) {
  detail::active_kernel_table().scale(alpha, x);
}

scalar_t dot(ConstVecView x, ConstVecView y) {
  return detail::active_kernel_table().dot(x, y);
}

void dot2(ConstVecView x, ConstVecView y0, ConstVecView y1, scalar_t& r0,
          scalar_t& r1) {
  detail::active_kernel_table().dot2(x, y0, y1, r0, r1);
}

scalar_t nrm2(ConstVecView x) { return std::sqrt(dot(x, x)); }

scalar_t dist2(ConstVecView x, ConstVecView y) {
  return detail::active_kernel_table().dist2(x, y);
}

void copy(ConstVecView x, VecView y) {
  HM_CHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void set_zero(VecView x) { std::fill(x.begin(), x.end(), scalar_t{0}); }

scalar_t sum(ConstVecView x) { return detail::active_kernel_table().sum(x); }

scalar_t max(ConstVecView x) {
  HM_CHECK(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

index_t argmax(ConstVecView x) {
  HM_CHECK(!x.empty());
  return static_cast<index_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

void project_l2_ball(VecView x, scalar_t radius) {
  if (radius <= 0) return;  // W = R^d
  const scalar_t norm = nrm2(x);
  if (norm > radius) scale(radius / norm, x);
}

}  // namespace hm::tensor
