// Unroll-by-8 kernels with a fixed lane-reduction order (see vecops.hpp
// for the determinism contract). The multi-accumulator reductions break
// the FP-add latency chain that a strict sequential sum would serialize
// on, while keeping results independent of ISA vector width and thread
// count: the 8 lanes are named source-level accumulators, so the compiler
// may vectorize them (2 lanes per SSE register, 4 per AVX, 8 per AVX-512)
// without changing which elements meet in which addition.
#include "tensor/vecops.hpp"

#include <algorithm>
#include <cmath>

namespace hm::tensor {

namespace {

/// Fixed pairwise combine of the 8 lanes: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
inline scalar_t reduce_lanes(const scalar_t a[kLanes]) {
  return ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
}

}  // namespace

void axpy(scalar_t alpha, ConstVecView x, VecView y) {
  HM_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const scalar_t* HM_RESTRICT px = x.data();
  scalar_t* HM_RESTRICT py = y.data();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) py[i + j] += alpha * px[i + j];
  }
  for (; i < n; ++i) py[i] += alpha * px[i];
}

void axpby(scalar_t alpha, ConstVecView x, scalar_t beta, VecView y) {
  HM_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const scalar_t* HM_RESTRICT px = x.data();
  scalar_t* HM_RESTRICT py = y.data();
  if (beta == 0) {
    for (std::size_t i = 0; i < n; ++i) py[i] = alpha * px[i];
    return;
  }
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      py[i + j] = alpha * px[i + j] + beta * py[i + j];
    }
  }
  for (; i < n; ++i) py[i] = alpha * px[i] + beta * py[i];
}

void axpy2(scalar_t a0, ConstVecView x0, scalar_t a1, ConstVecView x1,
           VecView y) {
  HM_CHECK(x0.size() == y.size() && x1.size() == y.size());
  const std::size_t n = y.size();
  const scalar_t* HM_RESTRICT p0 = x0.data();
  const scalar_t* HM_RESTRICT p1 = x1.data();
  scalar_t* HM_RESTRICT py = y.data();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      py[i + j] = (py[i + j] + a0 * p0[i + j]) + a1 * p1[i + j];
    }
  }
  for (; i < n; ++i) py[i] = (py[i] + a0 * p0[i]) + a1 * p1[i];
}

void scale(scalar_t alpha, VecView x) {
  scalar_t* HM_RESTRICT p = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) p[i] *= alpha;
}

scalar_t dot(ConstVecView x, ConstVecView y) {
  HM_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const scalar_t* HM_RESTRICT px = x.data();
  const scalar_t* HM_RESTRICT py = y.data();
  scalar_t acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) acc[j] += px[i + j] * py[i + j];
  }
  HM_ASSERT(n - i < kLanes);  // tail shorter than one lane block
  for (std::size_t j = 0; i + j < n; ++j) acc[j] += px[i + j] * py[i + j];
  return reduce_lanes(acc);
}

void dot2(ConstVecView x, ConstVecView y0, ConstVecView y1, scalar_t& r0,
          scalar_t& r1) {
  HM_CHECK(x.size() == y0.size() && x.size() == y1.size());
  const std::size_t n = x.size();
  const scalar_t* HM_RESTRICT px = x.data();
  const scalar_t* HM_RESTRICT p0 = y0.data();
  const scalar_t* HM_RESTRICT p1 = y1.data();
  scalar_t acc0[kLanes] = {};
  scalar_t acc1[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const scalar_t xv = px[i + j];
      acc0[j] += xv * p0[i + j];
      acc1[j] += xv * p1[i + j];
    }
  }
  HM_ASSERT(n - i < kLanes);
  for (std::size_t j = 0; i + j < n; ++j) {
    const scalar_t xv = px[i + j];
    acc0[j] += xv * p0[i + j];
    acc1[j] += xv * p1[i + j];
  }
  r0 = reduce_lanes(acc0);
  r1 = reduce_lanes(acc1);
}

scalar_t nrm2(ConstVecView x) { return std::sqrt(dot(x, x)); }

scalar_t dist2(ConstVecView x, ConstVecView y) {
  HM_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const scalar_t* HM_RESTRICT px = x.data();
  const scalar_t* HM_RESTRICT py = y.data();
  scalar_t acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const scalar_t d = px[i + j] - py[i + j];
      acc[j] += d * d;
    }
  }
  HM_ASSERT(n - i < kLanes);
  for (std::size_t j = 0; i + j < n; ++j) {
    const scalar_t d = px[i + j] - py[i + j];
    acc[j] += d * d;
  }
  return std::sqrt(reduce_lanes(acc));
}

void copy(ConstVecView x, VecView y) {
  HM_CHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void set_zero(VecView x) { std::fill(x.begin(), x.end(), scalar_t{0}); }

scalar_t sum(ConstVecView x) {
  const std::size_t n = x.size();
  const scalar_t* HM_RESTRICT p = x.data();
  scalar_t acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) acc[j] += p[i + j];
  }
  HM_ASSERT(n - i < kLanes);
  for (std::size_t j = 0; i + j < n; ++j) acc[j] += p[i + j];
  return reduce_lanes(acc);
}

scalar_t max(ConstVecView x) {
  HM_CHECK(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

index_t argmax(ConstVecView x) {
  HM_CHECK(!x.empty());
  return static_cast<index_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

void project_l2_ball(VecView x, scalar_t radius) {
  if (radius <= 0) return;  // W = R^d
  const scalar_t norm = nrm2(x);
  if (norm > radius) scale(radius / norm, x);
}

}  // namespace hm::tensor
