// BLAS-1 style kernels on contiguous spans. These are the hot loops of
// federated aggregation (axpy/scale over flat parameter vectors) and the
// local-SGD update.
//
// Implementation contract (the "determinism contract" relied on by the
// kernel-equivalence tests and by the cross-thread-count reproducibility
// guarantee):
//
//  * Elementwise kernels (axpy, axpby, axpy2, scale, copy) perform exactly
//    one rounding sequence per element, identical to the obvious scalar
//    loop, so they are bit-identical to a naive reference on any ISA.
//  * Reduction kernels (dot, dot2, sum, dist2) accumulate into kLanes = 8
//    fixed lanes — lane j folds the elements with index ≡ j (mod 8), in
//    increasing index order — and combine the lanes with the fixed pairwise
//    tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). The lane count is a
//    source-level constant, so results do not depend on the vector width
//    the compiler targets, on -march flags, or on thread count.
//  * The build disables FMA contraction (-ffp-contract=off) so a*b+c is
//    two roundings everywhere, matching the scalar references.
#pragma once

#include "tensor/matrix.hpp"

namespace hm::tensor {

/// Number of independent accumulator lanes used by the reduction kernels.
/// Part of the public determinism contract (see header comment).
inline constexpr std::size_t kLanes = 8;

/// y += alpha * x
void axpy(scalar_t alpha, ConstVecView x, VecView y);

/// y = alpha * x + beta * y. Fuses the scale-then-axpy pair of the
/// decayed SGD update into one pass; for beta != 0 the result is
/// bit-identical to scale(beta, y); axpy(alpha, x, y). beta == 0 is
/// pure overwrite by design: no 0*y term is evaluated, so
/// uninitialized/NaN y is permitted (and, unlike the scale/axpy chain,
/// NaN or -0.0 in y cannot leak into the result).
void axpby(scalar_t alpha, ConstVecView x, scalar_t beta, VecView y);

/// y += a0 * x0 + a1 * x1, evaluated per element as (y + a0*x0) + a1*x1.
/// Bit-identical to axpy(a0, x0, y); axpy(a1, x1, y) but with one pass
/// over y instead of two (the aggregation hot loop).
void axpy2(scalar_t a0, ConstVecView x0, scalar_t a1, ConstVecView x1,
           VecView y);

/// x *= alpha
void scale(scalar_t alpha, VecView x);

/// <x, y> (8-lane fixed-order reduction; see header contract)
scalar_t dot(ConstVecView x, ConstVecView y);

/// r0 = <x, y0>, r1 = <x, y1> in a single pass over x. Each result is
/// bit-identical to the corresponding dot() call; x is loaded once.
void dot2(ConstVecView x, ConstVecView y0, ConstVecView y1, scalar_t& r0,
          scalar_t& r1);

/// ||x||_2
scalar_t nrm2(ConstVecView x);

/// ||x - y||_2
scalar_t dist2(ConstVecView x, ConstVecView y);

/// y = x (sizes must match)
void copy(ConstVecView x, VecView y);

/// x = 0
void set_zero(VecView x);

/// sum of entries (8-lane fixed-order reduction)
scalar_t sum(ConstVecView x);

/// max entry (requires non-empty)
scalar_t max(ConstVecView x);

/// index of the max entry (first on ties; requires non-empty)
index_t argmax(ConstVecView x);

/// Project x onto the L2 ball of the given radius centered at the origin.
/// radius <= 0 means "unconstrained" (identity), matching W = R^d.
void project_l2_ball(VecView x, scalar_t radius);

}  // namespace hm::tensor
