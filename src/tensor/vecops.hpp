// BLAS-1 style kernels on contiguous spans. These are the hot loops of
// federated aggregation (axpy/scale over flat parameter vectors); they are
// written as simple countable loops so the compiler auto-vectorizes them.
#pragma once

#include "tensor/matrix.hpp"

namespace hm::tensor {

/// y += alpha * x
void axpy(scalar_t alpha, ConstVecView x, VecView y);

/// x *= alpha
void scale(scalar_t alpha, VecView x);

/// <x, y>
scalar_t dot(ConstVecView x, ConstVecView y);

/// ||x||_2
scalar_t nrm2(ConstVecView x);

/// ||x - y||_2
scalar_t dist2(ConstVecView x, ConstVecView y);

/// y = x (sizes must match)
void copy(ConstVecView x, VecView y);

/// x = 0
void set_zero(VecView x);

/// sum of entries
scalar_t sum(ConstVecView x);

/// max entry (requires non-empty)
scalar_t max(ConstVecView x);

/// index of the max entry (first on ties; requires non-empty)
index_t argmax(ConstVecView x);

/// Project x onto the L2 ball of the given radius centered at the origin.
/// radius <= 0 means "unconstrained" (identity), matching W = R^d.
void project_l2_ball(VecView x, scalar_t radius);

}  // namespace hm::tensor
