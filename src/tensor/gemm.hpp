// Matrix multiply kernels for the NN forward/backward passes.
//
// Shapes follow the row-major convention used across hm::nn:
//   C(m x n) (+)= A(m x k) * B(k x n)            — gemm
//   C(m x n) (+)= A(m x k) * B(n x k)^T          — gemm_nt
//   C(k x n) (+)= A(m x k)^T * B(m x n)          — gemm_tn
//
// The kernels are cache-blocked and, above a size threshold, split over
// rows of C on the global thread pool. Row-splitting keeps writes disjoint
// so no synchronization is needed and results are deterministic.
#pragma once

#include "tensor/matrix.hpp"

namespace hm::tensor {

/// If beta == 0 the output is overwritten, else C = beta*C + A*B.
void gemm(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// C = beta*C + A * B^T.
void gemm_nt(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// C = beta*C + A^T * B.
void gemm_tn(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// y = beta*y + A * x (dense matrix-vector).
void gemv(ConstMatView a, ConstVecView x, VecView y, scalar_t beta = 0);

}  // namespace hm::tensor
