// Matrix multiply kernels for the NN forward/backward passes.
//
// Shapes follow the row-major convention used across hm::nn:
//   C(m x n) (+)= A(m x k) * B(k x n)            — gemm
//   C(m x n) (+)= A(m x k) * B(n x k)^T          — gemm_nt
//   C(k x n) (+)= A(m x k)^T * B(m x n)          — gemm_tn
//
// Implementation: a register-tiled MR x NR micro-kernel accumulates over
// the reduction index in strictly increasing order. gemm/gemm_tn read B
// in place (its columns are already contiguous); gemm_nt packs B^T once
// per call into NR-wide k-major panels reused across every row block of
// C — or, when A has only a handful of rows, computes the transposed
// product with the small side packed instead. Above a flop threshold the
// row blocks of C are split across the global thread pool; writes are
// disjoint per row, and each C(i, j) folds its k-terms in the same fixed
// order no matter how the rows are distributed, so results are
// bit-identical for any pool size and match the naive triple loop exactly
// (FMA contraction is disabled build-wide; see vecops.hpp for the
// determinism contract).
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace hm::tensor {

/// If beta == 0 the output is overwritten, else C = beta*C + A*B.
void gemm(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// C = beta*C + A * B^T.
void gemm_nt(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// C = beta*C + A^T * B.
void gemm_tn(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// y = beta*y + A * x (dense matrix-vector; rows are processed pairwise
/// with the fused dot2 kernel and split across the pool for tall A).
void gemv(ConstMatView a, ConstVecView x, VecView y, scalar_t beta = 0);

/// Which single-call multiply a GemmGroup stands for.
enum class GemmKind { kNN, kNT, kTN };

/// One independent multiply of a batch: the same (a, b, c) triple the
/// corresponding single gemm/gemm_nt/gemm_tn call would take. Outputs of
/// distinct groups must not overlap.
struct GemmGroup {
  ConstMatView a;
  ConstMatView b;
  MatView c;
};

/// Run every group's multiply, bit-identical per group to the matching
/// single call, but scheduled as one shared task list: all groups' packing
/// runs in one parallel region and all groups' row bands in a second, so a
/// batch of per-client multiplies (the clients x layers schedule of the
/// batched trainer engine) fills the pool even when each group alone is
/// below the single-call parallelization threshold.
void gemm_batch(GemmKind kind, std::span<const GemmGroup> groups,
                scalar_t beta = 0);

/// C(i, j) = <a.row(i), b.row(j)> with the vecops 8-lane fixed-order dot
/// reduction (NOT the gemm micro-kernel order): bit-identical to looping
/// dot()/dot2() per element, which is what the per-sample model paths do.
/// Used by the batched softmax/linear paths so a whole logits block keeps
/// the exact per-row rounding of the unbatched oracle.
void dot_nt(ConstMatView a, ConstMatView b, MatView c);

/// C = beta*C + A * B^T with an explicitly FUSED accumulator update:
/// acc = fma(a, b, acc), one rounding per term instead of two. IEEE-754
/// fusedMultiplyAdd is exactly specified, so this kernel family is still
/// deterministic and bit-identical across every SIMD variant, tile shape
/// and pool size (the equivalence suite covers it) — but it is a
/// DIFFERENT rounding sequence from gemm_nt, not a drop-in replacement.
/// Use it only where the caller declares rounding freedom: evaluation
/// forwards (Model::loss / Model::predict), never a gradient path whose
/// bits an oracle comparison pins down. This is unrelated to compiler FP
/// contraction, which remains disabled build-wide: the fusion here is
/// requested per call site.
void gemm_nt_fma(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

}  // namespace hm::tensor
