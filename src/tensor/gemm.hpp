// Matrix multiply kernels for the NN forward/backward passes.
//
// Shapes follow the row-major convention used across hm::nn:
//   C(m x n) (+)= A(m x k) * B(k x n)            — gemm
//   C(m x n) (+)= A(m x k) * B(n x k)^T          — gemm_nt
//   C(k x n) (+)= A(m x k)^T * B(m x n)          — gemm_tn
//
// Implementation: a register-tiled MR x NR micro-kernel accumulates over
// the reduction index in strictly increasing order. gemm/gemm_tn read B
// in place (its columns are already contiguous); gemm_nt packs B^T once
// per call into NR-wide k-major panels reused across every row block of
// C — or, when A has only a handful of rows, computes the transposed
// product with the small side packed instead. Above a flop threshold the
// row blocks of C are split across the global thread pool; writes are
// disjoint per row, and each C(i, j) folds its k-terms in the same fixed
// order no matter how the rows are distributed, so results are
// bit-identical for any pool size and match the naive triple loop exactly
// (FMA contraction is disabled build-wide; see vecops.hpp for the
// determinism contract).
#pragma once

#include "tensor/matrix.hpp"

namespace hm::tensor {

/// If beta == 0 the output is overwritten, else C = beta*C + A*B.
void gemm(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// C = beta*C + A * B^T.
void gemm_nt(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// C = beta*C + A^T * B.
void gemm_tn(ConstMatView a, ConstMatView b, MatView c, scalar_t beta = 0);

/// y = beta*y + A * x (dense matrix-vector; rows are processed pairwise
/// with the fused dot2 kernel and split across the pool for tall A).
void gemv(ConstMatView a, ConstVecView x, VecView y, scalar_t beta = 0);

}  // namespace hm::tensor
