// AVX2 kernel variant: same source as the generic build (see
// kernels_impl.inc), compiled with -mavx2 so the 4-double vec_t lane
// groups become single ymm operations. 4x8 register tile = 8 ymm
// accumulators + 2 panel vectors, comfortably inside the 16-register
// file (shape picked empirically; wider tiles spill).
#define HM_KERNEL_NS avx2_kernels
#define HM_KERNEL_TABLE kernel_table_avx2
#define HM_KERNEL_MR 4
#define HM_KERNEL_NR 8
#define HM_KERNEL_VW 4
#include "tensor/kernels_impl.inc"
