// Elementwise / rowwise nonlinearities shared by the NN layers.
#pragma once

#include "tensor/matrix.hpp"

namespace hm::tensor {

/// In-place ReLU.
void relu(VecView x);

/// grad_in = grad_out ⊙ 1[activation > 0], written into grad_out in place.
/// `activation` holds the post-ReLU values of the forward pass.
void relu_backward(ConstVecView activation, VecView grad_out);

/// Numerically stable in-place softmax over each row of `logits`.
void softmax_rows(Matrix& logits);

/// log(sum_j exp(x_j)) with the max-shift trick.
scalar_t log_sum_exp(ConstVecView x);

}  // namespace hm::tensor
