#include "tensor/activations.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/vecops.hpp"

namespace hm::tensor {

void relu(VecView x) {
  for (auto& v : x) v = std::max(v, scalar_t{0});
}

void relu_backward(ConstVecView activation, VecView grad_out) {
  HM_CHECK(activation.size() == grad_out.size());
  for (std::size_t i = 0; i < activation.size(); ++i) {
    if (activation[i] <= 0) grad_out[i] = 0;
  }
}

void softmax_rows(Matrix& logits) {
  for (index_t r = 0; r < logits.rows(); ++r) {
    VecView row = logits.row(r);
    const scalar_t shift = max(row);
    scalar_t total = 0;
    for (auto& v : row) {
      v = std::exp(v - shift);
      total += v;
    }
    scale(scalar_t{1} / total, row);
  }
}

scalar_t log_sum_exp(ConstVecView x) {
  const scalar_t shift = max(x);
  scalar_t total = 0;
  for (const scalar_t v : x) total += std::exp(v - shift);
  return shift + std::log(total);
}

}  // namespace hm::tensor
