// SIMD level detection and table selection (see simd.hpp).
#include "tensor/simd.hpp"

#include <cstdlib>
#include <cstring>

// simd.cpp is the one tensor TU allowed to touch obs (dispatch-table
// publication); the kernels themselves must stay instrumentation-free
// (detlint: obs-in-kernel).
#include "obs/obs.hpp"

namespace hm::tensor {

namespace {

bool cpu_supports(SimdLevel level) {
  if (level == SimdLevel::kGeneric) return true;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (level) {
    case SimdLevel::kGeneric:
      return true;
    case SimdLevel::kAvx2:
      // Both x86 variants also need the FMA bit: the explicitly-fused
      // gemm_nt_fma kernel compiles to vfmadd there (-mfma on the TU).
      // Every AVX2-capable CPU ships FMA3, so this never demotes in
      // practice; it just keeps detection honest.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdLevel::kAvx512:
      // The kernels are compiled with -mavx512f -mavx512vl -mavx512dq
      // -mavx512bw (the skylake-avx512 common subset) plus -mfma.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("fma");
  }
  return false;
#else
  return false;
#endif
}

SimdLevel best_supported() {
  if (cpu_supports(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (cpu_supports(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kGeneric;
}

SimdLevel resolve_level() {
  const char* req = std::getenv("HM_SIMD");
  if (req != nullptr) {
    // An unrecognized value falls through to detection; a recognized but
    // unsupported one clamps to the best the CPU can run (tests compare
    // active_simd_level() against what they forced and skip on mismatch).
    SimdLevel want = best_supported();
    bool known = true;
    if (std::strcmp(req, "generic") == 0) {
      want = SimdLevel::kGeneric;
    } else if (std::strcmp(req, "avx2") == 0) {
      want = SimdLevel::kAvx2;
    } else if (std::strcmp(req, "avx512") == 0) {
      want = SimdLevel::kAvx512;
    } else {
      known = false;
    }
    if (known && cpu_supports(want)) return want;
  }
  return best_supported();
}

}  // namespace

SimdLevel active_simd_level() {
  static const SimdLevel level = [] {
    const SimdLevel resolved = resolve_level();
    // Publish the dispatch decision once. Host capability is build/host
    // config, not timing: a run's value channel is only comparable
    // across runs that pin HM_SIMD (as the determinism tests do).
    HM_OBS_SET("tensor.simd.active_level",
               static_cast<std::int64_t>(resolved));
    HM_OBS_SET("tensor.simd.avx2_supported",
               cpu_supports(SimdLevel::kAvx2) ? 1 : 0);
    HM_OBS_SET("tensor.simd.avx512_supported",
               cpu_supports(SimdLevel::kAvx512) ? 1 : 0);
    return resolved;
  }();
  return level;
}

bool simd_level_supported(SimdLevel level) { return cpu_supports(level); }

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return "generic";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

namespace detail {

const KernelTable& kernel_table(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return kernel_table_generic();
    case SimdLevel::kAvx2:
      return kernel_table_avx2();
    case SimdLevel::kAvx512:
      return kernel_table_avx512();
  }
  return kernel_table_generic();
}

const KernelTable& active_kernel_table() {
  static const KernelTable& table = kernel_table(active_simd_level());
  return table;
}

}  // namespace detail

}  // namespace hm::tensor
