// Public GEMM entry points. The cache-blocked, register-tiled machinery
// lives in kernels_impl.inc, compiled once per SIMD variant with a
// per-ISA micro-tile shape (see simd.hpp); these wrappers forward to the
// table selected at startup. Shape validation happens inside the kernels
// themselves, so the forwards add nothing but an indirect call. The
// per-element reduction order is tile-shape-independent, so every variant
// is bit-identical (tests/test_tensor.cpp enforces 0 ULP).
#include "tensor/gemm.hpp"

#include "tensor/simd.hpp"

namespace hm::tensor {

void gemm(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  detail::active_kernel_table().gemm(a, b, c, beta);
}

void gemm_nt(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  detail::active_kernel_table().gemm_nt(a, b, c, beta);
}

void gemm_tn(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  detail::active_kernel_table().gemm_tn(a, b, c, beta);
}

void gemv(ConstMatView a, ConstVecView x, VecView y, scalar_t beta) {
  detail::active_kernel_table().gemv(a, x, y, beta);
}

void gemm_batch(GemmKind kind, std::span<const GemmGroup> groups,
                scalar_t beta) {
  detail::active_kernel_table().gemm_batch(kind, groups, beta);
}

void dot_nt(ConstMatView a, ConstMatView b, MatView c) {
  detail::active_kernel_table().dot_nt(a, b, c);
}

void gemm_nt_fma(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  detail::active_kernel_table().gemm_nt_fma(a, b, c, beta);
}

}  // namespace hm::tensor
