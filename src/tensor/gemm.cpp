// Cache-blocked, register-tiled GEMM. All variants share one micro-kernel
// that accumulates C(i, j) over the reduction index p in strictly
// increasing order into a register tile, so every output element is
// computed with exactly the naive-loop rounding sequence regardless of
// tiling, operand layout, ISA vector width, or how row bands are assigned
// to threads.
//
// Operand layout strategy (perf only — numerics are identical on every
// path):
//  - gemm / gemm_tn read op(B) straight from B with its row stride; the
//    inner kNR columns are contiguous either way, so packing would only
//    add traffic.
//  - gemm_nt needs op(B)(p, j) = B(j, p), whose columns are strided in
//    memory; B is repacked once per call into kNR-wide k-major panels
//    reused across all row bands.
//  - gemm_nt with few rows (m <= kSwapRows, n >> m) computes the
//    transposed product C^T = B * A^T instead, packing the small A side,
//    and transposes the result back. FP multiply is commutative, so each
//    element still sees its exact reduction sequence.
#include "tensor/gemm.hpp"

#include <vector>

#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::tensor {

namespace {

/// Micro-tile height (rows of C per register tile).
constexpr index_t kMR = 8;
/// Micro-tile width (columns of C per register tile / packed panel width).
/// 8x6 doubles fill the SSE2 register file without spilling the
/// accumulators; wider tiles fall off a cliff.
constexpr index_t kNR = 6;
/// Rows of C per parallel row band; one band is one scheduler chunk.
constexpr index_t kMC = 64;
/// Flop threshold (2*m*n*k) below which the whole multiply runs serially;
/// spawning a parallel region for tiny batches costs more than the math.
constexpr index_t kParallelFlops = 1 << 18;
/// gemm_nt row-count bound for the transposed-compute path.
constexpr index_t kSwapRows = 16;

/// How the micro-kernel walks op(B): `data` points at the first strip,
/// strip s starts at data + s*strip_stride, and row p of a strip is at
/// p*row_stride. Covers both packed panels (row_stride kNR) and direct
/// access into B (row_stride ldb).
struct BDesc {
  const scalar_t* data;
  index_t row_stride;
  index_t strip_stride;
};

void check_output(ConstMatView c, index_t rows, index_t cols) {
  HM_CHECK_MSG(c.rows() == rows && c.cols() == cols,
               "gemm output shape (" << c.rows() << "x" << c.cols()
                                     << ") != (" << rows << "x" << cols << ")");
}

void apply_beta(MatView c, scalar_t beta) {
  if (beta == 0) {
    set_zero(c.flat());
  } else if (beta != 1) {
    scale(beta, c.flat());
  }
}

/// Pack columns of B^T (logical K x N, stored as B(N x K) row-major) into
/// kNR-wide k-major panels: dst[s][p*kNR + jj] = B(s*kNR + jj, p). The
/// padding columns of the last panel are zero-filled (the exact-width
/// micro-kernels never read them; the fill just keeps the panel fully
/// initialized). Writes are contiguous; reads advance kNR parallel
/// sequential streams, one per source row.
void pack_bt(const scalar_t* HM_RESTRICT b, index_t ldb, index_t K, index_t N,
             std::vector<scalar_t>& packed) {
  HM_ASSERT_MSG(K >= 0 && N >= 0 && ldb >= K,
                "pack_bt K=" << K << " N=" << N << " ldb=" << ldb);
  const index_t strips = (N + kNR - 1) / kNR;
  packed.resize(static_cast<std::size_t>(strips * K * kNR));
  for (index_t s = 0; s < strips; ++s) {
    const index_t j0 = s * kNR;
    const index_t w = std::min(kNR, N - j0);
    scalar_t* HM_RESTRICT panel = packed.data() + s * K * kNR;
    const scalar_t* HM_RESTRICT src = b + j0 * ldb;
    for (index_t p = 0; p < K; ++p) {
      scalar_t* HM_RESTRICT out = panel + p * kNR;
      for (index_t jj = 0; jj < w; ++jj) out[jj] = src[jj * ldb + p];
      for (index_t jj = w; jj < kNR; ++jj) out[jj] = 0;
    }
  }
}

/// MR x NRW register tile: acc(ii, jj) = sum_p opA(i0+ii, p) * opB(p, jj)
/// with p strictly increasing, then C (+)= acc. opA element (i, p) lives
/// at a[i*a_rs + p*a_cs], which covers both A (rs=lda, cs=1) and A^T
/// (rs=1, cs=lda) without packing A. NRW is the exact tile width: tail
/// strips dispatch to narrower instantiations, so the kernel never reads
/// past the operand and never spends flops on padding columns. Store
/// overwrites C instead of accumulating: K is never split, so each output
/// element belongs to exactly one micro-tile and a beta==0 multiply needs
/// no zero-fill pass (storing acc and adding acc to zero are the same
/// value, so numerics are unchanged).
template <int MR, int NRW, bool Store>
void micro_kernel(index_t K, const scalar_t* HM_RESTRICT a, index_t a_rs,
                  index_t a_cs, const scalar_t* HM_RESTRICT b, index_t b_rs,
                  scalar_t* HM_RESTRICT c, index_t ldc) {
  scalar_t acc[MR][NRW] = {};
  for (index_t p = 0; p < K; ++p) {
    const scalar_t* HM_RESTRICT brow = b + p * b_rs;
    for (int ii = 0; ii < MR; ++ii) {
      const scalar_t av = a[ii * a_rs + p * a_cs];
      for (int jj = 0; jj < NRW; ++jj) acc[ii][jj] += av * brow[jj];
    }
  }
  for (int ii = 0; ii < MR; ++ii) {
    scalar_t* HM_RESTRICT crow = c + ii * ldc;
    for (int jj = 0; jj < NRW; ++jj) {
      if constexpr (Store) {
        crow[jj] = acc[ii][jj];
      } else {
        crow[jj] += acc[ii][jj];
      }
    }
  }
}

template <int NRW, bool Store>
void micro_rows(index_t rows, index_t K, const scalar_t* a, index_t a_rs,
                index_t a_cs, const scalar_t* b, index_t b_rs, scalar_t* c,
                index_t ldc) {
  switch (rows) {
    case 8: micro_kernel<8, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 7: micro_kernel<7, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 6: micro_kernel<6, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 5: micro_kernel<5, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 4: micro_kernel<4, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 3: micro_kernel<3, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 2: micro_kernel<2, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    default: micro_kernel<1, NRW, Store>(K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
  }
}

template <bool Store>
void micro_tile(index_t rows, index_t ncols, index_t K, const scalar_t* a,
                index_t a_rs, index_t a_cs, const scalar_t* b, index_t b_rs,
                scalar_t* c, index_t ldc) {
  switch (ncols) {
    case 6: micro_rows<6, Store>(rows, K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 5: micro_rows<5, Store>(rows, K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 4: micro_rows<4, Store>(rows, K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 3: micro_rows<3, Store>(rows, K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    case 2: micro_rows<2, Store>(rows, K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
    default: micro_rows<1, Store>(rows, K, a, a_rs, a_cs, b, b_rs, c, ldc); break;
  }
}

/// op(B) size (in doubles) under which the whole operand is treated as
/// cache-resident and the loop nest puts row blocks outside (256 KiB).
constexpr index_t kBResidentDoubles = 32 * 1024;

/// One band of rows [i0, i1). Loop-nest order is a pure traffic decision
/// (per-element math is unaffected): normally strips are outer so each
/// K x kNR strip of op(B) stays hot while the band's rows of opA stream;
/// but when all of op(B) fits in cache (small N*K — the batch-sized and
/// small-K multiplies), row blocks go outer so opA and C are each
/// touched exactly once instead of once per strip.
template <bool Store>
void run_band(index_t i0, index_t i1, index_t N, index_t K, const scalar_t* a,
              index_t a_rs, index_t a_cs, const BDesc& bd, scalar_t* c,
              index_t ldc) {
  const index_t strips = (N + kNR - 1) / kNR;
  auto tile = [&](index_t i, index_t rows, index_t s) {
    const scalar_t* bs = bd.data + s * bd.strip_stride;
    const index_t j0 = s * kNR;
    // Tile invariants: an off-by-one here is a silent out-of-bounds read
    // in the micro-kernel, so pin them down in sanitizer/debug builds.
    HM_ASSERT_MSG(rows > 0 && rows <= kMR && j0 < N,
                  "tile rows=" << rows << " j0=" << j0 << " N=" << N);
    micro_tile<Store>(rows, std::min(kNR, N - j0), K, a + i * a_rs, a_rs,
                      a_cs, bs, bd.row_stride, c + i * ldc + j0, ldc);
  };
  if (N * K <= kBResidentDoubles) {
    for (index_t i = i0; i < i1; i += kMR) {
      const index_t rows = std::min(kMR, i1 - i);
      for (index_t s = 0; s < strips; ++s) tile(i, rows, s);
    }
  } else {
    for (index_t s = 0; s < strips; ++s) {
      for (index_t i = i0; i < i1; i += kMR) {
        tile(i, std::min(kMR, i1 - i), s);
      }
    }
  }
}

/// C(M x N) (+)= opA(M x K) * opB(K x N); `accumulate` selects += vs
/// overwrite. Row bands are independent (disjoint writes) and each
/// element's reduction order is fixed, so the parallel split cannot
/// change results. The caller must handle K == 0 (no-op here).
void compute(index_t M, index_t N, index_t K, const scalar_t* a, index_t a_rs,
             index_t a_cs, const BDesc& bd, scalar_t* c, index_t ldc,
             bool accumulate) {
  if (M == 0 || N == 0 || K == 0) return;
  const index_t bands = (M + kMC - 1) / kMC;
  auto band = [&](index_t bi) {
    HM_ASSERT_BOUNDS(bi, bands);
    const index_t i0 = bi * kMC;
    const index_t i1 = std::min(M, i0 + kMC);
    HM_ASSERT(i0 < i1 && i1 <= M);
    if (accumulate) {
      run_band<false>(i0, i1, N, K, a, a_rs, a_cs, bd, c, ldc);
    } else {
      run_band<true>(i0, i1, N, K, a, a_rs, a_cs, bd, c, ldc);
    }
  };
  if (bands > 1 && 2 * M * N * K >= kParallelFlops) {
    parallel::parallel_for(0, bands, band, /*grain=*/1);
  } else {
    for (index_t bi = 0; bi < bands; ++bi) band(bi);
  }
}

/// Per-thread scratch buffers, reused across calls so the steady state
/// performs no allocation. Workers run nested gemms serially on their own
/// thread, so the buffers are never shared.
std::vector<scalar_t>& pack_scratch() {
  thread_local std::vector<scalar_t> buf;
  return buf;
}

std::vector<scalar_t>& ct_scratch() {
  thread_local std::vector<scalar_t> buf;
  return buf;
}

}  // namespace

void gemm(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  HM_CHECK_MSG(b.rows() == k, "gemm inner dims " << k << " vs " << b.rows());
  check_output(c, m, n);
  if (k == 0) {
    apply_beta(c, beta);
    return;
  }
  if (beta != 0 && beta != 1) scale(beta, c.flat());
  const BDesc bd{b.flat().data(), /*row_stride=*/n, /*strip_stride=*/kNR};
  compute(m, n, k, a.flat().data(), /*a_rs=*/k, /*a_cs=*/1, bd,
          c.flat().data(), n, /*accumulate=*/beta != 0);
}

void gemm_nt(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  HM_CHECK_MSG(b.cols() == k, "gemm_nt inner dims " << k << " vs " << b.cols());
  check_output(c, m, n);
  if (m == 0 || n == 0 || k == 0) {
    apply_beta(c, beta);
    return;
  }
  auto& packed = pack_scratch();
  if (m <= kSwapRows && n >= 4 * m) {
    // Few rows: packing B^T (k*n elements) would dwarf the math. Compute
    // Ct(n x m) = B * A^T with the small A side packed, then fold the
    // transpose into C. Same per-element rounding sequence (see header).
    auto& ct = ct_scratch();
    ct.resize(static_cast<std::size_t>(n * m));
    pack_bt(a.flat().data(), k, k, m, packed);
    const BDesc bd{packed.data(), kNR, k * kNR};
    compute(n, m, k, b.flat().data(), /*a_rs=*/k, /*a_cs=*/1, bd, ct.data(),
            m, /*accumulate=*/false);
    if (beta != 0 && beta != 1) scale(beta, c.flat());
    scalar_t* HM_RESTRICT cd = c.flat().data();
    for (index_t i = 0; i < m; ++i) {
      scalar_t* HM_RESTRICT crow = cd + i * n;
      const scalar_t* HM_RESTRICT ccol = ct.data() + i;
      if (beta == 0) {
        for (index_t j = 0; j < n; ++j) crow[j] = ccol[j * m];
      } else {
        for (index_t j = 0; j < n; ++j) crow[j] += ccol[j * m];
      }
    }
    return;
  }
  if (beta != 0 && beta != 1) scale(beta, c.flat());
  pack_bt(b.flat().data(), k, k, n, packed);
  const BDesc bd{packed.data(), kNR, k * kNR};
  compute(m, n, k, a.flat().data(), /*a_rs=*/k, /*a_cs=*/1, bd,
          c.flat().data(), n, /*accumulate=*/beta != 0);
}

void gemm_tn(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  HM_CHECK_MSG(b.rows() == m, "gemm_tn inner dims " << m << " vs " << b.rows());
  check_output(c, k, n);
  if (m == 0) {
    apply_beta(c, beta);
    return;
  }
  if (beta != 0 && beta != 1) scale(beta, c.flat());
  const BDesc bd{b.flat().data(), /*row_stride=*/n, /*strip_stride=*/kNR};
  // opA(l, p) = A(p, l): row stride 1, column stride k.
  compute(k, n, m, a.flat().data(), /*a_rs=*/1, /*a_cs=*/k, bd,
          c.flat().data(), n, /*accumulate=*/beta != 0);
}

void gemv(ConstMatView a, ConstVecView x, VecView y, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols();
  HM_CHECK(static_cast<index_t>(x.size()) == k);
  HM_CHECK(static_cast<index_t>(y.size()) == m);
  auto rows = [&](index_t i0, index_t i1) {
    index_t i = i0;
    for (; i + 2 <= i1; i += 2) {
      scalar_t r0, r1;
      dot2(x, a.row(i), a.row(i + 1), r0, r1);
      auto& y0 = y[static_cast<std::size_t>(i)];
      auto& y1 = y[static_cast<std::size_t>(i + 1)];
      // beta == 0 overwrites without reading y (which may be uninitialized).
      y0 = beta == 0 ? r0 : beta * y0 + r0;
      y1 = beta == 0 ? r1 : beta * y1 + r1;
    }
    if (i < i1) {
      auto& yi = y[static_cast<std::size_t>(i)];
      const scalar_t r = dot(a.row(i), x);
      yi = beta == 0 ? r : beta * yi + r;
    }
  };
  // Blocks of whole row pairs keep the dot2 pairing (and therefore the
  // pairing-independent per-row dot order) aligned across block counts.
  const index_t pairs = (m + 1) / 2;
  if (2 * m * k >= kParallelFlops && pairs > 1) {
    parallel::parallel_for(
        0, pairs,
        [&](index_t pr) { rows(2 * pr, std::min(m, 2 * pr + 2)); },
        /*grain=*/16);
  } else {
    rows(0, m);
  }
}

}  // namespace hm::tensor
