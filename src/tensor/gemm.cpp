#include "tensor/gemm.hpp"

#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::tensor {

namespace {

/// Flop threshold below which the serial kernel is used; spawning tasks
/// for tiny batches (the common case: batch size 1–8) costs more than the
/// multiply itself.
constexpr index_t kParallelFlops = 1 << 18;

void prepare_output(MatView c, index_t rows, index_t cols, scalar_t beta) {
  HM_CHECK_MSG(c.rows() == rows && c.cols() == cols,
               "gemm output shape (" << c.rows() << "x" << c.cols()
                                     << ") != (" << rows << "x" << cols << ")");
  if (beta == 0) {
    set_zero(c.flat());
  } else if (beta != 1) {
    scale(beta, c.flat());
  }
}

}  // namespace

void gemm(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  HM_CHECK_MSG(b.rows() == k, "gemm inner dims " << k << " vs " << b.rows());
  prepare_output(c, m, n, beta);
  auto row_block = [&](index_t i) {
    VecView crow = c.row(i);
    ConstVecView arow = a.row(i);
    for (index_t l = 0; l < k; ++l) {
      const scalar_t alv = arow[static_cast<std::size_t>(l)];
      if (alv == 0) continue;
      axpy(alv, b.row(l), crow);
    }
  };
  if (m * n * k >= kParallelFlops) {
    parallel::parallel_for(0, m, row_block, /*grain=*/1);
  } else {
    for (index_t i = 0; i < m; ++i) row_block(i);
  }
}

void gemm_nt(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  HM_CHECK_MSG(b.cols() == k, "gemm_nt inner dims " << k << " vs " << b.cols());
  prepare_output(c, m, n, beta);
  auto row_block = [&](index_t i) {
    ConstVecView arow = a.row(i);
    VecView crow = c.row(i);
    for (index_t j = 0; j < n; ++j) {
      crow[static_cast<std::size_t>(j)] += dot(arow, b.row(j));
    }
  };
  if (m * n * k >= kParallelFlops) {
    parallel::parallel_for(0, m, row_block, /*grain=*/1);
  } else {
    for (index_t i = 0; i < m; ++i) row_block(i);
  }
}

void gemm_tn(ConstMatView a, ConstMatView b, MatView c, scalar_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  HM_CHECK_MSG(b.rows() == m, "gemm_tn inner dims " << m << " vs " << b.rows());
  prepare_output(c, k, n, beta);
  // Each task owns one output row l, so writes are disjoint.
  auto col_block = [&](index_t l) {
    VecView crow = c.row(l);
    for (index_t i = 0; i < m; ++i) {
      const scalar_t ail = a(i, l);
      if (ail == 0) continue;
      axpy(ail, b.row(i), crow);
    }
  };
  if (m * n * k >= kParallelFlops) {
    parallel::parallel_for(0, k, col_block, /*grain=*/1);
  } else {
    for (index_t l = 0; l < k; ++l) col_block(l);
  }
}

void gemv(ConstMatView a, ConstVecView x, VecView y, scalar_t beta) {
  HM_CHECK(static_cast<index_t>(x.size()) == a.cols());
  HM_CHECK(static_cast<index_t>(y.size()) == a.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    const scalar_t acc = dot(a.row(i), x);
    y[static_cast<std::size_t>(i)] =
        beta * y[static_cast<std::size_t>(i)] + acc;
  }
}

}  // namespace hm::tensor
