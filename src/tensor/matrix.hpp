// Dense row-major matrix over scalar_t, plus lightweight vector views.
// This is the numerical substrate for the NN stack: models store their
// parameters in one flat std::vector<scalar_t> (so federated averaging is
// a BLAS-1 axpy), and layers view slices of it as matrices.
#pragma once

#include <span>
#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"

namespace hm::tensor {

using VecView = std::span<scalar_t>;
using ConstVecView = std::span<const scalar_t>;

/// Non-owning read-only view of a row-major matrix. Lets layers interpret
/// slices of a flat parameter vector as weight matrices without copying.
class ConstMatView {
 public:
  ConstMatView() = default;
  ConstMatView(const scalar_t* p, index_t r, index_t c)
      : ptr_(p), rows_(r), cols_(c) {}
  ConstMatView(ConstVecView v, index_t r, index_t c)
      : ptr_(v.data()), rows_(r), cols_(c) {
    HM_CHECK(static_cast<index_t>(v.size()) >= r * c);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  // Element access is the innermost loop of the NN forward/backward
  // passes: bounds are HM_ASSERTs (armed in Debug/sanitizer builds, free
  // in Release), while row() stays HM_CHECK — it sits at slice-handoff
  // boundaries, not in per-element loops.
  scalar_t operator()(index_t r, index_t c) const {
    HM_ASSERT_BOUNDS(r, rows_);
    HM_ASSERT_BOUNDS(c, cols_);
    return ptr_[r * cols_ + c];
  }
  ConstVecView row(index_t r) const {
    HM_CHECK_BOUNDS(r, rows_);
    return ConstVecView(ptr_ + r * cols_, static_cast<std::size_t>(cols_));
  }
  ConstVecView flat() const {
    return ConstVecView(ptr_, static_cast<std::size_t>(rows_ * cols_));
  }

 private:
  const scalar_t* ptr_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

/// Non-owning mutable view of a row-major matrix.
class MatView {
 public:
  MatView() = default;
  MatView(scalar_t* p, index_t r, index_t c) : ptr_(p), rows_(r), cols_(c) {}
  MatView(VecView v, index_t r, index_t c)
      : ptr_(v.data()), rows_(r), cols_(c) {
    HM_CHECK(static_cast<index_t>(v.size()) >= r * c);
  }

  operator ConstMatView() const { return ConstMatView(ptr_, rows_, cols_); }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  scalar_t& operator()(index_t r, index_t c) const {
    HM_ASSERT_BOUNDS(r, rows_);
    HM_ASSERT_BOUNDS(c, cols_);
    return ptr_[r * cols_ + c];
  }
  VecView row(index_t r) const {
    HM_CHECK_BOUNDS(r, rows_);
    return VecView(ptr_ + r * cols_, static_cast<std::size_t>(cols_));
  }
  VecView flat() const {
    return VecView(ptr_, static_cast<std::size_t>(rows_ * cols_));
  }

 private:
  scalar_t* ptr_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

class Matrix {
 public:
  Matrix() = default;

  Matrix(index_t rows, index_t cols, scalar_t fill = 0) { resize(rows, cols, fill); }

  void resize(index_t rows, index_t cols, scalar_t fill = 0) {
    HM_CHECK(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), fill);
  }

  /// Reshape for a full overwrite: reuses the existing allocation and
  /// skips the fill, so repeated calls at a steady shape cost nothing.
  /// Contents are unspecified — only for outputs every element of which
  /// is written before being read (gemm with beta == 0, row gathers).
  void resize_for_overwrite(index_t rows, index_t cols) {
    HM_CHECK(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    const auto n = static_cast<std::size_t>(rows * cols);
    if (data_.size() < n) data_.resize(n);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  scalar_t& operator()(index_t r, index_t c) {
    HM_ASSERT_BOUNDS(r, rows_);
    HM_ASSERT_BOUNDS(c, cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  scalar_t operator()(index_t r, index_t c) const {
    HM_ASSERT_BOUNDS(r, rows_);
    HM_ASSERT_BOUNDS(c, cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  scalar_t* data() { return data_.data(); }
  const scalar_t* data() const { return data_.data(); }

  VecView row(index_t r) {
    HM_CHECK_BOUNDS(r, rows_);
    return VecView(data_.data() + r * cols_, static_cast<std::size_t>(cols_));
  }
  ConstVecView row(index_t r) const {
    HM_CHECK_BOUNDS(r, rows_);
    return ConstVecView(data_.data() + r * cols_,
                        static_cast<std::size_t>(cols_));
  }

  // Span exactly rows*cols: the backing vector may be larger after a
  // shrinking resize_for_overwrite.
  VecView flat() {
    return VecView(data_.data(), static_cast<std::size_t>(rows_ * cols_));
  }
  ConstVecView flat() const {
    return ConstVecView(data_.data(),
                        static_cast<std::size_t>(rows_ * cols_));
  }

  void fill(scalar_t value) { data_.assign(data_.size(), value); }

  operator ConstMatView() const { return ConstMatView(data(), rows_, cols_); }
  operator MatView() { return MatView(data(), rows_, cols_); }
  MatView view() { return MatView(data(), rows_, cols_); }
  ConstMatView view() const { return ConstMatView(data(), rows_, cols_); }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<scalar_t> data_;
};

}  // namespace hm::tensor
