// Blocked parallel-for and deterministic parallel reduction on top of
// ThreadPool. The iteration space [begin, end) is split into contiguous
// chunks; `body(i)` runs exactly once per index. Reductions combine
// per-chunk partials in chunk order, so the result is independent of
// thread scheduling (bit-reproducible for a fixed chunk count).
#pragma once

#include <algorithm>
#include <future>
#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"
#include "parallel/thread_pool.hpp"

namespace hm::parallel {

/// Minimum indices per chunk before the work is split across threads.
inline constexpr index_t kDefaultGrain = 64;

/// Run body(i) for every i in [begin, end), splitting across `pool`.
/// Falls back to a serial loop when the range is below `grain` or the
/// pool has a single thread.
template <typename Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, Body&& body,
                  index_t grain = kDefaultGrain) {
  HM_CHECK(begin <= end);
  const index_t n = end - begin;
  if (n == 0) return;
  const index_t max_chunks = static_cast<index_t>(pool.num_threads()) * 4;
  const index_t num_chunks =
      std::max<index_t>(1, std::min(max_chunks, n / std::max<index_t>(1, grain)));
  if (num_chunks <= 1) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  const index_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(num_chunks));
  for (index_t c = 0; c < num_chunks; ++c) {
    const index_t lo = begin + c * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, &body] {
      for (index_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first task exception
}

/// Convenience overload on the global pool.
template <typename Body>
void parallel_for(index_t begin, index_t end, Body&& body,
                  index_t grain = kDefaultGrain) {
  parallel_for(ThreadPool::global(), begin, end, std::forward<Body>(body),
               grain);
}

/// Deterministic parallel reduction: result equals
/// combine(...combine(init, partial_0)..., partial_{k-1}) where partial_c
/// folds body(i) over chunk c in index order.
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, index_t begin, index_t end, T init,
                  Body&& body, Combine&& combine,
                  index_t grain = kDefaultGrain) {
  HM_CHECK(begin <= end);
  const index_t n = end - begin;
  if (n == 0) return init;
  const index_t max_chunks = static_cast<index_t>(pool.num_threads()) * 4;
  const index_t num_chunks =
      std::max<index_t>(1, std::min(max_chunks, n / std::max<index_t>(1, grain)));
  if (num_chunks <= 1) {
    T acc = init;
    for (index_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  const index_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<T>> futures;
  futures.reserve(static_cast<std::size_t>(num_chunks));
  for (index_t c = 0; c < num_chunks; ++c) {
    const index_t lo = begin + c * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, &body, &combine]() -> T {
      T acc = body(lo);
      for (index_t i = lo + 1; i < hi; ++i) acc = combine(acc, body(i));
      return acc;
    }));
  }
  T acc = init;
  for (auto& f : futures) acc = combine(acc, f.get());
  return acc;
}

}  // namespace hm::parallel
