// Blocked parallel-for and deterministic parallel reduction on top of
// ThreadPool::run_region. The iteration space [begin, end) is split into
// contiguous chunks; `body(i)` runs exactly once per index.
//
// Chunking is a pure function of (range length, grain) — never of the
// pool's thread count — and reductions combine per-chunk partials in
// chunk order after the region completes. Results are therefore
// bit-identical for any pool size (1, 2, 8, ...) and any scheduling of
// chunks onto threads, which is the reproducibility guarantee the
// trainers rely on.
//
// Dispatch is the low-overhead region path: no futures, no per-chunk
// allocation; a parallel_for costs a few atomics plus one wakeup chain,
// and the calling thread participates in the work.
#pragma once

#include <algorithm>
#include <type_traits>
#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"
#include "parallel/thread_pool.hpp"

namespace hm::parallel {

/// Minimum indices per chunk before the work is split across threads.
inline constexpr index_t kDefaultGrain = 64;

/// Upper bound on chunks per region. Fixed (not scaled by thread count)
/// so that chunk boundaries — and with them every chunk-ordered FP
/// reduction — are identical no matter how many workers the pool has.
inline constexpr index_t kMaxChunks = 64;

namespace detail {

/// Chunk length for a range of n indices: enough chunks for load
/// balancing, capped, at least `grain` indices each, and independent of
/// threads. Callers derive the chunk count as ceil(n / chunk), which
/// avoids empty trailing chunks after rounding.
inline index_t chunk_size_for(index_t n, index_t grain) {
  const index_t num_chunks = std::max<index_t>(
      1, std::min(kMaxChunks, n / std::max<index_t>(1, grain)));
  return (n + num_chunks - 1) / num_chunks;
}

}  // namespace detail

/// Run body(i) for every i in [begin, end), splitting across `pool`.
/// Falls back to a serial loop for small ranges and inside nested
/// parallel constructs.
template <typename Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, Body&& body,
                  index_t grain = kDefaultGrain) {
  HM_CHECK(begin <= end);
  const index_t n = end - begin;
  if (n == 0) return;
  const index_t chunk = detail::chunk_size_for(n, grain);
  const index_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  struct Ctx {
    std::remove_reference_t<Body>* body;
    index_t begin, end, chunk;
  } ctx{&body, begin, end, chunk};
  pool.run_region(
      num_chunks,
      [](void* p, index_t c) {
        auto& s = *static_cast<Ctx*>(p);
        const index_t lo = s.begin + c * s.chunk;
        const index_t hi = std::min(s.end, lo + s.chunk);
        // ceil-division chunking never produces an empty chunk.
        HM_ASSERT(lo < hi);
        for (index_t i = lo; i < hi; ++i) (*s.body)(i);
      },
      &ctx);
}

/// Convenience overload on the global pool.
template <typename Body>
void parallel_for(index_t begin, index_t end, Body&& body,
                  index_t grain = kDefaultGrain) {
  parallel_for(ThreadPool::global(), begin, end, std::forward<Body>(body),
               grain);
}

/// Deterministic parallel reduction: result equals
/// combine(...combine(init, partial_0)..., partial_{k-1}) where partial_c
/// folds body(i) over chunk c in index order. The chunk count depends
/// only on (n, grain), so the result is bit-identical for every pool
/// size, including the serial fallback.
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, index_t begin, index_t end, T init,
                  Body&& body, Combine&& combine,
                  index_t grain = kDefaultGrain) {
  HM_CHECK(begin <= end);
  const index_t n = end - begin;
  if (n == 0) return init;
  const index_t chunk = detail::chunk_size_for(n, grain);
  const index_t num_chunks = (n + chunk - 1) / chunk;
  std::vector<T> partials(static_cast<std::size_t>(num_chunks));
  struct Ctx {
    std::remove_reference_t<Body>* body;
    std::remove_reference_t<Combine>* combine;
    T* partials;
    index_t begin, end, chunk;
  } ctx{&body, &combine, partials.data(), begin, end, chunk};
  auto chunk_fn = [](void* p, index_t c) {
    auto& s = *static_cast<Ctx*>(p);
    const index_t lo = s.begin + c * s.chunk;
    const index_t hi = std::min(s.end, lo + s.chunk);
    HM_ASSERT(lo < hi);  // the lo-seeded fold below needs >= 1 element
    T acc = (*s.body)(lo);
    for (index_t i = lo + 1; i < hi; ++i) acc = (*s.combine)(acc, (*s.body)(i));
    s.partials[c] = std::move(acc);
  };
  if (num_chunks <= 1) {
    chunk_fn(&ctx, 0);  // same fold as the region path, minus dispatch
  } else {
    pool.run_region(num_chunks, chunk_fn, &ctx);
  }
  T acc = std::move(init);
  for (auto& partial : partials) acc = combine(std::move(acc), partial);
  return acc;
}

}  // namespace hm::parallel
