#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "obs/obs.hpp"

namespace hm::parallel {

namespace {

/// Depth of region nesting on this thread. Non-zero while executing a
/// chunk body, so nested parallel constructs inline serially.
thread_local int tl_region_depth = 0;

struct RegionDepthGuard {
  RegionDepthGuard() { ++tl_region_depth; }
  ~RegionDepthGuard() { --tl_region_depth; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, bool force_region_dispatch) {
  const unsigned hc = std::thread::hardware_concurrency();
  if (num_threads == 0) {
    num_threads = std::max(1u, hc);
  }
  // hardware_concurrency() may return 0 when unknown; default to
  // dispatching in that case rather than silently serializing.
  dispatch_regions_ = force_region_dispatch || hc == 0 || hc > 1;
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_region() { return tl_region_depth > 0; }

bool ThreadPool::try_run_task(std::size_t self) {
  if (pending_tasks_.load(std::memory_order_acquire) <= 0) return false;
  // Own queue first, then sweep the peers (cheap work stealing).
  const std::size_t n = queues_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    TaskQueue& q = *queues_[(self + probe) % n];
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(q.mutex);
      if (q.tasks.empty()) continue;
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    pending_tasks_.fetch_sub(1, std::memory_order_release);
    HM_OBS_INC("parallel.tasks_executed");
    task();  // packaged_task captures exceptions into the future
    return true;
  }
  return false;
}

void ThreadPool::work_region() {
  RegionDepthGuard depth;
  Region& r = region_;
  HM_ASSERT(r.fn != nullptr && r.num_chunks > 0);
  for (;;) {
    const index_t c = r.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= r.num_chunks) return;
    try {
      r.fn(r.ctx, c);
    } catch (...) {
      if (!r.has_error.exchange(true, std::memory_order_acq_rel)) {
        r.error = std::current_exception();
      }
    }
    // Each claimed chunk decrements the latch exactly once, so it can
    // never pass through zero.
    const index_t left = r.remaining.fetch_sub(1, std::memory_order_acq_rel);
    HM_ASSERT_MSG(left >= 1, "region latch underflow: remaining=" << left);
    if (left == 1) {
      r.remaining.notify_all();
    }
  }
}

void ThreadPool::join_region(std::uint64_t epoch) {
  HM_ASSERT((epoch & 1) == 0);  // workers only join published regions
  // seq_cst increment, then re-validate the epoch: if a new setup has
  // started (odd) or finished (different even value) we must not touch
  // the region state. See the protocol note in the header.
  active_.fetch_add(1);
  if (region_epoch_.load() == epoch) {
    // How many workers actually reach a live region is a race with the
    // region finishing, hence the timing channel.
    HM_OBS_INC_T("parallel.region_joiners");
    work_region();
  }
  if (active_.fetch_sub(1) == 1) active_.notify_all();
}

void ThreadPool::run_region(index_t num_chunks, RegionFn fn, void* ctx) {
  HM_CHECK(num_chunks >= 0 && fn != nullptr);
  if (num_chunks == 0) return;
  // Region/chunk totals are dispatch-independent (the inline and pooled
  // paths run the same chunks), so they sit on the value channel; the
  // inline/dispatch split depends on hardware_concurrency and nesting,
  // so it is timing.
  HM_OBS_INC("parallel.regions");
  HM_OBS_ADD("parallel.chunks", static_cast<std::uint64_t>(num_chunks));
  HM_OBS_HIST("parallel.region_chunks", num_chunks);
  if (num_chunks == 1 || tl_region_depth > 0 || workers_.empty() ||
      !dispatch_regions_) {
    HM_OBS_INC_T("parallel.regions_inlined");
    RegionDepthGuard depth;
    for (index_t c = 0; c < num_chunks; ++c) fn(ctx, c);
    return;
  }
  HM_OBS_INC_T("parallel.regions_dispatched");
  std::lock_guard<std::mutex> region_lock(region_mutex_);
  // Phase 1: invalidate (odd epoch) and quiesce stragglers from the
  // previous region before rewriting shared state.
  region_epoch_.fetch_add(1);  // even -> odd
  for (int a = active_.load(); a != 0; a = active_.load()) {
    active_.wait(a);
  }
  // The epoch stays odd until the publish below (we hold region_mutex_),
  // so no joiner can touch region state from here on. Note active_ may
  // legally tick non-zero again: a worker that loaded a stale even epoch
  // increments it before re-validating in join_region and bails without
  // entering the region, so we do not assert active_ == 0 here.
  HM_ASSERT((region_epoch_.load() & 1) == 1);
  Region& r = region_;
  r.fn = fn;
  r.ctx = ctx;
  r.num_chunks = num_chunks;
  r.next.store(0, std::memory_order_relaxed);
  r.remaining.store(num_chunks, std::memory_order_relaxed);
  r.has_error.store(false, std::memory_order_relaxed);
  r.error = nullptr;
  // Phase 2: publish (next even epoch) and wake one worker; each joining
  // worker wakes the next, so sleeping workers are only disturbed while
  // there is work left to claim.
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    region_epoch_.fetch_add(1);  // odd -> even: region live
  }
  wake_cv_.notify_one();
  // Phase 3: the caller participates, then waits on the countdown latch
  // for chunks still running on workers.
  work_region();
  for (index_t left = r.remaining.load(std::memory_order_acquire); left != 0;
       left = r.remaining.load(std::memory_order_acquire)) {
    r.remaining.wait(left);
  }
  if (r.has_error.load(std::memory_order_acquire)) {
    std::rethrow_exception(r.error);
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  std::uint64_t last_epoch = 0;
  for (;;) {
    const std::uint64_t e = region_epoch_.load();
    if ((e & 1) == 0 && e != last_epoch) {
      last_epoch = e;
      wake_cv_.notify_one();  // propagate the wakeup chain
      join_region(e);
      continue;
    }
    if (try_run_task(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      if (stop_) return true;
      if (pending_tasks_.load(std::memory_order_acquire) > 0) return true;
      const std::uint64_t now = region_epoch_.load();
      return (now & 1) == 0 && now != last_epoch;
    });
    if (stop_) {
      lock.unlock();
      while (try_run_task(self)) {  // drain pending tasks before exit
      }
      return;
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hm::parallel
