// Fixed-size thread pool with per-thread task queues and a low-overhead
// parallel-region dispatcher.
//
// Two execution paths:
//
//  * submit() — arbitrary void()/R() callables for coarse one-off tasks.
//    Tasks are distributed round-robin over per-thread queues (no single
//    hot mutex) and idle workers steal from their peers; the returned
//    future carries the result or exception.
//
//  * run_region() — the steady-state path underneath parallel_for /
//    parallel_reduce. A region is a fixed count of chunks executed by the
//    caller plus any workers that join; chunks are claimed from a shared
//    atomic ticket and completion is a latch-style atomic countdown the
//    caller waits on. No allocation, no futures, no per-chunk
//    packaged_task: dispatching a region costs a few atomic operations
//    and at most one wakeup chain.
//
// Region lifecycle / safety protocol (all in ThreadPool::run_region and
// join_region): callers serialize on region_mutex_. Setup first bumps
// region_epoch_ to an odd value, then waits for active_ == 0, so no
// worker can be reading region state while it is rewritten (workers join
// by incrementing active_ and then re-validating the epoch; the epoch
// write / active_ read pair on the caller side and the active_ write /
// epoch read pair on the worker side are both seq_cst, closing the
// store-load race). Publishing the region bumps the epoch to the next
// even value. Nested regions (a chunk body calling parallel_for) run
// inline and serially on the calling thread, which both avoids deadlock
// and keeps nested reductions in their deterministic serial chunk order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/types.hpp"

namespace hm::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1). Defaults to hardware concurrency.
  /// Regions are dispatched to workers only when the hardware reports
  /// more than one logical CPU — on a single-CPU host, handing chunks to
  /// workers just timeshares one core and adds context-switch churn, so
  /// the caller runs them inline instead (results are identical either
  /// way; chunking never depends on the execution mode). Pass
  /// `force_region_dispatch = true` to always use the concurrent path —
  /// benchmarks measuring dispatch latency and stress tests (TSan) need
  /// the real thing regardless of the host.
  explicit ThreadPool(std::size_t num_threads = 0,
                      bool force_region_dispatch = false);

  /// Joins all workers; pending submitted tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    const std::size_t slot =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    {
      std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
      queues_[slot]->tasks.emplace_back([task] { (*task)(); });
    }
    // Bump the pending count under wake_mutex_ so a worker that has just
    // evaluated its wait predicate (pending == 0) but not yet blocked
    // cannot miss this task: either it sees the new count before
    // sleeping, or it is already waiting when notify_one fires. Same
    // reasoning as the region-epoch publish in run_region().
    {
      std::lock_guard<std::mutex> wake_lock(wake_mutex_);
      pending_tasks_.fetch_add(1, std::memory_order_release);
    }
    wake_cv_.notify_one();
    return result;
  }

  /// Run fn(ctx, chunk) exactly once for every chunk in [0, num_chunks).
  /// Blocks until all chunks completed; rethrows the first chunk
  /// exception. The caller participates, so the region completes even if
  /// every worker is busy elsewhere. Reentrant calls (from inside a
  /// region chunk) execute serially inline.
  using RegionFn = void (*)(void* ctx, index_t chunk);
  void run_region(index_t num_chunks, RegionFn fn, void* ctx);

  /// True while the calling thread is executing inside a region chunk
  /// (used by parallel_for to fall back to serial execution).
  static bool in_region();

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

 private:
  struct TaskQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Reusable region descriptor; rewritten only while quiesced.
  struct Region {
    RegionFn fn = nullptr;
    void* ctx = nullptr;
    index_t num_chunks = 0;
    std::atomic<index_t> next{0};       // chunk ticket
    std::atomic<index_t> remaining{0};  // countdown latch
    std::atomic<bool> has_error{false};
    std::exception_ptr error;
  };

  void worker_loop(std::size_t self);
  bool try_run_task(std::size_t self);
  /// Claim-and-run loop shared by caller and workers.
  void work_region();
  /// Worker-side entry: join the published region if `epoch` still
  /// current; returns after the region has no claimable chunks left.
  void join_region(std::uint64_t epoch);

  std::vector<std::thread> workers_;
  bool dispatch_regions_ = true;
  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::ptrdiff_t> pending_tasks_{0};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;

  std::mutex region_mutex_;  // serializes external region callers
  std::atomic<std::uint64_t> region_epoch_{0};  // odd = setup in progress
  std::atomic<int> active_{0};  // workers currently inside the region
  Region region_;
};

}  // namespace hm::parallel
