// Fixed-size thread pool with a single shared task queue.
//
// Design notes (following the shared-memory HPC idiom of explicit
// parallelism): tasks are arbitrary void() callables; submit() returns a
// future so callers can join and so exceptions thrown inside a task
// propagate to the waiting thread instead of being swallowed. The pool is
// intended for coarse-grained tasks (one client's local-SGD run, one tile
// of a GEMM); it makes no fairness or priority guarantees.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hm::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hm::parallel
