#include "core/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hm::log {

namespace {

std::atomic<Level> g_threshold{Level::kInfo};
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

Level threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void write(Level level, const std::string& message) {
  if (level < threshold()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[hm %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace hm::log
