#include "core/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hm::log {

namespace {

std::atomic<Level> g_threshold{Level::kInfo};
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

Level threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

bool parse_level(const std::string& name, Level& out) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    out = Level::kDebug;
  } else if (lower == "info") {
    out = Level::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = Level::kWarn;
  } else if (lower == "error") {
    out = Level::kError;
  } else if (lower == "off" || lower == "none") {
    out = Level::kOff;
  } else {
    return false;
  }
  return true;
}

bool apply_env_threshold() {
  const char* env = std::getenv("HM_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return false;
  Level level = Level::kInfo;
  if (!parse_level(env, level)) {
    warn() << "ignoring invalid HM_LOG_LEVEL='" << env
           << "' (want debug|info|warn|error|off)";
    return false;
  }
  set_threshold(level);
  return true;
}

void write(Level level, const std::string& message) {
  if (level < threshold()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[hm %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace hm::log
