#include "core/flags.hpp"

#include <cstdlib>
#include <stdexcept>

#include "core/check.hpp"

namespace hm {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      const std::string name = arg.substr(0, eq);
      const std::string value = arg.substr(eq + 1);
      HM_CHECK_MSG(!name.empty() && !value.empty(),
                   "malformed flag --" << arg);
      flags.values_[name] = value;
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // boolean "--name" / "--no-name".
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      flags.values_[arg] = argv[i + 1];
      ++i;
    } else if (arg.rfind("no-", 0) == 0) {
      flags.values_[arg.substr(3)] = "false";
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

index_t Flags::get_int(const std::string& name, index_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  HM_CHECK_MSG(end != nullptr && *end == '\0',
               "flag --" << name << " expects an integer, got '" << it->second
                         << "'");
  return static_cast<index_t>(v);
}

scalar_t Flags::get_double(const std::string& name, scalar_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  HM_CHECK_MSG(end != nullptr && *end == '\0',
               "flag --" << name << " expects a number, got '" << it->second
                         << "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  HM_CHECK_MSG(false, "flag --" << name << " expects a boolean, got '" << v
                                << "'");
  return def;  // unreachable
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace hm
