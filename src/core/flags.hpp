// Tiny command-line flag parser used by examples and bench harnesses.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hm {

class Flags {
 public:
  Flags() = default;

  /// Parse argv. Unknown flags are retained and reported by unknown().
  /// Throws CheckError on malformed input (e.g. "--x=" with no value).
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw CheckError on unparsable values.
  std::string get_string(const std::string& name, std::string def) const;
  index_t get_int(const std::string& name, index_t def) const;
  scalar_t get_double(const std::string& name, scalar_t def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line, for unknown-flag warnings.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hm
