// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hm::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kInfo.
Level threshold();
void set_threshold(Level level);

/// Canonical lowercase name ("debug", "info", "warn", "error", "off").
const char* level_name(Level level);

/// Parse a level name (case-insensitive; accepts "warning" for kWarn).
/// Returns false and leaves `out` untouched on unknown input.
bool parse_level(const std::string& name, Level& out);

/// Apply the HM_LOG_LEVEL environment variable, if set and valid, as
/// the threshold. Returns true when a valid value was applied. CLI
/// flags (--log-level) take precedence — callers apply the env first,
/// then any explicit flag on top.
bool apply_env_threshold();

/// Emit one line at `level` (no trailing newline needed).
void write(Level level, const std::string& message);

namespace detail {

class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { write(level_, os_.str()); }

  template <typename T>
  LineStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::kDebug); }
inline detail::LineStream info() { return detail::LineStream(Level::kInfo); }
inline detail::LineStream warn() { return detail::LineStream(Level::kWarn); }
inline detail::LineStream error() { return detail::LineStream(Level::kError); }

}  // namespace hm::log
