// Fundamental scalar and index types shared by every hm module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hm {

/// Floating-point type for all model parameters, losses, and gradients.
/// Double keeps finite-difference gradient checks and duality-gap
/// estimates well-conditioned; the datasets in this repo are small enough
/// that the 2x memory cost over float is irrelevant.
using scalar_t = double;

/// Index type for element counts and loop bounds.
using index_t = std::ptrdiff_t;

/// Seed type for all deterministic RNG streams.
using seed_t = std::uint64_t;

}  // namespace hm
