// Fundamental scalar and index types shared by every hm module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hm {

/// Floating-point type for all model parameters, losses, and gradients.
/// Double keeps finite-difference gradient checks and duality-gap
/// estimates well-conditioned; the datasets in this repo are small enough
/// that the 2x memory cost over float is irrelevant.
using scalar_t = double;

/// Index type for element counts and loop bounds.
using index_t = std::ptrdiff_t;

/// Seed type for all deterministic RNG streams.
using seed_t = std::uint64_t;

}  // namespace hm

/// No-alias qualifier for the tensor kernels' pointer parameters; spans of
/// (const) scalar_t may legally alias, which otherwise forces the compiler
/// to emit runtime overlap checks or give up on vectorizing.
#if defined(_MSC_VER)
#define HM_RESTRICT __restrict
#else
#define HM_RESTRICT __restrict__
#endif
