// Contract-checking layer: preconditions, internal invariants, and bounds
// checks, with three distinct cost/behavior tiers.
//
//  * HM_CHECK / HM_CHECK_MSG / HM_CHECK_BOUNDS — API-boundary
//    preconditions. Always on, including Release: they guard caller
//    mistakes (shape mismatches, out-of-range indices, invalid options),
//    which must fail loudly in production. Violations throw hm::CheckError
//    so tests can assert on the failure path.
//
//  * HM_ASSERT / HM_ASSERT_MSG / HM_ASSERT_BOUNDS — internal invariants
//    in hot inner loops (kernel tile offsets, scheduler ticket state).
//    Compiled to nothing in plain Release builds so they are free on the
//    hot path; enabled in Debug and in every sanitizer build
//    (HM_SANITIZE != "", which defines HM_ENABLE_ASSERTS). A failed
//    assert is a bug in this library, not in the caller, so it prints the
//    expression, location, and message to stderr and aborts — it must not
//    be catchable or silently unwound past corrupted state.
//
// Failure messages carry the failed expression, file:line, and (for the
// *_MSG and *_BOUNDS forms) the formatted operand values, so a report
// from a sanitizer CI leg is actionable without a debugger.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hm {

/// Thrown when an HM_CHECK* precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

inline std::string check_message(const char* kind, const char* expr,
                                 const char* file, int line,
                                 const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw CheckError(check_message("check", expr, file, line, msg));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  const std::string what = check_message("assert", expr, file, line, msg);
  // The abort path cannot risk re-entering hm::log (it may allocate or
  // throw); this is the one sanctioned raw stderr write outside core/log.
  std::fprintf(stderr, "hm: %s\n", what.c_str());  // detlint: allow(stray-stderr)
  std::fflush(stderr);
  std::abort();
}

/// Formats "index <i-expr>=<i> out of range [0, <n-expr>=<n>)".
template <typename I, typename N>
std::string bounds_message(const char* i_expr, I i, const char* n_expr, N n) {
  std::ostringstream os;
  os << "index " << i_expr << "=" << i << " out of range [0, " << n_expr
     << "=" << n << ")";
  return os.str();
}

}  // namespace detail
}  // namespace hm

/// Abort (via exception) unless `cond` holds. Always on.
#define HM_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::hm::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Like HM_CHECK but with a streamed message: HM_CHECK_MSG(n > 0, "n=" << n).
#define HM_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream hm_check_os_;                                \
      hm_check_os_ << msg;                                            \
      ::hm::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                 hm_check_os_.str());                 \
    }                                                                 \
  } while (0)

/// Precondition that `0 <= i < n`, reporting both operand values on
/// failure: HM_CHECK_BOUNDS(row, rows_). Always on.
#define HM_CHECK_BOUNDS(i, n)                                         \
  do {                                                                \
    const auto hm_cb_i_ = (i);                                        \
    const auto hm_cb_n_ = (n);                                        \
    if (!(hm_cb_i_ >= 0 && hm_cb_i_ < hm_cb_n_)) {                    \
      ::hm::detail::check_failed(                                     \
          "0 <= " #i " < " #n, __FILE__, __LINE__,                    \
          ::hm::detail::bounds_message(#i, hm_cb_i_, #n, hm_cb_n_));  \
    }                                                                 \
  } while (0)

// HM_ASSERT tier: enabled when HM_ENABLE_ASSERTS is defined (Debug and
// sanitizer builds — see the top-level CMakeLists), otherwise compiled
// out without evaluating the condition. The sizeof trick keeps variables
// referenced only by asserts from triggering -Wunused warnings in
// Release while guaranteeing zero generated code.
#ifdef HM_ENABLE_ASSERTS

#define HM_ASSERT(cond)                                               \
  do {                                                                \
    if (!(cond)) ::hm::detail::assert_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define HM_ASSERT_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream hm_assert_os_;                               \
      hm_assert_os_ << msg;                                           \
      ::hm::detail::assert_failed(#cond, __FILE__, __LINE__,          \
                                  hm_assert_os_.str());               \
    }                                                                 \
  } while (0)

#define HM_ASSERT_BOUNDS(i, n)                                        \
  do {                                                                \
    const auto hm_ab_i_ = (i);                                        \
    const auto hm_ab_n_ = (n);                                        \
    if (!(hm_ab_i_ >= 0 && hm_ab_i_ < hm_ab_n_)) {                    \
      ::hm::detail::assert_failed(                                    \
          "0 <= " #i " < " #n, __FILE__, __LINE__,                    \
          ::hm::detail::bounds_message(#i, hm_ab_i_, #n, hm_ab_n_));  \
    }                                                                 \
  } while (0)

#else  // !HM_ENABLE_ASSERTS

#define HM_ASSERT(cond) \
  do { static_cast<void>(sizeof((cond) ? 1 : 0)); } while (0)

#define HM_ASSERT_MSG(cond, msg) \
  do { static_cast<void>(sizeof((cond) ? 1 : 0)); } while (0)

#define HM_ASSERT_BOUNDS(i, n)                        \
  do {                                                \
    static_cast<void>(sizeof((i) >= 0 ? 1 : 0));      \
    static_cast<void>(sizeof((n) >= 0 ? 1 : 0));      \
  } while (0)

#endif  // HM_ENABLE_ASSERTS
