// Precondition / invariant checking. Violations throw hm::CheckError so
// tests can assert on failure paths; checks stay on in release builds
// because they guard API misuse, not hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hm {

/// Thrown when an HM_CHECK* precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace hm

/// Abort (via exception) unless `cond` holds.
#define HM_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::hm::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Like HM_CHECK but with a streamed message: HM_CHECK_MSG(n > 0, "n=" << n).
#define HM_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream hm_check_os_;                                \
      hm_check_os_ << msg;                                            \
      ::hm::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                 hm_check_os_.str());                 \
    }                                                                 \
  } while (0)
