#include "metrics/history.hpp"

#include <ostream>

namespace hm::metrics {

std::optional<std::uint64_t> TrainingHistory::rounds_to_worst_accuracy(
    scalar_t target) const {
  for (const auto& r : records_) {
    if (r.summary.worst >= target) return r.comm.total_rounds();
  }
  return std::nullopt;
}

std::optional<std::uint64_t> TrainingHistory::rounds_to_average_accuracy(
    scalar_t target) const {
  for (const auto& r : records_) {
    if (r.summary.average >= target) return r.comm.total_rounds();
  }
  return std::nullopt;
}

std::optional<std::uint64_t>
TrainingHistory::edge_cloud_rounds_to_worst_accuracy(scalar_t target) const {
  for (const auto& r : records_) {
    if (r.summary.worst >= target) return r.comm.edge_cloud_rounds;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> TrainingHistory::wan_payloads_to_worst_accuracy(
    scalar_t target) const {
  for (const auto& r : records_) {
    if (r.summary.worst >= target) return r.comm.edge_cloud_models();
  }
  return std::nullopt;
}

std::optional<std::uint64_t> TrainingHistory::wan_payloads_to_sustained_worst(
    scalar_t target, index_t window) const {
  if (window <= 0) window = 1;
  const auto n = static_cast<index_t>(records_.size());
  for (index_t i = window - 1; i < n; ++i) {
    scalar_t mean = 0;
    for (index_t j = i - window + 1; j <= i; ++j) {
      mean += records_[static_cast<std::size_t>(j)].summary.worst;
    }
    mean /= static_cast<scalar_t>(window);
    if (mean >= target) {
      return records_[static_cast<std::size_t>(i)].comm.edge_cloud_models();
    }
  }
  return std::nullopt;
}

AccuracySummary TrainingHistory::tail_summary(index_t window) const {
  const auto n = static_cast<index_t>(records_.size());
  if (window <= 0 || window > n) window = n;
  AccuracySummary out;
  for (index_t i = n - window; i < n; ++i) {
    const auto& s = records_[static_cast<std::size_t>(i)].summary;
    out.average += s.average;
    out.worst += s.worst;
    out.best += s.best;
    out.variance_pct2 += s.variance_pct2;
  }
  const auto inv = scalar_t{1} / static_cast<scalar_t>(window);
  out.average *= inv;
  out.worst *= inv;
  out.best *= inv;
  out.variance_pct2 *= inv;
  return out;
}

void TrainingHistory::write_tsv(std::ostream& os,
                                const std::string& label) const {
  for (const auto& r : records_) {
    os << label << '\t' << r.round << '\t' << r.comm.total_rounds() << '\t'
       << r.comm.client_edge_rounds << '\t' << r.comm.edge_cloud_rounds
       << '\t' << r.comm.edge_cloud_models() << '\t'
       << r.comm.msgs_delivered() << '\t' << r.comm.msgs_dropped() << '\t'
       << r.comm.msgs_straggled() << '\t' << r.summary.average << '\t'
       << r.summary.worst << '\t' << r.summary.variance_pct2 << '\t'
       << r.global_loss << '\n';
  }
}

}  // namespace hm::metrics
