#include "metrics/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "parallel/parallel_for.hpp"

namespace hm::metrics {

std::vector<scalar_t> per_edge_accuracy(const nn::Model& model,
                                        nn::ConstVecView w,
                                        const data::FederatedDataset& fed,
                                        parallel::ThreadPool& pool) {
  const index_t num_edges = fed.num_edges();
  std::vector<scalar_t> acc(static_cast<std::size_t>(num_edges), 0);
  parallel::parallel_for(
      pool, 0, num_edges,
      [&](index_t e) {
        auto ws = model.make_workspace();
        acc[static_cast<std::size_t>(e)] = nn::accuracy(
            model, w, fed.edge_test[static_cast<std::size_t>(e)], *ws);
      },
      /*grain=*/1);
  return acc;
}

AccuracySummary summarize(const std::vector<scalar_t>& edge_accuracies) {
  HM_CHECK(!edge_accuracies.empty());
  AccuracySummary s;
  s.worst = edge_accuracies.front();
  s.best = edge_accuracies.front();
  scalar_t total = 0;
  for (const scalar_t a : edge_accuracies) {
    total += a;
    s.worst = std::min(s.worst, a);
    s.best = std::max(s.best, a);
  }
  const auto n = static_cast<scalar_t>(edge_accuracies.size());
  s.average = total / n;
  scalar_t var = 0;
  for (const scalar_t a : edge_accuracies) {
    const scalar_t d_pct = (a - s.average) * 100;  // percentage points
    var += d_pct * d_pct;
  }
  s.variance_pct2 = var / n;
  return s;
}

scalar_t gini_coefficient(std::vector<scalar_t> edge_accuracies) {
  HM_CHECK(!edge_accuracies.empty());
  std::sort(edge_accuracies.begin(), edge_accuracies.end());
  const auto n = static_cast<scalar_t>(edge_accuracies.size());
  scalar_t total = 0, weighted = 0;
  for (std::size_t i = 0; i < edge_accuracies.size(); ++i) {
    HM_CHECK_MSG(edge_accuracies[i] >= 0, "negative accuracy");
    total += edge_accuracies[i];
    weighted += static_cast<scalar_t>(i + 1) * edge_accuracies[i];
  }
  if (total == 0) return 0;
  return (2 * weighted) / (n * total) - (n + 1) / n;
}

scalar_t accuracy_entropy(const std::vector<scalar_t>& edge_accuracies) {
  HM_CHECK(!edge_accuracies.empty());
  scalar_t total = 0;
  for (const scalar_t a : edge_accuracies) {
    HM_CHECK_MSG(a >= 0, "negative accuracy");
    total += a;
  }
  HM_CHECK_MSG(total > 0, "all-zero accuracies");
  scalar_t h = 0;
  for (const scalar_t a : edge_accuracies) {
    if (a <= 0) continue;
    const scalar_t share = a / total;
    h -= share * std::log(share);
  }
  return h;
}

scalar_t worst_fraction_accuracy(std::vector<scalar_t> edge_accuracies,
                                 scalar_t fraction) {
  HM_CHECK(!edge_accuracies.empty());
  HM_CHECK(0 < fraction && fraction <= 1);
  std::sort(edge_accuracies.begin(), edge_accuracies.end());
  const auto k = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             fraction * static_cast<scalar_t>(edge_accuracies.size()))));
  scalar_t total = 0;
  for (index_t i = 0; i < k; ++i) {
    total += edge_accuracies[static_cast<std::size_t>(i)];
  }
  return total / static_cast<scalar_t>(k);
}

scalar_t edge_loss(const nn::Model& model, nn::ConstVecView w,
                   const data::FederatedDataset& fed, index_t edge,
                   nn::Workspace& ws) {
  HM_CHECK(0 <= edge && edge < fed.num_edges());
  // All shards score at the same w, so one loss_many call fuses them into
  // a single stacked sweep (per shard the value is bit-identical to a
  // standalone loss() call over all_indices).
  const auto n = static_cast<std::size_t>(fed.clients_per_edge);
  std::vector<std::vector<index_t>> batches(n);
  std::vector<nn::LossJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const data::Dataset& shard = fed.shard(edge, static_cast<index_t>(i));
    batches[i] = nn::all_indices(shard.size());
    jobs[i] = nn::LossJob{w, &shard, batches[i]};
  }
  std::vector<scalar_t> losses(n);
  model.loss_many(jobs, losses, ws);
  scalar_t total = 0;
  index_t samples = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += losses[i] * static_cast<scalar_t>(jobs[i].data->size());
    samples += jobs[i].data->size();
  }
  return total / static_cast<scalar_t>(samples);
}

std::vector<scalar_t> per_edge_loss(const nn::Model& model,
                                    nn::ConstVecView w,
                                    const data::FederatedDataset& fed,
                                    parallel::ThreadPool& pool) {
  const index_t num_edges = fed.num_edges();
  std::vector<scalar_t> losses(static_cast<std::size_t>(num_edges), 0);
  parallel::parallel_for(
      pool, 0, num_edges,
      [&](index_t e) {
        auto ws = model.make_workspace();
        losses[static_cast<std::size_t>(e)] =
            edge_loss(model, w, fed, e, *ws);
      },
      /*grain=*/1);
  return losses;
}

}  // namespace hm::metrics
