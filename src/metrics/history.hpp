// Training-curve recording: one record per evaluation point, with the
// communication meter snapshot — enough to regenerate the paper's
// "accuracy vs communication rounds" figures and the rounds-to-threshold
// headline numbers.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/evaluation.hpp"
#include "sim/comm.hpp"

namespace hm::metrics {

struct RoundRecord {
  index_t round = 0;                  // training round k
  sim::CommStats comm;                // cumulative traffic at this point
  std::vector<scalar_t> edge_acc;     // per-edge test accuracy
  AccuracySummary summary;            // derived from edge_acc
  scalar_t global_loss = 0;           // mean training loss (uniform p)
};

class TrainingHistory {
 public:
  void add(RoundRecord record) { records_.push_back(std::move(record)); }

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  const std::vector<RoundRecord>& records() const { return records_; }
  const RoundRecord& back() const { return records_.back(); }

  /// First cumulative total_rounds() at which worst accuracy >= target,
  /// or nullopt if never reached. The paper's "communication rounds to
  /// reach X% worst accuracy".
  std::optional<std::uint64_t> rounds_to_worst_accuracy(
      scalar_t target) const;

  /// Same for average accuracy.
  std::optional<std::uint64_t> rounds_to_average_accuracy(
      scalar_t target) const;

  /// First cumulative edge-cloud (wide-area) rounds at which worst
  /// accuracy >= target.
  std::optional<std::uint64_t> edge_cloud_rounds_to_worst_accuracy(
      scalar_t target) const;

  /// First cumulative edge-cloud *model payload* count at which worst
  /// accuracy >= target. This is the communication-overhead headline
  /// metric (the paper's "communication rounds" x-axis up to a constant):
  /// two-layer methods ship every sampled client's model across the
  /// wide-area segment each round, while hierarchical methods ship only
  /// one aggregate per participating edge server.
  std::optional<std::uint64_t> wan_payloads_to_worst_accuracy(
      scalar_t target) const;

  /// Like wan_payloads_to_worst_accuracy, but requires the *trailing
  /// mean* of `window` consecutive records to reach the target — robust
  /// to single-evaluation spikes on noisy curves. Returns the payload
  /// count at the last record of the qualifying window.
  std::optional<std::uint64_t> wan_payloads_to_sustained_worst(
      scalar_t target, index_t window = 3) const;

  /// Mean of (average, worst, variance) over the last `window` records —
  /// a lower-variance "final performance" estimate than the last
  /// snapshot alone.
  AccuracySummary tail_summary(index_t window) const;

  /// TSV dump: one line per record with round, comm counters, the fault
  /// delivery roll-ups (delivered/dropped/straggled, all zero without a
  /// FaultPlan), avg/worst/variance. `label` becomes the first column
  /// (method name).
  void write_tsv(std::ostream& os, const std::string& label) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace hm::metrics
