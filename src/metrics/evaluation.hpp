// Per-edge-area evaluation and fairness summary statistics — the
// quantities reported in the paper's Figs. 3–4 and Table 2.
#pragma once

#include <vector>

#include "data/federated.hpp"
#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"

namespace hm::metrics {

/// Test accuracy of model `w` on every edge area's test set, evaluated in
/// parallel (one task per edge).
std::vector<scalar_t> per_edge_accuracy(const nn::Model& model,
                                        nn::ConstVecView w,
                                        const data::FederatedDataset& fed,
                                        parallel::ThreadPool& pool);

struct AccuracySummary {
  scalar_t average = 0;        // mean over edge areas
  scalar_t worst = 0;          // min over edge areas
  scalar_t best = 0;           // max over edge areas
  scalar_t variance_pct2 = 0;  // population variance of accuracies *in
                               // percentage points*, the unit of Table 2
};

AccuracySummary summarize(const std::vector<scalar_t>& edge_accuracies);

/// Gini coefficient of the edge accuracies (0 = perfectly uniform,
/// -> 1 = maximally concentrated) — a scale-free fairness index used in
/// the fair-FL literature alongside variance.
scalar_t gini_coefficient(std::vector<scalar_t> edge_accuracies);

/// Shannon entropy (nats) of the normalized accuracy distribution;
/// maximal (log N_E) when accuracies are uniform across edges.
scalar_t accuracy_entropy(const std::vector<scalar_t>& edge_accuracies);

/// Mean accuracy of the worst `fraction` of edge areas (Table 2's
/// "worst 10%" metric for the 100-edge Synthetic dataset).
scalar_t worst_fraction_accuracy(std::vector<scalar_t> edge_accuracies,
                                 scalar_t fraction);

/// Mean training loss of `w` on edge e (full shard pass over all of that
/// edge's clients) — the exact f_e(w) used by duality-gap evaluation.
scalar_t edge_loss(const nn::Model& model, nn::ConstVecView w,
                   const data::FederatedDataset& fed, index_t edge,
                   nn::Workspace& ws);

/// All edge losses, in parallel.
std::vector<scalar_t> per_edge_loss(const nn::Model& model,
                                    nn::ConstVecView w,
                                    const data::FederatedDataset& fed,
                                    parallel::ThreadPool& pool);

}  // namespace hm::metrics
