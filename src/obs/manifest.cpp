#include "obs/manifest.hpp"

#include "obs/build_info.hpp"

namespace hm::obs {

void Manifest::set(const std::string& key, const std::string& value) {
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries.emplace_back(key, value);
}

const std::string* Manifest::find(const std::string& key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string Manifest::render_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : entries) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped(out, k);
    out += "\":\"";
    append_escaped(out, v);
    out += "\"";
  }
  out += "}";
  return out;
}

Manifest make_base_manifest() {
  Manifest m;
  m.set("schema", "hm.obs/1");
  m.set("git", kGitDescribe);
  m.set("build_type", kBuildType);
#ifdef NDEBUG
  m.set("assertions", "off");
#else
  m.set("assertions", "on");
#endif
#if HM_OBS_ENABLED
  m.set("obs_hooks", "compiled-in");
#else
  m.set("obs_hooks", "compiled-out");
#endif
  return m;
}

}  // namespace hm::obs
