// Umbrella header + instrumentation macros for the observability
// subsystem (DESIGN.md §15).
//
// Compile gate: HM_OBS_ENABLED (CMake option HM_OBS, default ON).
// With HM_OBS_ENABLED=0 every HM_OBS_* macro expands to ((void)0) — no
// counter touch, no enabled check, no clock read — which is the
// "compiled out" arm of the bit-identity contract. The obs library
// itself still builds either way, so exporters and CLI plumbing link;
// they simply see an empty registry and ring.
//
// Runtime gate: metrics counters always count when compiled in (one
// relaxed fetch_add at round/phase/region granularity — the measured
// compiled-in-idle overhead, budget ≤1%); span recording additionally
// requires obs::set_trace_enabled(true).
//
// Hot-path usage — the name must be a string literal; the instrument
// handle is looked up once per call site and cached in a function-local
// static, so steady state is one atomic op:
//
//   HM_OBS_INC("parallel.regions_dispatched");
//   HM_OBS_ADD("sim.device_jobs", static_cast<std::uint64_t>(count));
//   HM_OBS_HIST("parallel.region_chunks", chunks);
//   HM_OBS_SPAN("round", "algo", k, 0);          // RAII, value channel
//   HM_OBS_SPAN_T("rpc_attempt", "net", lane, tag);  // timing channel
#pragma once

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef HM_OBS_ENABLED
#define HM_OBS_ENABLED 1
#endif

#if HM_OBS_ENABLED

#define HM_OBS_CONCAT_IMPL(a, b) a##b
#define HM_OBS_CONCAT(a, b) HM_OBS_CONCAT_IMPL(a, b)

// Counter add on the given channel ("" variants use the value channel).
#define HM_OBS_ADD_ON(name_lit, n, chan)                               \
  do {                                                                 \
    static ::hm::obs::Counter& HM_OBS_CONCAT(hm_obs_c_, __LINE__) =    \
        ::hm::obs::registry().counter((name_lit), (chan));             \
    HM_OBS_CONCAT(hm_obs_c_, __LINE__).add(n);                         \
  } while (0)
#define HM_OBS_ADD(name_lit, n) \
  HM_OBS_ADD_ON(name_lit, n, ::hm::obs::Channel::kValue)
#define HM_OBS_ADD_T(name_lit, n) \
  HM_OBS_ADD_ON(name_lit, n, ::hm::obs::Channel::kTiming)
#define HM_OBS_INC(name_lit) HM_OBS_ADD(name_lit, 1)
#define HM_OBS_INC_T(name_lit) HM_OBS_ADD_T(name_lit, 1)

// Gauge set (absolute; mirrors of externally-owned tallies).
#define HM_OBS_SET_ON(name_lit, v, chan)                               \
  do {                                                                 \
    static ::hm::obs::Gauge& HM_OBS_CONCAT(hm_obs_g_, __LINE__) =      \
        ::hm::obs::registry().gauge((name_lit), (chan));               \
    HM_OBS_CONCAT(hm_obs_g_, __LINE__)                                 \
        .set(static_cast<std::int64_t>(v));                            \
  } while (0)
#define HM_OBS_SET(name_lit, v) \
  HM_OBS_SET_ON(name_lit, v, ::hm::obs::Channel::kValue)
#define HM_OBS_SET_T(name_lit, v) \
  HM_OBS_SET_ON(name_lit, v, ::hm::obs::Channel::kTiming)

// Histogram observation (power-of-two buckets).
#define HM_OBS_HIST_ON(name_lit, v, chan)                              \
  do {                                                                 \
    static ::hm::obs::Histogram& HM_OBS_CONCAT(hm_obs_h_, __LINE__) =  \
        ::hm::obs::registry().histogram(                               \
            (name_lit), ::hm::obs::pow2_bounds(), (chan));             \
    HM_OBS_CONCAT(hm_obs_h_, __LINE__)                                 \
        .record(static_cast<std::uint64_t>(v));                        \
  } while (0)
#define HM_OBS_HIST(name_lit, v) \
  HM_OBS_HIST_ON(name_lit, v, ::hm::obs::Channel::kValue)
#define HM_OBS_HIST_T(name_lit, v) \
  HM_OBS_HIST_ON(name_lit, v, ::hm::obs::Channel::kTiming)

// RAII spans. _T marks spans whose existence is timing-dependent
// (retries, heartbeats on a real wire).
#define HM_OBS_SPAN(name_lit, cat_lit, a0, a1)                       \
  const ::hm::obs::Span HM_OBS_CONCAT(hm_obs_span_, __LINE__)(       \
      (name_lit), (cat_lit), static_cast<std::uint64_t>(a0),         \
      static_cast<std::uint64_t>(a1), ::hm::obs::Channel::kValue)
#define HM_OBS_SPAN_T(name_lit, cat_lit, a0, a1)                     \
  const ::hm::obs::Span HM_OBS_CONCAT(hm_obs_span_, __LINE__)(       \
      (name_lit), (cat_lit), static_cast<std::uint64_t>(a0),         \
      static_cast<std::uint64_t>(a1), ::hm::obs::Channel::kTiming)

#else  // HM_OBS_ENABLED == 0: hooks compile to nothing.

#define HM_OBS_ADD_ON(name_lit, n, chan) ((void)0)
#define HM_OBS_ADD(name_lit, n) ((void)0)
#define HM_OBS_ADD_T(name_lit, n) ((void)0)
#define HM_OBS_INC(name_lit) ((void)0)
#define HM_OBS_INC_T(name_lit) ((void)0)
#define HM_OBS_SET_ON(name_lit, v, chan) ((void)0)
#define HM_OBS_SET(name_lit, v) ((void)0)
#define HM_OBS_SET_T(name_lit, v) ((void)0)
#define HM_OBS_HIST_ON(name_lit, v, chan) ((void)0)
#define HM_OBS_HIST(name_lit, v) ((void)0)
#define HM_OBS_HIST_T(name_lit, v) ((void)0)
#define HM_OBS_SPAN(name_lit, cat_lit, a0, a1) ((void)0)
#define HM_OBS_SPAN_T(name_lit, cat_lit, a0, a1) ((void)0)

#endif  // HM_OBS_ENABLED
