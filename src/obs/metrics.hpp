// Metrics registry (DESIGN.md §15): named counters, gauges, and
// fixed-bucket histograms with lock-free hot-path updates.
//
// Determinism contract: a metric lives on one of two channels.
//  * kValue   — its value must be a pure function of (seed, config):
//               event counts, payload tallies, delivery accounting.
//               Value-channel metrics are what the obs-on/obs-off
//               bit-identity tests and the snapshot reconciliation
//               checks compare.
//  * kTiming  — anything the host's scheduler or clock can perturb:
//               durations, retry/timeout tallies under real transports,
//               worker-join occupancy. Exports tag the channel so
//               consumers never diff timing values across runs.
// Registration order never matters: snapshot() lists metrics sorted by
// name, so two processes that register the same metric set in any order
// produce identical snapshots.
//
// Instruments are registered once (first call wins; later calls with
// the same name return the same instrument) and never deallocated, so a
// cached `Counter&` stays valid for the process lifetime and add() is a
// single relaxed atomic fetch_add — safe from any thread, including
// thread-pool workers inside a region.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hm::obs {

enum class Channel : std::uint8_t { kValue = 0, kTiming = 1 };
enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

const char* to_string(Channel channel);
const char* to_string(MetricKind kind);

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed level (mirrors of externally-owned tallies,
/// configuration facts like the active SIMD level).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned integer observations. Bucket i
/// counts observations v with v <= bounds[i] (first match); the last
/// implicit bucket is +inf. Bounds are frozen at registration, so
/// merge/diff across snapshots of the same metric are well defined.
class Histogram {
 public:
  void record(std::uint64_t v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  explicit Histogram(std::vector<std::uint64_t> bounds);
  std::vector<std::uint64_t> bounds_;  // strictly increasing
  // One atomic per finite bucket + one overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Power-of-two default bounds 1, 2, 4, ..., 2^20 for size/occupancy
/// style histograms.
std::vector<std::uint64_t> pow2_bounds();

/// One metric's state at snapshot time. For histograms `buckets` holds
/// the per-bucket counts (bounds.size() + 1 entries, last = overflow)
/// and `value` the total count; `sum` is the sum of observations.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Channel channel = Channel::kValue;
  std::int64_t value = 0;
  std::uint64_t sum = 0;                  // histograms only
  std::vector<std::uint64_t> bounds;      // histograms only
  std::vector<std::uint64_t> buckets;     // histograms only

  bool operator==(const MetricValue& o) const = default;
};

/// Point-in-time copy of a registry, sorted by metric name (and thus
/// independent of registration order).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(const std::string& name) const;

  /// Counter/histogram entries subtract (this - earlier); gauges keep
  /// this snapshot's value (levels have no meaningful delta). Metrics
  /// absent from `earlier` are kept as-is. Throws CheckError on
  /// kind/bounds mismatches for shared names.
  MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

  /// Union-merge (e.g. folding per-process snapshots): counters and
  /// histograms add, gauges keep this snapshot's value for shared names.
  MetricsSnapshot merge(const MetricsSnapshot& other) const;

  /// Value-channel subset only — the deterministic comparison set.
  MetricsSnapshot value_channel() const;
};

/// Named instrument registry. The process-wide instance behind the
/// HM_OBS_* macros is `registry()`; tests may build private instances.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Get-or-register. The first call fixes kind and channel (and bounds
  /// for histograms); a later call with the same name and a different
  /// kind throws CheckError (channel/bounds of the first call win).
  Counter& counter(const std::string& name,
                   Channel channel = Channel::kValue);
  Gauge& gauge(const std::string& name, Channel channel = Channel::kValue);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds,
                       Channel channel = Channel::kValue);

  MetricsSnapshot snapshot() const;
  std::size_t size() const;

 private:
  struct Entry;
  Entry& find_or_create(const std::string& name, MetricKind kind,
                        Channel channel,
                        std::vector<std::uint64_t>* bounds);
  // Registration and snapshots lock; add()/set()/record() never do.
  mutable std::mutex mutex_;
  std::vector<Entry*> entries_;  // owned (freed by ~Registry); stable
};

/// The process-wide registry used by the HM_OBS_* macros.
Registry& registry();

/// Render a snapshot as one JSON document:
///   {"schema":"hm.metrics/1","manifest":{...},"metrics":[...]}
/// Counters/gauges carry "value"; histograms add "sum", "bounds",
/// "buckets". Every metric carries its "kind" and "channel" tags so
/// consumers can restrict themselves to the deterministic value channel.
/// `manifest_json` must be a complete JSON object ("{}" when absent).
std::string render_metrics_json(const MetricsSnapshot& snapshot,
                                const std::string& manifest_json);

}  // namespace hm::obs
