// Span-based tracer (DESIGN.md §15): round → phase → cluster → RPC
// attempt spans into a bounded in-memory ring buffer, exported as JSONL
// or Chrome trace_event JSON.
//
// Channel separation (the determinism contract): a span's *identity*
// (name, category, the two integer args) lives on the value channel and
// must be a pure function of (seed, config). Its *timing* (timestamps,
// duration, recording thread, ring sequence) is the timing channel —
// host-dependent by nature and clearly fenced off in the export schema.
// Spans whose very existence is timing-dependent (a retry attempt on a
// real wire) are recorded with Channel::kTiming so value-channel
// comparisons skip them entirely.
//
// The tracer is disabled by default: a disabled Span is two relaxed
// atomic loads and no clock read, which is what keeps the compiled-in
// idle overhead within the ≤1% budget. All clock access lives in
// trace.cpp — the one obs translation unit allowed to read a clock
// (enforced by detlint's obs-clock-outside-timing rule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hm::obs {

enum class Channel : std::uint8_t;  // metrics.hpp

/// One completed span. `name` and `cat` point at string literals with
/// static storage duration (the HM_OBS_SPAN macro guarantees this).
struct SpanRecord {
  const char* name = "";
  const char* cat = "";
  std::uint64_t a0 = 0;       // value channel: e.g. round
  std::uint64_t a1 = 0;       // value channel: e.g. entity / lane / tag
  std::uint8_t channel = 0;   // Channel as u8 (0 = value, 1 = timing)
  std::uint32_t tid = 0;      // timing channel: recording thread
  std::uint64_t seq = 0;      // timing channel: ring admission order
  std::uint64_t start_ns = 0; // timing channel: monotonic
  std::uint64_t end_ns = 0;   // timing channel: monotonic
};

/// Whether spans are being recorded. Cheap enough for hot paths.
bool trace_enabled();

/// Turn recording on/off. Enabling resets the ring, the sequence
/// counter, and the epoch so exported timestamps start near zero.
void set_trace_enabled(bool enabled);

/// Ring capacity in spans (default 65536). Takes effect at the next
/// set_trace_enabled(true); the ring keeps the most recent `capacity`
/// spans and counts the overwritten ones.
void set_trace_capacity(std::size_t capacity);

/// Completed spans, oldest first, plus how many were overwritten.
std::vector<SpanRecord> trace_spans();
std::uint64_t trace_dropped();

/// Out-of-line record hooks (the Span RAII type calls these; tests may
/// call them directly to fabricate spans).
std::uint64_t trace_now_ns();
void trace_record(const SpanRecord& record);

/// RAII span. Inactive (no clock read, nothing recorded) while the
/// tracer is disabled; a span that outlives a set_trace_enabled(false)
/// still records (the ring survives until the next enable).
class Span {
 public:
  Span(const char* name, const char* cat, std::uint64_t a0,
       std::uint64_t a1, Channel channel);
  Span(const char* name, const char* cat, std::uint64_t a0,
       std::uint64_t a1);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  SpanRecord rec_;
  bool active_ = false;
};

/// Render every recorded span as JSON Lines: one object per span with
/// value-channel fields ("name", "cat", "a0", "a1", "channel") and
/// timing-channel fields ("ts_us", "dur_us", "tid", "seq").
std::string render_trace_jsonl();

/// Render as a Chrome trace_event document ({"traceEvents": [...]},
/// complete "X" events; load via chrome://tracing or Perfetto). The
/// manifest argument is attached as document-level "metadata".
std::string render_chrome_trace(const std::string& manifest_json);

}  // namespace hm::obs
