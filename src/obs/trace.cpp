// Tracer internals. This is the designated timing channel: the only obs
// translation unit that reads a clock (steady_clock via hm::Stopwatch
// semantics; detlint: obs-clock-outside-timing).
#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

#include "core/check.hpp"
#include "obs/metrics.hpp"

namespace hm::obs {

namespace {

struct TraceState {
  std::mutex mutex;
  std::vector<SpanRecord> ring;     // capacity-bounded, wraps
  std::size_t capacity = 1 << 16;
  std::size_t next_capacity = 1 << 16;
  std::uint64_t admitted = 0;       // total spans ever recorded
  std::uint64_t epoch_ns = 0;       // monotonic origin of this session
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_next_tid{0};

TraceState& state() {
  static TraceState* instance = new TraceState();  // leaked: worker-safe
  return *instance;
}

std::uint32_t this_tid() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');  // control chars cannot appear in our names
    } else {
      out.push_back(c);
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

/// Microseconds with 3 decimals, rendered without float formatting so
/// the output is locale- and libc-independent.
void append_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  out.push_back('.');
  const std::uint64_t frac = ns % 1000;
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + frac / 10 % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

}  // namespace

bool trace_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (enabled) {
    st.capacity = st.next_capacity;
    st.ring.clear();
    st.ring.reserve(st.capacity);
    st.admitted = 0;
    st.epoch_ns = mono_ns();
  }
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t capacity) {
  HM_CHECK(capacity > 0);
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.next_capacity = capacity;
}

std::uint64_t trace_now_ns() { return mono_ns(); }

void trace_record(const SpanRecord& record) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  SpanRecord r = record;
  r.seq = st.admitted;
  if (st.ring.size() < st.capacity) {
    st.ring.push_back(r);
  } else {
    st.ring[static_cast<std::size_t>(st.admitted % st.capacity)] = r;
  }
  st.admitted += 1;
}

std::vector<SpanRecord> trace_spans() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.admitted <= st.ring.size()) return st.ring;
  // Ring wrapped: unroll oldest-first from the write cursor.
  std::vector<SpanRecord> out;
  out.reserve(st.ring.size());
  const std::size_t cursor =
      static_cast<std::size_t>(st.admitted % st.capacity);
  for (std::size_t i = 0; i < st.ring.size(); ++i) {
    out.push_back(st.ring[(cursor + i) % st.ring.size()]);
  }
  return out;
}

std::uint64_t trace_dropped() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.admitted > st.ring.size()
             ? st.admitted - static_cast<std::uint64_t>(st.ring.size())
             : 0;
}

Span::Span(const char* name, const char* cat, std::uint64_t a0,
           std::uint64_t a1, Channel channel) {
  if (!trace_enabled()) return;
  active_ = true;
  rec_.name = name;
  rec_.cat = cat;
  rec_.a0 = a0;
  rec_.a1 = a1;
  rec_.channel = static_cast<std::uint8_t>(channel);
  rec_.tid = this_tid();
  rec_.start_ns = mono_ns();
}

Span::Span(const char* name, const char* cat, std::uint64_t a0,
           std::uint64_t a1)
    : Span(name, cat, a0, a1, Channel::kValue) {}

Span::~Span() {
  if (!active_) return;
  rec_.end_ns = mono_ns();
  trace_record(rec_);
}

namespace {

/// Shared span body: value-channel fields first, timing after.
void append_span_fields(std::string& out, const SpanRecord& s,
                        std::uint64_t epoch_ns) {
  out += "\"name\":\"";
  append_escaped(out, s.name);
  out += "\",\"cat\":\"";
  append_escaped(out, s.cat);
  out += "\",\"a0\":";
  append_u64(out, s.a0);
  out += ",\"a1\":";
  append_u64(out, s.a1);
  out += ",\"channel\":\"";
  out += to_string(static_cast<Channel>(s.channel));
  out += "\",\"ts_us\":";
  append_us(out, s.start_ns >= epoch_ns ? s.start_ns - epoch_ns : 0);
  out += ",\"dur_us\":";
  append_us(out, s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0);
  out += ",\"tid\":";
  append_u64(out, s.tid);
  out += ",\"seq\":";
  append_u64(out, s.seq);
}

std::uint64_t epoch() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.epoch_ns;
}

}  // namespace

std::string render_trace_jsonl() {
  const std::vector<SpanRecord> spans = trace_spans();
  const std::uint64_t epoch_ns = epoch();
  std::string out;
  out.reserve(spans.size() * 128 + 128);
  out += "{\"type\":\"trace_header\",\"spans\":";
  append_u64(out, static_cast<std::uint64_t>(spans.size()));
  out += ",\"dropped\":";
  append_u64(out, trace_dropped());
  out += "}\n";
  for (const SpanRecord& s : spans) {
    out += "{\"type\":\"span\",";
    append_span_fields(out, s, epoch_ns);
    out += "}\n";
  }
  return out;
}

std::string render_chrome_trace(const std::string& manifest_json) {
  const std::vector<SpanRecord> spans = trace_spans();
  const std::uint64_t epoch_ns = epoch();
  std::string out;
  out.reserve(spans.size() * 160 + manifest_json.size() + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"metadata\":";
  out += manifest_json.empty() ? "{}" : manifest_json;
  out += ",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"ph\":\"X\",\"pid\":0,\"tid\":";
    append_u64(out, s.tid);
    out += ",\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"";
    append_escaped(out, s.cat);
    out += "\",\"ts\":";
    append_us(out, s.start_ns >= epoch_ns ? s.start_ns - epoch_ns : 0);
    out += ",\"dur\":";
    append_us(out, s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0);
    out += ",\"args\":{\"a0\":";
    append_u64(out, s.a0);
    out += ",\"a1\":";
    append_u64(out, s.a1);
    out += ",\"channel\":\"";
    out += to_string(static_cast<Channel>(s.channel));
    out += "\"}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace hm::obs
