// Run manifest: the once-per-run provenance record (seed, CLI flags,
// SIMD dispatch table, transport backend, build id) emitted alongside
// every metrics/trace export so a captured file is self-describing.
// Values are strings on purpose — the manifest is metadata, not a
// metric, and never participates in determinism comparisons.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace hm::obs {

struct Manifest {
  // Insertion-ordered key/value pairs; duplicate keys keep last.
  std::vector<std::pair<std::string, std::string>> entries;

  void set(const std::string& key, const std::string& value);
  const std::string* find(const std::string& key) const;

  /// One JSON object, keys in insertion order, all values strings.
  std::string render_json() const;
};

/// Baseline manifest with the build/runtime facts every run shares:
/// schema ("hm.obs/1"), git describe (captured at configure time),
/// build type, active + supported SIMD levels, and thread count.
Manifest make_base_manifest();

}  // namespace hm::obs
