#include "obs/metrics.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace hm::obs {

const char* to_string(Channel channel) {
  return channel == Channel::kTiming ? "timing" : "value";
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
}

void Histogram::record(std::uint64_t v) {
  // First bucket whose bound is >= v; everything past the last finite
  // bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> pow2_bounds() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1; v <= (std::uint64_t{1} << 20); v <<= 1) {
    b.push_back(v);
  }
  return b;
}

// ——— Registry ———

struct Registry::Entry {
  std::string name;
  MetricKind kind;
  Channel channel;
  Counter counter;
  Gauge gauge;
  Histogram histogram;

  Entry(std::string n, MetricKind k, Channel c,
        std::vector<std::uint64_t> bounds)
      : name(std::move(n)), kind(k), channel(c),
        histogram(std::move(bounds)) {}
};

Registry::~Registry() {
  for (Entry* e : entries_) delete e;
}

Registry::Entry& Registry::find_or_create(
    const std::string& name, MetricKind kind, Channel channel,
    std::vector<std::uint64_t>* bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry* e : entries_) {
    if (e->name == name) {
      HM_CHECK_MSG(e->kind == kind,
                   "metric '" << name << "' registered as "
                              << to_string(e->kind) << ", requested as "
                              << to_string(kind));
      return *e;
    }
  }
  entries_.push_back(new Entry(name, kind, channel,
                               bounds != nullptr
                                   ? std::move(*bounds)
                                   : std::vector<std::uint64_t>{}));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, Channel channel) {
  return find_or_create(name, MetricKind::kCounter, channel, nullptr)
      .counter;
}

Gauge& Registry::gauge(const std::string& name, Channel channel) {
  return find_or_create(name, MetricKind::kGauge, channel, nullptr).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> bounds,
                               Channel channel) {
  return find_or_create(name, MetricKind::kHistogram, channel, &bounds)
      .histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.metrics.reserve(entries_.size());
    for (const Entry* e : entries_) {
      MetricValue v;
      v.name = e->name;
      v.kind = e->kind;
      v.channel = e->channel;
      switch (e->kind) {
        case MetricKind::kCounter:
          v.value = static_cast<std::int64_t>(e->counter.value());
          break;
        case MetricKind::kGauge:
          v.value = e->gauge.value();
          break;
        case MetricKind::kHistogram: {
          v.value = static_cast<std::int64_t>(e->histogram.count());
          v.sum = e->histogram.sum();
          v.bounds = e->histogram.bounds();
          v.buckets.reserve(e->histogram.buckets_.size());
          for (const auto& b : e->histogram.buckets_) {
            v.buckets.push_back(b.load(std::memory_order_relaxed));
          }
          break;
        }
      }
      snap.metrics.push_back(std::move(v));
    }
  }
  // Sorted by name: snapshots are independent of registration order.
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

// ——— Snapshot algebra ———

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

void check_compatible(const MetricValue& a, const MetricValue& b) {
  HM_CHECK_MSG(a.kind == b.kind && a.bounds == b.bounds,
               "metric '" << a.name
                          << "': snapshots disagree on kind or bounds");
}

}  // namespace

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.metrics.reserve(metrics.size());
  for (const MetricValue& m : metrics) {
    MetricValue d = m;
    if (const MetricValue* prev = earlier.find(m.name)) {
      check_compatible(m, *prev);
      if (m.kind != MetricKind::kGauge) {
        d.value = m.value - prev->value;
        d.sum = m.sum - prev->sum;
        for (std::size_t i = 0; i < d.buckets.size(); ++i) {
          d.buckets[i] = m.buckets[i] - prev->buckets[i];
        }
      }
    }
    out.metrics.push_back(std::move(d));
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::merge(const MetricsSnapshot& other) const {
  MetricsSnapshot out = *this;
  for (const MetricValue& m : other.metrics) {
    bool found = false;
    for (MetricValue& mine : out.metrics) {
      if (mine.name != m.name) continue;
      check_compatible(mine, m);
      if (mine.kind != MetricKind::kGauge) {
        mine.value += m.value;
        mine.sum += m.sum;
        for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
          mine.buckets[i] += m.buckets[i];
        }
      }
      found = true;
      break;
    }
    if (!found) out.metrics.push_back(m);
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

MetricsSnapshot MetricsSnapshot::value_channel() const {
  MetricsSnapshot out;
  for (const MetricValue& m : metrics) {
    if (m.channel == Channel::kValue) out.metrics.push_back(m);
  }
  return out;
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives workers
  return *instance;
}

// ——— JSON export ———

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out.push_back('[');
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(v[i]);
  }
  out.push_back(']');
}

}  // namespace

std::string render_metrics_json(const MetricsSnapshot& snapshot,
                                const std::string& manifest_json) {
  std::string out;
  out.reserve(snapshot.metrics.size() * 96 + manifest_json.size() + 128);
  out += "{\"schema\":\"hm.metrics/1\",\"manifest\":";
  out += manifest_json.empty() ? "{}" : manifest_json;
  out += ",\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snapshot.metrics) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, m.name);
    out += "\",\"kind\":\"";
    out += to_string(m.kind);
    out += "\",\"channel\":\"";
    out += to_string(m.channel);
    out += "\",\"value\":";
    out += std::to_string(m.value);
    if (m.kind == MetricKind::kHistogram) {
      out += ",\"sum\":";
      out += std::to_string(m.sum);
      out += ",\"bounds\":";
      append_u64_array(out, m.bounds);
      out += ",\"buckets\":";
      append_u64_array(out, m.buckets);
    }
    out.push_back('}');
  }
  out += "\n]}\n";
  return out;
}

}  // namespace hm::obs
