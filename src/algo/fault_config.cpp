#include "algo/fault_config.hpp"

#include "core/check.hpp"

namespace hm::algo {

OnFault parse_on_fault(const std::string& name) {
  if (name == "renormalize") return OnFault::kRenormalize;
  if (name == "stale") return OnFault::kReuseStale;
  if (name == "skip") return OnFault::kSkipRound;
  HM_CHECK_MSG(false, "unknown --on-fault policy '"
                          << name
                          << "' (expected renormalize | stale | skip)");
}

const char* to_string(OnFault policy) {
  switch (policy) {
    case OnFault::kRenormalize:
      return "renormalize";
    case OnFault::kReuseStale:
      return "stale";
    case OnFault::kSkipRound:
      return "skip";
  }
  return "?";
}

sim::AttackKind parse_attack(const std::string& name) {
  if (name == "none") return sim::AttackKind::kNone;
  if (name == "sign-flip") return sim::AttackKind::kSignFlip;
  if (name == "scaled-noise") return sim::AttackKind::kScaledNoise;
  if (name == "label-flip") return sim::AttackKind::kLabelFlip;
  HM_CHECK_MSG(false,
               "unknown --attack kind '"
                   << name
                   << "' (expected none | sign-flip | scaled-noise | "
                      "label-flip)");
}

const char* to_string(sim::AttackKind kind) {
  switch (kind) {
    case sim::AttackKind::kNone:
      return "none";
    case sim::AttackKind::kSignFlip:
      return "sign-flip";
    case sim::AttackKind::kScaledNoise:
      return "scaled-noise";
    case sim::AttackKind::kLabelFlip:
      return "label-flip";
  }
  return "?";
}

Aggregate parse_aggregate(const std::string& name) {
  if (name == "mean") return Aggregate::kMean;
  if (name == "median") return Aggregate::kMedian;
  if (name == "trimmed") return Aggregate::kTrimmedMean;
  HM_CHECK_MSG(false, "unknown --aggregate kind '"
                          << name << "' (expected mean | median | trimmed)");
}

const char* to_string(Aggregate kind) {
  switch (kind) {
    case Aggregate::kMean:
      return "mean";
    case Aggregate::kMedian:
      return "median";
    case Aggregate::kTrimmedMean:
      return "trimmed";
  }
  return "?";
}

sim::FaultSpec fault_spec_from_flags(const Flags& flags) {
  sim::FaultSpec spec;
  spec.client_dropout_prob = flags.get_double("dropout", 0);
  spec.straggler_prob = flags.get_double("straggler", 0);
  spec.straggler_mult_mean =
      flags.get_double("straggler-mult", spec.straggler_mult_mean);
  spec.edge_loss_prob = flags.get_double("edge-loss", 0);
  spec.max_retries = flags.get_int("max-retries", spec.max_retries);
  spec.seed = static_cast<seed_t>(flags.get_int(
      "fault-seed", static_cast<index_t>(spec.seed)));
  spec.attack =
      parse_attack(flags.get_string("attack", to_string(spec.attack)));
  spec.attack_prob = flags.get_double("attack-frac", spec.attack_prob);
  spec.attack_scale = flags.get_double("attack-scale", spec.attack_scale);
  spec.churn_prob = flags.get_double("churn", spec.churn_prob);
  spec.churn_dwell = flags.get_int("churn-dwell", spec.churn_dwell);
  spec.enabled = flags.has("dropout") || flags.has("straggler") ||
                 flags.has("straggler-mult") || flags.has("edge-loss") ||
                 flags.has("max-retries") || flags.has("fault-seed") ||
                 flags.has("attack") || flags.has("attack-frac") ||
                 flags.has("attack-scale") || flags.has("churn") ||
                 flags.has("churn-dwell");
  spec.validate();
  return spec;
}

void apply_fault_flags(const Flags& flags, TrainOptions& opts) {
  opts.fault = fault_spec_from_flags(flags);
  opts.on_fault =
      parse_on_fault(flags.get_string("on-fault", to_string(opts.on_fault)));
  opts.stale_decay = flags.get_double("stale-decay", opts.stale_decay);
  opts.aggregate =
      parse_aggregate(flags.get_string("aggregate", to_string(opts.aggregate)));
  opts.trim_frac = flags.get_double("trim-frac", opts.trim_frac);
}

}  // namespace hm::algo
