#include "algo/fault_config.hpp"

#include "core/check.hpp"

namespace hm::algo {

OnFault parse_on_fault(const std::string& name) {
  if (name == "renormalize") return OnFault::kRenormalize;
  if (name == "stale") return OnFault::kReuseStale;
  if (name == "skip") return OnFault::kSkipRound;
  HM_CHECK_MSG(false, "unknown --on-fault policy '"
                          << name
                          << "' (expected renormalize | stale | skip)");
}

const char* to_string(OnFault policy) {
  switch (policy) {
    case OnFault::kRenormalize:
      return "renormalize";
    case OnFault::kReuseStale:
      return "stale";
    case OnFault::kSkipRound:
      return "skip";
  }
  return "?";
}

sim::FaultSpec fault_spec_from_flags(const Flags& flags) {
  sim::FaultSpec spec;
  spec.client_dropout_prob = flags.get_double("dropout", 0);
  spec.straggler_prob = flags.get_double("straggler", 0);
  spec.straggler_mult_mean =
      flags.get_double("straggler-mult", spec.straggler_mult_mean);
  spec.edge_loss_prob = flags.get_double("edge-loss", 0);
  spec.max_retries = flags.get_int("max-retries", spec.max_retries);
  spec.seed = static_cast<seed_t>(flags.get_int(
      "fault-seed", static_cast<index_t>(spec.seed)));
  spec.enabled = flags.has("dropout") || flags.has("straggler") ||
                 flags.has("straggler-mult") || flags.has("edge-loss") ||
                 flags.has("max-retries") || flags.has("fault-seed");
  spec.validate();
  return spec;
}

void apply_fault_flags(const Flags& flags, TrainOptions& opts) {
  opts.fault = fault_spec_from_flags(flags);
  opts.on_fault =
      parse_on_fault(flags.get_string("on-fault", to_string(opts.on_fault)));
  opts.stale_decay = flags.get_double("stale-decay", opts.stale_decay);
}

}  // namespace hm::algo
