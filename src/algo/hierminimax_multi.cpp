#include "algo/hierminimax_multi.hpp"

#include <numeric>

#include "algo/local_sgd.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

using detail::Participants;

/// Recursive subtree runner for one Phase-1 round within a sampled area.
/// Executes the node at `level` (depth = level within the tree), whose
/// leaves are [first_leaf, first_leaf + span). `w` holds the node's model
/// in/out. `base_iter` counts leaf iterations completed before this call
/// so leaves can match the checkpoint index.
struct SubtreeRunner {
  const nn::Model& model;
  const data::FederatedDataset& fed;
  const sim::MultiTopology& topo;
  const MultiTrainOptions& opts;
  parallel::ThreadPool& pool;
  rng::Xoshiro256 round_gen;           // per-round base stream
  index_t checkpoint_iter = 0;         // in [1, prod(taus)]
  MultiCommStats* comm = nullptr;

  std::vector<std::vector<scalar_t>>* leaf_w = nullptr;
  std::vector<std::vector<scalar_t>>* leaf_ckpt = nullptr;
  std::vector<ClientScratch>* scratch = nullptr;
  std::vector<char>* leaf_has_ckpt = nullptr;

  /// Iterations one leaf performs when a node at depth `level` runs one
  /// full child subtree: prod of taus[level .. depth-1]. (A node at depth
  /// l runs taus[l-1] blocks; its child subtree contributes iters_from(l)
  /// leaf iterations per block.)
  index_t iters_from(index_t level) const {
    index_t prod = 1;
    for (index_t l = level; l < topo.depth(); ++l) {
      prod *= opts.taus[static_cast<std::size_t>(l)];
    }
    return prod;
  }

  /// Run the subtree rooted at (level, node). Models flow: `w` is
  /// broadcast to children, children run, results averaged back into `w`.
  /// Returns nothing; `w` and the leaf checkpoint buffers are updated.
  void run(index_t level, index_t node, nn::VecView w, index_t base_iter) {
    if (level == topo.depth()) {
      run_leaf(node, w, base_iter);
      return;
    }
    const index_t blocks = opts.taus[static_cast<std::size_t>(level) - 1];
    const index_t fanout =
        topo.branching()[static_cast<std::size_t>(level)];
    const index_t child_iters = iters_from(level);
    std::vector<std::vector<scalar_t>> child_w(
        static_cast<std::size_t>(fanout),
        std::vector<scalar_t>(w.size()));

    for (index_t b = 0; b < blocks; ++b) {
      const index_t block_base = base_iter + b * child_iters;
      if (level + 1 == topo.depth()) {
        // Innermost aggregation: run this node's leaves in parallel.
        parallel::parallel_for(
            pool, 0, fanout,
            [&](index_t c) {
              auto& cw = child_w[static_cast<std::size_t>(c)];
              tensor::copy(w, cw);
              run_leaf(node * fanout + c, cw, block_base);
            },
            /*grain=*/1);
      } else {
        for (index_t c = 0; c < fanout; ++c) {
          auto& cw = child_w[static_cast<std::size_t>(c)];
          tensor::copy(w, cw);
          run(level + 1, node * fanout + c, cw, block_base);
        }
      }
      tensor::set_zero(w);
      for (const auto& cw : child_w) {
        tensor::axpy(scalar_t{1} / static_cast<scalar_t>(fanout), cw, w);
      }
      auto& lc = comm->levels[static_cast<std::size_t>(level)];
      lc.rounds += 1;
      lc.models_down += static_cast<std::uint64_t>(fanout);
      lc.models_up += static_cast<std::uint64_t>(fanout);
    }
  }

  void run_leaf(index_t leaf, nn::VecView w, index_t base_iter) {
    const index_t steps = opts.taus.back();
    LocalSgdConfig cfg;
    cfg.steps = steps;
    cfg.batch_size = opts.batch_size;
    cfg.eta = opts.eta_w;
    cfg.w_radius = opts.w_radius;
    // Capture when the checkpoint iteration falls inside this leaf run.
    if (checkpoint_iter > base_iter &&
        checkpoint_iter <= base_iter + steps) {
      cfg.checkpoint_step = checkpoint_iter - base_iter;
      (*leaf_has_ckpt)[static_cast<std::size_t>(leaf)] = 1;
    }
    rng::Xoshiro256 gen = round_gen.split(detail::kTagLocal)
                              .split(static_cast<std::uint64_t>(leaf))
                              .split(static_cast<std::uint64_t>(base_iter));
    run_local_sgd(model, fed.client_train[static_cast<std::size_t>(leaf)],
                  cfg, w, (*leaf_ckpt)[static_cast<std::size_t>(leaf)], gen,
                  (*scratch)[static_cast<std::size_t>(leaf)]);
    tensor::copy(w, (*leaf_w)[static_cast<std::size_t>(leaf)]);
  }
};

}  // namespace

MultiTrainResult train_hierminimax_multi(const nn::Model& model,
                                         const data::FederatedDataset& fed,
                                         const sim::MultiTopology& topo,
                                         const MultiTrainOptions& opts,
                                         parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK_MSG(static_cast<index_t>(opts.taus.size()) == topo.depth(),
               "need one tau per level: " << topo.depth());
  for (const index_t t : opts.taus) HM_CHECK(t > 0);
  HM_CHECK(fed.num_edges() == topo.num_areas());
  HM_CHECK(fed.clients_per_edge == topo.leaves_per_area());
  HM_CHECK(opts.rounds > 0 && opts.eta_w > 0 && opts.eta_p > 0);
  HM_CHECK(opts.p_set.feasible(topo.num_areas()));
  const index_t num_areas = topo.num_areas();
  const index_t m =
      opts.sampled_areas > 0 ? opts.sampled_areas : num_areas;
  HM_CHECK(m <= num_areas);
  const index_t d = model.num_params();
  const index_t iters_per_round = std::accumulate(
      opts.taus.begin(), opts.taus.end(), index_t{1},
      [](index_t a, index_t b) { return a * b; });

  rng::Xoshiro256 root(opts.seed);

  MultiTrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_areas);
  result.comm.levels.resize(static_cast<std::size_t>(topo.depth()));

  std::vector<std::vector<scalar_t>> leaf_w(
      static_cast<std::size_t>(topo.num_leaves()),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> leaf_ckpt = leaf_w;
  std::vector<ClientScratch> scratch(
      static_cast<std::size_t>(topo.num_leaves()));
  std::vector<char> leaf_has_ckpt(
      static_cast<std::size_t>(topo.num_leaves()), 0);
  std::vector<std::vector<scalar_t>> area_w(
      static_cast<std::size_t>(num_areas),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<scalar_t> checkpoint(static_cast<std::size_t>(d));
  std::vector<scalar_t> area_losses(static_cast<std::size_t>(num_areas));

  // History recording reuses the three-layer CommStats shape by mapping
  // level-0 traffic to edge_cloud and deeper levels to client_edge.
  auto comm_snapshot = [&]() {
    sim::CommStats flat;
    flat.edge_cloud_rounds = result.comm.levels[0].rounds;
    flat.edge_cloud_models_up = result.comm.levels[0].models_up;
    flat.edge_cloud_models_down = result.comm.levels[0].models_down;
    for (std::size_t l = 1; l < result.comm.levels.size(); ++l) {
      flat.client_edge_rounds += result.comm.levels[l].rounds;
      flat.client_edge_models_up += result.comm.levels[l].models_up;
      flat.client_edge_models_down += result.comm.levels[l].models_down;
    }
    return flat;
  };
  detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                       result.w, comm_snapshot(), result.history);

  for (index_t k = 0; k < opts.rounds; ++k) {
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);

    // --- Phase 1.
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const Participants parts = Participants::from_draws(
        rng::sample_weighted_with_replacement(result.p, m, sample_gen));
    rng::Xoshiro256 ckpt_gen = round_gen.split(detail::kTagCheckpoint);
    const index_t checkpoint_iter =
        1 + static_cast<index_t>(ckpt_gen.uniform_index(
                static_cast<std::uint64_t>(iters_per_round)));

    std::fill(leaf_has_ckpt.begin(), leaf_has_ckpt.end(), char{0});
    SubtreeRunner runner{model,   fed,     topo,    opts,
                         pool,    round_gen, checkpoint_iter,
                         &result.comm, &leaf_w, &leaf_ckpt, &scratch,
                         &leaf_has_ckpt};

    auto& top = result.comm.levels[0];
    for (const index_t area : parts.ids) {
      auto& aw = area_w[static_cast<std::size_t>(area)];
      tensor::copy(result.w, aw);
      runner.run(/*level=*/1, area, aw, /*base_iter=*/0);
      top.models_down += 1;
      top.models_up += 2;  // final model + checkpoint aggregate
    }
    top.rounds += 1;

    detail::weighted_average(area_w, parts, result.w);
    tensor::project_l2_ball(result.w, opts.w_radius);

    // Aggregate the checkpoint: average over the leaves that captured it
    // (exactly the leaves of the sampled areas), weighted by area
    // multiplicity — the L-level analogue of Eqs. (6).
    tensor::set_zero(nn::VecView(checkpoint));
    scalar_t ckpt_weight = 0;
    for (std::size_t pi = 0; pi < parts.ids.size(); ++pi) {
      const index_t area = parts.ids[pi];
      const auto mult = static_cast<scalar_t>(parts.multiplicity[pi]);
      const index_t first = topo.first_leaf_of(1, area);
      for (index_t leaf = first; leaf < first + topo.leaves_per_area();
           ++leaf) {
        if (!leaf_has_ckpt[static_cast<std::size_t>(leaf)]) continue;
        tensor::axpy(mult, leaf_ckpt[static_cast<std::size_t>(leaf)],
                     nn::VecView(checkpoint));
        ckpt_weight += mult;
      }
    }
    HM_CHECK_MSG(ckpt_weight > 0, "no leaf captured the checkpoint");
    tensor::scale(1 / ckpt_weight, nn::VecView(checkpoint));

    // --- Phase 2: uniform area sample, loss estimation at the checkpoint.
    rng::Xoshiro256 uniform_gen = round_gen.split(detail::kTagSampleUniform);
    const auto loss_areas =
        rng::sample_without_replacement(num_areas, m, uniform_gen);
    std::fill(area_losses.begin(), area_losses.end(), scalar_t{0});
    const index_t lpa = topo.leaves_per_area();
    const index_t loss_jobs = static_cast<index_t>(loss_areas.size()) * lpa;
    std::vector<scalar_t> leaf_losses(static_cast<std::size_t>(loss_jobs));
    parallel::parallel_for(
        pool, 0, loss_jobs,
        [&](index_t job) {
          const index_t area = loss_areas[static_cast<std::size_t>(job / lpa)];
          const index_t leaf = topo.first_leaf_of(1, area) + job % lpa;
          auto& sc = scratch[static_cast<std::size_t>(leaf)];
          sc.ensure(model);
          const data::Dataset& shard =
              fed.client_train[static_cast<std::size_t>(leaf)];
          rng::Xoshiro256 gen = round_gen.split(detail::kTagLoss)
                                    .split(static_cast<std::uint64_t>(leaf));
          std::vector<index_t> batch;
          if (opts.loss_est_batch > 0) {
            batch.resize(static_cast<std::size_t>(opts.loss_est_batch));
            for (auto& idx : batch) {
              idx = static_cast<index_t>(gen.uniform_index(
                  static_cast<std::uint64_t>(shard.size())));
            }
          } else {
            batch = nn::all_indices(shard.size());
          }
          leaf_losses[static_cast<std::size_t>(job)] =
              model.loss(checkpoint, shard, batch, *sc.ws);
        },
        /*grain=*/1);
    for (index_t j = 0; j < static_cast<index_t>(loss_areas.size()); ++j) {
      scalar_t f = 0;
      for (index_t i = 0; i < lpa; ++i) {
        f += leaf_losses[static_cast<std::size_t>(j * lpa + i)];
      }
      area_losses[static_cast<std::size_t>(
          loss_areas[static_cast<std::size_t>(j)])] =
          f / static_cast<scalar_t>(lpa);
    }
    top.rounds += 1;
    top.models_down += static_cast<std::uint64_t>(loss_areas.size());

    const scalar_t scale_v = static_cast<scalar_t>(num_areas) /
                             static_cast<scalar_t>(loss_areas.size());
    const scalar_t step =
        opts.eta_p * static_cast<scalar_t>(iters_per_round);
    for (const index_t area : loss_areas) {
      result.p[static_cast<std::size_t>(area)] +=
          step * scale_v * area_losses[static_cast<std::size_t>(area)];
    }
    project_capped_simplex(result.p, opts.p_set);

    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, comm_snapshot(),
                         result.history);
  }
  return result;
}

MultiTrainResult train_hierminimax_multi(const nn::Model& model,
                                         const data::FederatedDataset& fed,
                                         const sim::MultiTopology& topo,
                                         const MultiTrainOptions& opts) {
  return train_hierminimax_multi(model, fed, topo, opts,
                                 parallel::ThreadPool::global());
}

MultiTrainResult train_hierfavg_multi(const nn::Model& model,
                                      const data::FederatedDataset& fed,
                                      const sim::MultiTopology& topo,
                                      const MultiTrainOptions& opts,
                                      parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK_MSG(static_cast<index_t>(opts.taus.size()) == topo.depth(),
               "need one tau per level: " << topo.depth());
  for (const index_t t : opts.taus) HM_CHECK(t > 0);
  HM_CHECK(fed.num_edges() == topo.num_areas());
  HM_CHECK(fed.clients_per_edge == topo.leaves_per_area());
  HM_CHECK(opts.rounds > 0 && opts.eta_w > 0);
  const index_t num_areas = topo.num_areas();
  const index_t m = opts.sampled_areas > 0 ? opts.sampled_areas : num_areas;
  HM_CHECK(m <= num_areas);
  const index_t d = model.num_params();

  rng::Xoshiro256 root(opts.seed);

  MultiTrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_areas);  // fixed
  result.comm.levels.resize(static_cast<std::size_t>(topo.depth()));

  std::vector<std::vector<scalar_t>> leaf_w(
      static_cast<std::size_t>(topo.num_leaves()),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> leaf_ckpt = leaf_w;  // unused capture
  std::vector<ClientScratch> scratch(
      static_cast<std::size_t>(topo.num_leaves()));
  std::vector<char> leaf_has_ckpt(
      static_cast<std::size_t>(topo.num_leaves()), 0);
  std::vector<std::vector<scalar_t>> area_w(
      static_cast<std::size_t>(num_areas),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));

  auto comm_snapshot = [&]() {
    sim::CommStats flat;
    flat.edge_cloud_rounds = result.comm.levels[0].rounds;
    flat.edge_cloud_models_up = result.comm.levels[0].models_up;
    flat.edge_cloud_models_down = result.comm.levels[0].models_down;
    for (std::size_t l = 1; l < result.comm.levels.size(); ++l) {
      flat.client_edge_rounds += result.comm.levels[l].rounds;
      flat.client_edge_models_up += result.comm.levels[l].models_up;
      flat.client_edge_models_down += result.comm.levels[l].models_down;
    }
    return flat;
  };
  detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                       result.w, comm_snapshot(), result.history);

  for (index_t k = 0; k < opts.rounds; ++k) {
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const auto areas =
        rng::sample_without_replacement(num_areas, m, sample_gen);

    SubtreeRunner runner{model, fed,       topo,
                         opts,  pool,      round_gen,
                         /*checkpoint_iter=*/0, &result.comm,
                         &leaf_w, &leaf_ckpt, &scratch, &leaf_has_ckpt};
    auto& top = result.comm.levels[0];
    for (const index_t area : areas) {
      auto& aw = area_w[static_cast<std::size_t>(area)];
      tensor::copy(result.w, aw);
      runner.run(/*level=*/1, area, aw, /*base_iter=*/0);
      top.models_down += 1;
      top.models_up += 1;
    }
    top.rounds += 1;

    detail::uniform_average(area_w, areas, result.w);
    tensor::project_l2_ball(result.w, opts.w_radius);

    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, comm_snapshot(),
                         result.history);
  }
  return result;
}

MultiTrainResult train_hierfavg_multi(const nn::Model& model,
                                      const data::FederatedDataset& fed,
                                      const sim::MultiTopology& topo,
                                      const MultiTrainOptions& opts) {
  return train_hierfavg_multi(model, fed, topo, opts,
                              parallel::ThreadPool::global());
}

}  // namespace hm::algo
