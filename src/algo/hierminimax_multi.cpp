#include "algo/hierminimax_multi.hpp"

#include <numeric>

#include "algo/local_sgd.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

using detail::Participants;

/// Recursive subtree runner for one Phase-1 round within a sampled area.
/// Executes the node at `level` (depth = level within the tree), whose
/// leaves are [first_leaf, first_leaf + span). `w` holds the node's model
/// in/out. `base_iter` counts leaf iterations completed before this call
/// so leaves can match the checkpoint index.
struct SubtreeRunner {
  const nn::Model& model;
  const data::FederatedDataset& fed;
  const sim::MultiTopology& topo;
  const MultiTrainOptions& opts;
  parallel::ThreadPool& pool;
  rng::Xoshiro256 round_gen;           // per-round base stream
  index_t checkpoint_iter = 0;         // in [1, prod(taus)]
  MultiCommStats* comm = nullptr;
  // Fault model: faults bite at the leaf link (innermost aggregation) and
  // the cloud-area link (handled by the caller); interior servers are
  // assumed reliable. `round` indexes the plan's per-round draws.
  const sim::FaultPlan* plan = nullptr;
  index_t round = 0;

  std::vector<std::vector<scalar_t>>* leaf_w = nullptr;
  std::vector<std::vector<scalar_t>>* leaf_ckpt = nullptr;
  std::vector<ClientScratch>* scratch = nullptr;
  std::vector<char>* leaf_has_ckpt = nullptr;
  const sim::ClusterSim* cluster = nullptr;
  BatchEngineState* bstate = nullptr;
  detail::PoisonStore* poison = nullptr;

  /// Iterations one leaf performs when a node at depth `level` runs one
  /// full child subtree: prod of taus[level .. depth-1]. (A node at depth
  /// l runs taus[l-1] blocks; its child subtree contributes iters_from(l)
  /// leaf iterations per block.)
  index_t iters_from(index_t level) const {
    index_t prod = 1;
    for (index_t l = level; l < topo.depth(); ++l) {
      prod *= opts.taus[static_cast<std::size_t>(l)];
    }
    return prod;
  }

  /// Run the subtree rooted at (level, node). Models flow: `w` is
  /// broadcast to children, children run, results averaged back into `w`.
  /// Returns nothing; `w` and the leaf checkpoint buffers are updated.
  void run(index_t level, index_t node, nn::VecView w, index_t base_iter) {
    if (level == topo.depth()) {
      run_leaf(node, w, base_iter);
      return;
    }
    const index_t blocks = opts.taus[static_cast<std::size_t>(level) - 1];
    const index_t fanout =
        topo.branching()[static_cast<std::size_t>(level)];
    const index_t child_iters = iters_from(level);
    std::vector<std::vector<scalar_t>> child_w(
        static_cast<std::size_t>(fanout),
        std::vector<scalar_t>(w.size()));

    for (index_t b = 0; b < blocks; ++b) {
      const index_t block_base = base_iter + b * child_iters;
      if (level + 1 == topo.depth()) {
        // Innermost aggregation: run this node's leaves as one device
        // block (the engine batches them in lockstep when enabled).
        const index_t steps = opts.taus.back();
        LocalSgdConfig cfg;
        cfg.steps = steps;
        cfg.batch_size = opts.batch_size;
        cfg.eta = opts.eta_w;
        cfg.w_radius = opts.w_radius;
        // Capture when the checkpoint iteration falls inside this block
        // (shared by all its leaves — they run the same base_iter).
        const bool capture = checkpoint_iter > block_base &&
                             checkpoint_iter <= block_base + steps;
        if (capture) cfg.checkpoint_step = checkpoint_iter - block_base;
        std::vector<LocalSgdJob> jobs;
        std::vector<rng::Xoshiro256> gens;
        jobs.reserve(static_cast<std::size_t>(fanout));
        gens.reserve(static_cast<std::size_t>(fanout));
        for (index_t c = 0; c < fanout; ++c) {
          const index_t leaf = node * fanout + c;
          auto& cw = child_w[static_cast<std::size_t>(c)];
          tensor::copy(w, cw);
          // Offline hardware (crashed or churned away) computes nothing
          // this round. (Dropped leaves still compute — only their report
          // is lost.)
          if (plan && plan->client_offline(round, leaf)) continue;
          if (capture) (*leaf_has_ckpt)[static_cast<std::size_t>(leaf)] = 1;
          gens.push_back(round_gen.split(detail::kTagLocal)
                             .split(static_cast<std::uint64_t>(leaf))
                             .split(static_cast<std::uint64_t>(block_base)));
          const data::Dataset* shard = &fed.client_shard_at(round, leaf);
          if (plan && plan->client_poisoned(round, leaf)) {
            shard = &poison->get(*shard, leaf);
          }
          jobs.push_back(
              {shard, cw,
               nn::VecView((*leaf_ckpt)[static_cast<std::size_t>(leaf)]),
               &gens.back(), leaf});
        }
        run_local_sgd_jobs(model, cfg, jobs, *scratch, *bstate,
                           opts.batched, *cluster);
        if (plan && plan->payload_attack()) {
          // `w` still holds the block-start model every leaf started from
          // — the sign-flip reflection reference. The checkpoint capture
          // stays honest (Phase-2 scaffolding, DESIGN.md §13).
          for (LocalSgdJob& job : jobs) {
            const index_t leaf = job.scratch_id;
            if (!plan->client_attacker(round, leaf)) continue;
            plan->corrupt_payload(round, leaf, w.data(), job.w.data(),
                                  static_cast<index_t>(w.size()));
          }
        }
        for (const LocalSgdJob& job : jobs) {
          tensor::copy(nn::ConstVecView(job.w),
                       (*leaf_w)[static_cast<std::size_t>(job.scratch_id)]);
        }
      } else {
        for (index_t c = 0; c < fanout; ++c) {
          auto& cw = child_w[static_cast<std::size_t>(c)];
          tensor::copy(w, cw);
          run(level + 1, node * fanout + c, cw, block_base);
        }
      }
      // The robust combiner defends the leaf link only — the one hop
      // attackers own in this fault model; interior servers always take
      // the plain mean of their (trusted) children.
      const bool innermost = level + 1 == topo.depth();
      const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};
      const auto combine = [&](const std::vector<index_t>& which) {
        if (innermost && agg.kind != Aggregate::kMean) {
          std::vector<const std::vector<scalar_t>*> srcs;
          srcs.reserve(which.size());
          for (const index_t c : which) {
            srcs.push_back(&child_w[static_cast<std::size_t>(c)]);
          }
          const std::vector<index_t> mults(which.size(), 1);
          detail::robust_combine(srcs, mults,
                                 static_cast<index_t>(which.size()), agg, w);
          return;
        }
        tensor::set_zero(w);
        for (const index_t c : which) {
          tensor::axpy(scalar_t{1} / static_cast<scalar_t>(which.size()),
                       child_w[static_cast<std::size_t>(c)], w);
        }
      };
      if (!plan || !plan->enabled() || !innermost) {
        std::vector<index_t> all(static_cast<std::size_t>(fanout));
        for (index_t c = 0; c < fanout; ++c) {
          all[static_cast<std::size_t>(c)] = c;
        }
        combine(all);
      } else {
        // Innermost aggregation under faults: average whichever leaf
        // reports arrived; a node with zero survivors keeps its model.
        std::vector<index_t> surv;
        for (index_t c = 0; c < fanout; ++c) {
          const index_t leaf = node * fanout + c;
          if (plan->client_offline(round, leaf)) continue;  // never sent
          if (plan->client_dropped(round, leaf)) {
            comm->leaf_fault.note_lost_report();
            continue;
          }
          comm->leaf_fault.note_delivered();
          comm->leaf_fault.note_straggle(plan->straggler_mult(round, leaf));
          surv.push_back(c);
        }
        if (!surv.empty()) combine(surv);
      }
      auto& lc = comm->levels[static_cast<std::size_t>(level)];
      lc.rounds += 1;
      lc.models_down += static_cast<std::uint64_t>(fanout);
      lc.models_up += static_cast<std::uint64_t>(fanout);
    }
  }

  void run_leaf(index_t leaf, nn::VecView w, index_t base_iter) {
    // Offline hardware (crashed or churned away) computes nothing this
    // round. (Dropped leaves still compute — only their report is lost
    // at the aggregation.)
    if (plan && plan->client_offline(round, leaf)) return;
    const index_t steps = opts.taus.back();
    LocalSgdConfig cfg;
    cfg.steps = steps;
    cfg.batch_size = opts.batch_size;
    cfg.eta = opts.eta_w;
    cfg.w_radius = opts.w_radius;
    // Capture when the checkpoint iteration falls inside this leaf run.
    if (checkpoint_iter > base_iter &&
        checkpoint_iter <= base_iter + steps) {
      cfg.checkpoint_step = checkpoint_iter - base_iter;
      (*leaf_has_ckpt)[static_cast<std::size_t>(leaf)] = 1;
    }
    rng::Xoshiro256 gen = round_gen.split(detail::kTagLocal)
                              .split(static_cast<std::uint64_t>(leaf))
                              .split(static_cast<std::uint64_t>(base_iter));
    const data::Dataset* shard = &fed.client_shard_at(round, leaf);
    if (plan && plan->client_poisoned(round, leaf)) {
      shard = &poison->get(*shard, leaf);
    }
    // SGD runs in place on `w`, so an attacker leaf must save the
    // block-start model first — it is the sign-flip reference.
    std::vector<scalar_t> ref;
    const bool attacker = plan && plan->payload_attack() &&
                          plan->client_attacker(round, leaf);
    if (attacker) ref.assign(w.begin(), w.end());
    run_local_sgd(model, *shard, cfg, w,
                  (*leaf_ckpt)[static_cast<std::size_t>(leaf)], gen,
                  (*scratch)[static_cast<std::size_t>(leaf)]);
    if (attacker) {
      plan->corrupt_payload(round, leaf, ref.data(), w.data(),
                            static_cast<index_t>(w.size()));
    }
    tensor::copy(w, (*leaf_w)[static_cast<std::size_t>(leaf)]);
  }
};

}  // namespace

MultiTrainResult train_hierminimax_multi(const nn::Model& model,
                                         const data::FederatedDataset& fed,
                                         const sim::MultiTopology& topo,
                                         const MultiTrainOptions& opts,
                                         parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK_MSG(static_cast<index_t>(opts.taus.size()) == topo.depth(),
               "need one tau per level: " << topo.depth());
  for (const index_t t : opts.taus) HM_CHECK(t > 0);
  HM_CHECK(fed.num_edges() == topo.num_areas());
  HM_CHECK(fed.clients_per_edge == topo.leaves_per_area());
  HM_CHECK(opts.rounds > 0 && opts.eta_w > 0 && opts.eta_p > 0);
  HM_CHECK(opts.p_set.feasible(topo.num_areas()));
  const index_t num_areas = topo.num_areas();
  const index_t m =
      opts.sampled_areas > 0 ? opts.sampled_areas : num_areas;
  HM_CHECK(m <= num_areas);
  const index_t d = model.num_params();
  const index_t iters_per_round = std::accumulate(
      opts.taus.begin(), opts.taus.end(), index_t{1},
      [](index_t a, index_t b) { return a * b; });

  rng::Xoshiro256 root(opts.seed);
  const sim::FaultPlan plan(opts.fault);

  MultiTrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_areas);
  result.comm.levels.resize(static_cast<std::size_t>(topo.depth()));
  detail::StaleStore stale;
  if (plan.enabled()) stale.init(num_areas);
  detail::PoisonStore poison;
  const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};

  std::vector<std::vector<scalar_t>> leaf_w(
      static_cast<std::size_t>(topo.num_leaves()),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> leaf_ckpt = leaf_w;
  std::vector<ClientScratch> scratch(
      static_cast<std::size_t>(topo.num_leaves()));
  // Loss estimation scores every sampled leaf at the one shared
  // checkpoint; a single workspace + one loss_many call lets the model
  // fuse the whole sweep into stacked evaluation blocks.
  const std::unique_ptr<nn::Workspace> loss_ws = model.make_workspace();
  const sim::ClusterSim cluster(pool);
  BatchEngineState bstate;
  std::vector<char> leaf_has_ckpt(
      static_cast<std::size_t>(topo.num_leaves()), 0);
  std::vector<std::vector<scalar_t>> area_w(
      static_cast<std::size_t>(num_areas),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<scalar_t> checkpoint(static_cast<std::size_t>(d));
  std::vector<scalar_t> area_losses(static_cast<std::size_t>(num_areas));

  // History recording reuses the three-layer CommStats shape by mapping
  // level-0 traffic to edge_cloud and deeper levels to client_edge.
  auto comm_snapshot = [&]() {
    sim::CommStats flat;
    flat.edge_cloud_rounds = result.comm.levels[0].rounds;
    flat.edge_cloud_models_up = result.comm.levels[0].models_up;
    flat.edge_cloud_models_down = result.comm.levels[0].models_down;
    for (std::size_t l = 1; l < result.comm.levels.size(); ++l) {
      flat.client_edge_rounds += result.comm.levels[l].rounds;
      flat.client_edge_models_up += result.comm.levels[l].models_up;
      flat.client_edge_models_down += result.comm.levels[l].models_down;
    }
    flat.client_edge_fault = result.comm.leaf_fault;
    flat.edge_cloud_fault = result.comm.top_fault;
    return flat;
  };
  detail::RunState rs;
  rs.algo_id = detail::kAlgoHierMinimaxMulti;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.p = &result.p;
  rs.multi_comm = &result.comm;
  rs.stale = &stale;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, comm_snapshot(), result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("hierminimax_multi.round", "algo", k, 0);
    HM_OBS_INC("algo.hierminimax_multi.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);

    // --- Phase 1.
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const Participants parts = Participants::from_draws(
        rng::sample_weighted_with_replacement(result.p, m, sample_gen));
    rng::Xoshiro256 ckpt_gen = round_gen.split(detail::kTagCheckpoint);
    const index_t checkpoint_iter =
        1 + static_cast<index_t>(ckpt_gen.uniform_index(
                static_cast<std::uint64_t>(iters_per_round)));

    std::fill(leaf_has_ckpt.begin(), leaf_has_ckpt.end(), char{0});
    SubtreeRunner runner{model,   fed,     topo,    opts,
                         pool,    round_gen, checkpoint_iter,
                         &result.comm, &plan, k,
                         &leaf_w, &leaf_ckpt, &scratch, &leaf_has_ckpt,
                         &cluster, &bstate, &poison};

    auto& top = result.comm.levels[0];
    for (const index_t area : parts.ids) {
      auto& aw = area_w[static_cast<std::size_t>(area)];
      // A crashed area server takes its whole subtree offline: nothing
      // computes and nothing is uploaded (the area's model stays stale).
      if (!plan.edge_crashed(k, area)) {
        tensor::copy(result.w, aw);
        runner.run(/*level=*/1, area, aw, /*base_iter=*/0);
      }
      top.models_down += 1;
      top.models_up += 2;  // final model + checkpoint aggregate
    }
    top.rounds += 1;

    bool aggregated = true;
    std::vector<char> delivered(parts.ids.size(), 1);
    if (!plan.enabled()) {
      detail::robust_weighted_average(area_w, parts, agg, result.w);
      tensor::project_l2_ball(result.w, opts.w_radius);
    } else {
      for (std::size_t pi = 0; pi < parts.ids.size(); ++pi) {
        const index_t area = parts.ids[pi];
        delivered[pi] = 0;
        if (plan.edge_crashed(k, area)) continue;
        if (plan.deliver(k, sim::fault_msg(sim::kMsgModelUp, area),
                         result.comm.top_fault)) {
          delivered[pi] = 1;
        }
      }
      aggregated = detail::degraded_weighted_average(
          area_w, parts, delivered, opts.on_fault, opts.stale_decay, k,
          stale, result.w, result.w, agg);
      if (aggregated) tensor::project_l2_ball(result.w, opts.w_radius);
    }

    // Aggregate the checkpoint: average over the leaves that captured it
    // (exactly the leaves of the sampled areas), weighted by area
    // multiplicity — the L-level analogue of Eqs. (6). Under faults only
    // delivered areas contribute, and only their reporting leaves; when
    // no surviving leaf holds a checkpoint, fall back to the aggregate.
    if (aggregated) {
      tensor::set_zero(nn::VecView(checkpoint));
      scalar_t ckpt_weight = 0;
      for (std::size_t pi = 0; pi < parts.ids.size(); ++pi) {
        if (!delivered[pi]) continue;
        const index_t area = parts.ids[pi];
        const auto mult = static_cast<scalar_t>(parts.multiplicity[pi]);
        const index_t first = topo.first_leaf_of(1, area);
        for (index_t leaf = first; leaf < first + topo.leaves_per_area();
             ++leaf) {
          if (!leaf_has_ckpt[static_cast<std::size_t>(leaf)]) continue;
          if (plan.enabled() && !plan.client_reports(k, leaf)) continue;
          tensor::axpy(mult, leaf_ckpt[static_cast<std::size_t>(leaf)],
                       nn::VecView(checkpoint));
          ckpt_weight += mult;
        }
      }
      if (plan.enabled() && ckpt_weight <= 0) {
        tensor::copy(result.w, checkpoint);
      } else {
        HM_CHECK_MSG(ckpt_weight > 0, "no leaf captured the checkpoint");
        tensor::scale(1 / ckpt_weight, nn::VecView(checkpoint));
      }
    }

    // --- Phase 2: uniform area sample, loss estimation at the checkpoint.
    // A skipped Phase 1 also skips the ascent (no fresh checkpoint).
    if (aggregated) {
      rng::Xoshiro256 uniform_gen =
          round_gen.split(detail::kTagSampleUniform);
      const auto loss_areas =
          rng::sample_without_replacement(num_areas, m, uniform_gen);
      std::fill(area_losses.begin(), area_losses.end(), scalar_t{0});
      const index_t lpa = topo.leaves_per_area();
      const index_t loss_jobs = static_cast<index_t>(loss_areas.size()) * lpa;
      std::vector<scalar_t> leaf_losses(static_cast<std::size_t>(loss_jobs));
      // Loss reports ride the same faulty links as models: leaf reports
      // can be lost on the leaf link, the per-area mean is over whichever
      // leaves reported, and the area's scalar can be lost on the cloud
      // link. Areas with nothing to report leave v = 0.
      std::vector<char> area_ok(loss_areas.size(), 1);
      std::vector<char> leaf_ok(static_cast<std::size_t>(loss_jobs), 1);
      std::vector<index_t> area_nsurv(loss_areas.size(), lpa);
      std::uint64_t num_loss_areas =
          static_cast<std::uint64_t>(loss_areas.size());
      if (plan.enabled()) {
        for (std::size_t j = 0; j < loss_areas.size(); ++j) {
          const index_t area = loss_areas[j];
          if (plan.edge_crashed(k, area)) {
            area_ok[j] = 0;
            area_nsurv[j] = 0;
            for (index_t i = 0; i < lpa; ++i) {
              leaf_ok[j * static_cast<std::size_t>(lpa) +
                      static_cast<std::size_t>(i)] = 0;
            }
            num_loss_areas -= 1;
            continue;
          }
          index_t nsurv = 0;
          const index_t first = topo.first_leaf_of(1, area);
          for (index_t i = 0; i < lpa; ++i) {
            const index_t leaf = first + i;
            const std::size_t job =
                j * static_cast<std::size_t>(lpa) +
                static_cast<std::size_t>(i);
            if (plan.client_offline(k, leaf)) {
              leaf_ok[job] = 0;
              continue;
            }
            if (plan.client_dropped(k, leaf)) {
              result.comm.leaf_fault.note_lost_report();
              leaf_ok[job] = 0;
              continue;
            }
            result.comm.leaf_fault.note_delivered();
            result.comm.leaf_fault.note_straggle(
                plan.straggler_mult(k, leaf));
            nsurv += 1;
          }
          area_nsurv[j] = nsurv;
          if (nsurv == 0 ||
              !plan.deliver(k, sim::fault_msg(sim::kMsgLossUp, area),
                            result.comm.top_fault)) {
            area_ok[j] = 0;
            num_loss_areas -= 1;
          }
        }
      }
      // Draw every surviving leaf's estimation batch (per-leaf RNG
      // streams, independent of evaluation order), then score them all in
      // one fused loss_many sweep at the shared checkpoint.
      std::vector<std::vector<index_t>> batches(
          static_cast<std::size_t>(loss_jobs));
      std::vector<nn::LossJob> jobs;
      std::vector<index_t> job_slot;
      jobs.reserve(static_cast<std::size_t>(loss_jobs));
      job_slot.reserve(static_cast<std::size_t>(loss_jobs));
      for (index_t job = 0; job < loss_jobs; ++job) {
        if (!leaf_ok[static_cast<std::size_t>(job)]) continue;
        const index_t area = loss_areas[static_cast<std::size_t>(job / lpa)];
        const index_t leaf = topo.first_leaf_of(1, area) + job % lpa;
        // Honest loss reports, but drift-aware: the estimate is over the
        // shard the leaf actually holds this round.
        const data::Dataset& shard = fed.client_shard_at(k, leaf);
        rng::Xoshiro256 gen = round_gen.split(detail::kTagLoss)
                                  .split(static_cast<std::uint64_t>(leaf));
        auto& batch = batches[static_cast<std::size_t>(job)];
        if (opts.loss_est_batch > 0) {
          batch.resize(static_cast<std::size_t>(opts.loss_est_batch));
          for (auto& idx : batch) {
            idx = static_cast<index_t>(gen.uniform_index(
                static_cast<std::uint64_t>(shard.size())));
          }
        } else {
          batch = nn::all_indices(shard.size());
        }
        jobs.push_back(nn::LossJob{checkpoint, &shard, batch});
        job_slot.push_back(job);
      }
      std::vector<scalar_t> job_losses(jobs.size());
      model.loss_many(jobs, job_losses, *loss_ws);
      for (std::size_t q = 0; q < jobs.size(); ++q) {
        leaf_losses[static_cast<std::size_t>(job_slot[q])] = job_losses[q];
      }
      for (index_t j = 0; j < static_cast<index_t>(loss_areas.size()); ++j) {
        if (!area_ok[static_cast<std::size_t>(j)]) continue;
        scalar_t f = 0;
        for (index_t i = 0; i < lpa; ++i) {
          f += leaf_losses[static_cast<std::size_t>(j * lpa + i)];
        }
        area_losses[static_cast<std::size_t>(
            loss_areas[static_cast<std::size_t>(j)])] =
            f / static_cast<scalar_t>(area_nsurv[static_cast<std::size_t>(j)]);
      }
      top.rounds += 1;
      top.models_down += static_cast<std::uint64_t>(loss_areas.size());

      if (num_loss_areas > 0) {
        const scalar_t scale_v = static_cast<scalar_t>(num_areas) /
                                 static_cast<scalar_t>(num_loss_areas);
        const scalar_t step =
            opts.eta_p * static_cast<scalar_t>(iters_per_round);
        for (std::size_t j = 0; j < loss_areas.size(); ++j) {
          if (!area_ok[j]) continue;
          const index_t area = loss_areas[j];
          result.p[static_cast<std::size_t>(area)] +=
              step * scale_v * area_losses[static_cast<std::size_t>(area)];
        }
        project_capped_simplex(result.p, opts.p_set);
      }
    }

    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, comm_snapshot(),
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }
  return result;
}

MultiTrainResult train_hierminimax_multi(const nn::Model& model,
                                         const data::FederatedDataset& fed,
                                         const sim::MultiTopology& topo,
                                         const MultiTrainOptions& opts) {
  return train_hierminimax_multi(model, fed, topo, opts,
                                 parallel::ThreadPool::global());
}

MultiTrainResult train_hierfavg_multi(const nn::Model& model,
                                      const data::FederatedDataset& fed,
                                      const sim::MultiTopology& topo,
                                      const MultiTrainOptions& opts,
                                      parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK_MSG(static_cast<index_t>(opts.taus.size()) == topo.depth(),
               "need one tau per level: " << topo.depth());
  for (const index_t t : opts.taus) HM_CHECK(t > 0);
  HM_CHECK(fed.num_edges() == topo.num_areas());
  HM_CHECK(fed.clients_per_edge == topo.leaves_per_area());
  HM_CHECK(opts.rounds > 0 && opts.eta_w > 0);
  const index_t num_areas = topo.num_areas();
  const index_t m = opts.sampled_areas > 0 ? opts.sampled_areas : num_areas;
  HM_CHECK(m <= num_areas);
  const index_t d = model.num_params();

  rng::Xoshiro256 root(opts.seed);
  const sim::FaultPlan plan(opts.fault);

  MultiTrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_areas);  // fixed
  result.comm.levels.resize(static_cast<std::size_t>(topo.depth()));
  detail::StaleStore stale;
  if (plan.enabled()) stale.init(num_areas);
  detail::PoisonStore poison;
  const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};

  std::vector<std::vector<scalar_t>> leaf_w(
      static_cast<std::size_t>(topo.num_leaves()),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> leaf_ckpt = leaf_w;  // unused capture
  std::vector<ClientScratch> scratch(
      static_cast<std::size_t>(topo.num_leaves()));
  const sim::ClusterSim cluster(pool);
  BatchEngineState bstate;
  std::vector<char> leaf_has_ckpt(
      static_cast<std::size_t>(topo.num_leaves()), 0);
  std::vector<std::vector<scalar_t>> area_w(
      static_cast<std::size_t>(num_areas),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));

  auto comm_snapshot = [&]() {
    sim::CommStats flat;
    flat.edge_cloud_rounds = result.comm.levels[0].rounds;
    flat.edge_cloud_models_up = result.comm.levels[0].models_up;
    flat.edge_cloud_models_down = result.comm.levels[0].models_down;
    for (std::size_t l = 1; l < result.comm.levels.size(); ++l) {
      flat.client_edge_rounds += result.comm.levels[l].rounds;
      flat.client_edge_models_up += result.comm.levels[l].models_up;
      flat.client_edge_models_down += result.comm.levels[l].models_down;
    }
    flat.client_edge_fault = result.comm.leaf_fault;
    flat.edge_cloud_fault = result.comm.top_fault;
    return flat;
  };
  detail::RunState rs;
  rs.algo_id = detail::kAlgoHierFavgMulti;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.multi_comm = &result.comm;
  rs.stale = &stale;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, comm_snapshot(), result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("hierfavg_multi.round", "algo", k, 0);
    HM_OBS_INC("algo.hierfavg_multi.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const auto areas =
        rng::sample_without_replacement(num_areas, m, sample_gen);

    SubtreeRunner runner{model, fed,       topo,
                         opts,  pool,      round_gen,
                         /*checkpoint_iter=*/0, &result.comm, &plan, k,
                         &leaf_w, &leaf_ckpt, &scratch, &leaf_has_ckpt,
                         &cluster, &bstate, &poison};
    auto& top = result.comm.levels[0];
    for (const index_t area : areas) {
      auto& aw = area_w[static_cast<std::size_t>(area)];
      if (!plan.edge_crashed(k, area)) {
        tensor::copy(result.w, aw);
        runner.run(/*level=*/1, area, aw, /*base_iter=*/0);
      }
      top.models_down += 1;
      top.models_up += 1;
    }
    top.rounds += 1;

    if (!plan.enabled()) {
      detail::robust_uniform_average(area_w, areas, agg, result.w);
      tensor::project_l2_ball(result.w, opts.w_radius);
    } else {
      std::vector<char> delivered(areas.size(), 0);
      for (std::size_t j = 0; j < areas.size(); ++j) {
        const index_t area = areas[j];
        if (plan.edge_crashed(k, area)) continue;
        if (plan.deliver(k, sim::fault_msg(sim::kMsgModelUp, area),
                         result.comm.top_fault)) {
          delivered[j] = 1;
        }
      }
      if (detail::degraded_uniform_average(area_w, areas, delivered,
                                           opts.on_fault, opts.stale_decay,
                                           k, stale, result.w, result.w,
                                           agg)) {
        tensor::project_l2_ball(result.w, opts.w_radius);
      }
    }

    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, comm_snapshot(),
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }
  return result;
}

MultiTrainResult train_hierfavg_multi(const nn::Model& model,
                                      const data::FederatedDataset& fed,
                                      const sim::MultiTopology& topo,
                                      const MultiTrainOptions& opts) {
  return train_hierfavg_multi(model, fed, topo, opts,
                              parallel::ThreadPool::global());
}

}  // namespace hm::algo
