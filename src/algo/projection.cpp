#include "algo/projection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/check.hpp"

namespace hm::algo {

void project_simplex(VecView v) {
  const auto n = static_cast<index_t>(v.size());
  HM_CHECK(n > 0);
  // Sort descending, find the pivot rho = max{j : u_j + (1 - sum u_1..j)/j > 0}.
  std::vector<scalar_t> u(v.begin(), v.end());
  std::sort(u.begin(), u.end(), std::greater<scalar_t>());
  scalar_t cumsum = 0;
  scalar_t theta = 0;
  index_t rho = 0;
  scalar_t best_theta = 0;
  for (index_t j = 0; j < n; ++j) {
    cumsum += u[static_cast<std::size_t>(j)];
    theta = (cumsum - 1) / static_cast<scalar_t>(j + 1);
    if (u[static_cast<std::size_t>(j)] - theta > 0) {
      rho = j + 1;
      best_theta = theta;
    }
  }
  HM_CHECK(rho > 0);
  for (auto& x : v) x = std::max<scalar_t>(x - best_theta, 0);
}

void project_capped_simplex(VecView v, const SimplexSet& set) {
  const auto n = static_cast<index_t>(v.size());
  HM_CHECK(n > 0);
  HM_CHECK_MSG(set.feasible(n),
               "infeasible simplex caps lo=" << set.lo << " hi=" << set.hi
                                             << " n=" << n);
  // g(theta) = sum_i clip(v_i - theta, lo, hi) is continuous and
  // non-increasing in theta; bisect for g(theta) = 1.
  const auto [vmin_it, vmax_it] = std::minmax_element(v.begin(), v.end());
  scalar_t lo_theta = *vmin_it - set.hi - 1;   // g >= 1 here
  scalar_t hi_theta = *vmax_it - set.lo + 1;   // g <= 1 here
  auto mass = [&](scalar_t theta) {
    scalar_t s = 0;
    for (const scalar_t x : v) {
      s += std::clamp(x - theta, set.lo, set.hi);
    }
    return s;
  };
  for (int iter = 0; iter < 128; ++iter) {
    const scalar_t mid = scalar_t{0.5} * (lo_theta + hi_theta);
    if (mass(mid) >= 1) {
      lo_theta = mid;
    } else {
      hi_theta = mid;
    }
  }
  const scalar_t theta = scalar_t{0.5} * (lo_theta + hi_theta);
  for (auto& x : v) x = std::clamp(x - theta, set.lo, set.hi);
  // Exact renormalization of the residual bisection error across the
  // coordinates strictly inside their caps.
  scalar_t total = 0;
  for (const scalar_t x : v) total += x;
  scalar_t slack = 0;
  for (const scalar_t x : v) {
    if (x > set.lo && x < set.hi) slack += 1;
  }
  if (slack > 0) {
    const scalar_t adjust = (1 - total) / slack;
    for (auto& x : v) {
      if (x > set.lo && x < set.hi) x = std::clamp(x + adjust, set.lo, set.hi);
    }
  }
}

std::vector<scalar_t> argmax_linear_over_simplex(ConstVecView v,
                                                 const SimplexSet& set) {
  const auto n = static_cast<index_t>(v.size());
  HM_CHECK(n > 0);
  HM_CHECK(set.feasible(n));
  // Start everyone at lo, then pour the remaining mass into coordinates
  // in decreasing order of v until each hits hi.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return v[static_cast<std::size_t>(a)] > v[static_cast<std::size_t>(b)];
  });
  std::vector<scalar_t> p(static_cast<std::size_t>(n), set.lo);
  scalar_t remaining = 1 - static_cast<scalar_t>(n) * set.lo;
  for (const index_t i : order) {
    if (remaining <= 0) break;
    const scalar_t add = std::min(remaining, set.hi - set.lo);
    p[static_cast<std::size_t>(i)] += add;
    remaining -= add;
  }
  return p;
}

scalar_t max_linear_over_simplex(ConstVecView v, const SimplexSet& set) {
  const auto p = argmax_linear_over_simplex(v, set);
  scalar_t total = 0;
  for (std::size_t i = 0; i < p.size(); ++i) total += p[i] * v[i];
  return total;
}

}  // namespace hm::algo
