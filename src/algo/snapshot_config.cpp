#include "algo/snapshot_config.hpp"

#include "core/check.hpp"

namespace hm::algo {

void snapshot_flags(const Flags& flags, io::SnapshotPolicy& policy,
                    std::string& resume_from) {
  policy.every_k_rounds =
      flags.get_int("snapshot-every", policy.every_k_rounds);
  HM_CHECK_MSG(policy.every_k_rounds >= 0,
               "--snapshot-every must be >= 0, got "
                   << policy.every_k_rounds);
  const std::string default_dir = policy.dir.empty() ? "snapshots"
                                                     : policy.dir;
  policy.dir = flags.get_string("snapshot-dir", default_dir);
  policy.keep = flags.get_int("snapshot-keep", policy.keep);
  HM_CHECK_MSG(policy.keep >= 1,
               "--snapshot-keep must be >= 1, got " << policy.keep);
  if (flags.get_bool("resume", false)) resume_from = policy.dir;
  resume_from = flags.get_string("resume-from", resume_from);
}

void apply_snapshot_flags(const Flags& flags, TrainOptions& opts) {
  snapshot_flags(flags, opts.snapshot, opts.resume_from);
}

void apply_snapshot_flags(const Flags& flags, MultiTrainOptions& opts) {
  snapshot_flags(flags, opts.snapshot, opts.resume_from);
}

}  // namespace hm::algo
