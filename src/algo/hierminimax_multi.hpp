// HierMinimax generalized to an arbitrary L-level hierarchy (the paper's
// §1/§3 claim that the method extends beyond three layers).
//
// One training round: Phase 1 samples m areas (depth-1 subtrees) by the
// weight vector p; inside a sampled area, a node at depth l runs
// taus[l-1] aggregation blocks of its children, bottoming out in
// taus[depth-1] local SGD steps at each leaf; each level averages its
// children after every block. The checkpoint generalizes to a uniformly
// random iteration index in [1, prod(taus)], captured at the leaves and
// averaged up the tree. Phase 2 is unchanged: a uniform area sample
// estimates losses at the checkpoint and p ascends (Eq. 7 with step
// eta_p * prod(taus)).
//
// With taus = {tau2, tau1} this reduces exactly to Algorithm 1.
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"
#include "sim/multi_topology.hpp"

namespace hm::algo {

struct MultiTrainOptions {
  index_t rounds = 100;
  /// taus[l] = blocks run by a node at depth l+1... concretely:
  /// taus.size() == topo.depth(); taus[0] is the number of aggregation
  /// blocks at the area (depth-1) level, ..., taus.back() is the number
  /// of local SGD steps per leaf per innermost block.
  std::vector<index_t> taus;
  index_t batch_size = 1;
  scalar_t eta_w = 0.01;
  scalar_t eta_p = 0.01;
  index_t sampled_areas = 0;  // m; 0 = all areas
  scalar_t w_radius = 0;
  SimplexSet p_set;
  seed_t seed = 1;
  index_t eval_every = 10;
  index_t loss_est_batch = 32;
  bool batched = false;       // batched lockstep local SGD (see
                              // TrainOptions::batched); bit-identical

  // Fault injection (see TrainOptions): leaf-level dropout/crash/straggle
  // plus cloud-area link loss and area (edge_crash_round) crashes.
  // Interior aggregation servers are assumed reliable.
  sim::FaultSpec fault;
  OnFault on_fault = OnFault::kRenormalize;
  scalar_t stale_decay = 0.5;

  // Robust model aggregation (see TrainOptions::aggregate). Applied at
  // the innermost (leaf->parent) level, where Byzantine leaves report,
  // and at the top (area->cloud) level; interior levels average few,
  // already-aggregated children and stay kMean.
  Aggregate aggregate = Aggregate::kMean;
  scalar_t trim_frac = 0.2;

  // Crash-safe snapshots + bit-exact resume (see TrainOptions).
  io::SnapshotPolicy snapshot;
  std::string resume_from;
};

/// Per-link-level communication meter (level 0 = cloud-area link).
struct MultiCommStats {
  struct Level {
    std::uint64_t rounds = 0;
    std::uint64_t models_up = 0;
    std::uint64_t models_down = 0;
  };
  std::vector<Level> levels;

  // Fault delivery accounting: leaf reports (innermost link) and area
  // uplinks (cloud link). Mapped onto client_edge/edge_cloud in the flat
  // CommStats snapshots History records.
  sim::LinkFaultStats leaf_fault;
  sim::LinkFaultStats top_fault;

  std::uint64_t total_rounds() const {
    std::uint64_t total = 0;
    for (const auto& l : levels) total += l.rounds;
    return total;
  }
};

struct MultiTrainResult {
  std::vector<scalar_t> w;
  std::vector<scalar_t> p;   // over areas
  metrics::TrainingHistory history;
  MultiCommStats comm;
};

/// `fed` must have one client shard per topology leaf and one test set
/// per area (clients_per_edge == topo.leaves_per_area()).
MultiTrainResult train_hierminimax_multi(const nn::Model& model,
                                         const data::FederatedDataset& fed,
                                         const sim::MultiTopology& topo,
                                         const MultiTrainOptions& opts,
                                         parallel::ThreadPool& pool);

MultiTrainResult train_hierminimax_multi(const nn::Model& model,
                                         const data::FederatedDataset& fed,
                                         const sim::MultiTopology& topo,
                                         const MultiTrainOptions& opts);

/// L-level hierarchical *minimization* baseline (multi-level local SGD a
/// la Castiglia et al. [5] / HierFAVG generalized): identical Phase-1
/// tree schedule, uniform area sampling without replacement, no weight
/// vector and no Phase 2. The control arm for the multi-level minimax
/// comparison.
MultiTrainResult train_hierfavg_multi(const nn::Model& model,
                                      const data::FederatedDataset& fed,
                                      const sim::MultiTopology& topo,
                                      const MultiTrainOptions& opts,
                                      parallel::ThreadPool& pool);

MultiTrainResult train_hierfavg_multi(const nn::Model& model,
                                      const data::FederatedDataset& fed,
                                      const sim::MultiTopology& topo,
                                      const MultiTrainOptions& opts);

}  // namespace hm::algo
