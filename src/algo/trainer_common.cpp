#include "algo/trainer_common.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/check.hpp"
#include "core/log.hpp"
#include "obs/obs.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo::detail {

namespace {

/// Weighted accumulation over a set of participant vectors with the fused
/// one- and two-source kernels: the first source overwrites (saves the
/// zero-fill pass), then sources are folded pairwise so `out` is walked
/// half as many times. Accumulation order over sources is the sequential
/// order, same as a chain of axpy calls.
template <typename WeightAt, typename SourceAt>
void accumulate_weighted(std::size_t count, const WeightAt& weight_at,
                         const SourceAt& source_at,
                         std::vector<scalar_t>& out) {
  HM_CHECK(count > 0);
  HM_CHECK(source_at(0).size() == out.size());
  tensor::axpby(weight_at(0), source_at(0), scalar_t{0}, out);
  std::size_t i = 1;
  for (; i + 2 <= count; i += 2) {
    HM_CHECK(source_at(i).size() == out.size());
    HM_CHECK(source_at(i + 1).size() == out.size());
    tensor::axpy2(weight_at(i), source_at(i), weight_at(i + 1),
                  source_at(i + 1), out);
  }
  if (i < count) {
    HM_CHECK(source_at(i).size() == out.size());
    tensor::axpy(weight_at(i), source_at(i), out);
  }
}

}  // namespace

Participants Participants::from_draws(const std::vector<index_t>& draws) {
  Participants p;
  p.total = static_cast<index_t>(draws.size());
  std::unordered_map<index_t, std::size_t> slot_of;
  slot_of.reserve(draws.size());
  for (const index_t id : draws) {
    const auto [it, inserted] = slot_of.try_emplace(id, p.ids.size());
    if (inserted) {
      p.ids.push_back(id);
      p.multiplicity.push_back(1);
    } else {
      ++p.multiplicity[it->second];
    }
  }
  return p;
}

void weighted_average(const std::vector<std::vector<scalar_t>>& vectors,
                      const Participants& parts,
                      std::vector<scalar_t>& out) {
  HM_CHECK(!parts.ids.empty() && parts.total > 0);
  const scalar_t inv_total = scalar_t{1} / static_cast<scalar_t>(parts.total);
  accumulate_weighted(
      parts.ids.size(),
      [&](std::size_t i) {
        return static_cast<scalar_t>(parts.multiplicity[i]) * inv_total;
      },
      [&](std::size_t i) -> const std::vector<scalar_t>& {
        return vectors[static_cast<std::size_t>(parts.ids[i])];
      },
      out);
}

void uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                     const std::vector<index_t>& ids,
                     std::vector<scalar_t>& out) {
  HM_CHECK(!ids.empty());
  const scalar_t inv = scalar_t{1} / static_cast<scalar_t>(ids.size());
  accumulate_weighted(
      ids.size(), [&](std::size_t) { return inv; },
      [&](std::size_t i) -> const std::vector<scalar_t>& {
        return vectors[static_cast<std::size_t>(ids[i])];
      },
      out);
}

void robust_combine(const std::vector<const std::vector<scalar_t>*>& srcs,
                    const std::vector<index_t>& mults, index_t total,
                    const AggregateSpec& agg, nn::VecView out) {
  HM_CHECK(agg.kind != Aggregate::kMean);
  HM_CHECK(!srcs.empty() && mults.size() == srcs.size() && total > 0);
  HM_CHECK_MSG(agg.trim_frac >= 0 && agg.trim_frac < scalar_t{0.5},
               "trim_frac must be in [0, 0.5), got " << agg.trim_frac);
  const std::size_t m = srcs.size();
  const std::size_t dim = out.size();
  for (std::size_t i = 0; i < m; ++i) {
    HM_CHECK(srcs[i]->size() == dim);
    HM_CHECK(mults[i] >= 1);
  }
  // Trim floor(trim_frac * total) weight units per side, capped so at
  // least one unit survives. Integer weights make the cap and the
  // median's tie test exact, never a float comparison.
  const index_t trim =
      std::min(static_cast<index_t>(agg.trim_frac *
                                    static_cast<scalar_t>(total)),
               (total - 1) / 2);
  // Per-coordinate (value, source index) pairs, sorted ascending. The
  // index tiebreak pins the order among equal values, and the sorted
  // order is also the accumulation order for the trimmed mean.
  std::vector<std::pair<scalar_t, std::size_t>> order(m);
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t i = 0; i < m; ++i) order[i] = {(*srcs[i])[c], i};
    std::sort(order.begin(), order.end());
    if (agg.kind == Aggregate::kMedian) {
      index_t cum = 0;
      std::size_t j = 0;
      for (; j < m; ++j) {
        cum += mults[order[j].second];
        if (2 * cum >= total) break;
      }
      if (2 * cum == total) {
        // Even split: exactly half the weight is at or below order[j],
        // so the median is the midpoint of the straddling values.
        out[c] = scalar_t{0.5} * (order[j].first + order[j + 1].first);
      } else {
        out[c] = order[j].first;
      }
    } else {  // kTrimmedMean
      scalar_t acc = 0;
      const index_t lo = trim;        // keep weight units in [lo, hi)
      const index_t hi = total - trim;
      index_t pos = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const index_t w = mults[order[j].second];
        const index_t a = std::max(pos, lo);
        const index_t b = std::min(pos + w, hi);
        if (b > a) acc += static_cast<scalar_t>(b - a) * order[j].first;
        pos += w;
      }
      out[c] = acc / static_cast<scalar_t>(total - 2 * trim);
    }
  }
}

void robust_weighted_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const Participants& parts, const AggregateSpec& agg,
    std::vector<scalar_t>& out) {
  if (agg.kind == Aggregate::kMean) {
    weighted_average(vectors, parts, out);
    return;
  }
  HM_CHECK(!parts.ids.empty() && parts.total > 0);
  std::vector<const std::vector<scalar_t>*> srcs(parts.ids.size());
  for (std::size_t i = 0; i < parts.ids.size(); ++i) {
    srcs[i] = &vectors[static_cast<std::size_t>(parts.ids[i])];
  }
  robust_combine(srcs, parts.multiplicity, parts.total, agg, out);
}

void robust_uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                            const std::vector<index_t>& ids,
                            const AggregateSpec& agg,
                            std::vector<scalar_t>& out) {
  if (agg.kind == Aggregate::kMean) {
    uniform_average(vectors, ids, out);
    return;
  }
  HM_CHECK(!ids.empty());
  std::vector<const std::vector<scalar_t>*> srcs(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    srcs[i] = &vectors[static_cast<std::size_t>(ids[i])];
  }
  const std::vector<index_t> mults(ids.size(), 1);
  robust_combine(srcs, mults, static_cast<index_t>(ids.size()), agg, out);
}

namespace {

/// decay^age by repeated multiplication — no libm pow, so the result is
/// bit-identical across platforms like everything else in the trainers.
scalar_t decay_pow(scalar_t decay, index_t age) {
  scalar_t df = 1;
  for (index_t i = 0; i < age; ++i) df *= decay;
  return df;
}

/// Materialize a casualty's substitute vector into `buf`:
/// decay^age * stale + (1 - decay^age) * fallback, or a plain copy of
/// `fallback` when no stale update exists.
void make_blend(const StaleStore& stale, index_t id, scalar_t stale_decay,
                index_t round, const std::vector<scalar_t>& fallback,
                std::vector<scalar_t>& buf) {
  buf.resize(fallback.size());
  if (!stale.has(id)) {
    tensor::copy(fallback, buf);
    return;
  }
  const index_t age = round - stale.last_round[static_cast<std::size_t>(id)];
  const scalar_t df = decay_pow(stale_decay, age);
  tensor::axpby(df, stale.models[static_cast<std::size_t>(id)], scalar_t{0},
                buf);
  tensor::axpy(scalar_t{1} - df, fallback, buf);
}

}  // namespace

bool degraded_weighted_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const Participants& parts, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out,
    const AggregateSpec& agg) {
  HM_CHECK(delivered.size() == parts.ids.size());
  bool all_delivered = true;
  for (const char c : delivered) all_delivered = all_delivered && c != 0;

  if (all_delivered) {
    // Empty surviving set (e.g. Participants::from_draws on zero draws):
    // there is nothing to aggregate — every policy skips the round.
    if (parts.ids.empty()) return false;
    robust_weighted_average(vectors, parts, agg, out);
    if (policy == OnFault::kReuseStale) {
      for (const index_t id : parts.ids) {
        stale.deliver(id, vectors[static_cast<std::size_t>(id)], round);
      }
    }
    return true;
  }

  if (policy == OnFault::kSkipRound) return false;

  if (policy == OnFault::kRenormalize) {
    Participants survivors;
    for (std::size_t i = 0; i < parts.ids.size(); ++i) {
      if (!delivered[i]) continue;
      survivors.ids.push_back(parts.ids[i]);
      survivors.multiplicity.push_back(parts.multiplicity[i]);
      survivors.total += parts.multiplicity[i];
    }
    if (survivors.ids.empty()) return false;  // skip-round fallback
    robust_weighted_average(vectors, survivors, agg, out);
    return true;
  }

  // kReuseStale: original weights, casualties replaced by their blends.
  // All blends are materialized before the accumulation writes `out`, so
  // `fallback` may alias `out`.
  if (stale.blend.size() < parts.ids.size()) {
    stale.blend.resize(parts.ids.size());
  }
  std::vector<const std::vector<scalar_t>*> srcs(parts.ids.size());
  for (std::size_t i = 0; i < parts.ids.size(); ++i) {
    const index_t id = parts.ids[i];
    if (delivered[i]) {
      srcs[i] = &vectors[static_cast<std::size_t>(id)];
    } else {
      make_blend(stale, id, stale_decay, round, fallback, stale.blend[i]);
      srcs[i] = &stale.blend[i];
    }
  }
  if (agg.kind == Aggregate::kMean) {
    const scalar_t inv_total =
        scalar_t{1} / static_cast<scalar_t>(parts.total);
    std::vector<scalar_t> ws(parts.ids.size());
    for (std::size_t i = 0; i < parts.ids.size(); ++i) {
      ws[i] = static_cast<scalar_t>(parts.multiplicity[i]) * inv_total;
    }
    accumulate_weighted(
        srcs.size(), [&](std::size_t i) { return ws[i]; },
        [&](std::size_t i) -> const std::vector<scalar_t>& {
          return *srcs[i];
        },
        out);
  } else {
    robust_combine(srcs, parts.multiplicity, parts.total, agg, out);
  }
  for (std::size_t i = 0; i < parts.ids.size(); ++i) {
    if (delivered[i]) {
      stale.deliver(parts.ids[i],
                    vectors[static_cast<std::size_t>(parts.ids[i])], round);
    }
  }
  return true;
}

bool degraded_uniform_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const std::vector<index_t>& ids, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out,
    const AggregateSpec& agg) {
  HM_CHECK(delivered.size() == ids.size());
  bool all_delivered = true;
  for (const char c : delivered) all_delivered = all_delivered && c != 0;
  if (all_delivered) {
    if (ids.empty()) return false;
    robust_uniform_average(vectors, ids, agg, out);
    if (policy == OnFault::kReuseStale) {
      for (const index_t id : ids) {
        stale.deliver(id, vectors[static_cast<std::size_t>(id)], round);
      }
    }
    return true;
  }
  // Multiplicity-1 weighted aggregation computes the same 1/n weights in
  // the same accumulation order, so delegating keeps the partial-failure
  // policies in one place.
  Participants p;
  p.ids = ids;
  p.multiplicity.assign(ids.size(), 1);
  p.total = static_cast<index_t>(ids.size());
  return degraded_weighted_average(vectors, p, delivered, policy,
                                   stale_decay, round, stale, fallback, out,
                                   agg);
}

const data::Dataset& PoisonStore::get(const data::Dataset& shard,
                                      index_t client) {
  const auto i = static_cast<std::size_t>(client);
  if (i >= src.size()) {
    src.resize(i + 1, nullptr);
    flipped.resize(i + 1);
  }
  if (src[i] != &shard) {
    flipped[i] = data::flip_labels(shard);
    src[i] = &shard;
  }
  return flipped[i];
}

void update_running_average(std::vector<scalar_t>& avg,
                            const std::vector<scalar_t>& value, index_t k) {
  HM_CHECK(avg.size() == value.size() && k >= 0);
  const scalar_t w_old =
      static_cast<scalar_t>(k) / static_cast<scalar_t>(k + 1);
  const scalar_t w_new = scalar_t{1} / static_cast<scalar_t>(k + 1);
  tensor::axpby(w_new, value, w_old, avg);
}

std::vector<scalar_t> uniform_weights(index_t n) {
  HM_CHECK(n > 0);
  return std::vector<scalar_t>(static_cast<std::size_t>(n),
                               scalar_t{1} / static_cast<scalar_t>(n));
}

void publish_comm_metrics(const sim::CommStats& comm) {
#if HM_OBS_ENABLED
  auto& reg = obs::registry();
  const auto set = [&reg](const char* name, std::uint64_t v) {
    reg.gauge(name).set(static_cast<std::int64_t>(v));
  };
  set("sim.comm.client_edge.rounds", comm.client_edge_rounds);
  set("sim.comm.client_edge.models_up", comm.client_edge_models_up);
  set("sim.comm.client_edge.models_down", comm.client_edge_models_down);
  set("sim.comm.client_edge.scalars", comm.client_edge_scalars);
  set("sim.comm.client_edge.bytes", comm.client_edge_bytes);
  set("sim.comm.edge_cloud.rounds", comm.edge_cloud_rounds);
  set("sim.comm.edge_cloud.models_up", comm.edge_cloud_models_up);
  set("sim.comm.edge_cloud.models_down", comm.edge_cloud_models_down);
  set("sim.comm.edge_cloud.scalars", comm.edge_cloud_scalars);
  set("sim.comm.edge_cloud.bytes", comm.edge_cloud_bytes);
  const auto set_fault = [&set](const char* prefix,
                                const sim::LinkFaultStats& f) {
    const std::string p(prefix);
    // Names outlive the run: the registry stores std::string keys.
    struct Field { const char* name; std::uint64_t value; };
    const Field fields[] = {{".attempted", f.attempted},
                            {".delivered", f.delivered},
                            {".dropped", f.dropped},
                            {".in_retry", f.in_retry},
                            {".straggled", f.straggled}};
    for (const Field& fld : fields) set((p + fld.name).c_str(), fld.value);
  };
  set_fault("sim.comm.client_edge_fault", comm.client_edge_fault);
  set_fault("sim.comm.edge_cloud_fault", comm.edge_cloud_fault);
#else
  (void)comm;
#endif
}

void maybe_record(const nn::Model& model, const data::FederatedDataset& fed,
                  parallel::ThreadPool& pool, index_t round,
                  index_t total_rounds, index_t eval_every,
                  const std::vector<scalar_t>& w, const sim::CommStats& comm,
                  metrics::TrainingHistory& history) {
  publish_comm_metrics(comm);
  const bool final_round = round == total_rounds;
  const bool due = eval_every > 0 && round % eval_every == 0;
  if (!final_round && !due) return;
  metrics::RoundRecord record;
  record.round = round;
  record.comm = comm;
  record.edge_acc = metrics::per_edge_accuracy(model, w, fed, pool);
  record.summary = metrics::summarize(record.edge_acc);
  const auto losses = metrics::per_edge_loss(model, w, fed, pool);
  scalar_t total = 0;
  for (const scalar_t l : losses) total += l;
  record.global_loss = total / static_cast<scalar_t>(losses.size());
  history.add(std::move(record));
}

// ——— Snapshot encode/decode ———

namespace {

void encode_stream_state(io::ByteWriter& w, const rng::StreamState& st) {
  for (const std::uint64_t word : st.s) w.put_u64(word);
  w.put_u64(st.has_cached_normal ? 1 : 0);
  w.put_f64(st.cached_normal);
}

rng::StreamState decode_stream_state(io::ByteReader& r) {
  rng::StreamState st;
  for (auto& word : st.s) word = r.u64();
  const std::uint64_t flag = r.u64();
  HM_CHECK_MSG(flag <= 1, "rng stream state: bad normal-cache flag " << flag);
  st.has_cached_normal = flag == 1;
  st.cached_normal = r.f64();
  return st;
}

void encode_link_fault(io::ByteWriter& w, const sim::LinkFaultStats& s) {
  w.put_u64(s.attempted);
  w.put_u64(s.delivered);
  w.put_u64(s.dropped);
  w.put_u64(s.in_retry);
  w.put_u64(s.straggled);
  w.put_f64(s.extra_rtts);
}

sim::LinkFaultStats decode_link_fault(io::ByteReader& r) {
  sim::LinkFaultStats s;
  s.attempted = r.u64();
  s.delivered = r.u64();
  s.dropped = r.u64();
  s.in_retry = r.u64();
  s.straggled = r.u64();
  s.extra_rtts = r.f64();
  return s;
}

void encode_comm(io::ByteWriter& w, const sim::CommStats& c) {
  w.put_u64(c.client_edge_rounds);
  w.put_u64(c.edge_cloud_rounds);
  w.put_u64(c.client_edge_models_up);
  w.put_u64(c.client_edge_models_down);
  w.put_u64(c.edge_cloud_models_up);
  w.put_u64(c.edge_cloud_models_down);
  w.put_u64(c.client_edge_scalars);
  w.put_u64(c.edge_cloud_scalars);
  w.put_u64(c.client_edge_bytes);
  w.put_u64(c.edge_cloud_bytes);
  encode_link_fault(w, c.client_edge_fault);
  encode_link_fault(w, c.edge_cloud_fault);
}

sim::CommStats decode_comm(io::ByteReader& r) {
  sim::CommStats c;
  c.client_edge_rounds = r.u64();
  c.edge_cloud_rounds = r.u64();
  c.client_edge_models_up = r.u64();
  c.client_edge_models_down = r.u64();
  c.edge_cloud_models_up = r.u64();
  c.edge_cloud_models_down = r.u64();
  c.client_edge_scalars = r.u64();
  c.edge_cloud_scalars = r.u64();
  c.client_edge_bytes = r.u64();
  c.edge_cloud_bytes = r.u64();
  c.client_edge_fault = decode_link_fault(r);
  c.edge_cloud_fault = decode_link_fault(r);
  return c;
}

void encode_multi_comm(io::ByteWriter& w, const MultiCommStats& c) {
  w.put_u64(c.levels.size());
  for (const auto& l : c.levels) {
    w.put_u64(l.rounds);
    w.put_u64(l.models_up);
    w.put_u64(l.models_down);
  }
  encode_link_fault(w, c.leaf_fault);
  encode_link_fault(w, c.top_fault);
}

MultiCommStats decode_multi_comm(io::ByteReader& r) {
  MultiCommStats c;
  const std::uint64_t n = r.u64();
  HM_CHECK_MSG(n <= 64, "multi comm stats: implausible level count " << n);
  c.levels.resize(n);
  for (auto& l : c.levels) {
    l.rounds = r.u64();
    l.models_up = r.u64();
    l.models_down = r.u64();
  }
  c.leaf_fault = decode_link_fault(r);
  c.top_fault = decode_link_fault(r);
  return c;
}

std::vector<std::uint8_t> encode_history(
    const metrics::TrainingHistory& history) {
  io::ByteWriter w;
  w.put_u64(history.size());
  for (const auto& rec : history.records()) {
    w.put_i64(rec.round);
    encode_comm(w, rec.comm);
    w.put_u64(rec.edge_acc.size());
    for (const scalar_t a : rec.edge_acc) w.put_f64(a);
    w.put_f64(rec.summary.average);
    w.put_f64(rec.summary.worst);
    w.put_f64(rec.summary.best);
    w.put_f64(rec.summary.variance_pct2);
    w.put_f64(rec.global_loss);
  }
  return w.take();
}

void decode_history(io::ByteReader& r, metrics::TrainingHistory& history) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    metrics::RoundRecord rec;
    rec.round = static_cast<index_t>(r.i64());
    rec.comm = decode_comm(r);
    const std::uint64_t accs = r.u64();
    HM_CHECK_MSG(accs * 8 <= r.remaining(),
                 "history record " << i << " declares " << accs
                                   << " edge accuracies but only "
                                   << r.remaining() << " bytes remain");
    rec.edge_acc.resize(accs);
    for (auto& a : rec.edge_acc) a = r.f64();
    rec.summary.average = r.f64();
    rec.summary.worst = r.f64();
    rec.summary.best = r.f64();
    rec.summary.variance_pct2 = r.f64();
    rec.global_loss = r.f64();
    history.add(std::move(rec));
  }
  HM_CHECK_MSG(r.remaining() == 0, "history section has trailing bytes");
}

/// Is the stale store live for this run? init() sizes last_round; a
/// default-constructed store (fault-free path) leaves it empty.
bool stale_live(const StaleStore* stale) {
  return stale != nullptr && !stale->last_round.empty();
}

}  // namespace

io::Snapshot make_run_snapshot(const RunState& st, index_t next_round) {
  HM_CHECK(st.root != nullptr && st.w != nullptr && st.history != nullptr);
  io::Snapshot s;
  s.put_u64(kSnapAlgo, st.algo_id);
  s.put_u64(kSnapSeed, st.seed);
  s.put_u64(kSnapRound, static_cast<std::uint64_t>(next_round));
  {
    io::ByteWriter w;
    encode_stream_state(w, st.root->state());
    s.put_bytes(kSnapRng, w.take());
  }
  s.put_f64_vec(kSnapW, *st.w);
  if (st.p) s.put_f64_vec(kSnapP, *st.p);
  if (st.w_avg) s.put_f64_vec(kSnapWAvg, *st.w_avg);
  if (st.p_avg) s.put_f64_vec(kSnapPAvg, *st.p_avg);
  if (st.aux) s.put_f64_vec(kSnapAux, *st.aux);
  if (st.aux_avg) s.put_f64_vec(kSnapAuxAvg, *st.aux_avg);
  if (st.comm) {
    io::ByteWriter w;
    encode_comm(w, *st.comm);
    s.put_bytes(kSnapComm, w.take());
  }
  if (st.multi_comm) {
    io::ByteWriter w;
    encode_multi_comm(w, *st.multi_comm);
    s.put_bytes(kSnapMultiComm, w.take());
  }
  if (stale_live(st.stale)) {
    s.put_f64_vec_list(kSnapStaleModels, st.stale->models);
    std::vector<std::int64_t> rounds(st.stale->last_round.begin(),
                                     st.stale->last_round.end());
    s.put_i64_vec(kSnapStaleRounds, rounds);
  }
  s.put_bytes(kSnapHistory, encode_history(*st.history));
  return s;
}

index_t resume_round(const std::string& resume_from, const RunState& st) {
  if (resume_from.empty()) return 0;
  HM_CHECK(st.root != nullptr && st.w != nullptr && st.history != nullptr);
  io::LoadMiss miss;
  const auto loaded = io::load_latest_snapshot(resume_from, &miss);
  if (!loaded) {
    // A damaged store (candidates exist, all corrupt/torn) must not be
    // confused with a fresh start: silently retraining from round 0
    // would discard the progress the user asked to resume.
    HM_CHECK_MSG(!miss.hard, "resume from '" << resume_from
                                             << "' failed: " << miss.message);
    log::info() << "resume: " << miss.message;
    return 0;
  }
  const io::Snapshot& s = loaded->snapshot;

  const std::uint64_t algo = s.get_u64(kSnapAlgo);
  HM_CHECK_MSG(algo == st.algo_id,
               "snapshot '" << loaded->path << "' was written by algorithm id "
                            << algo << ", this run is algorithm id "
                            << st.algo_id);
  const std::uint64_t seed = s.get_u64(kSnapSeed);
  HM_CHECK_MSG(seed == st.seed, "snapshot '"
                                    << loaded->path << "' used seed " << seed
                                    << ", this run uses seed " << st.seed
                                    << " — resume would not be bit-exact");
  const std::uint64_t next_round = s.get_u64(kSnapRound);
  HM_CHECK_MSG(next_round >= 1 && next_round <= (1ULL << 40),
               "snapshot '" << loaded->path << "' has implausible round "
                            << next_round);

  const auto restore_vec = [&](std::uint32_t tag, std::vector<scalar_t>* dst,
                               const char* name) {
    HM_CHECK_MSG((dst != nullptr) == s.has(tag),
                 "snapshot '" << loaded->path << "' "
                              << (s.has(tag) ? "has" : "lacks") << " a '"
                              << name
                              << "' section but this trainer expects the "
                                 "opposite — algorithm/options mismatch");
    if (dst == nullptr) return;
    std::vector<scalar_t> v = s.get_f64_vec(tag);
    HM_CHECK_MSG(v.size() == dst->size(),
                 "snapshot '" << loaded->path << "' section '" << name
                              << "' has " << v.size() << " values, this run "
                              << "expects " << dst->size()
                              << " — model/topology mismatch");
    *dst = std::move(v);
  };
  restore_vec(kSnapW, st.w, "w");
  restore_vec(kSnapP, st.p, "p");
  restore_vec(kSnapWAvg, st.w_avg, "w_avg");
  restore_vec(kSnapPAvg, st.p_avg, "p_avg");
  restore_vec(kSnapAux, st.aux, "aux");
  restore_vec(kSnapAuxAvg, st.aux_avg, "aux_avg");

  {
    const auto& bytes = s.get_bytes(kSnapRng);
    io::ByteReader r(bytes.data(), bytes.size());
    st.root->set_state(decode_stream_state(r));
    HM_CHECK_MSG(r.remaining() == 0, "rng section has trailing bytes");
  }

  HM_CHECK_MSG((st.comm != nullptr) == s.has(kSnapComm),
               "snapshot '" << loaded->path
                            << "' comm-stats section presence mismatch");
  if (st.comm) {
    const auto& bytes = s.get_bytes(kSnapComm);
    io::ByteReader r(bytes.data(), bytes.size());
    *st.comm = decode_comm(r);
    HM_CHECK_MSG(r.remaining() == 0, "comm section has trailing bytes");
  }
  HM_CHECK_MSG((st.multi_comm != nullptr) == s.has(kSnapMultiComm),
               "snapshot '" << loaded->path
                            << "' multi-comm section presence mismatch");
  if (st.multi_comm) {
    const auto& bytes = s.get_bytes(kSnapMultiComm);
    io::ByteReader r(bytes.data(), bytes.size());
    MultiCommStats mc = decode_multi_comm(r);
    HM_CHECK_MSG(r.remaining() == 0, "multi-comm section has trailing bytes");
    HM_CHECK_MSG(mc.levels.size() == st.multi_comm->levels.size(),
                 "snapshot '" << loaded->path << "' has "
                              << mc.levels.size()
                              << " comm levels, this topology has "
                              << st.multi_comm->levels.size());
    *st.multi_comm = std::move(mc);
  }

  HM_CHECK_MSG(stale_live(st.stale) == s.has(kSnapStaleRounds),
               "snapshot '"
                   << loaded->path
                   << "' stale-store presence mismatch — the run's fault "
                      "policy differs from the snapshotted run");
  HM_CHECK_MSG(s.has(kSnapStaleModels) == s.has(kSnapStaleRounds),
               "snapshot '" << loaded->path
                            << "' has half a stale store (models without "
                               "rounds or vice versa)");
  if (stale_live(st.stale)) {
    auto models = s.get_f64_vec_list(kSnapStaleModels);
    const auto rounds = s.get_i64_vec(kSnapStaleRounds);
    HM_CHECK_MSG(models.size() == rounds.size() &&
                     models.size() == st.stale->last_round.size(),
                 "snapshot '" << loaded->path << "' stale store covers "
                              << models.size()
                              << " participants, this run has "
                              << st.stale->last_round.size());
    st.stale->models = std::move(models);
    st.stale->last_round.assign(rounds.begin(), rounds.end());
  }

  {
    HM_CHECK_MSG(st.history->empty(),
                 "resume_round must run before any history is recorded");
    const auto& bytes = s.get_bytes(kSnapHistory);
    io::ByteReader r(bytes.data(), bytes.size());
    decode_history(r, *st.history);
  }

  log::info() << "resumed from snapshot '" << loaded->path << "' at round "
              << next_round
              << (loaded->rejected.empty()
                      ? ""
                      : " (degraded past newer corrupt candidates)");
  return static_cast<index_t>(next_round);
}

void snapshot_round_end(const io::SnapshotPolicy& policy, index_t k,
                        const RunState& st) {
  if (policy.enabled() && (k + 1) % policy.every_k_rounds == 0) {
    io::save_snapshot(policy.dir, policy.keep, k + 1,
                      make_run_snapshot(st, k + 1));
  }
  if (policy.crash_after_round >= 0 && k == policy.crash_after_round) {
    std::ostringstream os;
    os << "simulated crash after round " << k;
    throw io::SimulatedCrash(os.str());
  }
}

}  // namespace hm::algo::detail
