#include "algo/trainer_common.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo::detail {

Participants Participants::from_draws(const std::vector<index_t>& draws) {
  Participants p;
  p.total = static_cast<index_t>(draws.size());
  for (const index_t id : draws) {
    const auto it = std::find(p.ids.begin(), p.ids.end(), id);
    if (it == p.ids.end()) {
      p.ids.push_back(id);
      p.multiplicity.push_back(1);
    } else {
      ++p.multiplicity[static_cast<std::size_t>(
          std::distance(p.ids.begin(), it))];
    }
  }
  return p;
}

void weighted_average(const std::vector<std::vector<scalar_t>>& vectors,
                      const Participants& parts,
                      std::vector<scalar_t>& out) {
  HM_CHECK(!parts.ids.empty() && parts.total > 0);
  const scalar_t inv_total = scalar_t{1} / static_cast<scalar_t>(parts.total);
  std::fill(out.begin(), out.end(), scalar_t{0});
  for (std::size_t i = 0; i < parts.ids.size(); ++i) {
    const auto& src = vectors[static_cast<std::size_t>(parts.ids[i])];
    HM_CHECK(src.size() == out.size());
    tensor::axpy(static_cast<scalar_t>(parts.multiplicity[i]) * inv_total,
                 src, out);
  }
}

void uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                     const std::vector<index_t>& ids,
                     std::vector<scalar_t>& out) {
  HM_CHECK(!ids.empty());
  const scalar_t inv = scalar_t{1} / static_cast<scalar_t>(ids.size());
  std::fill(out.begin(), out.end(), scalar_t{0});
  for (const index_t id : ids) {
    const auto& src = vectors[static_cast<std::size_t>(id)];
    HM_CHECK(src.size() == out.size());
    tensor::axpy(inv, src, out);
  }
}

void update_running_average(std::vector<scalar_t>& avg,
                            const std::vector<scalar_t>& value, index_t k) {
  HM_CHECK(avg.size() == value.size() && k >= 0);
  const scalar_t w_old =
      static_cast<scalar_t>(k) / static_cast<scalar_t>(k + 1);
  const scalar_t w_new = scalar_t{1} / static_cast<scalar_t>(k + 1);
  for (std::size_t i = 0; i < avg.size(); ++i) {
    avg[i] = w_old * avg[i] + w_new * value[i];
  }
}

std::vector<scalar_t> uniform_weights(index_t n) {
  HM_CHECK(n > 0);
  return std::vector<scalar_t>(static_cast<std::size_t>(n),
                               scalar_t{1} / static_cast<scalar_t>(n));
}

void maybe_record(const nn::Model& model, const data::FederatedDataset& fed,
                  parallel::ThreadPool& pool, index_t round,
                  index_t total_rounds, index_t eval_every,
                  const std::vector<scalar_t>& w, const sim::CommStats& comm,
                  metrics::TrainingHistory& history) {
  const bool final_round = round == total_rounds;
  const bool due = eval_every > 0 && round % eval_every == 0;
  if (!final_round && !due) return;
  metrics::RoundRecord record;
  record.round = round;
  record.comm = comm;
  record.edge_acc = metrics::per_edge_accuracy(model, w, fed, pool);
  record.summary = metrics::summarize(record.edge_acc);
  const auto losses = metrics::per_edge_loss(model, w, fed, pool);
  scalar_t total = 0;
  for (const scalar_t l : losses) total += l;
  record.global_loss = total / static_cast<scalar_t>(losses.size());
  history.add(std::move(record));
}

}  // namespace hm::algo::detail
