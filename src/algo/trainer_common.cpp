#include "algo/trainer_common.hpp"

#include <unordered_map>

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo::detail {

namespace {

/// Weighted accumulation over a set of participant vectors with the fused
/// one- and two-source kernels: the first source overwrites (saves the
/// zero-fill pass), then sources are folded pairwise so `out` is walked
/// half as many times. Accumulation order over sources is the sequential
/// order, same as a chain of axpy calls.
template <typename WeightAt, typename SourceAt>
void accumulate_weighted(std::size_t count, const WeightAt& weight_at,
                         const SourceAt& source_at,
                         std::vector<scalar_t>& out) {
  HM_CHECK(count > 0);
  HM_CHECK(source_at(0).size() == out.size());
  tensor::axpby(weight_at(0), source_at(0), scalar_t{0}, out);
  std::size_t i = 1;
  for (; i + 2 <= count; i += 2) {
    HM_CHECK(source_at(i).size() == out.size());
    HM_CHECK(source_at(i + 1).size() == out.size());
    tensor::axpy2(weight_at(i), source_at(i), weight_at(i + 1),
                  source_at(i + 1), out);
  }
  if (i < count) {
    HM_CHECK(source_at(i).size() == out.size());
    tensor::axpy(weight_at(i), source_at(i), out);
  }
}

}  // namespace

Participants Participants::from_draws(const std::vector<index_t>& draws) {
  Participants p;
  p.total = static_cast<index_t>(draws.size());
  std::unordered_map<index_t, std::size_t> slot_of;
  slot_of.reserve(draws.size());
  for (const index_t id : draws) {
    const auto [it, inserted] = slot_of.try_emplace(id, p.ids.size());
    if (inserted) {
      p.ids.push_back(id);
      p.multiplicity.push_back(1);
    } else {
      ++p.multiplicity[it->second];
    }
  }
  return p;
}

void weighted_average(const std::vector<std::vector<scalar_t>>& vectors,
                      const Participants& parts,
                      std::vector<scalar_t>& out) {
  HM_CHECK(!parts.ids.empty() && parts.total > 0);
  const scalar_t inv_total = scalar_t{1} / static_cast<scalar_t>(parts.total);
  accumulate_weighted(
      parts.ids.size(),
      [&](std::size_t i) {
        return static_cast<scalar_t>(parts.multiplicity[i]) * inv_total;
      },
      [&](std::size_t i) -> const std::vector<scalar_t>& {
        return vectors[static_cast<std::size_t>(parts.ids[i])];
      },
      out);
}

void uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                     const std::vector<index_t>& ids,
                     std::vector<scalar_t>& out) {
  HM_CHECK(!ids.empty());
  const scalar_t inv = scalar_t{1} / static_cast<scalar_t>(ids.size());
  accumulate_weighted(
      ids.size(), [&](std::size_t) { return inv; },
      [&](std::size_t i) -> const std::vector<scalar_t>& {
        return vectors[static_cast<std::size_t>(ids[i])];
      },
      out);
}

void update_running_average(std::vector<scalar_t>& avg,
                            const std::vector<scalar_t>& value, index_t k) {
  HM_CHECK(avg.size() == value.size() && k >= 0);
  const scalar_t w_old =
      static_cast<scalar_t>(k) / static_cast<scalar_t>(k + 1);
  const scalar_t w_new = scalar_t{1} / static_cast<scalar_t>(k + 1);
  tensor::axpby(w_new, value, w_old, avg);
}

std::vector<scalar_t> uniform_weights(index_t n) {
  HM_CHECK(n > 0);
  return std::vector<scalar_t>(static_cast<std::size_t>(n),
                               scalar_t{1} / static_cast<scalar_t>(n));
}

void maybe_record(const nn::Model& model, const data::FederatedDataset& fed,
                  parallel::ThreadPool& pool, index_t round,
                  index_t total_rounds, index_t eval_every,
                  const std::vector<scalar_t>& w, const sim::CommStats& comm,
                  metrics::TrainingHistory& history) {
  const bool final_round = round == total_rounds;
  const bool due = eval_every > 0 && round % eval_every == 0;
  if (!final_round && !due) return;
  metrics::RoundRecord record;
  record.round = round;
  record.comm = comm;
  record.edge_acc = metrics::per_edge_accuracy(model, w, fed, pool);
  record.summary = metrics::summarize(record.edge_acc);
  const auto losses = metrics::per_edge_loss(model, w, fed, pool);
  scalar_t total = 0;
  for (const scalar_t l : losses) total += l;
  record.global_loss = total / static_cast<scalar_t>(losses.size());
  history.add(std::move(record));
}

}  // namespace hm::algo::detail
