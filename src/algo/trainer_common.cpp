#include "algo/trainer_common.hpp"

#include <unordered_map>

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo::detail {

namespace {

/// Weighted accumulation over a set of participant vectors with the fused
/// one- and two-source kernels: the first source overwrites (saves the
/// zero-fill pass), then sources are folded pairwise so `out` is walked
/// half as many times. Accumulation order over sources is the sequential
/// order, same as a chain of axpy calls.
template <typename WeightAt, typename SourceAt>
void accumulate_weighted(std::size_t count, const WeightAt& weight_at,
                         const SourceAt& source_at,
                         std::vector<scalar_t>& out) {
  HM_CHECK(count > 0);
  HM_CHECK(source_at(0).size() == out.size());
  tensor::axpby(weight_at(0), source_at(0), scalar_t{0}, out);
  std::size_t i = 1;
  for (; i + 2 <= count; i += 2) {
    HM_CHECK(source_at(i).size() == out.size());
    HM_CHECK(source_at(i + 1).size() == out.size());
    tensor::axpy2(weight_at(i), source_at(i), weight_at(i + 1),
                  source_at(i + 1), out);
  }
  if (i < count) {
    HM_CHECK(source_at(i).size() == out.size());
    tensor::axpy(weight_at(i), source_at(i), out);
  }
}

}  // namespace

Participants Participants::from_draws(const std::vector<index_t>& draws) {
  Participants p;
  p.total = static_cast<index_t>(draws.size());
  std::unordered_map<index_t, std::size_t> slot_of;
  slot_of.reserve(draws.size());
  for (const index_t id : draws) {
    const auto [it, inserted] = slot_of.try_emplace(id, p.ids.size());
    if (inserted) {
      p.ids.push_back(id);
      p.multiplicity.push_back(1);
    } else {
      ++p.multiplicity[it->second];
    }
  }
  return p;
}

void weighted_average(const std::vector<std::vector<scalar_t>>& vectors,
                      const Participants& parts,
                      std::vector<scalar_t>& out) {
  HM_CHECK(!parts.ids.empty() && parts.total > 0);
  const scalar_t inv_total = scalar_t{1} / static_cast<scalar_t>(parts.total);
  accumulate_weighted(
      parts.ids.size(),
      [&](std::size_t i) {
        return static_cast<scalar_t>(parts.multiplicity[i]) * inv_total;
      },
      [&](std::size_t i) -> const std::vector<scalar_t>& {
        return vectors[static_cast<std::size_t>(parts.ids[i])];
      },
      out);
}

void uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                     const std::vector<index_t>& ids,
                     std::vector<scalar_t>& out) {
  HM_CHECK(!ids.empty());
  const scalar_t inv = scalar_t{1} / static_cast<scalar_t>(ids.size());
  accumulate_weighted(
      ids.size(), [&](std::size_t) { return inv; },
      [&](std::size_t i) -> const std::vector<scalar_t>& {
        return vectors[static_cast<std::size_t>(ids[i])];
      },
      out);
}

namespace {

/// decay^age by repeated multiplication — no libm pow, so the result is
/// bit-identical across platforms like everything else in the trainers.
scalar_t decay_pow(scalar_t decay, index_t age) {
  scalar_t df = 1;
  for (index_t i = 0; i < age; ++i) df *= decay;
  return df;
}

/// Materialize a casualty's substitute vector into `buf`:
/// decay^age * stale + (1 - decay^age) * fallback, or a plain copy of
/// `fallback` when no stale update exists.
void make_blend(const StaleStore& stale, index_t id, scalar_t stale_decay,
                index_t round, const std::vector<scalar_t>& fallback,
                std::vector<scalar_t>& buf) {
  buf.resize(fallback.size());
  if (!stale.has(id)) {
    tensor::copy(fallback, buf);
    return;
  }
  const index_t age = round - stale.last_round[static_cast<std::size_t>(id)];
  const scalar_t df = decay_pow(stale_decay, age);
  tensor::axpby(df, stale.models[static_cast<std::size_t>(id)], scalar_t{0},
                buf);
  tensor::axpy(scalar_t{1} - df, fallback, buf);
}

}  // namespace

bool degraded_weighted_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const Participants& parts, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out) {
  HM_CHECK(delivered.size() == parts.ids.size());
  bool all_delivered = true;
  for (const char c : delivered) all_delivered = all_delivered && c != 0;

  if (all_delivered) {
    // Empty surviving set (e.g. Participants::from_draws on zero draws):
    // there is nothing to aggregate — every policy skips the round.
    if (parts.ids.empty()) return false;
    weighted_average(vectors, parts, out);
    if (policy == OnFault::kReuseStale) {
      for (const index_t id : parts.ids) {
        stale.deliver(id, vectors[static_cast<std::size_t>(id)], round);
      }
    }
    return true;
  }

  if (policy == OnFault::kSkipRound) return false;

  if (policy == OnFault::kRenormalize) {
    Participants survivors;
    for (std::size_t i = 0; i < parts.ids.size(); ++i) {
      if (!delivered[i]) continue;
      survivors.ids.push_back(parts.ids[i]);
      survivors.multiplicity.push_back(parts.multiplicity[i]);
      survivors.total += parts.multiplicity[i];
    }
    if (survivors.ids.empty()) return false;  // skip-round fallback
    weighted_average(vectors, survivors, out);
    return true;
  }

  // kReuseStale: original weights, casualties replaced by their blends.
  // All blends are materialized before the accumulation writes `out`, so
  // `fallback` may alias `out`.
  const scalar_t inv_total =
      scalar_t{1} / static_cast<scalar_t>(parts.total);
  if (stale.blend.size() < parts.ids.size()) {
    stale.blend.resize(parts.ids.size());
  }
  std::vector<scalar_t> ws(parts.ids.size());
  std::vector<const std::vector<scalar_t>*> srcs(parts.ids.size());
  for (std::size_t i = 0; i < parts.ids.size(); ++i) {
    const index_t id = parts.ids[i];
    ws[i] = static_cast<scalar_t>(parts.multiplicity[i]) * inv_total;
    if (delivered[i]) {
      srcs[i] = &vectors[static_cast<std::size_t>(id)];
    } else {
      make_blend(stale, id, stale_decay, round, fallback, stale.blend[i]);
      srcs[i] = &stale.blend[i];
    }
  }
  accumulate_weighted(
      srcs.size(), [&](std::size_t i) { return ws[i]; },
      [&](std::size_t i) -> const std::vector<scalar_t>& { return *srcs[i]; },
      out);
  for (std::size_t i = 0; i < parts.ids.size(); ++i) {
    if (delivered[i]) {
      stale.deliver(parts.ids[i],
                    vectors[static_cast<std::size_t>(parts.ids[i])], round);
    }
  }
  return true;
}

bool degraded_uniform_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const std::vector<index_t>& ids, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out) {
  HM_CHECK(delivered.size() == ids.size());
  bool all_delivered = true;
  for (const char c : delivered) all_delivered = all_delivered && c != 0;
  if (all_delivered) {
    if (ids.empty()) return false;
    uniform_average(vectors, ids, out);
    if (policy == OnFault::kReuseStale) {
      for (const index_t id : ids) {
        stale.deliver(id, vectors[static_cast<std::size_t>(id)], round);
      }
    }
    return true;
  }
  // Multiplicity-1 weighted aggregation computes the same 1/n weights in
  // the same accumulation order, so delegating keeps the partial-failure
  // policies in one place.
  Participants p;
  p.ids = ids;
  p.multiplicity.assign(ids.size(), 1);
  p.total = static_cast<index_t>(ids.size());
  return degraded_weighted_average(vectors, p, delivered, policy,
                                   stale_decay, round, stale, fallback, out);
}

void update_running_average(std::vector<scalar_t>& avg,
                            const std::vector<scalar_t>& value, index_t k) {
  HM_CHECK(avg.size() == value.size() && k >= 0);
  const scalar_t w_old =
      static_cast<scalar_t>(k) / static_cast<scalar_t>(k + 1);
  const scalar_t w_new = scalar_t{1} / static_cast<scalar_t>(k + 1);
  tensor::axpby(w_new, value, w_old, avg);
}

std::vector<scalar_t> uniform_weights(index_t n) {
  HM_CHECK(n > 0);
  return std::vector<scalar_t>(static_cast<std::size_t>(n),
                               scalar_t{1} / static_cast<scalar_t>(n));
}

void maybe_record(const nn::Model& model, const data::FederatedDataset& fed,
                  parallel::ThreadPool& pool, index_t round,
                  index_t total_rounds, index_t eval_every,
                  const std::vector<scalar_t>& w, const sim::CommStats& comm,
                  metrics::TrainingHistory& history) {
  const bool final_round = round == total_rounds;
  const bool due = eval_every > 0 && round % eval_every == 0;
  if (!final_round && !due) return;
  metrics::RoundRecord record;
  record.round = round;
  record.comm = comm;
  record.edge_acc = metrics::per_edge_accuracy(model, w, fed, pool);
  record.summary = metrics::summarize(record.edge_acc);
  const auto losses = metrics::per_edge_loss(model, w, fed, pool);
  scalar_t total = 0;
  for (const scalar_t l : losses) total += l;
  record.global_loss = total / static_cast<scalar_t>(losses.size());
  history.add(std::move(record));
}

}  // namespace hm::algo::detail
