#include "algo/centralized.hpp"

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

void validate(const SaddleOptions& opts, const std::vector<scalar_t>& x0,
              const std::vector<scalar_t>& y0) {
  HM_CHECK(opts.iterations > 0);
  HM_CHECK(opts.eta_x > 0 && opts.eta_y > 0);
  HM_CHECK(!x0.empty() && !y0.empty());
}

void maybe_project(const Projector& projector, VecView v) {
  if (projector) projector(v);
}

struct Averager {
  std::vector<scalar_t> x_avg;
  std::vector<scalar_t> y_avg;
  index_t count = 0;

  void fold(const std::vector<scalar_t>& x, const std::vector<scalar_t>& y) {
    if (x_avg.empty()) {
      x_avg.assign(x.size(), 0);
      y_avg.assign(y.size(), 0);
    }
    const scalar_t w_old =
        static_cast<scalar_t>(count) / static_cast<scalar_t>(count + 1);
    const scalar_t w_new = scalar_t{1} / static_cast<scalar_t>(count + 1);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x_avg[i] = w_old * x_avg[i] + w_new * x[i];
    }
    for (std::size_t i = 0; i < y.size(); ++i) {
      y_avg[i] = w_old * y_avg[i] + w_new * y[i];
    }
    ++count;
  }
};

}  // namespace

SaddleResult solve_gda(const SaddleOracle& oracle, std::vector<scalar_t> x,
                       std::vector<scalar_t> y, const SaddleOptions& opts) {
  validate(opts, x, y);
  std::vector<scalar_t> gx(x.size()), gy(y.size());
  Averager avg;
  for (index_t t = 0; t < opts.iterations; ++t) {
    oracle(x, y, gx, gy);
    tensor::axpy(-opts.eta_x, gx, VecView(x));
    tensor::axpy(+opts.eta_y, gy, VecView(y));
    maybe_project(opts.project_x, x);
    maybe_project(opts.project_y, y);
    if (opts.average_iterates) avg.fold(x, y);
  }
  SaddleResult result;
  result.x_avg = opts.average_iterates ? avg.x_avg : x;
  result.y_avg = opts.average_iterates ? avg.y_avg : y;
  result.x = std::move(x);
  result.y = std::move(y);
  return result;
}

SaddleResult solve_extragradient(const SaddleOracle& oracle,
                                 std::vector<scalar_t> x,
                                 std::vector<scalar_t> y,
                                 const SaddleOptions& opts) {
  validate(opts, x, y);
  std::vector<scalar_t> gx(x.size()), gy(y.size());
  std::vector<scalar_t> x_mid(x.size()), y_mid(y.size());
  Averager avg;
  for (index_t t = 0; t < opts.iterations; ++t) {
    // Half step to the mid point.
    oracle(x, y, gx, gy);
    tensor::copy(x, x_mid);
    tensor::copy(y, y_mid);
    tensor::axpy(-opts.eta_x, gx, VecView(x_mid));
    tensor::axpy(+opts.eta_y, gy, VecView(y_mid));
    maybe_project(opts.project_x, x_mid);
    maybe_project(opts.project_y, y_mid);
    // Real step with mid-point gradients.
    oracle(x_mid, y_mid, gx, gy);
    tensor::axpy(-opts.eta_x, gx, VecView(x));
    tensor::axpy(+opts.eta_y, gy, VecView(y));
    maybe_project(opts.project_x, x);
    maybe_project(opts.project_y, y);
    if (opts.average_iterates) avg.fold(x, y);
  }
  SaddleResult result;
  result.x_avg = opts.average_iterates ? avg.x_avg : x;
  result.y_avg = opts.average_iterates ? avg.y_avg : y;
  result.x = std::move(x);
  result.y = std::move(y);
  return result;
}

SaddleResult solve_ogda(const SaddleOracle& oracle, std::vector<scalar_t> x,
                        std::vector<scalar_t> y, const SaddleOptions& opts) {
  validate(opts, x, y);
  std::vector<scalar_t> gx(x.size()), gy(y.size());
  std::vector<scalar_t> gx_prev(x.size(), 0), gy_prev(y.size(), 0);
  Averager avg;
  for (index_t t = 0; t < opts.iterations; ++t) {
    oracle(x, y, gx, gy);
    // Optimistic step: 2 g_t - g_{t-1} (g_{-1} = 0 makes step 0 plain GDA
    // with doubled gradient; standard initialization uses g_{-1} = g_0).
    if (t == 0) {
      tensor::copy(gx, gx_prev);
      tensor::copy(gy, gy_prev);
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] -= opts.eta_x * (2 * gx[i] - gx_prev[i]);
    }
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += opts.eta_y * (2 * gy[i] - gy_prev[i]);
    }
    maybe_project(opts.project_x, x);
    maybe_project(opts.project_y, y);
    tensor::copy(gx, gx_prev);
    tensor::copy(gy, gy_prev);
    if (opts.average_iterates) avg.fold(x, y);
  }
  SaddleResult result;
  result.x_avg = opts.average_iterates ? avg.x_avg : x;
  result.y_avg = opts.average_iterates ? avg.y_avg : y;
  result.x = std::move(x);
  result.y = std::move(y);
  return result;
}

}  // namespace hm::algo
