// Projected mini-batch local SGD (Eq. 4 of the paper) — the inner loop
// every algorithm shares — plus the checkpoint-capture hook HierMinimax
// and DRFA need.
#pragma once

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "sim/cluster.hpp"

namespace hm::algo {

struct LocalSgdConfig {
  index_t steps = 1;            // tau_1
  index_t batch_size = 1;
  scalar_t eta = 0.01;          // eta_w
  scalar_t w_radius = 0;        // L2-ball projection radius; 0 = identity
  scalar_t weight_decay = 0;    // decoupled L2 decay per step (lambda)
  scalar_t prox_mu = 0;         // FedProx proximal strength: adds
                                // mu * (w - w_start) to every gradient,
                                // anchoring the client at the model it
                                // received for this run
  /// If in [1, steps], a copy of the iterate *after* that many steps is
  /// written to `checkpoint` (the w_n^{(k,c2,c1)} of Algorithm 1).
  index_t checkpoint_step = 0;
};

/// Per-thread reusable scratch for one simulated client.
struct ClientScratch {
  std::unique_ptr<nn::Workspace> ws;
  std::vector<scalar_t> grad;
  std::vector<scalar_t> prox_center;

  void ensure(const nn::Model& model) {
    if (!ws) ws = model.make_workspace();
    grad.resize(static_cast<std::size_t>(model.num_params()));
  }
};

/// Run config.steps projected SGD steps on `w` in place, sampling
/// mini-batches from `shard` with `gen`. If checkpoint capture is
/// requested, `checkpoint` must have num_params() length.
void run_local_sgd(const nn::Model& model, const data::Dataset& shard,
                   const LocalSgdConfig& config, nn::VecView w,
                   nn::VecView checkpoint, rng::Xoshiro256& gen,
                   ClientScratch& scratch);

/// One client of a parallel local-SGD block: the per-call arguments of
/// run_local_sgd, prepared by the trainer. `gen` must stay valid for the
/// whole run and is left in the same post-run state as the per-client
/// path. `scratch_id` slots into the trainer's ClientScratch vector and
/// must be distinct across the jobs of one run (grad buffers alias
/// otherwise).
struct LocalSgdJob {
  const data::Dataset* shard = nullptr;
  nn::VecView w;
  nn::VecView checkpoint;  // empty unless this job captures
  rng::Xoshiro256* gen = nullptr;
  index_t scratch_id = 0;
};

/// Reusable state of the batched execution path, owned by the trainer so
/// panel/workspace allocations amortize across rounds.
struct BatchEngineState {
  std::unique_ptr<nn::BatchWorkspace> ws;
  std::vector<index_t> batches;        // flat [jobs x batch_size] indices
  std::vector<nn::BatchClientRef> refs;
};

/// Run one local-SGD block for every job (all sharing `config`).
///
/// batched=false — the 0-ULP oracle: one device task per job on the
/// cluster scheduler (sim::ClusterSim::run_devices).
///
/// batched=true — all jobs advance in lockstep: per step, every job's
/// mini-batch is drawn from its own gen (same per-stream draw order as
/// the oracle), one Model::loss_and_grad_batch call fuses the gradient
/// work across clients, and the SGD updates run as one device region.
/// Results are bit-identical to the oracle, job by job.
void run_local_sgd_jobs(const nn::Model& model, const LocalSgdConfig& config,
                        std::span<const LocalSgdJob> jobs,
                        std::vector<ClientScratch>& scratch,
                        BatchEngineState& batch_state, bool batched,
                        const sim::ClusterSim& cluster);

}  // namespace hm::algo
