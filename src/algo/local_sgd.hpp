// Projected mini-batch local SGD (Eq. 4 of the paper) — the inner loop
// every algorithm shares — plus the checkpoint-capture hook HierMinimax
// and DRFA need.
#pragma once

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace hm::algo {

struct LocalSgdConfig {
  index_t steps = 1;            // tau_1
  index_t batch_size = 1;
  scalar_t eta = 0.01;          // eta_w
  scalar_t w_radius = 0;        // L2-ball projection radius; 0 = identity
  scalar_t weight_decay = 0;    // decoupled L2 decay per step (lambda)
  scalar_t prox_mu = 0;         // FedProx proximal strength: adds
                                // mu * (w - w_start) to every gradient,
                                // anchoring the client at the model it
                                // received for this run
  /// If in [1, steps], a copy of the iterate *after* that many steps is
  /// written to `checkpoint` (the w_n^{(k,c2,c1)} of Algorithm 1).
  index_t checkpoint_step = 0;
};

/// Per-thread reusable scratch for one simulated client.
struct ClientScratch {
  std::unique_ptr<nn::Workspace> ws;
  std::vector<scalar_t> grad;
  std::vector<scalar_t> prox_center;

  void ensure(const nn::Model& model) {
    if (!ws) ws = model.make_workspace();
    grad.resize(static_cast<std::size_t>(model.num_params()));
  }
};

/// Run config.steps projected SGD steps on `w` in place, sampling
/// mini-batches from `shard` with `gen`. If checkpoint capture is
/// requested, `checkpoint` must have num_params() length.
void run_local_sgd(const nn::Model& model, const data::Dataset& shard,
                   const LocalSgdConfig& config, nn::VecView w,
                   nn::VecView checkpoint, rng::Xoshiro256& gen,
                   ClientScratch& scratch);

}  // namespace hm::algo
