// Command-line configuration of the fault-injection layer, shared by the
// examples and benchmark harnesses so every binary speaks the same flags:
//
//   --dropout P          per-round client dropout probability
//   --straggler P        per-round straggler probability
//   --straggler-mult M   mean straggler delay multiplier (>= 1)
//   --edge-loss P        per-attempt edge-cloud message loss probability
//   --max-retries N      retry budget per message
//   --fault-seed S       seed of the fault plan's RNG streams
//   --on-fault POLICY    renormalize | stale | skip
//   --stale-decay D      kReuseStale decay per round of staleness
//   --attack KIND        none | sign-flip | scaled-noise | label-flip
//   --attack-frac P      per-round probability a client is Byzantine
//   --attack-scale S     attack magnitude (reflection / noise scale)
//   --churn P            per-window probability a client is absent
//   --churn-dwell N      rounds per churn window (membership dwell time)
//   --aggregate KIND     mean | median | trimmed (model-report combiner)
//   --trim-frac F        per-side trim fraction for --aggregate trimmed
//
// Any fault, attack, or churn flag present on the command line enables
// the plan. --aggregate / --trim-frac only select the combiner — they
// never enable fault injection on their own.
#pragma once

#include <string>

#include "algo/options.hpp"
#include "core/flags.hpp"

namespace hm::algo {

/// Parse a policy name ("renormalize", "stale", "skip"); throws
/// CheckError on anything else.
OnFault parse_on_fault(const std::string& name);

const char* to_string(OnFault policy);

/// Parse an attack name ("none", "sign-flip", "scaled-noise",
/// "label-flip"); throws CheckError on anything else.
sim::AttackKind parse_attack(const std::string& name);

const char* to_string(sim::AttackKind kind);

/// Parse an aggregation name ("mean", "median", "trimmed"); throws
/// CheckError on anything else.
Aggregate parse_aggregate(const std::string& name);

const char* to_string(Aggregate kind);

/// Build a FaultSpec from the flags above. The spec is enabled iff at
/// least one fault, attack, or churn flag was given (so binaries without
/// those flags keep the bit-identical fault-free path).
sim::FaultSpec fault_spec_from_flags(const Flags& flags);

/// Apply the fault, attack, churn, and aggregation flags to `opts`.
void apply_fault_flags(const Flags& flags, TrainOptions& opts);

}  // namespace hm::algo
