// Command-line configuration of the fault-injection layer, shared by the
// examples and benchmark harnesses so every binary speaks the same flags:
//
//   --dropout P          per-round client dropout probability
//   --straggler P        per-round straggler probability
//   --straggler-mult M   mean straggler delay multiplier (>= 1)
//   --edge-loss P        per-attempt edge-cloud message loss probability
//   --max-retries N      retry budget per message
//   --fault-seed S       seed of the fault plan's RNG streams
//   --on-fault POLICY    renormalize | stale | skip
//   --stale-decay D      kReuseStale decay per round of staleness
//
// Any fault flag present on the command line enables the plan.
#pragma once

#include <string>

#include "algo/options.hpp"
#include "core/flags.hpp"

namespace hm::algo {

/// Parse a policy name ("renormalize", "stale", "skip"); throws
/// CheckError on anything else.
OnFault parse_on_fault(const std::string& name);

const char* to_string(OnFault policy);

/// Build a FaultSpec from the flags above. The spec is enabled iff at
/// least one fault flag was given (so binaries without fault flags keep
/// the bit-identical fault-free path).
sim::FaultSpec fault_spec_from_flags(const Flags& flags);

/// Apply the fault flags (spec, policy, stale decay) to `opts`.
void apply_fault_flags(const Flags& flags, TrainOptions& opts);

}  // namespace hm::algo
