#include "algo/theory.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace hm::algo::theory {

Theorem1Bound theorem1_bound(const ProblemConstants& c, const AlgoConfig& a) {
  HM_CHECK(a.rounds > 0 && a.tau1 > 0 && a.tau2 > 0);
  HM_CHECK(a.eta_w > 0 && a.eta_p > 0);
  const auto t = static_cast<scalar_t>(a.total_iterations());
  const auto tau1 = static_cast<scalar_t>(a.tau1);
  const auto tau2 = static_cast<scalar_t>(a.tau2);
  const auto n_e = static_cast<scalar_t>(a.num_edges);
  const auto n0 = static_cast<scalar_t>(a.clients_per_edge);
  const auto m = static_cast<scalar_t>(a.sampled_clients());
  const auto m_e = static_cast<scalar_t>(a.sampled_edges);

  Theorem1Bound b;
  b.maximization_gap_p = c.radius_p * c.radius_p / (2 * a.eta_p * t) +
                         a.eta_p * tau1 * tau2 / 2 * c.grad_p * c.grad_p +
                         a.eta_p * tau1 * tau2 / (2 * m) * c.sigma_p *
                             c.sigma_p;
  b.minimization_gap_w = n_e * c.radius_w * c.radius_w / (2 * a.eta_w * t) +
                         a.eta_w * n_e / 2 * c.grad_w * c.grad_w +
                         a.eta_w / (2 * n0) * c.sigma_w * c.sigma_w;
  b.client_edge_term = 10 * c.smoothness * n_e * a.eta_w * a.eta_w * tau1 *
                       tau1 *
                       ((m + 1) / m * c.sigma_w * c.sigma_w +
                        c.dissimilarity);
  b.edge_cloud_term = 10 * c.smoothness * n_e * a.eta_w * a.eta_w * tau1 *
                      tau1 * tau2 * tau2 *
                      ((m_e + 1) / n0 * c.sigma_w * c.sigma_w +
                       c.dissimilarity);
  b.total = b.maximization_gap_p + b.minimization_gap_w +
            b.client_edge_term + b.edge_cloud_term;
  return b;
}

bool lemma1_step_size_ok(const ProblemConstants& c, const AlgoConfig& a) {
  const auto tau1 = static_cast<scalar_t>(a.tau1);
  const auto tau2 = static_cast<scalar_t>(a.tau2);
  return 1 - 20 * a.eta_w * a.eta_w * c.smoothness * c.smoothness * tau1 *
                 tau1 * (1 + tau2 * tau2) >=
         scalar_t{0.5};
}

scalar_t theorem2_bound(const ProblemConstants& c, const AlgoConfig& a) {
  HM_CHECK(a.rounds > 0 && a.tau1 > 0 && a.tau2 > 0);
  const auto t = static_cast<scalar_t>(a.total_iterations());
  const auto k = static_cast<scalar_t>(a.rounds);
  const auto tau12 = static_cast<scalar_t>(a.tau1 * a.tau2);
  const auto tau1 = static_cast<scalar_t>(a.tau1);
  const auto n_e = static_cast<scalar_t>(a.num_edges);
  const auto n0 = static_cast<scalar_t>(a.clients_per_edge);
  const auto m = static_cast<scalar_t>(a.sampled_clients());
  const auto m_e = static_cast<scalar_t>(a.sampled_edges);
  const scalar_t l = c.smoothness;

  // Phi_{1/2L}(w^0) is unknown in general; we use the (loose but
  // scale-correct) surrogate L * R_W^2, the largest the envelope can be
  // on a domain of diameter R_W.
  const scalar_t phi0 = l * c.radius_w * c.radius_w;
  const scalar_t gw2 = c.grad_w * c.grad_w;

  scalar_t bound = 4 * phi0 / (a.eta_w * n_e * t);
  bound += 16 * l * std::sqrt(k) * a.eta_w * tau12 * c.grad_w *
           std::sqrt(gw2 + c.sigma_w * c.sigma_w);
  bound += 4 * l * c.radius_p * c.radius_p / (std::sqrt(k) * a.eta_p * tau12);
  bound += 8 * a.eta_p * tau12 * l *
           (c.grad_p * c.grad_p + c.sigma_p * c.sigma_p / m);
  bound += 4 * a.eta_w / n_e * (gw2 + c.sigma_w * c.sigma_w / m);
  bound += 8 * a.eta_w * tau1 * c.radius_w * l * l / n_e *
           ((m + 1) / m * c.sigma_w + std::sqrt(c.dissimilarity));
  bound += 8 * a.eta_w * tau12 * c.radius_w * l * l / n_e *
           ((m_e + 1) / n0 * c.sigma_w + std::sqrt(c.dissimilarity));
  return bound;
}

bool lemma2_step_size_ok(const ProblemConstants& c, const AlgoConfig& a) {
  const auto tau1 = static_cast<scalar_t>(a.tau1);
  const auto tau2 = static_cast<scalar_t>(a.tau2);
  return 1 - 2 * a.eta_w * c.smoothness * tau1 * (1 + tau2) >= scalar_t{0.5};
}

TradeoffPoint tradeoff(scalar_t alpha) {
  HM_CHECK_MSG(0 <= alpha && alpha < 1, "alpha must be in [0,1)");
  TradeoffPoint p;
  p.alpha = alpha;
  p.comm_exponent = 1 - alpha;
  p.rate_exponent_convex = (1 - alpha) / 2;
  p.rate_exponent_nonconvex = (1 - alpha) / 4;
  p.eta_p_exponent_convex = (1 + alpha) / 2;
  // Section 5.1 states eta_w ~ T^{-(1-2alpha)} for alpha in (0, 1/4) and
  // T^{-1/2} for alpha in [1/4, 1). That schedule does NOT control the
  // edge-cloud aggregation term of Theorem 1 for alpha > 1/3 (the term
  // scales as eta_w^2 * (tau1 tau2)^2 = T^{2 alpha - 1}, which grows), so
  // it appears to be a typo. We use eta_w ~ T^{-(1+alpha)/2}, under which
  // every Theorem 1 term is O(T^{-(1-alpha)/2}) — the claimed rate:
  //   R^2/(eta_w T)            = T^{(alpha-1)/2}
  //   eta_w                    = T^{-(1+alpha)/2}  (faster)
  //   eta_w^2 (tau1 tau2)^2    = T^{alpha-1}        (faster)
  // See EXPERIMENTS.md "Deviations".
  p.eta_w_exponent_convex = (1 + alpha) / 2;
  p.eta_p_exponent_nonconvex = (1 + 3 * alpha) / 4;
  p.eta_w_exponent_nonconvex = (3 + alpha) / 4;
  return p;
}

Schedule convex_schedule(index_t total_iterations, scalar_t alpha,
                         scalar_t eta_scale) {
  HM_CHECK(total_iterations > 0);
  const TradeoffPoint p = tradeoff(alpha);
  const auto t = static_cast<scalar_t>(total_iterations);
  Schedule s;
  s.tau_product = std::max<index_t>(
      1, static_cast<index_t>(std::llround(std::pow(t, alpha))));
  s.eta_w = eta_scale * std::pow(t, -p.eta_w_exponent_convex);
  s.eta_p = eta_scale * std::pow(t, -p.eta_p_exponent_convex);
  return s;
}

Schedule nonconvex_schedule(index_t total_iterations, scalar_t alpha,
                            scalar_t eta_scale) {
  HM_CHECK(total_iterations > 0);
  const TradeoffPoint p = tradeoff(alpha);
  const auto t = static_cast<scalar_t>(total_iterations);
  Schedule s;
  s.tau_product = std::max<index_t>(
      1, static_cast<index_t>(std::llround(std::pow(t, alpha))));
  s.eta_w = eta_scale * std::pow(t, -p.eta_w_exponent_nonconvex);
  s.eta_p = eta_scale * std::pow(t, -p.eta_p_exponent_nonconvex);
  return s;
}

}  // namespace hm::algo::theory
