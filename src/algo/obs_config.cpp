#include "algo/obs_config.hpp"

#include "core/check.hpp"
#include "core/log.hpp"
#include "io/snapshot.hpp"
#include "net/transport.hpp"
#include "tensor/simd.hpp"

namespace hm::algo {

ObsOptions apply_obs_flags(const Flags& flags) {
  // Environment first, explicit flag on top.
  log::apply_env_threshold();
  if (flags.has("log-level")) {
    const std::string name = flags.get_string("log-level", "info");
    log::Level level = log::Level::kInfo;
    HM_CHECK_MSG(log::parse_level(name, level),
                 "unknown --log-level '"
                     << name << "' (expected debug | info | warn | error |"
                     << " off)");
    log::set_threshold(level);
  }

  ObsOptions opts;
  opts.metrics_out = flags.get_string("metrics-out", "");
  opts.trace_out = flags.get_string("trace-out", "");
  opts.trace_format = flags.get_string("trace-format", "chrome");
  HM_CHECK_MSG(opts.trace_format == "chrome" || opts.trace_format == "jsonl",
               "unknown --trace-format '" << opts.trace_format
                                          << "' (expected chrome | jsonl)");
  opts.trace_capacity = flags.get_int("trace-capacity", opts.trace_capacity);
  HM_CHECK_MSG(opts.trace_capacity > 0, "--trace-capacity must be positive");
  // --trace-out without --obs still means "trace this run".
  opts.trace = flags.get_bool("obs", !opts.trace_out.empty());
  if (opts.trace) {
    obs::set_trace_capacity(static_cast<std::size_t>(opts.trace_capacity));
    obs::set_trace_enabled(true);
  }
  return opts;
}

obs::Manifest build_run_manifest(const Flags& flags,
                                 const TrainOptions& opts) {
  obs::Manifest m = obs::make_base_manifest();
  m.set("seed", std::to_string(opts.seed));
  m.set("transport", net::to_string(opts.transport.kind));
  m.set("simd", tensor::simd_level_name(tensor::active_simd_level()));
  for (const std::string& name : flags.names()) {
    m.set("flag." + name, flags.get_string(name, ""));
  }
  return m;
}

void finish_obs_run(const ObsOptions& opts, const obs::Manifest& manifest) {
  const std::string manifest_json = manifest.render_json();
  if (!opts.metrics_out.empty()) {
    const std::string doc =
        obs::render_metrics_json(obs::registry().snapshot(), manifest_json);
    io::atomic_write_file(opts.metrics_out,
                          reinterpret_cast<const std::uint8_t*>(doc.data()),
                          doc.size());
    log::info() << "obs: wrote metrics snapshot to " << opts.metrics_out;
  }
  if (!opts.trace_out.empty()) {
    const std::string doc = opts.trace_format == "jsonl"
                                ? obs::render_trace_jsonl()
                                : obs::render_chrome_trace(manifest_json);
    io::atomic_write_file(opts.trace_out,
                          reinterpret_cast<const std::uint8_t*>(doc.data()),
                          doc.size());
    log::info() << "obs: wrote " << obs::trace_spans().size()
                << " spans to " << opts.trace_out << " ("
                << opts.trace_format << ")";
  }
  if (opts.trace) obs::set_trace_enabled(false);
}

}  // namespace hm::algo
