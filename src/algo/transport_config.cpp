#include "algo/transport_config.hpp"

#include "core/check.hpp"

namespace hm::algo {

net::KillPoint parse_kill_point(const std::string& name) {
  if (name == "pre") return net::KillPoint::kPreHandle;
  if (name == "torn") return net::KillPoint::kTornReply;
  if (name == "post") return net::KillPoint::kPostReply;
  HM_CHECK_MSG(false, "unknown --kill-point '"
                          << name << "' (expected pre | torn | post)");
}

const char* to_string(net::KillPoint point) {
  switch (point) {
    case net::KillPoint::kNone:
      return "none";
    case net::KillPoint::kPreHandle:
      return "pre";
    case net::KillPoint::kTornReply:
      return "torn";
    case net::KillPoint::kPostReply:
      return "post";
  }
  return "?";
}

void apply_transport_flags(const Flags& flags, TrainOptions& opts) {
  net::TransportSpec& t = opts.transport;
  const std::string kind = flags.get_string("transport", "inproc");
  HM_CHECK_MSG(net::parse_transport_kind(kind, t.kind),
               "unknown --transport '"
                   << kind << "' (expected inproc | loopback | socket)");
  t.workers = flags.get_int("workers", t.workers);
  t.rpc_timeout_ms = flags.get_int("rpc-timeout-ms", t.rpc_timeout_ms);
  t.rpc_retries = flags.get_int("rpc-retries", t.rpc_retries);
  t.rpc_backoff_ms = flags.get_int("rpc-backoff-ms", t.rpc_backoff_ms);
  t.kill.worker = flags.get_int("kill-worker", -1);
  if (t.kill.worker >= 0) {
    const index_t round = flags.get_int("kill-round", 0);
    const index_t phase = flags.get_int("kill-phase", 1);
    HM_CHECK_MSG(phase == 1 || phase == 2,
                 "--kill-phase must be 1 or 2, got " << phase);
    t.kill.tag = 2 * static_cast<std::uint64_t>(round) +
                 static_cast<std::uint64_t>(phase - 1);
    t.kill.point =
        parse_kill_point(flags.get_string("kill-point", "pre"));
  }
}

}  // namespace hm::algo
