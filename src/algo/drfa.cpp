#include "algo/drfa.hpp"

#include "algo/local_sgd.hpp"
#include "sim/quantize.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

using detail::Participants;

/// Collapse a per-client weight vector to per-edge weights for reporting.
std::vector<scalar_t> edge_weights_from_clients(
    const std::vector<scalar_t>& q, index_t num_edges,
    index_t clients_per_edge) {
  std::vector<scalar_t> p(static_cast<std::size_t>(num_edges), 0);
  for (index_t n = 0; n < static_cast<index_t>(q.size()); ++n) {
    p[static_cast<std::size_t>(n / clients_per_edge)] +=
        q[static_cast<std::size_t>(n)];
  }
  return p;
}

}  // namespace

TrainResult train_drfa(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts, parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK(opts.rounds > 0 && opts.tau1 > 0 && opts.eta_p > 0);
  const index_t d = model.num_params();
  const index_t num_clients = fed.num_clients();
  const index_t m =
      opts.sampled_clients > 0 ? opts.sampled_clients : num_clients;
  HM_CHECK(m <= num_clients);
  // The client-level weight set mirrors opts.p_set scaled to N clients
  // only in the full-simplex case; capped sets are re-validated here.
  SimplexSet q_set = opts.p_set;
  HM_CHECK(q_set.feasible(num_clients));

  rng::Xoshiro256 root(opts.seed);
  const sim::FaultPlan plan(opts.fault);

  TrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.w_avg = result.w;
  detail::StaleStore stale;
  if (plan.enabled()) stale.init(num_clients);
  detail::PoisonStore poison;
  const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};

  std::vector<scalar_t> q = detail::uniform_weights(num_clients);
  std::vector<scalar_t> q_avg = q;

  std::vector<std::vector<scalar_t>> client_w(
      static_cast<std::size_t>(num_clients),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> client_ckpt = client_w;
  std::vector<ClientScratch> scratch(static_cast<std::size_t>(num_clients));
  // Loss estimation scores every sampled client at the one shared
  // checkpoint; a single workspace + one loss_many call lets the model
  // fuse the whole sweep into stacked evaluation blocks.
  const std::unique_ptr<nn::Workspace> loss_ws = model.make_workspace();
  const sim::ClusterSim cluster(pool);
  BatchEngineState bstate;
  std::vector<scalar_t> checkpoint(static_cast<std::size_t>(d));

  detail::RunState rs;
  rs.algo_id = detail::kAlgoDrfa;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.w_avg = &result.w_avg;
  rs.aux = &q;
  rs.aux_avg = &q_avg;
  rs.comm = &result.comm;
  rs.stale = &stale;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, result.comm, result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("drfa.round", "algo", k, 0);
    HM_OBS_INC("algo.drfa.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);

    // --- Phase 1: sample m clients ~ q (with replacement), local SGD
    // with checkpoint index c in [tau1].
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const Participants parts = Participants::from_draws(
        rng::sample_weighted_with_replacement(q, m, sample_gen));
    rng::Xoshiro256 ckpt_gen = round_gen.split(detail::kTagCheckpoint);
    const index_t c = 1 + static_cast<index_t>(ckpt_gen.uniform_index(
                              static_cast<std::uint64_t>(opts.tau1)));
    const auto participating = static_cast<std::uint64_t>(parts.ids.size());
    result.comm.edge_cloud_models_down += participating;

    LocalSgdConfig cfg;
    cfg.steps = opts.tau1;
    cfg.batch_size = opts.batch_size;
    cfg.eta = opts.eta_w;
    cfg.w_radius = opts.w_radius;
    cfg.weight_decay = opts.weight_decay;
    cfg.prox_mu = opts.prox_mu;
    cfg.checkpoint_step = c;
    std::vector<LocalSgdJob> jobs;
    std::vector<rng::Xoshiro256> gens;
    jobs.reserve(parts.ids.size());
    gens.reserve(parts.ids.size());
    for (const index_t n : parts.ids) {
      auto& w_local = client_w[static_cast<std::size_t>(n)];
      tensor::copy(result.w, w_local);
      gens.push_back(round_gen.split(detail::kTagLocal)
                         .split(static_cast<std::uint64_t>(n)));
      const data::Dataset* shard = &fed.client_shard_at(k, n);
      if (plan.client_poisoned(k, n)) shard = &poison.get(*shard, n);
      jobs.push_back({shard, w_local,
                      nn::VecView(client_ckpt[static_cast<std::size_t>(n)]),
                      &gens.back(), n});
    }
    run_local_sgd_jobs(model, cfg, jobs, scratch, bstate, opts.batched,
                       cluster);
    if (opts.quantize_bits > 0) {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        const index_t n = parts.ids[j];
        rng::Xoshiro256 qgen = gens[j].split(detail::kTagQuant);
        sim::quantize_payload(client_w[static_cast<std::size_t>(n)],
                              opts.quantize_bits, qgen);
        sim::quantize_payload(client_ckpt[static_cast<std::size_t>(n)],
                              opts.quantize_bits, qgen);
      }
    }
    if (plan.payload_attack()) {
      // Only the model report is corrupted; the checkpoint upload is the
      // variance-reduction scaffolding for Phase 2 and stays honest (see
      // DESIGN.md §13 for the threat-model boundary).
      for (const index_t n : parts.ids) {
        if (!plan.client_attacker(k, n)) continue;
        plan.corrupt_payload(k, n, result.w.data(),
                             client_w[static_cast<std::size_t>(n)].data(), d);
      }
    }

    bool aggregated = true;
    if (!plan.enabled()) {
      detail::robust_weighted_average(client_w, parts, agg, result.w);
      detail::weighted_average(client_ckpt, parts, checkpoint);
      tensor::project_l2_ball(result.w, opts.w_radius);
    } else {
      std::vector<char> delivered(parts.ids.size(), 0);
      for (std::size_t j = 0; j < parts.ids.size(); ++j) {
        const index_t n = parts.ids[j];
        if (plan.client_offline(k, n)) continue;
        if (plan.client_dropped(k, n)) {
          result.comm.edge_cloud_fault.note_lost_report();
          continue;
        }
        if (!plan.deliver(k, sim::fault_msg(sim::kMsgModelUp, n),
                          result.comm.edge_cloud_fault)) {
          continue;
        }
        result.comm.edge_cloud_fault.note_straggle(plan.straggler_mult(k, n));
        delivered[j] = 1;
      }
      aggregated = detail::degraded_weighted_average(
          client_w, parts, delivered, opts.on_fault, opts.stale_decay, k,
          stale, result.w, result.w, agg);
      if (aggregated) {
        // Checkpoint: only delivered reports carry one; renormalize over
        // the survivors. With no surviving checkpoint (possible under
        // kReuseStale), estimate Phase-2 losses on the aggregate instead.
        Participants surv;
        for (std::size_t j = 0; j < parts.ids.size(); ++j) {
          if (!delivered[j]) continue;
          surv.ids.push_back(parts.ids[j]);
          surv.multiplicity.push_back(parts.multiplicity[j]);
          surv.total += parts.multiplicity[j];
        }
        if (surv.ids.empty()) {
          tensor::copy(result.w, checkpoint);
        } else {
          detail::weighted_average(client_ckpt, surv, checkpoint);
        }
        tensor::project_l2_ball(result.w, opts.w_radius);
      }
    }
    result.comm.edge_cloud_rounds += 1;
    result.comm.edge_cloud_models_up += 2 * participating;  // model + ckpt
    result.comm.edge_cloud_bytes +=
        participating * (sim::payload_bytes(d, 0) +
                         2 * sim::payload_bytes(d, opts.quantize_bits));

    // --- Phase 2: uniform client sample, loss estimation at checkpoint.
    // A skipped Phase 1 (kSkipRound with casualties, or no survivors at
    // all) also skips the q ascent: there is no fresh checkpoint to
    // estimate losses at, so the round leaves (w, q) untouched.
    if (aggregated) {
      rng::Xoshiro256 uniform_gen = round_gen.split(detail::kTagSampleUniform);
      const auto loss_clients =
          rng::sample_without_replacement(num_clients, m, uniform_gen);
      result.comm.edge_cloud_models_down +=
          static_cast<std::uint64_t>(loss_clients.size());
      // Loss reports ride the same faulty wide-area link as models; only
      // delivered reports enter the ascent, and the importance weight is
      // renormalized to the delivered count.
      std::vector<char> loss_ok(loss_clients.size(), 1);
      std::uint64_t num_loss_ok = static_cast<std::uint64_t>(loss_clients.size());
      if (plan.enabled()) {
        for (std::size_t j = 0; j < loss_clients.size(); ++j) {
          const index_t n = loss_clients[j];
          if (plan.client_offline(k, n)) {
            loss_ok[j] = 0;
          } else if (plan.client_dropped(k, n)) {
            result.comm.edge_cloud_fault.note_lost_report();
            loss_ok[j] = 0;
          } else if (!plan.deliver(k, sim::fault_msg(sim::kMsgLossUp, n),
                                   result.comm.edge_cloud_fault)) {
            loss_ok[j] = 0;
          } else {
            result.comm.edge_cloud_fault.note_straggle(
                plan.straggler_mult(k, n));
          }
          if (!loss_ok[j]) num_loss_ok -= 1;
        }
      }
      std::vector<scalar_t> losses(loss_clients.size(), 0);
      // Draw every surviving client's estimation batch (per-client RNG
      // streams, independent of evaluation order), then score them all in
      // one fused loss_many sweep at the shared checkpoint.
      std::vector<std::vector<index_t>> batches(loss_clients.size());
      std::vector<nn::LossJob> jobs;
      std::vector<std::size_t> job_slot;
      jobs.reserve(loss_clients.size());
      job_slot.reserve(loss_clients.size());
      for (std::size_t j = 0; j < loss_clients.size(); ++j) {
        if (!loss_ok[j]) continue;
        const index_t n = loss_clients[j];
        // Drift-aware: Phase 2 estimates losses on the shard the client
        // holds *now*, so q tracks the current worst clients. Loss
        // reports are honest even for label-flip attackers — the attack
        // corrupts training, not measurement.
        const data::Dataset& shard = fed.client_shard_at(k, n);
        rng::Xoshiro256 gen = round_gen.split(detail::kTagLoss)
                                  .split(static_cast<std::uint64_t>(n));
        auto& batch = batches[j];
        if (opts.loss_est_batch > 0) {
          batch.resize(static_cast<std::size_t>(opts.loss_est_batch));
          for (auto& idx : batch) {
            idx = static_cast<index_t>(gen.uniform_index(
                static_cast<std::uint64_t>(shard.size())));
          }
        } else {
          batch = nn::all_indices(shard.size());
        }
        jobs.push_back(nn::LossJob{checkpoint, &shard, batch});
        job_slot.push_back(j);
      }
      std::vector<scalar_t> job_losses(jobs.size());
      model.loss_many(jobs, job_losses, *loss_ws);
      for (std::size_t q = 0; q < jobs.size(); ++q) {
        losses[job_slot[q]] = job_losses[q];
      }
      result.comm.edge_cloud_scalars +=
          static_cast<std::uint64_t>(loss_clients.size());
      result.comm.edge_cloud_rounds += 1;
      result.comm.edge_cloud_bytes +=
          static_cast<std::uint64_t>(loss_clients.size()) *
          (sim::payload_bytes(d, 0) + 8);

      if (num_loss_ok > 0) {
        const scalar_t scale_v = static_cast<scalar_t>(num_clients) /
                                 static_cast<scalar_t>(num_loss_ok);
        const scalar_t step = opts.eta_p * static_cast<scalar_t>(opts.tau1);
        for (std::size_t j = 0; j < loss_clients.size(); ++j) {
          if (!loss_ok[j]) continue;
          q[static_cast<std::size_t>(loss_clients[j])] +=
              step * scale_v * losses[j];
        }
        project_capped_simplex(q, q_set);
      }
    }

    detail::update_running_average(result.w_avg, result.w, k);
    detail::update_running_average(q_avg, q, k);
    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, result.comm,
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }

  result.p =
      edge_weights_from_clients(q, fed.num_edges(), fed.clients_per_edge);
  result.p_avg = edge_weights_from_clients(q_avg, fed.num_edges(),
                                           fed.clients_per_edge);
  return result;
}

TrainResult train_drfa(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts) {
  return train_drfa(model, fed, opts, parallel::ThreadPool::global());
}

TrainResult train_stochastic_afl(const nn::Model& model,
                                 const data::FederatedDataset& fed,
                                 const TrainOptions& opts,
                                 parallel::ThreadPool& pool) {
  TrainOptions afl_opts = opts;
  afl_opts.tau1 = 1;  // single-step local update per round
  afl_opts.tau2 = 1;
  return train_drfa(model, fed, afl_opts, pool);
}

TrainResult train_stochastic_afl(const nn::Model& model,
                                 const data::FederatedDataset& fed,
                                 const TrainOptions& opts) {
  return train_stochastic_afl(model, fed, opts,
                              parallel::ThreadPool::global());
}

}  // namespace hm::algo
