// Duality-gap estimation for convex losses (Eq. 8 of the paper):
//   gap(w, p) = max_{p' in P} F(w, p') - min_{w' in W} F(w', p).
// The max term is exact (linear objective over the capped simplex); the
// min term is approximated by full-gradient projected descent on the
// p-weighted objective, warm-started at w.
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"

namespace hm::algo {

struct DualityGapOptions {
  index_t minimize_iters = 200;  // descent iterations for the min term
  scalar_t eta = 0.05;           // descent step size
  scalar_t w_radius = 0;         // W constraint (must match training)
  SimplexSet p_set;              // P constraint (must match training)
};

struct DualityGapEstimate {
  scalar_t gap = 0;        // primal_value - dual_value (>= 0 up to noise)
  scalar_t primal = 0;     // max_{p' in P} F(w, p')
  scalar_t dual = 0;       // approx min_{w' in W} F(w', p)
};

/// Estimate the duality gap of (w, p). Requires model.is_convex() so the
/// inner minimization is globally solvable by descent.
DualityGapEstimate estimate_duality_gap(const nn::Model& model,
                                        const data::FederatedDataset& fed,
                                        nn::ConstVecView w,
                                        const std::vector<scalar_t>& p,
                                        const DualityGapOptions& opts,
                                        parallel::ThreadPool& pool);

}  // namespace hm::algo
