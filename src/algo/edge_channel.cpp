#include "algo/edge_channel.hpp"

#include <optional>
#include <utility>

#include "algo/edge_program.hpp"
#include "core/check.hpp"
#include "io/snapshot.hpp"
#include "net/transport.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo::detail {

namespace {

// ——— Wire schema ———
//
// Round state rides the transport as an io::Snapshot container (the
// PR 4 tagged-section format) inside one CRC-checked frame per
// request/reply. Section tags are little-endian FourCC constants;
// kWireKind discriminates the four message shapes.
inline constexpr std::uint32_t kWireKind = 0x444e494b;     // "KIND"
inline constexpr std::uint32_t kWireRound = 0x4b444e52;    // "RNDK"
inline constexpr std::uint32_t kWireC1 = 0x5f5f3143;       // "C1__"
inline constexpr std::uint32_t kWireC2 = 0x5f5f3243;       // "C2__"
inline constexpr std::uint32_t kWireEdges = 0x53474445;    // "EDGS"
inline constexpr std::uint32_t kWireW = 0x43455657;        // "WVEC"
inline constexpr std::uint32_t kWireEdgeW = 0x534c5745;    // "EWLS"
inline constexpr std::uint32_t kWireCkpt = 0x534c4b43;     // "CKLS"
inline constexpr std::uint32_t kWireHasCkpt = 0x564b4348;  // "HCKV"
inline constexpr std::uint32_t kWireOk = 0x43564b4f;       // "OKVC"
inline constexpr std::uint32_t kWireLoss = 0x53534f4c;     // "LOSS"

inline constexpr std::uint64_t kKindPhase1Req = 1;
inline constexpr std::uint64_t kKindPhase1Rep = 2;
inline constexpr std::uint64_t kKindPhase2Req = 3;
inline constexpr std::uint64_t kKindPhase2Rep = 4;

std::vector<std::int64_t> to_i64(const std::vector<index_t>& v) {
  return std::vector<std::int64_t>(v.begin(), v.end());
}

std::vector<index_t> to_index(const std::vector<std::int64_t>& v) {
  return std::vector<index_t>(v.begin(), v.end());
}

/// Build one lane's request handler: a process-local EdgeProgram plus
/// full-size edge buffers, dispatching on the wire kind. `pool` is the
/// pool to run on; when null (a forked socket worker) the handler owns a
/// fresh pool — the coordinator's pool threads do not survive fork().
net::Handler make_worker_handler(const nn::Model& model,
                                 const data::FederatedDataset& fed,
                                 const sim::HierTopology& topo,
                                 const TrainOptions& opts,
                                 parallel::ThreadPool* pool) {
  struct Worker {
    TrainOptions opts;  // stable copy EdgeProgram references
    std::unique_ptr<parallel::ThreadPool> owned_pool;
    std::unique_ptr<EdgeProgram> program;
    std::vector<std::vector<scalar_t>> edge_w;
    std::vector<std::vector<scalar_t>> edge_ckpt;
    std::vector<char> edge_has_ckpt;
  };
  auto wk = std::make_shared<Worker>();
  wk->opts = opts;
  if (pool == nullptr) {
    wk->owned_pool = std::make_unique<parallel::ThreadPool>();
    pool = wk->owned_pool.get();
  }
  wk->program =
      std::make_unique<EdgeProgram>(model, fed, topo, wk->opts, *pool);
  const auto num_edges = static_cast<std::size_t>(topo.num_edges());
  wk->edge_w.resize(num_edges);
  wk->edge_ckpt.resize(num_edges);
  wk->edge_has_ckpt.assign(num_edges, 1);
  const index_t n0 = topo.clients_per_edge();
  return [wk, n0](std::uint64_t, const net::Bytes& request) -> net::Bytes {
    const io::Snapshot req = io::Snapshot::parse(request.data(),
                                                 request.size());
    const std::uint64_t kind = req.get_u64(kWireKind);
    const auto k = static_cast<index_t>(req.get_u64(kWireRound));
    const std::vector<index_t> edges = to_index(req.get_i64_vec(kWireEdges));
    io::Snapshot rep;
    if (kind == kKindPhase1Req) {
      const auto c1 = static_cast<index_t>(req.get_u64(kWireC1));
      const auto c2 = static_cast<index_t>(req.get_u64(kWireC2));
      const std::vector<scalar_t> w = req.get_f64_vec(kWireW);
      wk->program->phase1(k, c1, c2, edges, w, wk->edge_w, wk->edge_ckpt,
                          wk->edge_has_ckpt);
      std::vector<std::vector<scalar_t>> ew;
      std::vector<std::vector<scalar_t>> ck;
      std::vector<std::int64_t> has;
      ew.reserve(edges.size());
      ck.reserve(edges.size());
      has.reserve(edges.size());
      for (const index_t e : edges) {
        const auto s = static_cast<std::size_t>(e);
        ew.push_back(wk->edge_w[s]);
        const bool h = wk->edge_has_ckpt[s] != 0;
        has.push_back(h ? 1 : 0);
        // An edge with no fresh checkpoint ships an empty slot — its
        // stale local buffer must not overwrite the coordinator mirror.
        ck.push_back(h ? wk->edge_ckpt[s] : std::vector<scalar_t>{});
      }
      rep.put_u64(kWireKind, kKindPhase1Rep);
      rep.put_f64_vec_list(kWireEdgeW, ew);
      rep.put_f64_vec_list(kWireCkpt, ck);
      rep.put_i64_vec(kWireHasCkpt, has);
    } else {
      HM_CHECK_MSG(kind == kKindPhase2Req,
                   "unknown wire message kind " << kind);
      const std::vector<scalar_t> checkpoint = req.get_f64_vec(kWireW);
      const std::vector<std::int64_t> ok_raw = req.get_i64_vec(kWireOk);
      const std::vector<char> client_ok(ok_raw.begin(), ok_raw.end());
      std::vector<scalar_t> losses(
          edges.size() * static_cast<std::size_t>(n0), 0);
      wk->program->phase2(k, edges, checkpoint, client_ok, losses);
      rep.put_u64(kWireKind, kKindPhase2Rep);
      rep.put_f64_vec(kWireLoss, losses);
    }
    return rep.serialize();
  };
}

// ——— In-process channel (the oracle) ———

class InprocEdgeChannel final : public EdgeChannel {
 public:
  InprocEdgeChannel(const nn::Model& model, const data::FederatedDataset& fed,
                    const sim::HierTopology& topo, const TrainOptions& opts,
                    parallel::ThreadPool& pool)
      : program_(model, fed, topo, opts, pool) {}

  bool can_fail() const override { return false; }

  void phase1(index_t k, index_t c1, index_t c2,
              const std::vector<index_t>& edges,
              const std::vector<scalar_t>& w,
              std::vector<std::vector<scalar_t>>& edge_w,
              std::vector<std::vector<scalar_t>>& edge_ckpt,
              std::vector<char>& edge_has_ckpt,
              sim::EdgeLiveness&) override {
    program_.phase1(k, c1, c2, edges, w, edge_w, edge_ckpt, edge_has_ckpt);
  }

  void phase2(index_t k, const std::vector<index_t>& edges,
              const std::vector<scalar_t>& checkpoint,
              const std::vector<char>& client_ok,
              std::vector<scalar_t>& client_losses,
              sim::EdgeLiveness&) override {
    program_.phase2(k, edges, checkpoint, client_ok, client_losses);
  }

 private:
  EdgeProgram program_;
};

// ——— Transport-backed channel (loopback or socket workers) ———

class RpcEdgeChannel final : public EdgeChannel {
 public:
  RpcEdgeChannel(const nn::Model& model, const data::FederatedDataset& fed,
                 const sim::HierTopology& topo, const TrainOptions& opts,
                 parallel::ThreadPool& pool)
      : topo_(topo), d_(model.num_params()) {
    const index_t num_edges = topo.num_edges();
    index_t lanes = opts.transport.workers > 0
                        ? opts.transport.workers
                        : (num_edges + 3) / 4;  // default: 4 edges per lane
    if (lanes < 1) lanes = 1;
    if (lanes > num_edges) lanes = num_edges;
    if (opts.transport.kind == net::TransportKind::kSocket) {
      transport_ = net::make_socket_transport(
          opts.transport, lanes, [&](index_t) {
            // Runs inside the freshly forked child: build a worker with
            // its own thread pool (null pool argument).
            return make_worker_handler(model, fed, topo, opts, nullptr);
          });
    } else {
      transport_ = net::make_loopback_transport(lanes, [&](index_t) {
        return make_worker_handler(model, fed, topo, opts, &pool);
      });
    }
  }

  bool can_fail() const override { return transport_->fallible(); }

  void phase1(index_t k, index_t c1, index_t c2,
              const std::vector<index_t>& edges,
              const std::vector<scalar_t>& w,
              std::vector<std::vector<scalar_t>>& edge_w,
              std::vector<std::vector<scalar_t>>& edge_ckpt,
              std::vector<char>& edge_has_ckpt,
              sim::EdgeLiveness& live) override {
    // Per-round heartbeat: a worker that died since the last round
    // (e.g. right after sending its final reply) is detected here, so
    // its edges enter this round's fault handling from the start.
    transport_->check_liveness();
    // Seed the coordinator mirror: a dead lane's edges keep the
    // broadcast model, exactly like a planned edge crash freezes the
    // seeded model in the in-proc path.
    for (const index_t e : edges) {
      auto& v = edge_w[static_cast<std::size_t>(e)];
      if (v.empty()) v.assign(static_cast<std::size_t>(d_), 0);
      tensor::copy(w, v);
    }
    const std::vector<std::vector<index_t>> lane_edges = by_lane(edges);
    const index_t lanes = transport_->lanes();
    std::vector<std::optional<net::RpcRequest>> requests(
        static_cast<std::size_t>(lanes));
    for (index_t lane = 0; lane < lanes; ++lane) {
      const auto& mine = lane_edges[static_cast<std::size_t>(lane)];
      if (mine.empty()) continue;
      if (!transport_->lane_up(lane)) {
        lane_down(lane, mine, live, &edge_has_ckpt);
        continue;
      }
      io::Snapshot req;
      req.put_u64(kWireKind, kKindPhase1Req);
      req.put_u64(kWireRound, static_cast<std::uint64_t>(k));
      req.put_u64(kWireC1, static_cast<std::uint64_t>(c1));
      req.put_u64(kWireC2, static_cast<std::uint64_t>(c2));
      req.put_i64_vec(kWireEdges, to_i64(mine));
      req.put_f64_vec(kWireW, w);
      requests[static_cast<std::size_t>(lane)] =
          net::RpcRequest{phase1_tag(k), req.serialize()};
    }
    const auto replies = transport_->exchange(requests);
    for (index_t lane = 0; lane < lanes; ++lane) {
      const auto s = static_cast<std::size_t>(lane);
      if (!requests[s].has_value()) continue;
      const auto& mine = lane_edges[s];
      if (!replies[s].has_value()) {
        lane_down(lane, mine, live, &edge_has_ckpt);
        continue;
      }
      const io::Snapshot rep =
          io::Snapshot::parse(replies[s]->data(), replies[s]->size());
      HM_CHECK(rep.get_u64(kWireKind) == kKindPhase1Rep);
      const auto ew = rep.get_f64_vec_list(kWireEdgeW);
      const auto ck = rep.get_f64_vec_list(kWireCkpt);
      const auto has = rep.get_i64_vec(kWireHasCkpt);
      HM_CHECK(ew.size() == mine.size() && ck.size() == mine.size() &&
               has.size() == mine.size());
      for (std::size_t j = 0; j < mine.size(); ++j) {
        const auto e = static_cast<std::size_t>(mine[j]);
        edge_w[e] = ew[j];
        edge_has_ckpt[e] = has[j] != 0 ? 1 : 0;
        if (has[j] != 0) edge_ckpt[e] = ck[j];
      }
    }
  }

  void phase2(index_t k, const std::vector<index_t>& edges,
              const std::vector<scalar_t>& checkpoint,
              const std::vector<char>& client_ok,
              std::vector<scalar_t>& client_losses,
              sim::EdgeLiveness& live) override {
    const index_t n0 = topo_.clients_per_edge();
    const index_t lanes = transport_->lanes();
    // Group the loss edges by lane, remembering each edge's position in
    // `edges` so the ok/loss slots stay aligned.
    std::vector<std::vector<index_t>> lane_edges(
        static_cast<std::size_t>(lanes));
    std::vector<std::vector<std::size_t>> lane_pos(
        static_cast<std::size_t>(lanes));
    for (std::size_t j = 0; j < edges.size(); ++j) {
      const auto lane = static_cast<std::size_t>(lane_of(edges[j]));
      lane_edges[lane].push_back(edges[j]);
      lane_pos[lane].push_back(j);
    }
    std::vector<std::optional<net::RpcRequest>> requests(
        static_cast<std::size_t>(lanes));
    for (index_t lane = 0; lane < lanes; ++lane) {
      const auto s = static_cast<std::size_t>(lane);
      if (lane_edges[s].empty()) continue;
      if (!transport_->lane_up(lane)) {
        lane_down(lane, lane_edges[s], live, nullptr);
        continue;
      }
      std::vector<std::int64_t> ok;
      ok.reserve(lane_edges[s].size() * static_cast<std::size_t>(n0));
      for (const std::size_t j : lane_pos[s]) {
        for (index_t i = 0; i < n0; ++i) {
          ok.push_back(client_ok[j * static_cast<std::size_t>(n0) +
                                 static_cast<std::size_t>(i)]);
        }
      }
      io::Snapshot req;
      req.put_u64(kWireKind, kKindPhase2Req);
      req.put_u64(kWireRound, static_cast<std::uint64_t>(k));
      req.put_i64_vec(kWireEdges, to_i64(lane_edges[s]));
      req.put_f64_vec(kWireW, checkpoint);
      req.put_i64_vec(kWireOk, ok);
      requests[s] = net::RpcRequest{phase2_tag(k), req.serialize()};
    }
    const auto replies = transport_->exchange(requests);
    for (index_t lane = 0; lane < lanes; ++lane) {
      const auto s = static_cast<std::size_t>(lane);
      if (!requests[s].has_value()) continue;
      if (!replies[s].has_value()) {
        lane_down(lane, lane_edges[s], live, nullptr);
        continue;
      }
      const io::Snapshot rep =
          io::Snapshot::parse(replies[s]->data(), replies[s]->size());
      HM_CHECK(rep.get_u64(kWireKind) == kKindPhase2Rep);
      const std::vector<scalar_t> losses = rep.get_f64_vec(kWireLoss);
      HM_CHECK(losses.size() ==
               lane_edges[s].size() * static_cast<std::size_t>(n0));
      for (std::size_t q = 0; q < lane_pos[s].size(); ++q) {
        const std::size_t j = lane_pos[s][q];
        for (index_t i = 0; i < n0; ++i) {
          client_losses[j * static_cast<std::size_t>(n0) +
                        static_cast<std::size_t>(i)] =
              losses[q * static_cast<std::size_t>(n0) +
                     static_cast<std::size_t>(i)];
        }
      }
    }
  }

 private:
  index_t lane_of(index_t e) const { return e % transport_->lanes(); }

  std::vector<std::vector<index_t>> by_lane(
      const std::vector<index_t>& edges) const {
    std::vector<std::vector<index_t>> out(
        static_cast<std::size_t>(transport_->lanes()));
    for (const index_t e : edges) {
      out[static_cast<std::size_t>(lane_of(e))].push_back(e);
    }
    return out;
  }

  /// A lane is gone: every edge it serves (not just this round's
  /// participants — lane death is permanent and the mapping is static)
  /// goes into the liveness ledger, and the participating edges lose
  /// their checkpoint flag like a planned crash at block c2 would.
  void lane_down(index_t lane, const std::vector<index_t>& participating,
                 sim::EdgeLiveness& live, std::vector<char>* edge_has_ckpt) {
    for (index_t e = 0; e < topo_.num_edges(); ++e) {
      if (lane_of(e) == lane) live.mark_down(e);
    }
    if (edge_has_ckpt != nullptr) {
      for (const index_t e : participating) {
        (*edge_has_ckpt)[static_cast<std::size_t>(e)] = 0;
      }
    }
  }

  static std::uint64_t phase1_tag(index_t k) {
    return 2 * static_cast<std::uint64_t>(k);
  }
  static std::uint64_t phase2_tag(index_t k) {
    return 2 * static_cast<std::uint64_t>(k) + 1;
  }

  const sim::HierTopology& topo_;
  index_t d_;
  std::unique_ptr<net::Transport> transport_;
};

}  // namespace

std::unique_ptr<EdgeChannel> make_edge_channel(
    const nn::Model& model, const data::FederatedDataset& fed,
    const sim::HierTopology& topo, const TrainOptions& opts,
    parallel::ThreadPool& pool) {
  if (opts.transport.kind == net::TransportKind::kInproc) {
    return std::make_unique<InprocEdgeChannel>(model, fed, topo, opts, pool);
  }
  return std::make_unique<RpcEdgeChannel>(model, fed, topo, opts, pool);
}

}  // namespace hm::algo::detail
