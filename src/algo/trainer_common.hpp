// Internal helpers shared by the five trainers: deterministic stream
// tags, participant dedup, model averaging, running averages, and the
// evaluation/recording cadence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/hierminimax_multi.hpp"
#include "algo/options.hpp"
#include "data/federated.hpp"
#include "io/snapshot.hpp"
#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/sampling.hpp"

namespace hm::algo::detail {

// Stream-split tags (arbitrary distinct constants; ASCII mnemonics).
inline constexpr std::uint64_t kTagInit = 0x696e6974;      // "init"
inline constexpr std::uint64_t kTagSampleEdges = 0x73616d70;
inline constexpr std::uint64_t kTagSampleUniform = 0x756e6966;
inline constexpr std::uint64_t kTagCheckpoint = 0x636b7074;
inline constexpr std::uint64_t kTagLocal = 0x6c6f636c;
inline constexpr std::uint64_t kTagLoss = 0x6c6f7373;
inline constexpr std::uint64_t kTagQuant = 0x71756e74;

/// Distinct participant ids with multiplicities, preserving first-draw
/// order. With-replacement sampling can repeat an id; the repeated runs
/// would be bit-identical, so we execute once and weight the aggregate.
struct Participants {
  std::vector<index_t> ids;
  std::vector<index_t> multiplicity;
  index_t total = 0;  // sum of multiplicities == number of draws

  static Participants from_draws(const std::vector<index_t>& draws);
};

/// out = sum_i weights[i] * vectors[ids[i]] with weights normalized to 1.
void weighted_average(const std::vector<std::vector<scalar_t>>& vectors,
                      const Participants& parts,
                      std::vector<scalar_t>& out);

/// out = mean of vectors[id] over `ids`.
void uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                     const std::vector<index_t>& ids,
                     std::vector<scalar_t>& out);

/// The model-report combiner and its parameters, threaded through the
/// aggregation helpers. The default is the plain mean, which keeps every
/// pre-existing call site bit-identical.
struct AggregateSpec {
  Aggregate kind = Aggregate::kMean;
  scalar_t trim_frac = 0.2;  // kTrimmedMean only; in [0, 0.5)
};

/// Coordinate-wise robust combine of `srcs` with integer multiplicities
/// `mults` (sum == total). Inputs are ordered by (coordinate value,
/// source index) with a fixed sorted-order reduction, so the result is a
/// pure function of the multiset of inputs — deterministic at 0 ULP and
/// invariant under input permutation. kMean is rejected here (callers
/// dispatch it to the fused mean kernels). `out` may alias a source:
/// each coordinate is fully read before it is written.
void robust_combine(const std::vector<const std::vector<scalar_t>*>& srcs,
                    const std::vector<index_t>& mults, index_t total,
                    const AggregateSpec& agg, nn::VecView out);

/// weighted_average with a selectable combiner: kMean delegates to
/// weighted_average (bit-identical), the robust kinds treat each
/// participant's multiplicity as that many weight units.
void robust_weighted_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const Participants& parts, const AggregateSpec& agg,
    std::vector<scalar_t>& out);

/// uniform_average with a selectable combiner (multiplicity 1 each).
void robust_uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                            const std::vector<index_t>& ids,
                            const AggregateSpec& agg,
                            std::vector<scalar_t>& out);

/// Last delivered update per potential participant, for OnFault::
/// kReuseStale. `last_round[id] < 0` means the participant never
/// delivered; a casualty's staleness at round k is k - last_round[id].
struct StaleStore {
  std::vector<std::vector<scalar_t>> models;
  std::vector<index_t> last_round;
  // Scratch for the blended substitute vectors, sized on demand. Blends
  // are materialized before the accumulation touches `out`, so the
  // fallback vector may alias the output (trainers pass result.w as
  // both).
  std::vector<std::vector<scalar_t>> blend;

  void init(index_t n) {
    models.assign(static_cast<std::size_t>(n), {});
    last_round.assign(static_cast<std::size_t>(n), -1);
  }
  bool has(index_t id) const {
    return last_round[static_cast<std::size_t>(id)] >= 0;
  }
  void deliver(index_t id, const std::vector<scalar_t>& m, index_t round) {
    models[static_cast<std::size_t>(id)] = m;
    last_round[static_cast<std::size_t>(id)] = round;
  }
};

/// Weighted aggregation of `vectors[parts.ids[i]]` under failures.
/// `delivered[i]` (aligned with parts.ids) flags survivors. Policies:
///   kRenormalize — survivors only, multiplicities renormalized to the
///                  surviving total (stays on the simplex);
///   kReuseStale  — original weights; casualties contribute
///                  decay^age * stale + (1 - decay^age) * fallback, and
///                  survivors refresh `stale`;
///   kSkipRound   — any failure abandons the aggregation.
/// Returns false when the aggregation is skipped (kSkipRound with a
/// failure, or no survivor carries weight under kRenormalize); `out` is
/// untouched then. With all participants delivered this is bit-identical
/// to weighted_average for every policy. `fallback` may alias `out`.
/// `agg` selects the combiner over the (survivor + substitute) set; the
/// default mean reproduces the historical behavior bit-for-bit.
bool degraded_weighted_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const Participants& parts, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out,
    const AggregateSpec& agg = {});

/// Uniform-weight variant over `ids` (multiplicity 1 each); otherwise
/// identical semantics to degraded_weighted_average.
bool degraded_uniform_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const std::vector<index_t>& ids, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out,
    const AggregateSpec& agg = {});

/// Lazily materialized label-flipped twins of client shards, for the
/// AttackKind::kLabelFlip arm. data::flip_labels is pure, so each twin
/// is cached and re-flipped only when the underlying shard changes
/// identity (concept-drift phase switch). Materialize in the trainers'
/// single-threaded job-setup loops only — get() is not thread-safe.
struct PoisonStore {
  std::vector<const data::Dataset*> src;
  std::vector<data::Dataset> flipped;
  const data::Dataset& get(const data::Dataset& shard, index_t client);
};

/// avg <- (avg * k + value) / (k + 1); k is the number of points already
/// folded into avg.
void update_running_average(std::vector<scalar_t>& avg,
                            const std::vector<scalar_t>& value, index_t k);

/// Uniform probability vector of length n.
std::vector<scalar_t> uniform_weights(index_t n);

/// Append a RoundRecord (per-edge accuracy + uniform-weight loss) when
/// the cadence says this round is due (always due at the final round).
/// Also mirrors the cumulative CommStats into the obs registry (see
/// publish_comm_metrics), so a metrics snapshot taken after training
/// reconciles exactly with TrainResult::comm.
void maybe_record(const nn::Model& model, const data::FederatedDataset& fed,
                  parallel::ThreadPool& pool, index_t round,
                  index_t total_rounds, index_t eval_every,
                  const std::vector<scalar_t>& w, const sim::CommStats& comm,
                  metrics::TrainingHistory& history);

/// Mirror the cumulative CommStats (including both LinkFaultStats) into
/// absolute obs gauges under "sim.comm.*". Value channel: CommStats is a
/// pure function of (seed, config) by the determinism contract, and the
/// gauges inherit that. No-op when obs hooks are compiled out.
void publish_comm_metrics(const sim::CommStats& comm);

// ——— Crash-safe snapshot plumbing (io/snapshot.hpp) ———
//
// Every trainer derives all round-k randomness from non-advancing splits
// of a root generator (root.split(k+1).split(phase)...), so the remaining
// trajectory after round k is a pure function of the round-boundary
// state. RunState points at exactly that state; snapshotting it at the
// end of a round and restoring it before the loop makes the resumed run
// bit-identical to the uninterrupted one — including under an active
// FaultPlan, which is itself a pure function of (fault seed, round,
// entity). Per-round scratch buffers (client/edge/leaf model stores,
// checkpoint flags, StaleStore::blend) are freshly written before every
// read and are deliberately NOT part of the snapshot.

// Snapshot section tags (ASCII mnemonics, little-endian FourCC).
inline constexpr std::uint32_t kSnapAlgo = 0x4f474c41;        // "ALGO"
inline constexpr std::uint32_t kSnapSeed = 0x44454553;        // "SEED"
inline constexpr std::uint32_t kSnapRound = 0x444e5552;       // "RUND"
inline constexpr std::uint32_t kSnapRng = 0x53474e52;         // "RNGS"
inline constexpr std::uint32_t kSnapW = 0x5f5f5f57;           // "W___"
inline constexpr std::uint32_t kSnapP = 0x5f5f5f50;           // "P___"
inline constexpr std::uint32_t kSnapWAvg = 0x47564157;        // "WAVG"
inline constexpr std::uint32_t kSnapPAvg = 0x47564150;        // "PAVG"
inline constexpr std::uint32_t kSnapAux = 0x51585541;         // "AUXQ"
inline constexpr std::uint32_t kSnapAuxAvg = 0x41585541;      // "AUXA"
inline constexpr std::uint32_t kSnapComm = 0x4d4d4f43;        // "COMM"
inline constexpr std::uint32_t kSnapMultiComm = 0x4d4f434d;   // "MCOM"
inline constexpr std::uint32_t kSnapStaleModels = 0x4d4c5453; // "STLM"
inline constexpr std::uint32_t kSnapStaleRounds = 0x524c5453; // "STLR"
inline constexpr std::uint32_t kSnapHistory = 0x54534948;     // "HIST"

// Algorithm ids embedded in every snapshot so resuming with the wrong
// trainer (or comparing λ of a min-only method) fails loudly.
inline constexpr std::uint64_t kAlgoFedAvg = 1;
inline constexpr std::uint64_t kAlgoHierFavg = 2;
inline constexpr std::uint64_t kAlgoDrfa = 3;
inline constexpr std::uint64_t kAlgoHierMinimax = 4;
inline constexpr std::uint64_t kAlgoHierMinimaxMulti = 5;
inline constexpr std::uint64_t kAlgoHierFavgMulti = 6;
inline constexpr std::uint64_t kAlgoQffl = 7;

/// Borrowed pointers into one trainer's live round-boundary state. Null
/// pointers mean "this trainer has no such state" (e.g. FedAvg has no λ,
/// the multi-level trainers keep no running averages); presence in a
/// snapshot must match, or resume_round throws.
struct RunState {
  std::uint64_t algo_id = 0;
  seed_t seed = 0;
  rng::Xoshiro256* root = nullptr;            // required
  std::vector<scalar_t>* w = nullptr;         // required
  std::vector<scalar_t>* p = nullptr;
  std::vector<scalar_t>* w_avg = nullptr;
  std::vector<scalar_t>* p_avg = nullptr;
  std::vector<scalar_t>* aux = nullptr;       // DRFA per-client q
  std::vector<scalar_t>* aux_avg = nullptr;   // DRFA running q average
  sim::CommStats* comm = nullptr;             // flat trainers
  MultiCommStats* multi_comm = nullptr;       // multi-level trainers
  StaleStore* stale = nullptr;                // snapshotted iff initialized
  metrics::TrainingHistory* history = nullptr;
};

/// Encode the pointed-at state as an io::Snapshot; `next_round` is the
/// first round index still to run (rounds completed so far).
io::Snapshot make_run_snapshot(const RunState& st, index_t next_round);

/// Restore state from the newest valid snapshot under `resume_from` and
/// return the first round index to run; 0 (fresh start, state untouched)
/// when `resume_from` is empty or holds no valid snapshot. Throws
/// CheckError when the snapshot belongs to a different algorithm/seed or
/// its shapes do not match the run's options/topology.
index_t resume_round(const std::string& resume_from, const RunState& st);

/// End-of-round hook, called as the last statement of round k's loop
/// body: writes `snapshot.<k+1>` when the policy cadence is due, then
/// throws io::SimulatedCrash when the crash-replay harness scheduled a
/// kill after round k.
void snapshot_round_end(const io::SnapshotPolicy& policy, index_t k,
                        const RunState& st);

}  // namespace hm::algo::detail
