// Internal helpers shared by the five trainers: deterministic stream
// tags, participant dedup, model averaging, running averages, and the
// evaluation/recording cadence.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/sampling.hpp"

namespace hm::algo::detail {

// Stream-split tags (arbitrary distinct constants; ASCII mnemonics).
inline constexpr std::uint64_t kTagInit = 0x696e6974;      // "init"
inline constexpr std::uint64_t kTagSampleEdges = 0x73616d70;
inline constexpr std::uint64_t kTagSampleUniform = 0x756e6966;
inline constexpr std::uint64_t kTagCheckpoint = 0x636b7074;
inline constexpr std::uint64_t kTagLocal = 0x6c6f636c;
inline constexpr std::uint64_t kTagLoss = 0x6c6f7373;
inline constexpr std::uint64_t kTagQuant = 0x71756e74;

/// Distinct participant ids with multiplicities, preserving first-draw
/// order. With-replacement sampling can repeat an id; the repeated runs
/// would be bit-identical, so we execute once and weight the aggregate.
struct Participants {
  std::vector<index_t> ids;
  std::vector<index_t> multiplicity;
  index_t total = 0;  // sum of multiplicities == number of draws

  static Participants from_draws(const std::vector<index_t>& draws);
};

/// out = sum_i weights[i] * vectors[ids[i]] with weights normalized to 1.
void weighted_average(const std::vector<std::vector<scalar_t>>& vectors,
                      const Participants& parts,
                      std::vector<scalar_t>& out);

/// out = mean of vectors[id] over `ids`.
void uniform_average(const std::vector<std::vector<scalar_t>>& vectors,
                     const std::vector<index_t>& ids,
                     std::vector<scalar_t>& out);

/// Last delivered update per potential participant, for OnFault::
/// kReuseStale. `last_round[id] < 0` means the participant never
/// delivered; a casualty's staleness at round k is k - last_round[id].
struct StaleStore {
  std::vector<std::vector<scalar_t>> models;
  std::vector<index_t> last_round;
  // Scratch for the blended substitute vectors, sized on demand. Blends
  // are materialized before the accumulation touches `out`, so the
  // fallback vector may alias the output (trainers pass result.w as
  // both).
  std::vector<std::vector<scalar_t>> blend;

  void init(index_t n) {
    models.assign(static_cast<std::size_t>(n), {});
    last_round.assign(static_cast<std::size_t>(n), -1);
  }
  bool has(index_t id) const {
    return last_round[static_cast<std::size_t>(id)] >= 0;
  }
  void deliver(index_t id, const std::vector<scalar_t>& m, index_t round) {
    models[static_cast<std::size_t>(id)] = m;
    last_round[static_cast<std::size_t>(id)] = round;
  }
};

/// Weighted aggregation of `vectors[parts.ids[i]]` under failures.
/// `delivered[i]` (aligned with parts.ids) flags survivors. Policies:
///   kRenormalize — survivors only, multiplicities renormalized to the
///                  surviving total (stays on the simplex);
///   kReuseStale  — original weights; casualties contribute
///                  decay^age * stale + (1 - decay^age) * fallback, and
///                  survivors refresh `stale`;
///   kSkipRound   — any failure abandons the aggregation.
/// Returns false when the aggregation is skipped (kSkipRound with a
/// failure, or no survivor carries weight under kRenormalize); `out` is
/// untouched then. With all participants delivered this is bit-identical
/// to weighted_average for every policy. `fallback` may alias `out`.
bool degraded_weighted_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const Participants& parts, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out);

/// Uniform-weight variant over `ids` (multiplicity 1 each); otherwise
/// identical semantics to degraded_weighted_average.
bool degraded_uniform_average(
    const std::vector<std::vector<scalar_t>>& vectors,
    const std::vector<index_t>& ids, const std::vector<char>& delivered,
    OnFault policy, scalar_t stale_decay, index_t round, StaleStore& stale,
    const std::vector<scalar_t>& fallback, std::vector<scalar_t>& out);

/// avg <- (avg * k + value) / (k + 1); k is the number of points already
/// folded into avg.
void update_running_average(std::vector<scalar_t>& avg,
                            const std::vector<scalar_t>& value, index_t k);

/// Uniform probability vector of length n.
std::vector<scalar_t> uniform_weights(index_t n);

/// Append a RoundRecord (per-edge accuracy + uniform-weight loss) when
/// the cadence says this round is due (always due at the final round).
void maybe_record(const nn::Model& model, const data::FederatedDataset& fed,
                  parallel::ThreadPool& pool, index_t round,
                  index_t total_rounds, index_t eval_every,
                  const std::vector<scalar_t>& w, const sim::CommStats& comm,
                  metrics::TrainingHistory& history);

}  // namespace hm::algo::detail
