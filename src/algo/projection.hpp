// Euclidean projections onto the constraint sets of problem (3):
// P ⊆ Δ_{N_E - 1} for the edge weights and an L2 ball (or R^d) for W.
//
// P is modeled as the "capped simplex" {p : sum p = 1, lo <= p_i <= hi},
// which covers the paper's two cases: the full simplex (lo=0, hi=1) and
// regularized weight sets encoding prior knowledge (footnote 1 in §3).
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace hm::algo {

using tensor::ConstVecView;
using tensor::VecView;

/// Uniform box bounds on simplex coordinates. Feasible iff
/// n*lo <= 1 <= n*hi.
struct SimplexSet {
  scalar_t lo = 0;
  scalar_t hi = 1;

  bool feasible(index_t n) const {
    return lo >= 0 && hi >= lo && static_cast<scalar_t>(n) * lo <= 1 &&
           static_cast<scalar_t>(n) * hi >= 1;
  }

  /// The full probability simplex (the paper's default P).
  static SimplexSet full() { return SimplexSet{0, 1}; }
};

/// Euclidean projection of v onto the full probability simplex, via the
/// exact O(n log n) sort-and-threshold algorithm (Held et al. / Duchi et
/// al.). Result overwrites v.
void project_simplex(VecView v);

/// Euclidean projection of v onto {p : sum p = 1, set.lo <= p <= set.hi},
/// via bisection on the KKT multiplier. Overwrites v. Requires
/// set.feasible(v.size()).
void project_capped_simplex(VecView v, const SimplexSet& set);

/// Maximize <p, v> over the capped simplex. Used to evaluate
/// max_{p in P} F(w, p) in closed form (the duality gap's first term).
/// For the full simplex this is simply max_i v_i.
scalar_t max_linear_over_simplex(ConstVecView v, const SimplexSet& set);

/// The maximizing p itself (greedy cap-filling in decreasing order of v).
std::vector<scalar_t> argmax_linear_over_simplex(ConstVecView v,
                                                 const SimplexSet& set);

}  // namespace hm::algo
