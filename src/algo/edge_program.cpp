#include "algo/edge_program.hpp"

#include "core/check.hpp"
#include "sim/quantize.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo::detail {

EdgeProgram::EdgeProgram(const nn::Model& model,
                         const data::FederatedDataset& fed,
                         const sim::HierTopology& topo,
                         const TrainOptions& opts,
                         parallel::ThreadPool& pool)
    : model_(model),
      fed_(fed),
      topo_(topo),
      opts_(opts),
      root_(opts.seed),
      plan_(opts.fault),
      cluster_(pool),
      agg_{opts.aggregate, opts.trim_frac},
      client_w_(static_cast<std::size_t>(topo.num_clients())),
      client_ckpt_(static_cast<std::size_t>(topo.num_clients())),
      scratch_(static_cast<std::size_t>(topo.num_clients())),
      ph2_ws_(model.make_workspace()) {}

std::vector<scalar_t>& EdgeProgram::ensure(std::vector<scalar_t>& v) const {
  if (v.empty()) {
    v.assign(static_cast<std::size_t>(model_.num_params()), 0);
  }
  return v;
}

void EdgeProgram::phase1(index_t k, index_t c1, index_t c2,
                         std::span<const index_t> edges,
                         const std::vector<scalar_t>& w,
                         std::vector<std::vector<scalar_t>>& edge_w,
                         std::vector<std::vector<scalar_t>>& edge_ckpt,
                         std::vector<char>& edge_has_ckpt) {
  const index_t d = model_.num_params();
  const index_t n0 = topo_.clients_per_edge();
  rng::Xoshiro256 round_gen =
      root_.split(static_cast<std::uint64_t>(k) + 1);

  // Seed every listed edge's model with the broadcast global model.
  for (const index_t e : edges) {
    tensor::copy(w, ensure(edge_w[static_cast<std::size_t>(e)]));
  }

  // tau2 client-edge aggregation blocks.
  for (index_t t2 = 0; t2 < opts_.tau2; ++t2) {
    LocalSgdConfig cfg;
    cfg.steps = opts_.tau1;
    cfg.batch_size = opts_.batch_size;
    cfg.eta = opts_.eta_w;
    cfg.w_radius = opts_.w_radius;
    cfg.weight_decay = opts_.weight_decay;
    cfg.prox_mu = opts_.prox_mu;
    cfg.checkpoint_step = t2 == c2 ? c1 : 0;
    std::vector<LocalSgdJob> jobs;
    std::vector<rng::Xoshiro256> gens;
    const std::size_t max_jobs = edges.size() * static_cast<std::size_t>(n0);
    jobs.reserve(max_jobs);
    gens.reserve(max_jobs);
    for (const index_t e : edges) {
      for (index_t i = 0; i < n0; ++i) {
        const index_t client = topo_.client_id(e, i);
        // Offline hardware (crashed or churned away) computes nothing
        // this round. (Dropped clients still compute — only their
        // report is lost.)
        if (plan_.edge_crashed(k, e) || plan_.client_offline(k, client)) {
          continue;
        }
        auto& w_local = ensure(client_w_[static_cast<std::size_t>(client)]);
        tensor::copy(edge_w[static_cast<std::size_t>(e)], w_local);
        gens.push_back(round_gen.split(kTagLocal)
                           .split(static_cast<std::uint64_t>(e))
                           .split(static_cast<std::uint64_t>(t2))
                           .split(static_cast<std::uint64_t>(i)));
        const data::Dataset* shard = &fed_.shard_at(k, e, i);
        if (plan_.client_poisoned(k, client)) {
          shard = &poison_.get(*shard, client);
        }
        jobs.push_back(
            {shard, w_local,
             nn::VecView(
                 ensure(client_ckpt_[static_cast<std::size_t>(client)])),
             &gens.back(), client});
      }
    }
    run_local_sgd_jobs(model_, cfg, jobs, scratch_, bstate_, opts_.batched,
                       cluster_);
    if (opts_.quantize_bits > 0) {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        const auto client = static_cast<std::size_t>(jobs[j].scratch_id);
        rng::Xoshiro256 qgen = gens[j].split(kTagQuant);
        sim::quantize_payload(client_w_[client], opts_.quantize_bits, qgen);
        if (t2 == c2) {
          sim::quantize_payload(client_ckpt_[client], opts_.quantize_bits,
                                qgen);
        }
      }
    }
    if (plan_.payload_attack()) {
      // edge_w[e] still holds the block-start model every client of
      // edge e started from — the sign-flip reflection reference. The
      // checkpoint upload stays honest: it is variance-reduction
      // scaffolding for Phase 2, not a model report (DESIGN.md §13).
      for (const auto& job : jobs) {
        const index_t c = job.scratch_id;
        if (!plan_.client_attacker(k, c)) continue;
        const index_t e = fed_.edge_of_client(c);
        plan_.corrupt_payload(k, c,
                              edge_w[static_cast<std::size_t>(e)].data(),
                              client_w_[static_cast<std::size_t>(c)].data(),
                              d);
      }
    }

    // Client-edge aggregation (and checkpoint aggregation at block c2).
    for (const index_t e : edges) {
      if (!plan_.enabled()) {
        auto clients = topo_.clients_of_edge(e);
        robust_uniform_average(client_w_, clients, agg_,
                               edge_w[static_cast<std::size_t>(e)]);
        if (t2 == c2) {
          uniform_average(client_ckpt_, clients,
                          ensure(edge_ckpt[static_cast<std::size_t>(e)]));
        }
        continue;
      }
      if (plan_.edge_crashed(k, e)) {
        if (t2 == c2) edge_has_ckpt[static_cast<std::size_t>(e)] = 0;
        continue;  // area offline, model frozen
      }
      // Aggregate over whichever clients actually reported this block;
      // an edge with zero survivors keeps its previous block's model.
      std::vector<index_t> surv;
      for (const index_t c : topo_.clients_of_edge(e)) {
        if (plan_.client_offline(k, c)) continue;  // silent, never sent
        if (plan_.client_dropped(k, c)) continue;  // report lost in transit
        surv.push_back(c);
      }
      if (!surv.empty()) {
        robust_uniform_average(client_w_, surv, agg_,
                               edge_w[static_cast<std::size_t>(e)]);
      }
      if (t2 == c2) {
        if (surv.empty()) {
          edge_has_ckpt[static_cast<std::size_t>(e)] = 0;
        } else {
          edge_has_ckpt[static_cast<std::size_t>(e)] = 1;
          uniform_average(client_ckpt_, surv,
                          ensure(edge_ckpt[static_cast<std::size_t>(e)]));
        }
      }
    }
  }
}

void EdgeProgram::phase2(index_t k, std::span<const index_t> edges,
                         const std::vector<scalar_t>& checkpoint,
                         std::span<const char> client_ok,
                         std::span<scalar_t> client_losses) {
  const index_t n0 = topo_.clients_per_edge();
  const index_t loss_jobs = static_cast<index_t>(edges.size()) * n0;
  HM_CHECK(static_cast<index_t>(client_ok.size()) == loss_jobs);
  HM_CHECK(static_cast<index_t>(client_losses.size()) == loss_jobs);
  rng::Xoshiro256 round_gen =
      root_.split(static_cast<std::uint64_t>(k) + 1);

  // Draw every surviving job's estimation batch (per-job RNG streams,
  // so the samples are independent of evaluation order), then score
  // them all in one fused loss_many sweep at the shared checkpoint.
  std::vector<std::vector<index_t>> batches(
      static_cast<std::size_t>(loss_jobs));
  std::vector<nn::LossJob> jobs;
  std::vector<index_t> job_slot;  // loss_many index -> client_losses slot
  jobs.reserve(static_cast<std::size_t>(loss_jobs));
  job_slot.reserve(static_cast<std::size_t>(loss_jobs));
  for (index_t job = 0; job < loss_jobs; ++job) {
    if (!client_ok[static_cast<std::size_t>(job)]) continue;
    const index_t e = edges[static_cast<std::size_t>(job / n0)];
    const index_t i = job % n0;
    // Phase-2 loss reports are honest even for attackers (the attack
    // corrupts training, not measurement) but do follow data drift.
    const data::Dataset& shard = fed_.shard_at(k, e, i);
    rng::Xoshiro256 gen = round_gen.split(kTagLoss)
                              .split(static_cast<std::uint64_t>(e))
                              .split(static_cast<std::uint64_t>(i));
    auto& batch = batches[static_cast<std::size_t>(job)];
    if (opts_.loss_est_batch > 0) {
      batch.resize(static_cast<std::size_t>(opts_.loss_est_batch));
      for (auto& idx : batch) {
        idx = static_cast<index_t>(
            gen.uniform_index(static_cast<std::uint64_t>(shard.size())));
      }
    } else {
      batch = nn::all_indices(shard.size());
    }
    jobs.push_back(nn::LossJob{checkpoint, &shard, batch});
    job_slot.push_back(job);
  }
  std::vector<scalar_t> job_losses(jobs.size());
  model_.loss_many(jobs, job_losses, *ph2_ws_);
  for (std::size_t q = 0; q < jobs.size(); ++q) {
    client_losses[static_cast<std::size_t>(job_slot[q])] = job_losses[q];
  }
}

}  // namespace hm::algo::detail
