// DRFA (Deng et al., NeurIPS'20) and Stochastic-AFL (Mohri et al.,
// ICML'19): the two-layer minimax baselines.
//
// DRFA per round: sample m clients by the weight vector q (with
// replacement), run tau1 local SGD steps with a random checkpoint index
// c in [tau1]; average final models and checkpoint models; then sample m
// clients uniformly, estimate losses at the checkpoint, and ascend
// q <- Proj(q + eta_p * tau1 * v). Stochastic-AFL is the tau1 = 1
// special case (one local step per round).
//
// The weight vector here is over *clients*, matching the original
// two-layer formulations; evaluation remains per edge area.
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"

namespace hm::algo {

TrainResult train_drfa(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts, parallel::ThreadPool& pool);

TrainResult train_drfa(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts);

/// Stochastic-AFL == DRFA with a single local step per round.
TrainResult train_stochastic_afl(const nn::Model& model,
                                 const data::FederatedDataset& fed,
                                 const TrainOptions& opts,
                                 parallel::ThreadPool& pool);

TrainResult train_stochastic_afl(const nn::Model& model,
                                 const data::FederatedDataset& fed,
                                 const TrainOptions& opts);

}  // namespace hm::algo
