// Command-line configuration of crash-safe snapshots and resume, shared
// by the examples and benchmark harnesses so every binary speaks the same
// flags:
//
//   --snapshot-every K   write a durable snapshot after every K-th round
//   --snapshot-dir D     snapshot directory (default "snapshots")
//   --snapshot-keep N    rotating last-good fallback depth (default 2)
//   --resume             resume from the newest valid snapshot in the
//                        snapshot directory
//   --resume-from D      resume from an explicit snapshot directory
//
// Resume is bit-exact: the remaining trajectory of a resumed run is
// byte-identical to the uninterrupted run with the same options and seed.
#pragma once

#include <string>

#include "algo/hierminimax_multi.hpp"
#include "algo/options.hpp"
#include "core/flags.hpp"
#include "io/snapshot.hpp"

namespace hm::algo {

/// Parse the snapshot/resume flags into a policy + resume directory.
void snapshot_flags(const Flags& flags, io::SnapshotPolicy& policy,
                    std::string& resume_from);

/// Apply the snapshot flags to `opts.snapshot` / `opts.resume_from`.
void apply_snapshot_flags(const Flags& flags, TrainOptions& opts);
void apply_snapshot_flags(const Flags& flags, MultiTrainOptions& opts);

}  // namespace hm::algo
