// Command-line configuration of the transport layer, shared by the
// examples and benchmark harnesses so every binary speaks the same flags:
//
//   --transport KIND     inproc | loopback | socket (edge-compute backend)
//   --workers N          socket worker processes (0 = one per 4 edges)
//   --rpc-timeout-ms T   per-attempt reply deadline (monotonic clock)
//   --rpc-retries N      retransmissions after the first attempt
//   --rpc-backoff-ms B   deadline extension of retry r: B << (r - 1)
//   --kill-worker L      fault matrix: lane to SIGKILL (-1 = off)
//   --kill-round K       fault matrix: round whose request triggers it
//   --kill-phase P       fault matrix: 1 or 2 (which phase's request)
//   --kill-point WHEN    pre | torn | post (crash before computing the
//                        reply, after a truncated reply frame, or after
//                        the full reply is on the wire)
#pragma once

#include <string>

#include "algo/options.hpp"
#include "core/flags.hpp"

namespace hm::algo {

/// Parse a kill point name ("pre", "torn", "post"); throws CheckError on
/// anything else.
net::KillPoint parse_kill_point(const std::string& name);

const char* to_string(net::KillPoint point);

/// Apply the transport flags to `opts.transport`.
void apply_transport_flags(const Flags& flags, TrainOptions& opts);

}  // namespace hm::algo
