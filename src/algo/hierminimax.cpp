#include "algo/hierminimax.hpp"

#include "algo/local_sgd.hpp"
#include "sim/quantize.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

using detail::Participants;

void validate_inputs(const nn::Model& model, const data::FederatedDataset& fed,
                     const sim::HierTopology& topo, const TrainOptions& opts) {
  fed.validate();
  HM_CHECK_MSG(fed.num_edges() == topo.num_edges(),
               "dataset has " << fed.num_edges() << " edges, topology "
                              << topo.num_edges());
  HM_CHECK(fed.clients_per_edge == topo.clients_per_edge());
  HM_CHECK(fed.dim() == model.input_dim());
  HM_CHECK(fed.num_classes() == model.num_classes());
  HM_CHECK(opts.rounds > 0 && opts.tau1 > 0 && opts.tau2 > 0);
  HM_CHECK(opts.eta_w > 0 && opts.eta_p > 0);
  HM_CHECK(opts.sampled_edges >= 0 &&
           opts.sampled_edges <= topo.num_edges());
  HM_CHECK(opts.p_set.feasible(topo.num_edges()));
}

}  // namespace

TrainResult train_hierminimax(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const sim::HierTopology& topo,
                              const TrainOptions& opts,
                              parallel::ThreadPool& pool) {
  validate_inputs(model, fed, topo, opts);
  const index_t d = model.num_params();
  const index_t num_edges = topo.num_edges();          // N_E
  const index_t n0 = topo.clients_per_edge();          // N_0
  const index_t num_clients = topo.num_clients();      // N
  const index_t m_e = opts.sampled_edges > 0 ? opts.sampled_edges : num_edges;

  rng::Xoshiro256 root(opts.seed);

  TrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_edges);
  result.w_avg = result.w;
  result.p_avg = result.p;

  // Per-participant buffers, allocated once and reused every round.
  std::vector<std::vector<scalar_t>> client_w(
      static_cast<std::size_t>(num_clients),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> client_ckpt = client_w;
  std::vector<std::vector<scalar_t>> edge_w(
      static_cast<std::size_t>(num_edges),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> edge_ckpt = edge_w;
  std::vector<ClientScratch> scratch(static_cast<std::size_t>(num_clients));
  std::vector<scalar_t> checkpoint(static_cast<std::size_t>(d));
  std::vector<scalar_t> edge_losses(static_cast<std::size_t>(num_edges));

  detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                       result.w, result.comm, result.history);

  for (index_t k = 0; k < opts.rounds; ++k) {
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);

    // --- Phase 1: sample edges by p^(k) and the checkpoint index.
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const Participants parts = Participants::from_draws(
        rng::sample_weighted_with_replacement(result.p, m_e, sample_gen));
    rng::Xoshiro256 ckpt_gen = round_gen.split(detail::kTagCheckpoint);
    const index_t c1 = 1 + static_cast<index_t>(ckpt_gen.uniform_index(
                               static_cast<std::uint64_t>(opts.tau1)));
    const index_t c2 = static_cast<index_t>(ckpt_gen.uniform_index(
        static_cast<std::uint64_t>(opts.tau2)));

    const auto participating =
        static_cast<std::uint64_t>(parts.ids.size());  // physical edges
    result.comm.edge_cloud_models_down += participating;

    // Seed every participating edge's model with the global model.
    for (const index_t e : parts.ids) {
      tensor::copy(result.w, edge_w[static_cast<std::size_t>(e)]);
    }

    // tau2 client-edge aggregation blocks.
    for (index_t t2 = 0; t2 < opts.tau2; ++t2) {
      const index_t jobs =
          static_cast<index_t>(parts.ids.size()) * n0;
      parallel::parallel_for(
          pool, 0, jobs,
          [&](index_t job) {
            const index_t e =
                parts.ids[static_cast<std::size_t>(job / n0)];
            const index_t i = job % n0;
            const index_t client = topo.client_id(e, i);
            auto& w_local = client_w[static_cast<std::size_t>(client)];
            tensor::copy(edge_w[static_cast<std::size_t>(e)], w_local);
            LocalSgdConfig cfg;
            cfg.steps = opts.tau1;
            cfg.batch_size = opts.batch_size;
            cfg.eta = opts.eta_w;
            cfg.w_radius = opts.w_radius;
            cfg.weight_decay = opts.weight_decay;
            cfg.prox_mu = opts.prox_mu;
            cfg.checkpoint_step = t2 == c2 ? c1 : 0;
            rng::Xoshiro256 gen = round_gen.split(detail::kTagLocal)
                                      .split(static_cast<std::uint64_t>(e))
                                      .split(static_cast<std::uint64_t>(t2))
                                      .split(static_cast<std::uint64_t>(i));
            run_local_sgd(model, fed.shard(e, i), cfg, w_local,
                          client_ckpt[static_cast<std::size_t>(client)], gen,
                          scratch[static_cast<std::size_t>(client)]);
            if (opts.quantize_bits > 0) {
              rng::Xoshiro256 qgen = gen.split(detail::kTagQuant);
              sim::quantize_payload(w_local, opts.quantize_bits, qgen);
              if (t2 == c2) {
                sim::quantize_payload(
                    client_ckpt[static_cast<std::size_t>(client)],
                    opts.quantize_bits, qgen);
              }
            }
          },
          /*grain=*/1);

      // Client-edge aggregation (and checkpoint aggregation at block c2).
      for (const index_t e : parts.ids) {
        auto clients = topo.clients_of_edge(e);
        detail::uniform_average(client_w, clients,
                                edge_w[static_cast<std::size_t>(e)]);
        if (t2 == c2) {
          detail::uniform_average(client_ckpt, clients,
                                  edge_ckpt[static_cast<std::size_t>(e)]);
        }
      }
      result.comm.client_edge_rounds += 1;
      result.comm.client_edge_models_down +=
          participating * static_cast<std::uint64_t>(n0);
      result.comm.client_edge_models_up +=
          participating * static_cast<std::uint64_t>(n0) *
          (t2 == c2 ? 2 : 1);  // model + checkpoint at block c2
      result.comm.client_edge_bytes +=
          participating * static_cast<std::uint64_t>(n0) *
          (sim::payload_bytes(d, 0) +  // broadcast down, uncompressed
           static_cast<std::uint64_t>(t2 == c2 ? 2 : 1) *
               sim::payload_bytes(d, opts.quantize_bits));
    }

    // Uplink quantization of the per-edge aggregates (Hier-Local-QSGD
    // style: both hops compress toward the cloud).
    if (opts.quantize_bits > 0) {
      for (const index_t e : parts.ids) {
        rng::Xoshiro256 qgen = round_gen.split(detail::kTagQuant)
                                   .split(static_cast<std::uint64_t>(e));
        sim::quantize_payload(edge_w[static_cast<std::size_t>(e)],
                              opts.quantize_bits, qgen);
        sim::quantize_payload(edge_ckpt[static_cast<std::size_t>(e)],
                              opts.quantize_bits, qgen);
      }
    }

    // Edge-cloud aggregation: global model (Eq. 5) + checkpoint (Eq. 6).
    detail::weighted_average(edge_w, parts, result.w);
    if (opts.use_checkpoint) {
      detail::weighted_average(edge_ckpt, parts, checkpoint);
    } else {
      tensor::copy(result.w, checkpoint);  // ablation: last-iterate losses
    }
    tensor::project_l2_ball(result.w, opts.w_radius);
    result.comm.edge_cloud_rounds += 1;
    result.comm.edge_cloud_models_up += 2 * participating;
    result.comm.edge_cloud_bytes +=
        participating * (sim::payload_bytes(d, 0) +  // broadcast down
                         2 * sim::payload_bytes(d, opts.quantize_bits));

    // --- Phase 2: uniform edge sample, loss estimation on the checkpoint.
    rng::Xoshiro256 uniform_gen = round_gen.split(detail::kTagSampleUniform);
    const auto losses_set =
        rng::sample_without_replacement(num_edges, m_e, uniform_gen);
    result.comm.edge_cloud_models_down +=
        static_cast<std::uint64_t>(losses_set.size());
    result.comm.client_edge_models_down +=
        static_cast<std::uint64_t>(losses_set.size()) *
        static_cast<std::uint64_t>(n0);
    result.comm.client_edge_rounds += 1;

    std::fill(edge_losses.begin(), edge_losses.end(), scalar_t{0});
    const index_t loss_jobs = static_cast<index_t>(losses_set.size()) * n0;
    std::vector<scalar_t> client_losses(
        static_cast<std::size_t>(loss_jobs), 0);
    parallel::parallel_for(
        pool, 0, loss_jobs,
        [&](index_t job) {
          const index_t e = losses_set[static_cast<std::size_t>(job / n0)];
          const index_t i = job % n0;
          const index_t client = topo.client_id(e, i);
          auto& sc = scratch[static_cast<std::size_t>(client)];
          sc.ensure(model);
          const data::Dataset& shard = fed.shard(e, i);
          rng::Xoshiro256 gen = round_gen.split(detail::kTagLoss)
                                    .split(static_cast<std::uint64_t>(e))
                                    .split(static_cast<std::uint64_t>(i));
          std::vector<index_t> batch;
          if (opts.loss_est_batch > 0) {
            batch.resize(static_cast<std::size_t>(opts.loss_est_batch));
            for (auto& idx : batch) {
              idx = static_cast<index_t>(gen.uniform_index(
                  static_cast<std::uint64_t>(shard.size())));
            }
          } else {
            batch = nn::all_indices(shard.size());
          }
          client_losses[static_cast<std::size_t>(job)] =
              model.loss(checkpoint, shard, batch, *sc.ws);
        },
        /*grain=*/1);
    for (index_t j = 0; j < static_cast<index_t>(losses_set.size()); ++j) {
      scalar_t f_e = 0;
      for (index_t i = 0; i < n0; ++i) {
        f_e += client_losses[static_cast<std::size_t>(j * n0 + i)];
      }
      edge_losses[static_cast<std::size_t>(
          losses_set[static_cast<std::size_t>(j)])] =
          f_e / static_cast<scalar_t>(n0);
    }
    result.comm.client_edge_scalars +=
        static_cast<std::uint64_t>(losses_set.size()) *
        static_cast<std::uint64_t>(n0);
    result.comm.edge_cloud_scalars +=
        static_cast<std::uint64_t>(losses_set.size());
    result.comm.edge_cloud_rounds += 1;
    // Phase-2 bytes: checkpoint broadcasts down both hops + scalar losses.
    result.comm.edge_cloud_bytes +=
        static_cast<std::uint64_t>(losses_set.size()) *
            sim::payload_bytes(d, 0) +
        static_cast<std::uint64_t>(losses_set.size()) * 8;
    result.comm.client_edge_bytes +=
        static_cast<std::uint64_t>(losses_set.size()) *
            static_cast<std::uint64_t>(n0) * (sim::payload_bytes(d, 0) + 8);

    // Ascent step (Eq. 7): v_e = (N_E/m_E) f_e on sampled edges, else 0.
    const scalar_t scale_v = static_cast<scalar_t>(num_edges) /
                             static_cast<scalar_t>(losses_set.size());
    const scalar_t step = opts.eta_p * static_cast<scalar_t>(opts.tau1) *
                          static_cast<scalar_t>(opts.tau2);
    for (const index_t e : losses_set) {
      result.p[static_cast<std::size_t>(e)] +=
          step * scale_v * edge_losses[static_cast<std::size_t>(e)];
    }
    project_capped_simplex(result.p, opts.p_set);

    detail::update_running_average(result.w_avg, result.w, k);
    detail::update_running_average(result.p_avg, result.p, k);
    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, result.comm,
                         result.history);
  }
  return result;
}

TrainResult train_hierminimax(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const sim::HierTopology& topo,
                              const TrainOptions& opts) {
  return train_hierminimax(model, fed, topo, opts,
                           parallel::ThreadPool::global());
}

}  // namespace hm::algo
