#include "algo/hierminimax.hpp"

#include "algo/edge_channel.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/liveness.hpp"
#include "sim/quantize.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

using detail::Participants;

void validate_inputs(const nn::Model& model, const data::FederatedDataset& fed,
                     const sim::HierTopology& topo, const TrainOptions& opts) {
  fed.validate();
  HM_CHECK_MSG(fed.num_edges() == topo.num_edges(),
               "dataset has " << fed.num_edges() << " edges, topology "
                              << topo.num_edges());
  HM_CHECK(fed.clients_per_edge == topo.clients_per_edge());
  HM_CHECK(fed.dim() == model.input_dim());
  HM_CHECK(fed.num_classes() == model.num_classes());
  HM_CHECK(opts.rounds > 0 && opts.tau1 > 0 && opts.tau2 > 0);
  HM_CHECK(opts.eta_w > 0 && opts.eta_p > 0);
  HM_CHECK(opts.sampled_edges >= 0 &&
           opts.sampled_edges <= topo.num_edges());
  HM_CHECK(opts.p_set.feasible(topo.num_edges()));
  HM_CHECK(opts.transport.workers >= 0);
  HM_CHECK(opts.transport.rpc_timeout_ms > 0);
  HM_CHECK(opts.transport.rpc_retries >= 0 &&
           opts.transport.rpc_backoff_ms >= 0);
}

}  // namespace

// The coordinator half of Algorithm 1. Everything edge-and-below (local
// SGD, per-edge aggregation, Phase-2 loss scoring) lives behind the
// EdgeChannel; the trainer keeps sampling, the cloud hops (uplink
// quantization, edge-cloud aggregation, the ascent step), snapshots, and
// ALL sim::CommStats metering. Fault accounting accumulates
// order-sensitive floating-point sums (LinkFaultStats.extra_rtts), so
// the coordinator replays the per-block delivery loops in the exact
// legacy order from pure FaultPlan queries — identically whether the
// edge computation ran in-process or in forked workers.
TrainResult train_hierminimax(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const sim::HierTopology& topo,
                              const TrainOptions& opts,
                              parallel::ThreadPool& pool) {
  validate_inputs(model, fed, topo, opts);
  const index_t d = model.num_params();
  const index_t num_edges = topo.num_edges();          // N_E
  const index_t n0 = topo.clients_per_edge();          // N_0
  const index_t m_e = opts.sampled_edges > 0 ? opts.sampled_edges : num_edges;

  rng::Xoshiro256 root(opts.seed);
  const sim::FaultPlan plan(opts.fault);

  TrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_edges);
  result.w_avg = result.w;
  result.p_avg = result.p;

  // Per-edge mirrors on the coordinator. Inner vectors start empty and
  // materialize on first touch (with edge sampling most edges may never
  // participate); once created a buffer persists, so later rounds see
  // exactly the stale contents an eager layout would have had.
  std::vector<std::vector<scalar_t>> edge_w(
      static_cast<std::size_t>(num_edges));
  std::vector<std::vector<scalar_t>> edge_ckpt(
      static_cast<std::size_t>(num_edges));
  const auto ensure = [d](std::vector<scalar_t>& v) -> std::vector<scalar_t>& {
    if (v.empty()) v.assign(static_cast<std::size_t>(d), 0);
    return v;
  };
  std::vector<scalar_t> checkpoint(static_cast<std::size_t>(d));
  std::vector<scalar_t> edge_losses(static_cast<std::size_t>(num_edges));

  // The edge-and-below computation, in-process or in worker processes.
  const std::unique_ptr<detail::EdgeChannel> channel =
      detail::make_edge_channel(model, fed, topo, opts, pool);
  sim::EdgeLiveness live;
  live.init(num_edges);

  detail::StaleStore stale;
  if (plan.enabled() || channel->can_fail()) stale.init(num_edges);
  const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};
  // Whether edge e captured a checkpoint at block c2 this round (an edge
  // whose every client failed at that block has no fresh checkpoint).
  std::vector<char> edge_has_ckpt(static_cast<std::size_t>(num_edges), 1);

  detail::RunState rs;
  rs.algo_id = detail::kAlgoHierMinimax;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.p = &result.p;
  rs.w_avg = &result.w_avg;
  rs.p_avg = &result.p_avg;
  rs.comm = &result.comm;
  rs.stale = &stale;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, result.comm, result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("hierminimax.round", "algo", k, 0);
    HM_OBS_INC("algo.hierminimax.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);

    // --- Phase 1: sample edges by p^(k) and the checkpoint index.
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const Participants parts = Participants::from_draws(
        rng::sample_weighted_with_replacement(result.p, m_e, sample_gen));
    rng::Xoshiro256 ckpt_gen = round_gen.split(detail::kTagCheckpoint);
    const index_t c1 = 1 + static_cast<index_t>(ckpt_gen.uniform_index(
                               static_cast<std::uint64_t>(opts.tau1)));
    const index_t c2 = static_cast<index_t>(ckpt_gen.uniform_index(
        static_cast<std::uint64_t>(opts.tau2)));

    const auto participating =
        static_cast<std::uint64_t>(parts.ids.size());  // physical edges
    result.comm.edge_cloud_models_down += participating;

    // Seed + local SGD + client-edge aggregation for every participating
    // edge, wherever that edge's compute lives. A worker process that
    // died marks its edges in `live`.
    {
      HM_OBS_SPAN("hierminimax.phase1", "algo", k, parts.ids.size());
      channel->phase1(k, c1, c2, parts.ids, result.w, edge_w, edge_ckpt,
                      edge_has_ckpt, live);
    }

    // An edge is down when the plan says so (simulated crash) or its
    // worker process actually died — both take the same degraded paths.
    const bool degraded = plan.enabled() || live.any_down();
    const auto edge_down = [&](index_t e) {
      return plan.edge_crashed(k, e) || live.down(e);
    };

    // Delivery metering for the tau2 client-edge blocks, replayed in the
    // exact order the in-line loops used to run (fault-stat accumulation
    // is order-sensitive floating point).
    for (index_t t2 = 0; t2 < opts.tau2; ++t2) {
      if (plan.enabled()) {
        for (const index_t e : parts.ids) {
          if (edge_down(e)) continue;
          for (const index_t c : topo.clients_of_edge(e)) {
            if (plan.client_offline(k, c)) continue;  // silent, never sent
            if (plan.client_dropped(k, c)) {
              result.comm.client_edge_fault.note_lost_report();
              continue;
            }
            result.comm.client_edge_fault.note_delivered();
            result.comm.client_edge_fault.note_straggle(
                plan.straggler_mult(k, c));
          }
        }
      }
      result.comm.client_edge_rounds += 1;
      result.comm.client_edge_models_down +=
          participating * static_cast<std::uint64_t>(n0);
      result.comm.client_edge_models_up +=
          participating * static_cast<std::uint64_t>(n0) *
          (t2 == c2 ? 2 : 1);  // model + checkpoint at block c2
      result.comm.client_edge_bytes +=
          participating * static_cast<std::uint64_t>(n0) *
          (sim::payload_bytes(d, 0) +  // broadcast down, uncompressed
           static_cast<std::uint64_t>(t2 == c2 ? 2 : 1) *
               sim::payload_bytes(d, opts.quantize_bits));
    }

    // Uplink quantization of the per-edge aggregates (Hier-Local-QSGD
    // style: both hops compress toward the cloud). The coordinator owns
    // this hop — workers return pre-quantization aggregates.
    if (opts.quantize_bits > 0) {
      for (const index_t e : parts.ids) {
        rng::Xoshiro256 qgen = round_gen.split(detail::kTagQuant)
                                   .split(static_cast<std::uint64_t>(e));
        sim::quantize_payload(edge_w[static_cast<std::size_t>(e)],
                              opts.quantize_bits, qgen);
        sim::quantize_payload(ensure(edge_ckpt[static_cast<std::size_t>(e)]),
                              opts.quantize_bits, qgen);
      }
    }

    // Edge-cloud aggregation: global model (Eq. 5) + checkpoint (Eq. 6).
    bool aggregated = true;
    if (!degraded) {
      detail::robust_weighted_average(edge_w, parts, agg, result.w);
      // Checkpoint aggregation stays a plain weighted mean: attackers
      // upload honest checkpoints (threat-model boundary, DESIGN.md §13).
      if (opts.use_checkpoint) {
        detail::weighted_average(edge_ckpt, parts, checkpoint);
      } else {
        tensor::copy(result.w, checkpoint);  // ablation: last-iterate losses
      }
      tensor::project_l2_ball(result.w, opts.w_radius);
    } else {
      // Each participating edge uploads model + checkpoint as one report
      // over the faulty wide-area link. A dead worker's edges simply
      // never deliver (no link-fault query — the process is gone).
      std::vector<char> delivered(parts.ids.size(), 0);
      for (std::size_t j = 0; j < parts.ids.size(); ++j) {
        const index_t e = parts.ids[j];
        if (edge_down(e)) continue;
        if (!plan.enabled() ||
            plan.deliver(k, sim::fault_msg(sim::kMsgModelUp, e),
                         result.comm.edge_cloud_fault)) {
          delivered[j] = 1;
        }
      }
      aggregated = detail::degraded_weighted_average(
          edge_w, parts, delivered, opts.on_fault, opts.stale_decay, k,
          stale, result.w, result.w, agg);
      if (aggregated) {
        if (opts.use_checkpoint) {
          // Checkpoints exist only for delivered edges that captured one
          // at block c2; renormalize over those. With none surviving,
          // fall back to the aggregate (last-iterate losses this round).
          Participants surv;
          for (std::size_t j = 0; j < parts.ids.size(); ++j) {
            const index_t e = parts.ids[j];
            if (!delivered[j] || !edge_has_ckpt[static_cast<std::size_t>(e)])
              continue;
            surv.ids.push_back(e);
            surv.multiplicity.push_back(parts.multiplicity[j]);
            surv.total += parts.multiplicity[j];
          }
          if (surv.ids.empty()) {
            tensor::copy(result.w, checkpoint);
          } else {
            detail::weighted_average(edge_ckpt, surv, checkpoint);
          }
        } else {
          tensor::copy(result.w, checkpoint);
        }
        tensor::project_l2_ball(result.w, opts.w_radius);
      }
    }
    result.comm.edge_cloud_rounds += 1;
    result.comm.edge_cloud_models_up += 2 * participating;
    result.comm.edge_cloud_bytes +=
        participating * (sim::payload_bytes(d, 0) +  // broadcast down
                         2 * sim::payload_bytes(d, opts.quantize_bits));

    // --- Phase 2: uniform edge sample, loss estimation on the checkpoint.
    // A skipped Phase 1 (kSkipRound with casualties, or no surviving
    // reports at all) also skips the ascent: there is no fresh checkpoint
    // to estimate losses at, so the round leaves (w, p) untouched.
    if (aggregated) {
      HM_OBS_SPAN("hierminimax.phase2", "algo", k, 0);
      rng::Xoshiro256 uniform_gen = round_gen.split(detail::kTagSampleUniform);
      const auto losses_set =
          rng::sample_without_replacement(num_edges, m_e, uniform_gen);
      result.comm.edge_cloud_models_down +=
          static_cast<std::uint64_t>(losses_set.size());
      result.comm.client_edge_models_down +=
          static_cast<std::uint64_t>(losses_set.size()) *
          static_cast<std::uint64_t>(n0);
      result.comm.client_edge_rounds += 1;

      std::fill(edge_losses.begin(), edge_losses.end(), scalar_t{0});
      const index_t loss_jobs = static_cast<index_t>(losses_set.size()) * n0;
      std::vector<scalar_t> client_losses(
          static_cast<std::size_t>(loss_jobs), 0);
      // Loss reports ride the same faulty links as models: a client report
      // can be lost on the client-edge hop, the per-edge mean is over
      // whichever clients reported, and the edge's scalar can be lost on
      // the wide-area hop. Edges with nothing to report leave v_e = 0.
      std::vector<char> edge_ok(losses_set.size(), 1);
      std::vector<char> client_ok(static_cast<std::size_t>(loss_jobs), 1);
      std::vector<index_t> edge_nsurv(losses_set.size(), n0);
      std::uint64_t num_loss_edges =
          static_cast<std::uint64_t>(losses_set.size());
      if (degraded) {
        for (std::size_t j = 0; j < losses_set.size(); ++j) {
          const index_t e = losses_set[j];
          if (edge_down(e)) {
            edge_ok[j] = 0;
            edge_nsurv[j] = 0;
            for (index_t i = 0; i < n0; ++i) {
              client_ok[j * static_cast<std::size_t>(n0) +
                        static_cast<std::size_t>(i)] = 0;
            }
            num_loss_edges -= 1;
            continue;
          }
          index_t nsurv = 0;
          for (index_t i = 0; i < n0; ++i) {
            const index_t c = topo.client_id(e, i);
            const std::size_t job =
                j * static_cast<std::size_t>(n0) + static_cast<std::size_t>(i);
            if (plan.client_offline(k, c)) {
              client_ok[job] = 0;
              continue;
            }
            if (plan.client_dropped(k, c)) {
              result.comm.client_edge_fault.note_lost_report();
              client_ok[job] = 0;
              continue;
            }
            if (plan.enabled()) {
              result.comm.client_edge_fault.note_delivered();
              result.comm.client_edge_fault.note_straggle(
                  plan.straggler_mult(k, c));
            }
            nsurv += 1;
          }
          edge_nsurv[j] = nsurv;
          if (nsurv == 0 ||
              (plan.enabled() &&
               !plan.deliver(k, sim::fault_msg(sim::kMsgLossUp, e),
                             result.comm.edge_cloud_fault))) {
            edge_ok[j] = 0;
            num_loss_edges -= 1;
          }
        }
      }
      // Score every surviving client job at the shared checkpoint,
      // wherever that client's compute lives.
      channel->phase2(k, losses_set, checkpoint, client_ok, client_losses,
                      live);
      // A lane that died during Phase 2 delivered nothing: its edges'
      // loss reports are lost exactly like a failed wide-area delivery.
      if (channel->can_fail()) {
        for (std::size_t j = 0; j < losses_set.size(); ++j) {
          if (edge_ok[j] != 0 && live.down(losses_set[j])) {
            edge_ok[j] = 0;
            num_loss_edges -= 1;
          }
        }
      }
      for (index_t j = 0; j < static_cast<index_t>(losses_set.size()); ++j) {
        if (!edge_ok[static_cast<std::size_t>(j)]) continue;
        scalar_t f_e = 0;
        for (index_t i = 0; i < n0; ++i) {
          f_e += client_losses[static_cast<std::size_t>(j * n0 + i)];
        }
        edge_losses[static_cast<std::size_t>(
            losses_set[static_cast<std::size_t>(j)])] =
            f_e /
            static_cast<scalar_t>(edge_nsurv[static_cast<std::size_t>(j)]);
      }
      result.comm.client_edge_scalars +=
          static_cast<std::uint64_t>(losses_set.size()) *
          static_cast<std::uint64_t>(n0);
      result.comm.edge_cloud_scalars +=
          static_cast<std::uint64_t>(losses_set.size());
      result.comm.edge_cloud_rounds += 1;
      // Phase-2 bytes: checkpoint broadcasts down both hops + scalar losses.
      result.comm.edge_cloud_bytes +=
          static_cast<std::uint64_t>(losses_set.size()) *
              sim::payload_bytes(d, 0) +
          static_cast<std::uint64_t>(losses_set.size()) * 8;
      result.comm.client_edge_bytes +=
          static_cast<std::uint64_t>(losses_set.size()) *
              static_cast<std::uint64_t>(n0) *
              (sim::payload_bytes(d, 0) + 8);

      // Ascent step (Eq. 7): v_e = (N_E/m_E) f_e on delivered edges, else
      // 0, with m_E renormalized to the delivered count.
      if (num_loss_edges > 0) {
        const scalar_t scale_v = static_cast<scalar_t>(num_edges) /
                                 static_cast<scalar_t>(num_loss_edges);
        const scalar_t step = opts.eta_p * static_cast<scalar_t>(opts.tau1) *
                              static_cast<scalar_t>(opts.tau2);
        for (std::size_t j = 0; j < losses_set.size(); ++j) {
          if (!edge_ok[j]) continue;
          const index_t e = losses_set[j];
          result.p[static_cast<std::size_t>(e)] +=
              step * scale_v * edge_losses[static_cast<std::size_t>(e)];
        }
        project_capped_simplex(result.p, opts.p_set);
      }
    }

    detail::update_running_average(result.w_avg, result.w, k);
    detail::update_running_average(result.p_avg, result.p, k);
    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, result.comm,
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }
  return result;
}

TrainResult train_hierminimax(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const sim::HierTopology& topo,
                              const TrainOptions& opts) {
  return train_hierminimax(model, fed, topo, opts,
                           parallel::ThreadPool::global());
}

}  // namespace hm::algo
