// HierFAVG (Liu et al., ICC'20): hierarchical federated averaging over
// the client-edge-cloud architecture — the three-layer *minimization*
// baseline of the paper (problem (1); no weight adaptation).
//
// Each round: sample m_E edges uniformly; each runs tau2 client-edge
// aggregation blocks of tau1 local SGD steps; the cloud averages the
// edge models.
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"
#include "sim/topology.hpp"

namespace hm::algo {

TrainResult train_hierfavg(const nn::Model& model,
                           const data::FederatedDataset& fed,
                           const sim::HierTopology& topo,
                           const TrainOptions& opts,
                           parallel::ThreadPool& pool);

TrainResult train_hierfavg(const nn::Model& model,
                           const data::FederatedDataset& fed,
                           const sim::HierTopology& topo,
                           const TrainOptions& opts);

}  // namespace hm::algo
