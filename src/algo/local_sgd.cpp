#include "algo/local_sgd.hpp"

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

void run_local_sgd(const nn::Model& model, const data::Dataset& shard,
                   const LocalSgdConfig& config, nn::VecView w,
                   nn::VecView checkpoint, rng::Xoshiro256& gen,
                   ClientScratch& scratch) {
  HM_CHECK(config.steps >= 0 && config.batch_size > 0 && config.eta > 0);
  HM_CHECK(static_cast<index_t>(w.size()) == model.num_params());
  const bool capture =
      config.checkpoint_step >= 1 && config.checkpoint_step <= config.steps;
  if (capture) {
    HM_CHECK(static_cast<index_t>(checkpoint.size()) == model.num_params());
  }
  scratch.ensure(model);
  if (config.prox_mu > 0) {
    scratch.prox_center.assign(w.begin(), w.end());
  }

  std::vector<index_t> batch(static_cast<std::size_t>(config.batch_size));
  for (index_t step = 0; step < config.steps; ++step) {
    for (auto& idx : batch) {
      idx = static_cast<index_t>(gen.uniform_index(
          static_cast<std::uint64_t>(shard.size())));
    }
    model.loss_and_grad(w, shard, batch, scratch.grad, *scratch.ws);
    if (config.prox_mu > 0) {
      for (std::size_t i = 0; i < scratch.grad.size(); ++i) {
        scratch.grad[i] += config.prox_mu * (w[i] - scratch.prox_center[i]);
      }
    }
    // Fused decayed step: w = (1 - eta*wd)*w - eta*g in one pass
    // (bit-identical to the scale-then-axpy pair; see vecops.hpp).
    const scalar_t decay =
        config.weight_decay > 0 ? 1 - config.eta * config.weight_decay
                                : scalar_t{1};
    tensor::axpby(-config.eta, scratch.grad, decay, w);
    tensor::project_l2_ball(w, config.w_radius);
    if (capture && step + 1 == config.checkpoint_step) {
      tensor::copy(w, checkpoint);
    }
  }
}

}  // namespace hm::algo
